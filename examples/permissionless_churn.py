#!/usr/bin/env python3
"""Permissionless operation (§VII-B): churn, epochs and peer sampling.

Demonstrates the three §VII-B mechanisms:

1. nodes join and leave between epochs; overlays are repaired incrementally
   (including an entry-point departure and replacement election);
2. the epoch transition rebuilds optimized overlays for the new membership;
3. a SecureCyclon-style peer-sampling layer keeps every node's partial view
   fresh and balanced despite Byzantine members.

Run:  python examples/permissionless_churn.py
"""

from __future__ import annotations

import statistics

from repro.core import HermesConfig, HermesSystem, MembershipManager
from repro.core.peer_sampling import (
    PeerSamplingNode,
    bootstrap_ring_views,
    indegree_distribution,
)
from repro.mempool import Transaction
from repro.net import Behavior, Network, Simulator, generate_physical_network
from repro.types import Region


def disseminate(manager: MembershipManager, origin: int, label: str) -> None:
    config = HermesConfig(
        f=1, num_overlays=len(manager.overlays), gossip_fallback_enabled=False
    )
    system = HermesSystem(
        manager.physical, config, overlays=manager.overlays, seed=3
    )
    system.start()
    tx = Transaction.create(origin=origin, created_at=0.0)
    system.submit(origin, tx)
    system.run(until_ms=5_000)
    reached = len(system.stats.deliveries[tx.tx_id])
    print(f"  [{label}] tx from node {origin} reached "
          f"{reached}/{len(manager.members())} members")


def main() -> None:
    print("=== Epoch-based membership ===")
    physical = generate_physical_network(80, min_degree=4, seed=21)
    manager = MembershipManager(physical, f=1, k=5, seed=2)
    disseminate(manager, origin=manager.members()[0], label="epoch 0")

    print("churn: two joins, two leaves, one entry-point departure...")
    manager.join(500, Region.SINGAPORE, neighbors=[0, 1, 2, 3])
    manager.join(501, Region.CALIFORNIA, neighbors=[4, 5, 6, 7])
    manager.leave(manager.members()[10])
    manager.leave(manager.members()[20])
    departing_entry = manager.overlays[0].entry_points[0]
    manager.leave(departing_entry)
    manager.validate()
    print(f"  (entry point {departing_entry} left; replacement elected)")
    disseminate(manager, origin=500, label="after churn")

    print("advancing the epoch (overlays rebuilt for the new membership)...")
    manager.advance_epoch()
    manager.validate()
    disseminate(manager, origin=501, label="epoch 1")

    print("\n=== SecureCyclon-style peer sampling ===")
    sampling_physical = generate_physical_network(60, min_degree=4, seed=8)
    simulator = Simulator()
    network = Network(simulator, sampling_physical, seed=8)
    views = bootstrap_ring_views(sampling_physical.nodes(), view_size=8, seed=1)
    byzantine = set(sampling_physical.nodes()[:6])
    nodes = {
        node_id: PeerSamplingNode(
            node_id,
            network,
            views[node_id],
            view_size=8,
            behavior=Behavior.DROP_RELAY if node_id in byzantine else Behavior.HONEST,
        )
        for node_id in sampling_physical.nodes()
    }
    network.start_all()
    simulator.run(until_ms=10_000)
    indegree = indegree_distribution(nodes)
    honest_values = [v for n, v in indegree.items() if n not in byzantine]
    byz_values = [v for n, v in indegree.items() if n in byzantine]
    print(f"  shuffles completed per node: "
          f"{statistics.mean(n.shuffles_completed for n in nodes.values()):.1f}")
    print(f"  view indegree: honest mean {statistics.mean(honest_values):.1f}, "
          f"byzantine mean {statistics.mean(byz_values):.1f} "
          f"(byzantine nodes do not dominate views)")


if __name__ == "__main__":
    main()
