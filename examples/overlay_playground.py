#!/usr/bin/env python3
"""Overlay playground: compare structures and watch the optimizer work.

Reproduces Fig. 2 interactively — robust tree vs chordal ring vs hypercube vs
random overlay — then walks one robust tree through the §V-B optimization
pipeline (prune, anneal) printing the Eq. (1) objective at each stage, and
finishes with the erasure-coded dissemination math of §VIII-D.

Run:  python examples/overlay_playground.py
"""

from __future__ import annotations

import statistics

from repro.core import decode_shards, encode_shards, hermes_erasure_parameters
from repro.experiments import fig2_overlays
from repro.net import generate_physical_network
from repro.overlay import (
    AnnealingConfig,
    RankTracker,
    TransportSpace,
    anneal,
    build_robust_tree,
    evaluate_overlay,
)
from repro.overlay.robust_tree import prune_to_minimal
from repro.utils.rng import derive_rng


def main() -> None:
    print("=== Fig. 2: overlay structures (N=120, f=1) ===")
    result = fig2_overlays.run(fig2_overlays.Fig2Config(num_nodes=120, f=1, seed=4))
    print(fig2_overlays.format_result(result))

    print("\n=== The optimization pipeline on one robust tree ===")
    physical = generate_physical_network(120, min_degree=4, seed=4)
    space = TransportSpace(physical)
    ranks = RankTracker(physical.nodes())
    tree = build_robust_tree(
        physical.nodes(), space, f=1, overlay_id=0, ranks=ranks, seed=4
    )

    def describe(stage: str, overlay) -> None:
        value = evaluate_overlay(overlay, space, ranks)
        arrivals = overlay.arrival_times(space)
        print(
            f"  {stage:10s} edges={overlay.num_edges:5d}  "
            f"avg-arrival={statistics.mean(arrivals.values()):7.1f} ms  "
            f"objective={value.total:9.1f}"
        )

    describe("raw", tree)
    pruned = prune_to_minimal(tree, space)
    describe("pruned", pruned)
    annealed = anneal(
        pruned,
        space,
        ranks,
        config=AnnealingConfig(
            initial_temperature=30.0, min_temperature=1.0,
            cooling_rate=0.9, moves_per_temperature=3,
        ),
        rng=derive_rng(4, "playground"),
    )
    describe("annealed", annealed)
    annealed.validate(expected_nodes=physical.nodes())
    print("  all invariants hold after optimization (f+1-connectivity etc.)")

    print("\n=== Erasure-coded dissemination (§VIII-D) ===")
    f, k = 2, 3
    data_shards, total_shards = hermes_erasure_parameters(f, k)
    batch = b"a batch of transactions" * 30
    shards = encode_shards(batch, data_shards, total_shards)
    print(f"  batch of {len(batch)} bytes -> {total_shards} shards of "
          f"{len(shards[0].data)} bytes over {total_shards} disjoint paths")
    survivors = shards[f:]
    recovered = decode_shards(survivors, data_shards, len(batch))
    assert recovered == batch
    print(f"  {f} shards lost to faulty paths; the remaining "
          f"{len(survivors)} recover the batch exactly")
    overhead = total_shards * len(shards[0].data) / len(batch) - 1
    print(f"  bandwidth overhead vs raw: {overhead:.0%} "
          f"(instead of {f + 1}x for full replication on f+1 paths)")


if __name__ == "__main__":
    main()
