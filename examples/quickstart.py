#!/usr/bin/env python3
"""Quickstart: disseminate a transaction through HERMES.

Builds a 100-node simulated network, constructs the k = 10 optimized
robust-tree overlays, and pushes one transaction through the full protocol:
TRS acquisition from the committee, randomized overlay selection, entry-point
hand-off, verified tree dissemination.

Run:  python examples/quickstart.py

Pass ``--trace run.jsonl`` to observe the run with :mod:`repro.obs`: the
structured JSONL trace is written to the given path, the metrics + profile
manifest next to it (``run.manifest.json``), and a short measurement summary
is printed.  See docs/observability.md for the schemas.
"""

from __future__ import annotations

import argparse
import statistics

from repro.core import HermesConfig, HermesSystem
from repro.mempool import Transaction
from repro.net import generate_physical_network
from repro.obs import Observability


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace",
        metavar="OUT.JSONL",
        help="write a JSONL trace and metrics manifest of the run",
    )
    args = parser.parse_args()
    obs = Observability.enabled(profile=True) if args.trace else None

    print("1. Generating a 100-node physical network (9 regions)...")
    physical = generate_physical_network(num_nodes=100, min_degree=4, seed=42)

    print("2. Building HERMES (f=1, k=10 overlays; this optimizes the trees)...")
    config = HermesConfig(f=1, num_overlays=10)
    system = HermesSystem(physical, config, seed=42, obs=obs)
    print(f"   committee (3f+1 nodes): {system.committee}")
    for overlay in system.overlays[:3]:
        print(
            f"   overlay {overlay.overlay_id}: entries={overlay.entry_points} "
            f"depth={overlay.max_depth()} edges={overlay.num_edges}"
        )

    print("3. Disseminating one 250-byte transaction from node 17...")
    system.start()
    tx = Transaction.create(origin=17, created_at=0.0)
    system.submit(17, tx)
    system.run(until_ms=5_000)

    deliveries = system.stats.deliveries[tx.tx_id]
    latencies = system.stats.delivery_latencies(tx.tx_id)
    overheads = system.stats.setup_overheads()
    print(f"   delivered to {len(deliveries)}/{physical.num_nodes} nodes")
    print(f"   TRS acquisition took {overheads[0]:.1f} ms")
    print(
        f"   dissemination latency: avg {statistics.mean(latencies):.1f} ms, "
        f"max {max(latencies):.1f} ms"
    )
    print(f"   protocol violations observed: {len(system.violation_log)}")
    assert len(deliveries) == physical.num_nodes

    if obs is not None:
        print("4. Exporting the observability artifacts...")
        trs = obs.metrics.histogram("hermes.trs.latency_ms")
        hops = obs.metrics.histogram("hermes.overlay.hops")
        sent = sum(c.value for c in obs.metrics.find("net.messages.sent"))
        print(f"   messages sent (all kinds): {sent:.0f}")
        print(f"   TRS latency p50: {trs.percentile(50):.1f} ms")
        print(f"   overlay hops p95: {hops.percentile(95):.0f}")
        profile = system.simulator.profile()
        top_key, top_stats = profile.hottest(1)[0]
        print(
            f"   hottest callback: {top_key} "
            f"({top_stats.calls} calls, {top_stats.total_s * 1000:.1f} ms wall)"
        )
        records = obs.write_trace(args.trace)
        stem = args.trace[:-6] if args.trace.endswith(".jsonl") else args.trace
        obs.write_manifest(stem + ".manifest.json", meta={"example": "quickstart"})
        print(f"   {records} trace records -> {args.trace}")
        print(f"   manifest -> {stem}.manifest.json")


if __name__ == "__main__":
    main()
