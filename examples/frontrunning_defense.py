#!/usr/bin/env python3
"""Front-running defense demo (the paper's motivating scenario, §VIII-F).

A victim submits a transaction while 25% of the network is malicious: the
first malicious observer races an adversarial transaction to the block
proposer.  We run the identical attack against Mercury (no accountability —
the adversary injects directly to cluster leaders) and against HERMES (the
adversary is forced through the TRS committee and a randomly assigned
overlay), and show who wins each time.

Run:  python examples/frontrunning_defense.py
"""

from __future__ import annotations

from repro.attacks import run_front_running_trial
from repro.baselines import MercurySystem
from repro.core import HermesConfig, HermesSystem
from repro.net import generate_physical_network
from repro.overlay import build_overlay_family

TRIALS = 8
MALICIOUS_FRACTION = 0.25


def main() -> None:
    physical = generate_physical_network(num_nodes=120, min_degree=4, seed=7)
    nodes = physical.nodes()
    print("Building the HERMES overlay family (k=10)...")
    overlays, _ranks = build_overlay_family(physical, f=1, k=10, seed=7)

    def hermes_factory(plan, hook):
        config = HermesConfig(f=1, num_overlays=10, gossip_fallback_enabled=False)
        return HermesSystem(
            physical, config, fault_plan=plan, observe_hook=hook,
            overlays=overlays, seed=11,
        )

    def mercury_factory(plan, hook):
        return MercurySystem(physical, fault_plan=plan, observe_hook=hook, seed=11)

    import random

    rng = random.Random(3)
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(TRIALS)]

    for name, factory in (("Mercury", mercury_factory), ("HERMES", hermes_factory)):
        wins = 0
        print(f"\n=== {name}: {TRIALS} attack trials at "
              f"{MALICIOUS_FRACTION:.0%} malicious nodes ===")
        for index, (victim, proposer) in enumerate(pairs):
            result = run_front_running_trial(
                factory, nodes, MALICIOUS_FRACTION, victim, proposer,
                horizon_ms=4_000, seed=100 + index,
            )
            outcome = "ATTACKER WINS" if result.verdict.attacker_won else "defended"
            wins += result.verdict.attacker_won
            detail = ""
            if result.attack_launched:
                detail = (
                    f" (observed at {result.observation_time:.0f} ms, "
                    f"victim reached proposer at "
                    f"{result.victim_arrival_at_proposer or float('nan'):.0f} ms)"
                )
            print(f"  trial {index}: victim={victim:3d} proposer={proposer:3d} "
                  f"-> {outcome}{detail}")
        print(f"  {name} front-running success rate: {wins}/{TRIALS}")


if __name__ == "__main__":
    main()
