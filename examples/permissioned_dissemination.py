#!/usr/bin/env python3
"""Permissioned-blockchain workload: sustained transactions under faults.

Simulates a 150-node permissioned deployment handling a stream of
transactions from many senders while 15% of nodes silently censor
(DROP_RELAY).  Shows the two layers of HERMES's resilience:

* the f+1-connected overlays deliver despite the censors;
* the §VII-A gossip fallback reconciles whatever slipped through.

It then builds a block at a proposer and prints mempool convergence stats.

Run:  python examples/permissioned_dissemination.py
"""

from __future__ import annotations

import random
import statistics

from repro.core import HermesConfig, HermesSystem
from repro.mempool import Transaction, build_block
from repro.net import Behavior, FaultPlan, generate_physical_network

NUM_NODES = 150
NUM_TXS = 25
CENSOR_FRACTION = 0.15


def main() -> None:
    physical = generate_physical_network(NUM_NODES, min_degree=4, seed=12)
    rng = random.Random(5)
    senders = [rng.choice(physical.nodes()) for _ in range(NUM_TXS)]

    plan = FaultPlan.random_fraction(
        physical.nodes(), CENSOR_FRACTION, Behavior.DROP_RELAY,
        seed=9, protected=senders,
    )
    print(f"{plan.count()} of {NUM_NODES} nodes silently censor relayed traffic")

    print("Building HERMES (f=1, k=10, gossip fallback after 500 ms)...")
    config = HermesConfig(
        f=1, num_overlays=10,
        gossip_fallback_enabled=True,
        gossip_fallback_delay_ms=500.0,
    )
    system = HermesSystem(physical, config, fault_plan=plan, seed=12)
    system.start()

    print(f"Submitting {NUM_TXS} transactions over 5 simulated seconds...")
    txs = []
    for index, origin in enumerate(senders):
        tx = Transaction.create(origin=origin, created_at=0.0)
        txs.append(tx)
        system.simulator.schedule_at(
            index * 200.0, lambda o=origin, t=tx: system.submit(o, t)
        )
    system.run(until_ms=12_000)

    honest = system.honest_node_ids()
    coverages = [system.stats.coverage(tx.tx_id, honest) for tx in txs]
    latencies = system.stats.all_delivery_latencies()
    print(f"honest-node coverage: min {min(coverages):.1%}, "
          f"mean {statistics.mean(coverages):.1%}")
    print(f"delivery latency: mean {statistics.mean(latencies):.1f} ms, "
          f"p95 {sorted(latencies)[int(0.95 * len(latencies))]:.1f} ms")

    proposer = honest[0]
    block = build_block(system.nodes[proposer].mempool, system.simulator.now)
    print(f"proposer {proposer} builds a block with {len(block)} transactions "
          f"(submitted: {NUM_TXS})")
    bandwidth = system.stats.bandwidth_kb_per_minute(12_000.0)
    print(f"bandwidth: {bandwidth:.1f} KB/min per node")


if __name__ == "__main__":
    main()
