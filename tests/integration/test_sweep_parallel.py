"""Integration: the sweep runner's parallel execution and resume guarantees.

The acceptance bar for the runner subsystem:

* a seeded sweep produces **byte-identical** per-run records under
  ``jobs=1`` and ``jobs=4`` — scheduling must not leak into results;
* re-invoking a completed sweep with ``resume=True`` executes **zero** new
  runs while reproducing the same aggregate report;
* a crashing worker is retried up to the budget and then recorded as a
  failure instead of hanging or aborting the sweep.

Spawn pools are slow to start, so the grids here are tiny (N=30, a few
transactions); the properties under test are scheduling properties, not
statistics, and do not need large runs.
"""

import pytest

from repro.runner import (
    ResultStore,
    RunSpec,
    SweepSpec,
    latency_summaries,
    run_sweep,
)

# One small but non-trivial grid: two protocols x two seeds, with faults on
# one axis so the FaultPlan path is exercised through the workers too.
SWEEP = SweepSpec(
    task="dissemination",
    base={"num_nodes": 30, "f": 1, "k": 2, "transactions": 2, "horizon_ms": 4_000.0},
    grid={
        "protocol": ["hermes", "lzero"],
        "seed": [0, 1],
        "fault_fraction": [0.0, 0.2],
    },
)


def _store_bytes(store: ResultStore) -> dict[str, bytes]:
    return {path.name: path.read_bytes() for path in sorted(store.root.glob("*.json"))}


class TestSerialParallelIdentity:
    def test_jobs1_and_jobs4_write_identical_records(self, tmp_path):
        serial_store = ResultStore(tmp_path / "serial")
        parallel_store = ResultStore(tmp_path / "parallel")

        serial = run_sweep(SWEEP, store=serial_store, jobs=1)
        parallel = run_sweep(SWEEP, store=parallel_store, jobs=4)

        assert serial.failed == 0 and parallel.failed == 0
        assert serial.executed == parallel.executed == len(SWEEP) == 8

        serial_bytes = _store_bytes(serial_store)
        parallel_bytes = _store_bytes(parallel_store)
        assert set(serial_bytes) == set(parallel_bytes)
        assert serial_bytes == parallel_bytes  # byte-for-byte identical

        # Records come back in request order on both paths.
        order = [r["spec_hash"] for r in serial.records]
        assert order == [r["spec_hash"] for r in parallel.records]

    def test_resume_executes_nothing_and_reproduces_aggregates(self, tmp_path):
        store = ResultStore(tmp_path / "resumable")
        first = run_sweep(SWEEP, store=store, jobs=4)
        assert first.executed == len(SWEEP) and first.failed == 0
        before = _store_bytes(store)
        first_summaries = latency_summaries(first.records)

        again = run_sweep(SWEEP, store=store, jobs=4)
        assert again.executed == 0
        assert again.skipped == len(SWEEP)
        assert _store_bytes(store) == before  # nothing rewritten
        assert latency_summaries(again.records) == first_summaries

    def test_interrupted_sweep_continues_where_it_stopped(self, tmp_path):
        store = ResultStore(tmp_path / "partial")
        cells = SWEEP.expand()
        # Simulate an interruption: only the first half completed.
        head = run_sweep(cells[: len(cells) // 2], store=store, jobs=1)
        assert head.executed == len(cells) // 2

        finished = run_sweep(SWEEP, store=store, jobs=4)
        assert finished.skipped == len(cells) // 2
        assert finished.executed == len(cells) - len(cells) // 2
        assert finished.failed == 0
        assert len(store) == len(cells)


class TestWorkerCrashes:
    def test_crash_exhausts_retries_and_is_recorded(self, tmp_path):
        store = ResultStore(tmp_path / "crashes")
        spec = RunSpec(task="selftest.crash", params={"code": 17})
        report = run_sweep([spec], store=store, jobs=2, retries=1)
        assert report.failed == 1
        record = report.records[0]
        assert not record.ok
        assert "worker crashed" in record["error"]
        assert record["attempts"] == 2  # initial try + one retry

    def test_healthy_runs_survive_a_crashing_neighbour(self, tmp_path):
        store = ResultStore(tmp_path / "mixed")
        specs = [
            RunSpec(task="selftest.echo", params={"x": i}) for i in range(4)
        ] + [RunSpec(task="selftest.crash", params={"code": 17})]
        report = run_sweep(specs, store=store, jobs=2, retries=1)
        assert report.failed == 1
        ok = [r for r in report.records if r.ok]
        assert sorted(r.result["x"] for r in ok) == [0, 1, 2, 3]
