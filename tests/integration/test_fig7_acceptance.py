"""Fig. 7 acceptance: the qualitative orderings the figure must reproduce.

Small-scale (N=60) but full-axis: every protocol of the figure against the
reactive extraction strategies at the paper's hardest malicious fraction.
The full-size run (N=200, the committed ``fig7`` output) sharpens the same
relations; this pins them in tier-1:

* HERMES's attack-success rate and extracted value sit strictly below
  Narwhal's and Mercury's — dissemination fairness is what HERMES buys;
* F3B zeroes *reactive* strategies outright: content reveals only after
  positions lock, so a sandwich/censor leg can never order ahead;
* Mercury and Narwhal leak extractable value (the unprotected baselines).

The grid is deterministic (seeded fault plans, seeded victim/proposer pairs),
so these are exact reproducible outcomes, not flaky statistics.
"""

from repro.experiments import fig7_adversary as fig7

CONFIG = fig7.Fig7Config(
    num_nodes=60,
    protocols=("hermes", "lzero", "narwhal", "mercury", "f3b"),
    strategies=("sandwich", "censor-reorder"),
    fractions=(0.33,),
    trials=4,
)


def _result():
    global _CACHED
    try:
        return _CACHED
    except NameError:
        _CACHED = fig7.run(CONFIG)
        return _CACHED


def test_hermes_strictly_below_the_unprotected_baselines():
    result = _result()
    for metric in (result.protocol_success_rate, result.protocol_extracted_value):
        assert metric("hermes") < metric("narwhal")
        assert metric("hermes") < metric("mercury")


def test_f3b_zeroes_reactive_strategies():
    result = _result()
    for strategy in CONFIG.strategies:
        cell = result.cell("f3b", strategy, 0.33)
        assert cell.success_rate == 0.0
        assert cell.mean_gross == 0.0


def test_unprotected_baselines_leak_value():
    result = _result()
    for protocol in ("narwhal", "mercury"):
        assert result.protocol_success_rate(protocol) > 0.0
        assert result.protocol_extracted_value(protocol) > 0.0


def test_resistance_ordering_puts_defenses_first():
    ordering = _result().resistance_ordering()
    defenses = {"hermes", "f3b"}
    assert set(ordering[:2]) <= defenses | {"lzero"}
    # The unprotected baselines bring up the rear.
    assert set(ordering[-2:]) == {"narwhal", "mercury"}


def test_every_cell_aggregates_all_trials():
    result = _result()
    for key, cell in result.cells.items():
        assert cell.trials == CONFIG.trials, key
        assert 0.0 <= cell.mean_coverage <= 1.0
        assert 0.5 <= cell.mean_gamma <= 1.0
