"""Integration tests: cross-protocol properties the paper's evaluation relies on."""

import statistics

import pytest

from repro.experiments import build_environment, protocol_factories
from repro.mempool.transaction import Transaction


@pytest.fixture(scope="module")
def comparison():
    """One dissemination per protocol over the same 60-node network."""

    env = build_environment(num_nodes=60, f=1, k=4, seed=3)
    factories = protocol_factories(
        env, hermes_overrides={"gossip_fallback_enabled": False}
    )
    results = {}
    for name in ("hermes", "lzero", "narwhal", "mercury", "gossip"):
        system = factories[name]()
        system.start()
        txs = []
        for index, origin in enumerate((4, 23, 48, 11, 37, 55)):
            # Fixed tx ids keep the TRS seeds (and hence HERMES's overlay
            # draws) independent of global test-run order.
            tx = Transaction(
                tx_id=5_000_000 + index, origin=origin, created_at=0.0
            )
            txs.append(tx)
            system.submit(origin, tx)
        system.run(until_ms=8_000)
        results[name] = (system, txs)
    return env, results


class TestCoverage:
    def test_all_protocols_reach_everyone_when_honest(self, comparison):
        env, results = comparison
        for name, (system, txs) in results.items():
            for tx in txs:
                assert (
                    len(system.stats.deliveries[tx.tx_id]) == env.physical.num_nodes
                ), name


class TestLatencyOrdering:
    def test_paper_fig3a_ordering(self, comparison):
        """Mercury < HERMES < Narwhal, and L∅ slower than HERMES.

        (The full four-way ordering incl. Narwhal-vs-L∅ is asserted at the
        paper's N=200 scale by the Fig. 3a benchmark; at this small N the
        L∅/Narwhal gap is within noise.)
        """

        _env, results = comparison
        means = {
            name: statistics.mean(system.stats.all_delivery_latencies())
            for name, (system, _txs) in results.items()
        }
        # At N=60 adjacent protocols sit within overlay-draw noise of each
        # other, so allow a 15% band on the neighbouring pairs; the strict
        # four-way ordering is asserted at N=200 by the Fig. 3a benchmark.
        assert means["mercury"] < 1.15 * means["hermes"]
        assert means["hermes"] < 1.15 * means["narwhal"]
        assert means["hermes"] < means["lzero"]

    def test_lzero_widest_spread(self, comparison):
        _env, results = comparison
        spreads = {
            name: system.stats.latency_summary().spread
            for name, (system, _txs) in results.items()
            if name in ("hermes", "lzero", "narwhal", "mercury")
        }
        assert spreads["lzero"] == max(spreads.values())

    def test_setup_overheads_match_protocol_designs(self, comparison):
        """HERMES pays the TRS round trip; Narwhal pays its batch timer;
        the push protocols transmit immediately."""

        _env, results = comparison
        for name, (system, _txs) in results.items():
            overheads = system.stats.setup_overheads()
            if name == "hermes":
                assert all(o > 0 for o in overheads)
            elif name == "narwhal":
                assert all(o == pytest.approx(60.0) for o in overheads)
            else:
                assert all(o == 0 for o in overheads)


class TestBandwidthOrdering:
    """Scale-robust bandwidth claims; the full Fig. 3b ordering is asserted
    at N=200 by the bandwidth benchmark."""

    def test_lzero_cheaper_than_plain_gossip(self, comparison):
        _env, results = comparison
        totals = {
            name: system.stats.total_bytes()
            for name, (system, _txs) in results.items()
        }
        assert totals["lzero"] < totals["gossip"]

    def test_narwhal_heavier_than_lzero(self, comparison):
        _env, results = comparison
        totals = {
            name: system.stats.total_bytes()
            for name, (system, _txs) in results.items()
        }
        assert totals["narwhal"] > totals["lzero"]
