"""The k=1 byte-identity contract, pinned by a golden hash.

A single-shard :class:`~repro.sharding.ShardedSystem` must be *byte-identical*
to the unsharded deployment it wraps: same environment cache entry, same
factory seed, no ``shard_id`` on the protocol config (shard tags cost two
wire bytes), and a load split that replays the original injection objects in
order.  This test runs the same workload through both paths and asserts the
canonical-JSON results are equal — and that both match a committed golden
hash, so an accidental behavior change in *either* path (not just a
divergence between them) fails loudly.

If a deliberate simulation change moves the hash, re-pin it by running the
recipe below and updating ``GOLDEN_SHA256`` in the same commit.
"""

import hashlib
import json

import pytest

from repro.experiments.harness import build_environment, protocol_factories
from repro.load.arrival import make_arrivals
from repro.load.capacity import CapacityConfig, CapacityModel
from repro.load.driver import LoadDriver
from repro.mempool.transaction import reset_tx_ids
from repro.net.events import reset_message_ids
from repro.sharding import ShardedLoadDriver, ShardedSystem

# sha256 of the canonical (sort_keys) JSON of the unsharded LoadResult below.
GOLDEN_SHA256 = "e40b1aec0dd4e8a4c974b76562b6430884a5a7de60a7496517630d2e7f4e6b5a"

NUM_NODES = 48
CAPACITY = CapacityConfig(
    uplink_kb_per_s=32.0, downlink_kb_per_s=128.0, queue_bytes=32 * 1024
)
# Integer durations on purpose: duration/horizon land verbatim in the
# result JSON, and the golden hash was pinned with integer arguments.
DURATION_MS = 5_000
DRAIN_MS = 2_000


def _arrivals():
    return make_arrivals(
        "poisson", rate_tps=80.0, origins=list(range(NUM_NODES)), seed=0
    )


def _canonical(doc) -> str:
    return json.dumps(doc, sort_keys=True)


@pytest.fixture(scope="module")
def results():
    # Reference: the plain unsharded system under the plain LoadDriver.
    reset_tx_ids()
    reset_message_ids()
    env = build_environment(num_nodes=NUM_NODES, f=1, k=3, seed=0)
    system = protocol_factories(env, seed=13)["hermes"](None, None)
    system.network.capacity = CapacityModel(CAPACITY)
    reference = LoadDriver(system, _arrivals(), protocol="hermes").run(
        DURATION_MS, DRAIN_MS
    )

    # Same workload through the single-shard sharded stack.
    reset_tx_ids()
    reset_message_ids()
    sharded_system = ShardedSystem(
        1, NUM_NODES, protocol="hermes", f=1, k=3, capacity=CAPACITY
    )
    sharded = ShardedLoadDriver(sharded_system, _arrivals()).run(
        DURATION_MS, DRAIN_MS
    )
    return reference, sharded


class TestSingleShardIdentity:
    def test_sharded_k1_matches_unsharded(self, results):
        reference, sharded = results
        assert _canonical(sharded.per_shard[0].to_json()) == _canonical(
            reference.to_json()
        )

    def test_golden_hash_pins_both_paths(self, results):
        reference, sharded = results
        digest = hashlib.sha256(_canonical(reference.to_json()).encode()).hexdigest()
        assert digest == GOLDEN_SHA256, (
            "unsharded reference run drifted from the committed golden hash; "
            "if the simulation change is deliberate, re-pin GOLDEN_SHA256"
        )
        digest = hashlib.sha256(
            _canonical(sharded.per_shard[0].to_json()).encode()
        ).hexdigest()
        assert digest == GOLDEN_SHA256

    def test_k1_split_never_routes(self, results):
        _, sharded = results
        assert sharded.num_shards == 1
        assert sharded.routed == 0
        assert sharded.routed_fraction == 0.0
        # Aggregate view restates the single shard's own measurements.
        only = sharded.per_shard[0]
        assert sharded.delivered == only.delivered
        assert sharded.aggregate_goodput_tps == pytest.approx(
            only.delivered / (DURATION_MS / 1000.0)
        )
