"""Integration tests: the full HERMES stack under realistic workloads."""

import statistics

import pytest

from repro.core.config import HermesConfig
from repro.core.protocol import HermesSystem
from repro.mempool.blocks import build_block
from repro.mempool.transaction import Transaction
from repro.net.faults import Behavior, FaultPlan


@pytest.fixture(scope="module")
def system80(physical80, overlay_family80):
    overlays, _ranks = overlay_family80
    config = HermesConfig(f=1, num_overlays=4, gossip_fallback_enabled=False)
    system = HermesSystem(physical80, config, overlays=overlays, seed=31)
    system.start()
    origins = [3, 17, 42, 60, 71, 8, 25, 55]
    txs = []
    for index, origin in enumerate(origins):
        tx = Transaction.create(origin=origin, created_at=0.0)
        txs.append(tx)
        system.simulator.schedule_at(
            index * 50.0, lambda o=origin, t=tx: system.submit(o, t)
        )
    system.run(until_ms=15_000)
    return system, txs


class TestWorkload:
    def test_every_transaction_reaches_everyone(self, system80, physical80):
        system, txs = system80
        for tx in txs:
            assert len(system.stats.deliveries[tx.tx_id]) == physical80.num_nodes

    def test_no_violations_in_honest_run(self, system80):
        system, _txs = system80
        assert len(system.violation_log) == 0

    def test_sequences_assigned_in_order(self, system80):
        system, txs = system80
        by_origin: dict[int, int] = {}
        for tx in txs:
            by_origin[tx.origin] = by_origin.get(tx.origin, 0) + 1
        for origin, count in by_origin.items():
            assert system.nodes[origin].trs_client.next_sequence == count

    def test_mempools_converge(self, system80, physical80):
        system, txs = system80
        expected = {tx.tx_id for tx in txs}
        for node in system.nodes.values():
            assert expected <= node.mempool.known_ids()

    def test_block_building_from_any_proposer(self, system80):
        system, txs = system80
        block = build_block(system.nodes[50].mempool, system.simulator.now)
        assert set(tx.tx_id for tx in txs) <= set(block.tx_ids)

    def test_latency_reasonable(self, system80):
        system, _txs = system80
        latencies = system.stats.all_delivery_latencies()
        assert statistics.mean(latencies) < 1_000.0


class TestSequenceGapDetection:
    def test_skipped_sequence_flagged(self, physical80, overlay_family80):
        """An origin disseminating seq 2 while seq 1 never appears is accused."""

        overlays, _ranks = overlay_family80
        config = HermesConfig(
            f=1,
            num_overlays=4,
            gossip_fallback_enabled=False,
            sequence_gap_timeout_ms=400.0,
        )
        system = HermesSystem(physical80, config, overlays=overlays, seed=31)
        system.start()

        from repro.core.dissemination import DISSEMINATE_KIND, DisseminationEnvelope
        from repro.net.events import Message
        from repro.trs.committee import trs_binding

        origin = 9

        def forge(sequence):
            tx = Transaction.create(origin=origin, created_at=0.0)
            binding = trs_binding(origin, sequence, tx.digest())
            partials = [
                system.backend.partial_sign(m, binding) for m in system.committee[:3]
            ]
            signature = system.backend.combine(binding, partials)
            overlay_id = system.backend.seed_from_signature(signature, 4)
            return DisseminationEnvelope(
                tx=tx, origin=origin, sequence=sequence,
                signature=signature, overlay_id=overlay_id,
            )

        # Disseminate sequence 0, then skip to sequence 2.
        for sequence in (0, 2):
            envelope = forge(sequence)
            overlay = system.overlays[envelope.overlay_id]
            node = system.nodes[origin]
            for entry in overlay.entry_points:
                if entry == origin:
                    continue
                node.send(
                    entry, Message(DISSEMINATE_KIND, envelope, 350)
                )
        system.run(until_ms=8_000)
        gap_violations = [
            v
            for v in system.violation_log.against(origin)
            if v.kind.value == "sequence-gap"
        ]
        assert gap_violations, "the skipped sequence number must be flagged"


class TestByzantineMix:
    def test_mixed_faults_do_not_stop_dissemination(self, physical80, overlay_family80):
        overlays, _ranks = overlay_family80
        behaviors = {}
        nodes = physical80.nodes()
        behaviors[nodes[5]] = Behavior.CRASH
        behaviors[nodes[12]] = Behavior.DROP_RELAY
        behaviors[nodes[33]] = Behavior.DROP_RELAY
        plan = FaultPlan(behaviors=behaviors)
        config = HermesConfig(f=1, num_overlays=4, gossip_fallback_enabled=True,
                              gossip_fallback_delay_ms=400.0, gossip_period_ms=200.0)
        system = HermesSystem(
            physical80, config, fault_plan=plan, overlays=overlays, seed=31
        )
        system.start()
        tx = Transaction.create(origin=nodes[0], created_at=0.0)
        system.submit(nodes[0], tx)
        system.run(until_ms=6_000)
        coverage = system.stats.coverage(tx.tx_id, system.honest_node_ids())
        assert coverage == 1.0
