"""End-to-end trace analytics over a real (small) fig3a-style run.

Acceptance criteria for the analysis layer, pinned against live protocol
traffic rather than synthetic traces:

* every transaction's dissemination tree reconstructs with zero orphan
  spans — each delivery's sender is reachable from the origin;
* the critical-path decomposition is exact: hold + queue + serialization +
  link + proc + other sums to the end-to-end latency within 1e-6 ms;
* the CLI front ends run over the same trace without error.
"""

import io
import json

from repro.experiments.fig3a_latency import Fig3aConfig, run
from repro.obs import Observability
from repro.obs.analysis import aggregate, build_trees, critical_paths, read_trace
from repro.__main__ import main as repro_main

NUM_NODES = 8
TRANSACTIONS = 3
PROTOCOLS = {"hermes", "lzero", "narwhal", "mercury"}


def _traced_run(tmp_path):
    obs = Observability.enabled(max_trace_events=200_000)
    run(Fig3aConfig(num_nodes=NUM_NODES, f=1, k=3, transactions=TRANSACTIONS, seed=5), obs=obs)
    buffer = io.StringIO()
    obs.write_trace(buffer)
    path = tmp_path / "fig3a.trace.jsonl"
    path.write_text(buffer.getvalue(), encoding="utf-8")
    return path


def test_trees_and_critical_paths_from_a_live_run(tmp_path):
    trace = read_trace(str(_traced_run(tmp_path)))
    assert not trace.header.lossy
    assert trace.validate() == []

    trees = build_trees(trace)
    # One tree per (protocol, transaction).
    assert len(trees) == len(PROTOCOLS) * TRANSACTIONS
    assert {t.protocol for t in trees} == PROTOCOLS
    for tree in trees:
        assert tree.orphans == [], (tree.protocol, tree.tx_id)
        assert tree.origin is not None
        assert tree.dispatch_ms is not None
        # Full coverage: every node ends up holding the transaction.
        assert tree.node_count == NUM_NODES, (tree.protocol, tree.tx_id)

    paths = critical_paths(trees, trace)
    assert len(paths) == len(trees)
    for path in paths:
        assert path.e2e_ms > 0.0
        total = sum(path.component_sums().values())
        assert abs(total - path.e2e_ms) < 1e-6, (path.protocol, path.tx_id)

    breakdowns = aggregate(paths)
    assert {b.protocol for b in breakdowns} == PROTOCOLS
    for breakdown in breakdowns:
        assert breakdown.tx_count == TRANSACTIONS
        shares = breakdown.component_shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        # Propagation delay must be part of the story for every protocol.
        assert shares["link"] > 0.0

    # HERMES pays the TRS committee round before dispatch; the wait is
    # attributed as protocol overhead, not hidden inside a hop.
    hermes = next(b for b in breakdowns if b.protocol == "hermes")
    assert hermes.trs_wait_ms > 0.0


def test_analyze_and_report_clis_run_over_the_trace(tmp_path, capsys):
    path = _traced_run(tmp_path)

    assert repro_main(["analyze", str(path), "--strict"]) == 0
    text = capsys.readouterr().out
    assert "0 orphan delivery(ies)" in text

    assert repro_main(["analyze", str(path), "--json", "--protocol", "hermes"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert len(doc["trees"]) == TRANSACTIONS
    assert all(t["orphans"] == 0 for t in doc["trees"])
    for p in doc["critical_paths"]:
        assert abs(sum(p["components_ms"].values()) - p["e2e_ms"]) < 1e-6

    out = tmp_path / "report.md"
    assert (
        repro_main(["report", "--trace", str(path), "-o", str(out), "--title", "N=8 smoke"])
        == 0
    )
    markdown = out.read_text(encoding="utf-8")
    assert "# N=8 smoke" in markdown
    assert "## Dissemination trees" in markdown
    assert "## Critical-path latency attribution" in markdown

    html_out = tmp_path / "report.html"
    assert repro_main(["report", "--trace", str(path), "-o", str(html_out), "--html"]) == 0
    assert html_out.read_text(encoding="utf-8").startswith("<!doctype html>")
