"""Integration tests: stochastic link loss (§III — links drop messages).

The system model tolerates lossy links in addition to Byzantine nodes.
HERMES's f+1 predecessors per node mean a single lost copy rarely matters;
the gossip fallback mops up the rest.
"""

import pytest

from repro.core.config import HermesConfig
from repro.core.protocol import HermesSystem
from repro.mempool.transaction import Transaction
from repro.net.channel import LossModel
from repro.net.node import Network
from repro.net.simulator import Simulator


def build_lossy_system(physical, overlays, loss_probability, fallback=False):
    config = HermesConfig(
        f=1,
        num_overlays=len(overlays),
        gossip_fallback_enabled=fallback,
        gossip_fallback_delay_ms=400.0,
        gossip_period_ms=200.0,
    )
    system = HermesSystem(physical, config, overlays=overlays, seed=51)
    # Swap in a lossy transport (same simulator and registry).
    system.network.loss_model = LossModel(loss_probability=loss_probability)
    return system


class TestLossyLinks:
    @pytest.mark.parametrize("loss", [0.01, 0.05])
    def test_redundancy_masks_light_loss(
        self, physical40, overlay_family40, loss
    ):
        overlays, _ranks = overlay_family40
        system = build_lossy_system(physical40, overlays, loss)
        system.start()
        tx = Transaction.create(origin=5, created_at=0.0)
        system.submit(5, tx)
        system.run(until_ms=6_000)
        coverage = len(system.stats.deliveries[tx.tx_id]) / physical40.num_nodes
        assert coverage >= 0.9
        assert system.stats.messages_dropped > 0

    def test_fallback_completes_under_heavy_loss(
        self, physical40, overlay_family40
    ):
        overlays, _ranks = overlay_family40
        system = build_lossy_system(physical40, overlays, 0.15, fallback=True)
        system.start()
        tx = Transaction.create(origin=5, created_at=0.0)
        system.submit(5, tx)
        system.run(until_ms=8_000)
        coverage = len(system.stats.deliveries[tx.tx_id]) / physical40.num_nodes
        assert coverage == 1.0

    def test_loss_accounted_but_bytes_still_charged(
        self, physical40, overlay_family40
    ):
        """Senders pay for dropped messages (they did transmit them)."""

        overlays, _ranks = overlay_family40
        system = build_lossy_system(physical40, overlays, 1.0)
        system.start()
        tx = Transaction.create(origin=5, created_at=0.0)
        system.submit(5, tx)
        system.run(until_ms=2_000)
        assert system.stats.total_bytes() > 0
        # Only the origin itself ever sees the transaction.
        assert set(system.stats.deliveries[tx.tx_id]) == {5}
