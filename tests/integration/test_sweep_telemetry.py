"""Integration: sweep telemetry is observation-only and failure-complete.

The acceptance bars for the telemetry layer:

* **golden-hash byte identity** — a serial sweep with telemetry enabled
  writes records byte-identical to the same sweep without telemetry
  (observation must not perturb results);
* **attribution coverage** — analyzing a real ``jobs=2`` timeline attributes
  at least 90% of measured parallel wall time to named lifecycle phases;
* **failure paths are timeline citizens** — SIGALRM timeouts land tagged
  ``["timeout"]`` and worker crashes land as ``crash``-status records with
  ``retry``/``failed`` tags plus attempt counts.

Spawn pools are slow to start, so the parallel grids here are tiny; the
properties are structural, not statistical.
"""

import hashlib

from repro.obs.analysis.sweep_report import analyze_timeline
from repro.runner import (
    ResultStore,
    RunSpec,
    SweepSpec,
    SweepTelemetry,
    read_timeline,
    run_sweep,
)

SWEEP = SweepSpec(
    task="dissemination",
    base={"num_nodes": 30, "f": 1, "k": 2, "transactions": 2, "horizon_ms": 4_000.0},
    grid={"protocol": ["hermes", "lzero"], "seed": [0, 1]},
)


def _store_digest(store: ResultStore) -> dict[str, str]:
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(store.root.glob("*.json"))
    }


class TestObservationOnly:
    def test_serial_records_byte_identical_with_telemetry_on_and_off(self, tmp_path):
        # The golden-hash invariant: telemetry wraps measurement *around* the
        # execution path, so the stored bytes cannot depend on it.
        plain_store = ResultStore(tmp_path / "plain")
        run_sweep(SWEEP, store=plain_store, jobs=1)

        timed_store = ResultStore(tmp_path / "timed")
        telemetry = SweepTelemetry(tmp_path / "timeline.jsonl")
        run_sweep(SWEEP, store=timed_store, jobs=1, telemetry=telemetry)

        plain = _store_digest(plain_store)
        timed = _store_digest(timed_store)
        assert plain == timed
        assert len(plain) == len(SWEEP)

    def test_parallel_records_match_serial_with_telemetry_on(self, tmp_path):
        serial_store = ResultStore(tmp_path / "serial")
        run_sweep(SWEEP, store=serial_store, jobs=1)

        parallel_store = ResultStore(tmp_path / "parallel")
        telemetry = SweepTelemetry(tmp_path / "timeline.jsonl")
        report = run_sweep(SWEEP, store=parallel_store, jobs=2, telemetry=telemetry)
        assert report.failed == 0
        assert _store_digest(serial_store) == _store_digest(parallel_store)


class TestParallelAttribution:
    def test_jobs2_timeline_attributes_ninety_percent_of_wall_time(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        telemetry = SweepTelemetry(path)
        report = run_sweep(SWEEP, store=ResultStore(tmp_path / "store"),
                           jobs=2, telemetry=telemetry)
        assert report.failed == 0

        timeline = read_timeline(path)
        assert timeline.jobs == 2
        assert len(timeline.completed_runs()) == len(SWEEP)
        assert timeline.workers, "pool workers must report spawn/env_build"

        analysis = analyze_timeline(timeline)
        assert analysis.attributed_fraction >= 0.90
        # The decomposition explains the sub-1.0 speedup: per-worker one-time
        # cost is real wall time the serial path never pays.
        assert analysis.per_worker_overhead_s() > 0.0
        assert analysis.phase_totals["execute"] > 0.0

    def test_worker_records_cover_every_run_worker(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        telemetry = SweepTelemetry(path)
        run_sweep(
            [RunSpec(task="selftest.echo", params={"x": i}) for i in range(6)],
            jobs=2,
            telemetry=telemetry,
        )
        timeline = read_timeline(path)
        worker_pids = {w["worker"] for w in timeline.workers}
        run_pids = {r["worker"] for r in timeline.completed_runs()}
        assert run_pids <= worker_pids


class TestFailurePathsInTimeline:
    def test_sigalrm_timeout_lands_tagged(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        telemetry = SweepTelemetry(path)
        report = run_sweep(
            [RunSpec(task="selftest.sleep", params={"seconds": 30.0})],
            jobs=2,
            timeout_s=1.0,
            telemetry=telemetry,
        )
        assert report.failed == 1
        timeline = read_timeline(path)
        (run,) = timeline.completed_runs()
        assert run["status"] == "error"
        assert run["tags"] == ["timeout"]
        # The timed-out wait is still attributed wall time, not a hole.
        assert run["phases"]["execute"] >= 1.0

    def test_worker_crash_retry_lands_tagged_records(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        telemetry = SweepTelemetry(path)
        report = run_sweep(
            [RunSpec(task="selftest.crash", params={"code": 17})],
            store=ResultStore(tmp_path / "store"),
            jobs=2,
            retries=1,
            telemetry=telemetry,
        )
        assert report.failed == 1

        timeline = read_timeline(path)
        crash_runs = [r for r in timeline.runs if "crash" in r.get("tags", ())]
        # One requeued attempt plus the budget-exhausted failure.
        retried = [r for r in crash_runs if "retry" in r["tags"]]
        failed = [r for r in crash_runs if "failed" in r["tags"]]
        assert len(retried) == 1
        assert retried[0]["status"] == "crash"
        assert retried[0]["attempt"] == 1
        assert len(failed) == 1
        assert failed[0]["attempt"] == 2
        assert timeline.summary["failed"] == 1
