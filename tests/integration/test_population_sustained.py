"""Integration: population subsystem acceptance (ISSUE tentpole criteria).

Pinned here:

* **Streaming agrees with exact on a live run** — the same seed driven
  through :class:`LoadDriver` with exact stats and with
  :class:`StreamingNetworkStats` delivers the same transaction count, and the
  streaming percentiles land within the sketch's documented rank error of
  the exact ones.  (Recording is observation-only, so the simulated
  trajectory is shared; only the aggregation differs.)
* **Sustained end-to-end** — a real protocol system under a
  :class:`PopulationDriver` with a fee market and bounded mempools delivers
  transactions, prices them, and keeps every pool at or under the cap.
* **Determinism and resume** — a ``fig8.point`` cell replays byte-identically
  and a finished fig8 sweep executes zero runs.
"""

import hashlib

import pytest

from repro.baselines import LZeroSystem
from repro.experiments import fig8_sustained
from repro.experiments.fig8_sustained import Fig8Config
from repro.load.arrival import DeterministicArrivals
from repro.load.driver import LoadDriver
from repro.mempool import MempoolPolicy
from repro.mempool.transaction import reset_tx_ids
from repro.net.events import reset_message_ids
from repro.net.stats import percentile
from repro.net.topology import generate_physical_network
from repro.population import (
    ClientPopulation,
    FeeMarket,
    FeeMarketConfig,
    PopulationConfig,
    PopulationDriver,
)
from repro.runner.spec import canonical_json

NODES = 12


def make_system():
    reset_tx_ids()
    reset_message_ids()
    physical = generate_physical_network(NODES, seed=0)
    return LZeroSystem(physical, seed=13)


def run_load(streaming: bool):
    system = make_system()
    arrivals = DeterministicArrivals(
        rate_tps=8.0, origins=system.network.node_ids(), seed=3
    )
    driver = LoadDriver(system, arrivals, streaming=streaming)
    result = driver.run(4_000.0, drain_ms=2_000.0)
    return system, result


class TestStreamingAgreesWithExact:
    @pytest.fixture(scope="class")
    def pair(self):
        exact_system, exact = run_load(streaming=False)
        streaming_system, streamed = run_load(streaming=True)
        return exact_system, exact, streaming_system, streamed

    def test_same_trajectory_same_delivered_count(self, pair):
        _, exact, _, streamed = pair
        assert exact.injected == streamed.injected
        assert exact.delivered == streamed.delivered
        assert exact.delivered > 0

    def test_percentiles_within_documented_rank_error(self, pair):
        exact_system, exact, streaming_system, streamed = pair
        # Rebuild the exact latency population the summary was computed from.
        stats = exact_system.stats
        node_count = len(exact_system.nodes)
        population = []
        for item in stats.send_times:
            if len(stats.deliveries.get(item, {})) >= 0.99 * node_count:
                population.extend(stats.delivery_latencies(item))
        population.sort()
        sketch = streaming_system.stats.latency_sketch
        assert sketch.count == len(population)
        n = len(population)
        tolerance_ranks = sketch.rank_error() * n + 1
        for pct in (50, 95):
            estimate = sketch.percentile(pct)
            target_rank = (pct / 100.0) * (n - 1)
            # Where the estimate actually sits in the exact population.
            lo = sum(1 for v in population if v < estimate)
            hi = sum(1 for v in population if v <= estimate)
            distance = max(0.0, lo - target_rank - 1, target_rank - hi)
            assert distance <= tolerance_ranks

    def test_summary_statistics_close(self, pair):
        _, exact, _, streamed = pair
        assert streamed.mean_ms == pytest.approx(exact.mean_ms)
        assert streamed.p50_ms == pytest.approx(exact.p50_ms, rel=0.05)
        assert streamed.p95_ms == pytest.approx(exact.p95_ms, rel=0.05)

    def test_exact_percentile_reference(self, pair):
        exact_system, exact, _, _ = pair
        stats = exact_system.stats
        latencies = sorted(stats.all_delivery_latencies())
        assert exact.p50_ms == pytest.approx(
            percentile(
                [
                    lat
                    for item in stats.send_times
                    if len(stats.deliveries.get(item, {}))
                    >= 0.99 * len(exact_system.nodes)
                    for lat in stats.delivery_latencies(item)
                ],
                50,
            )
        )
        assert latencies  # the exact path retained per-tx state


class TestPopulationDriverEndToEnd:
    def test_sustained_run_with_market_and_caps(self):
        system = make_system()
        population = ClientPopulation(
            PopulationConfig.for_offered_rate(
                15.0,
                num_clients=100_000,
                num_nodes=NODES,
                seed=5,
                session_duration_ms=3_000.0,
            )
        )
        driver = PopulationDriver(
            system,
            population,
            protocol="lzero",
            fee_market=FeeMarket(FeeMarketConfig(), seed=5),
            policy=MempoolPolicy(max_size=300, ttl_ms=20_000.0),
            target_occupancy=100,
        )
        result = driver.run(8_000.0, drain_ms=2_000.0)
        assert result.injected > 0
        assert result.delivered > 0
        assert result.peak_active_sessions > 0
        assert result.mempool_peak <= 300
        for node in system.nodes.values():
            assert len(node.mempool) <= 300
        assert result.fee_p50 is not None and result.fee_p50 > 0
        assert result.base_fee_series  # the controller ticked
        assert result.latency_rank_error < 0.05

    def test_fee_market_prices_submissions(self):
        system = make_system()
        population = ClientPopulation(
            PopulationConfig.for_offered_rate(
                10.0, num_clients=10_000, num_nodes=NODES, seed=2
            )
        )
        driver = PopulationDriver(
            system,
            population,
            fee_market=FeeMarket(FeeMarketConfig(bid_sigma=0.0), seed=2),
            policy=MempoolPolicy(),
        )
        driver.run(4_000.0, drain_ms=1_000.0)
        proposer = driver._proposer_mempool()
        fees = [tx.fee for tx in proposer.in_arrival_order()]
        assert fees and all(fee > 0 for fee in fees)


class TestFig8Determinism:
    PARAMS = {
        "protocol": "ingest",
        "rate_tps": 30.0,
        "num_clients": 20_000,
        "duration_ms": 20_000.0,
        "drain_ms": 2_000.0,
        "service_tps": 10.0,
        "mempool_max_size": 200,
        "target_occupancy": 100,
        "seed": 0,
    }

    def test_cell_replays_byte_identically(self):
        def run_once() -> str:
            reset_tx_ids()
            reset_message_ids()
            doc = fig8_sustained.run_cell(dict(self.PARAMS))
            return hashlib.sha256(canonical_json(doc).encode()).hexdigest()

        assert run_once() == run_once()

    def test_finished_sweep_executes_zero_runs(self, tmp_path):
        config = Fig8Config(
            protocols=("ingest",),
            rates_tps=(30.0,),
            num_clients=20_000,
            duration_ms=10_000.0,
            drain_ms=1_000.0,
            service_tps=10.0,
            mempool_max_size=200,
            target_occupancy=100,
        )
        store = str(tmp_path / "fig8")
        first_result, first = fig8_sustained.run_parallel(config, results_dir=store)
        assert first.executed == 1 and first.skipped == 0
        second_result, second = fig8_sustained.run_parallel(config, results_dir=store)
        assert second.executed == 0 and second.skipped == 1
        assert first_result.curves == second_result.curves
        assert "ingest" in first_result.curves
