"""Integration tests for the full permissionless deployment driver."""

import pytest

from repro.core.permissionless import PermissionlessDeployment
from repro.mempool.transaction import Transaction
from repro.net.topology import generate_physical_network
from repro.types import Region


@pytest.fixture()
def deployment():
    physical = generate_physical_network(50, min_degree=4, seed=23)
    return PermissionlessDeployment(
        physical,
        f=1,
        k=3,
        seed=3,
        config_overrides={"gossip_fallback_enabled": False},
    )


def submissions(origins):
    return [(o, Transaction.create(origin=o, created_at=0.0)) for o in origins]


class TestLifecycle:
    def test_epoch_zero_session(self, deployment):
        report = deployment.run_session(submissions([0, 10]))
        assert report.epoch == 0
        assert report.coverage == 1.0
        assert report.violations == 0

    def test_committee_seeded_epochs_are_deterministic(self):
        physical_a = generate_physical_network(40, min_degree=4, seed=29)
        physical_b = generate_physical_network(40, min_degree=4, seed=29)
        a = PermissionlessDeployment(physical_a, f=1, k=2, seed=5)
        b = PermissionlessDeployment(physical_b, f=1, k=2, seed=5)
        a.advance_epoch()
        b.advance_epoch()
        edges_a = [sorted(o.edges()) for o in a.manager.overlays]
        edges_b = [sorted(o.edges()) for o in b.manager.overlays]
        assert edges_a == edges_b

    def test_epochs_reshuffle_roles(self, deployment):
        entries_before = {
            overlay.overlay_id: overlay.entry_points
            for overlay in deployment.manager.overlays
        }
        deployment.advance_epoch()
        entries_after = {
            overlay.overlay_id: overlay.entry_points
            for overlay in deployment.manager.overlays
        }
        assert entries_before != entries_after

    def test_churn_then_session(self, deployment):
        deployment.join(900, Region.TOKYO, neighbors=[0, 1, 2])
        deployment.leave(deployment.manager.members()[7])
        deployment.manager.validate()
        report = deployment.run_session(submissions([900]))
        assert report.coverage == 1.0

    def test_mempool_continuity_across_epochs(self, deployment):
        subs = submissions([0])
        deployment.run_session(subs)
        tx_id = subs[0][1].tx_id
        deployment.advance_epoch()
        deployment.run_session(submissions([5]))
        # The first epoch's transaction is still known everywhere.
        for node, known in deployment.known_transactions.items():
            assert tx_id in known

    def test_departed_node_dropped_from_tracking(self, deployment):
        victim = deployment.manager.members()[9]
        deployment.leave(victim)
        assert victim not in deployment.known_transactions

    def test_reports_accumulate(self, deployment):
        deployment.run_session(submissions([0]))
        deployment.advance_epoch()
        deployment.run_session(submissions([1]))
        assert [r.epoch for r in deployment.reports] == [0, 1]
