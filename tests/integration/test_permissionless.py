"""Integration tests: permissionless operation — churn plus dissemination."""

import pytest

from repro.core.config import HermesConfig
from repro.core.membership import MembershipManager
from repro.core.protocol import HermesSystem
from repro.mempool.transaction import Transaction
from repro.net.topology import generate_physical_network
from repro.types import Region


@pytest.fixture()
def world():
    physical = generate_physical_network(50, min_degree=4, seed=17)
    manager = MembershipManager(physical, f=1, k=3, seed=2)
    return physical, manager


def disseminate(physical, overlays, origin, seed=5):
    config = HermesConfig(f=1, num_overlays=len(overlays), gossip_fallback_enabled=False)
    system = HermesSystem(physical, config, overlays=overlays, seed=seed)
    system.start()
    tx = Transaction.create(origin=origin, created_at=0.0)
    system.submit(origin, tx)
    system.run(until_ms=6_000)
    return system, tx


class TestChurnThenDisseminate:
    def test_dissemination_after_joins(self, world):
        physical, manager = world
        manager.join(100, Region.TOKYO, neighbors=[0, 1, 2, 3])
        manager.join(101, Region.LONDON, neighbors=[4, 5, 6, 7])
        manager.validate()
        system, tx = disseminate(physical, manager.overlays, origin=0)
        assert len(system.stats.deliveries[tx.tx_id]) == 52
        assert 100 in system.stats.deliveries[tx.tx_id]

    def test_dissemination_after_leaves(self, world):
        physical, manager = world
        departing = [
            n
            for n in manager.members()
            if not any(o.is_entry(n) for o in manager.overlays)
        ][:4]
        for node in departing:
            manager.leave(node)
        manager.validate()
        system, tx = disseminate(physical, manager.overlays, origin=manager.members()[0])
        assert len(system.stats.deliveries[tx.tx_id]) == 46

    def test_dissemination_after_entry_departure(self, world):
        physical, manager = world
        entry = manager.overlays[0].entry_points[0]
        manager.leave(entry)
        manager.validate()
        system, tx = disseminate(physical, manager.overlays, origin=manager.members()[0])
        assert len(system.stats.deliveries[tx.tx_id]) == 49

    def test_epoch_rotation_and_dissemination(self, world):
        physical, manager = world
        manager.join(100, Region.OHIO, neighbors=[0, 1, 2])
        manager.advance_epoch()
        manager.validate()
        system, tx = disseminate(physical, manager.overlays, origin=100)
        assert len(system.stats.deliveries[tx.tx_id]) == 51
