"""Integration: load subsystem acceptance (ISSUE tentpole criteria).

Four guarantees pinned here:

* **Byte-identity with capacity disabled** — `network.capacity` defaults to
  ``None``, and with it unset every existing figure cell must hash exactly
  as it did before the load subsystem existed.  The golden hashes below
  were computed on the pre-capacity tree; if one of these fails, the
  default-off contract broke.
* **Saturation** — with the capacity model enabled, sweeping offered load
  produces a goodput plateau and p95 inflation past a measurable knee for
  hermes and lzero.
* **Determinism** — a saturation point replays byte-identically from its
  parameters.
* **Resume** — re-invoking a finished fig6 sweep executes zero runs.
"""

import hashlib

import pytest

from repro.experiments import fig6_saturation
from repro.experiments.fig6_saturation import Fig6Config
from repro.mempool.transaction import reset_tx_ids
from repro.net.events import reset_message_ids
from repro.runner.spec import canonical_json

# sha256(canonical_json(run_cell(params))) computed before the capacity hook
# was added to Network.send — the default-off byte-identity contract.
GOLDEN_CELLS = {
    "fig3a": (
        {
            "protocol": "hermes",
            "num_nodes": 40,
            "k": 3,
            "transactions": 3,
            "horizon_ms": 5000.0,
            "seed": 0,
        },
        "5d87a1d5908ac50039e85522095f7c8cb414040f3641582a1282fd3a21f1ef77",
    ),
    "fig3b": (
        {
            "protocol": "lzero",
            "num_nodes": 40,
            "k": 3,
            "duration_ms": 12000.0,
            "tx_interval_ms": 2000.0,
            "seed": 0,
        },
        "0ea33c8dafe34d1513b0c4930cab90037552105b3d86f43fcd1c034667a19ba2",
    ),
    "fig5a": (
        {
            "protocol": "mercury",
            "num_nodes": 40,
            "k": 3,
            "trials": 2,
            "trial": 0,
            "fraction": 0.2,
            "horizon_ms": 3000.0,
            "seed": 0,
        },
        # Re-pinned when fig5a records gained the ``victim_censored`` field;
        # stripping that one key reproduces the pre-censorship hash
        # 805b9ba8df0b45cb7281848fc48b6feec15922217bf67adbd7938d420d4bb845,
        # so the simulation itself is untouched.
        "b6f86db61164a791af4377871a50e762c59a7a23c7e0c50d4f5726e2357a1054",
    ),
    "fig5b": (
        {
            "protocol": "narwhal",
            "num_nodes": 40,
            "k": 3,
            "trials": 2,
            "trial": 1,
            "fraction": 0.2,
            "horizon_ms": 2000.0,
            "seed": 0,
        },
        "6e9b7af3b5f387b222fc67e25404f340c4dffa16d35c552035f298325d1e7fe0",
    ),
}


def _cell_hash(figure: str, params: dict) -> str:
    from repro.experiments import (
        fig3a_latency,
        fig3b_bandwidth,
        fig5a_frontrunning,
        fig5b_robustness,
    )

    modules = {
        "fig3a": fig3a_latency,
        "fig3b": fig3b_bandwidth,
        "fig5a": fig5a_frontrunning,
        "fig5b": fig5b_robustness,
    }
    reset_tx_ids()
    reset_message_ids()
    result = modules[figure].run_cell(params)
    return hashlib.sha256(canonical_json(result).encode()).hexdigest()


class TestCapacityOffByteIdentity:
    @pytest.mark.parametrize("figure", sorted(GOLDEN_CELLS))
    def test_figure_cell_matches_pre_capacity_golden_hash(self, figure):
        params, expected = GOLDEN_CELLS[figure]
        assert _cell_hash(figure, dict(params)) == expected


SWEEP = Fig6Config(
    num_nodes=24,
    k=3,
    rates_tps=(3.0, 12.0, 48.0),
    duration_ms=3_000.0,
    drain_ms=1_500.0,
    protocols=("hermes", "lzero"),
    seed=0,
)


@pytest.fixture(scope="module")
def sweep_result():
    return fig6_saturation.run(SWEEP)


class TestSaturation:
    @pytest.mark.parametrize("protocol", SWEEP.protocols)
    def test_goodput_plateaus_past_a_knee(self, sweep_result, protocol):
        curve = sweep_result.curves[protocol]
        assert len(curve) == len(SWEEP.rates_tps)
        # Light load keeps up; the heaviest rate does not.
        assert curve[0].goodput_tps == pytest.approx(curve[0].offered_tps)
        assert curve[-1].goodput_tps < 0.85 * curve[-1].offered_tps
        knee = sweep_result.knee_tps(protocol)
        assert knee is not None
        assert knee <= curve[-1].offered_tps

    @pytest.mark.parametrize("protocol", SWEEP.protocols)
    def test_p95_inflates_past_the_knee(self, sweep_result, protocol):
        inflation = sweep_result.latency_inflation(protocol)
        assert inflation is not None
        assert inflation > 1.2

    def test_overload_is_attributed_to_capacity_drops(self, sweep_result):
        heaviest = sweep_result.curves["lzero"][-1]
        assert heaviest.capacity_drops > 0
        assert heaviest.drop_rate > 0.0
        assert heaviest.max_queue_bytes > 0.0


class TestDeterminism:
    def test_saturation_point_replays_byte_identically(self):
        params = fig6_saturation.cell_params(SWEEP)[-1]

        def run_once() -> str:
            reset_tx_ids()
            reset_message_ids()
            result = fig6_saturation.run_cell(params)
            return hashlib.sha256(canonical_json(result).encode()).hexdigest()

        assert run_once() == run_once()


class TestResume:
    def test_finished_sweep_executes_zero_runs(self, tmp_path):
        config = Fig6Config(
            num_nodes=24,
            k=3,
            rates_tps=(4.0,),
            duration_ms=1_500.0,
            drain_ms=500.0,
            protocols=("lzero",),
            seed=0,
        )
        store = str(tmp_path / "fig6")
        first_result, first = fig6_saturation.run_parallel(
            config, results_dir=store
        )
        assert first.executed == 1 and first.skipped == 0
        second_result, second = fig6_saturation.run_parallel(
            config, results_dir=store
        )
        assert second.executed == 0 and second.skipped == 1
        assert first_result.curves == second_result.curves
