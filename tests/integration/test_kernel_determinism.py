"""Integration: kernel-optimization byte-identity (ISSUE tentpole criteria).

The optimized simulation kernel ships three independently switchable
performance features — the calendar-queue event list, vectorized block
sampling, and the GC pause around the run loop — all promising *byte-identical*
results.  This suite replays a committed golden figure cell under every
(scheduler x batching) combination and requires the pre-optimization hash,
so any drift introduced by a fast path fails loudly.

The golden hash below is the same fig3a cell pinned by
``test_load_saturation.py`` (computed on the pre-optimization tree), which
makes these cells a chain of custody: seed kernel -> load subsystem ->
optimized kernel, one unchanged hash.
"""

import hashlib

import pytest

import repro.net.simulator as simulator_mod
from repro.experiments import fig3a_latency
from repro.mempool.transaction import reset_tx_ids
from repro.net import sampling
from repro.net.events import reset_message_ids
from repro.runner.spec import canonical_json

# Identical to the fig3a entry in test_load_saturation.GOLDEN_CELLS.
GOLDEN_PARAMS = {
    "protocol": "hermes",
    "num_nodes": 40,
    "k": 3,
    "transactions": 3,
    "horizon_ms": 5000.0,
    "seed": 0,
}
GOLDEN_HASH = "5d87a1d5908ac50039e85522095f7c8cb414040f3641582a1282fd3a21f1ef77"


def _cell_hash() -> str:
    reset_tx_ids()
    reset_message_ids()
    result = fig3a_latency.run_cell(dict(GOLDEN_PARAMS))
    return hashlib.sha256(canonical_json(result).encode()).hexdigest()


@pytest.fixture(autouse=True)
def _restore_batching():
    yield
    sampling.set_batching(True)


class TestOptimizationMatrix:
    @pytest.mark.parametrize("batching", [True, False], ids=["batched", "scalar"])
    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_golden_cell_hash_is_invariant(self, scheduler, batching, monkeypatch):
        if batching and not sampling.batching_enabled():
            pytest.skip("NumPy unavailable: the batched path does not exist")
        # Every simulator in the cell is constructed with the default "auto"
        # mode; steering the migration threshold forces the chosen backend.
        if scheduler == "calendar":
            monkeypatch.setattr(simulator_mod, "AUTO_CALENDAR_THRESHOLD", 0)
        else:
            monkeypatch.setattr(
                simulator_mod, "AUTO_CALENDAR_THRESHOLD", 10**12
            )
        sampling.set_batching(batching)
        assert _cell_hash() == GOLDEN_HASH
