"""Property tests for the sharding subsystem (ISSUE satellite).

Three invariant families over random seeds and key streams:

* **Determinism** — a :class:`ShardMap` is a pure function of ``(seed,
  params, stream)``: independently constructed maps assign identical shard
  streams, and :meth:`ShardMap.reset` rewinds the hot-key state exactly, so
  the content-addressed sweep runner can replay sharded cells.
* **Balance bound** — on any stream (including adversarial Zipf-head
  streams) the ``hot-key`` policy's peak-to-mean load obeys the provable
  bound ``1 + k · D · (t + 1) / n`` (``D`` distinct keys, ``t`` the hot
  threshold, ``n`` the stream length): a single hot key cannot pin more
  than its first ``t`` occurrences to one committee, so balance tends to 1
  as the stream grows.  This is the documented hard bound from
  ``src/repro/sharding/map.py``, not a statistical hope.
* **Single-shard short-circuit** — ``num_shards=1`` assigns shard 0 with no
  hashing and no occurrence-counter updates under every policy, which is
  the map's half of the k=1 byte-identity contract (the full-system half is
  pinned by ``tests/integration/test_sharding_identity.py``).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharding import SHARD_POLICIES, ShardMap, ShardMapConfig, shard_balance

seeds = st.integers(min_value=0, max_value=10_000)
shard_counts = st.integers(min_value=2, max_value=8)
policies = st.sampled_from(SHARD_POLICIES)
thresholds = st.integers(min_value=1, max_value=16)


def zipf_stream(seed: int, n: int, distinct: int) -> list[str]:
    """A Zipf-ish key stream: rank r drawn with weight 1/(r+1)."""

    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(distinct)]
    ranks = rng.choices(range(distinct), weights=weights, k=n)
    return [f"key-{rank}" for rank in ranks]


class TestDeterminism:
    @given(seed=seeds, k=shard_counts, policy=policies, threshold=thresholds,
           stream_seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_independent_maps_agree(self, seed, k, policy, threshold, stream_seed):
        config = ShardMapConfig(
            num_shards=k, policy=policy, seed=seed, hot_threshold=threshold
        )
        stream = zipf_stream(stream_seed, 200, 12)
        first = ShardMap(config).assign_many(stream)
        second = ShardMap(config).assign_many(stream)
        assert first == second
        assert all(0 <= shard < k for shard in first)

    @given(seed=seeds, k=shard_counts, threshold=thresholds, stream_seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_reset_rewinds_hot_key_state(self, seed, k, threshold, stream_seed):
        config = ShardMapConfig(
            num_shards=k, policy="hot-key", seed=seed, hot_threshold=threshold
        )
        stream = zipf_stream(stream_seed, 150, 6)
        shard_map = ShardMap(config)
        first = shard_map.assign_many(stream)
        shard_map.reset()
        assert shard_map.assign_many(stream) == first

    @given(seed=seeds, k=shard_counts, stream_seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_uniform_is_stateless(self, seed, k, stream_seed):
        """Uniform assignment depends on the key alone, never stream order."""

        config = ShardMapConfig(num_shards=k, policy="uniform", seed=seed)
        stream = zipf_stream(stream_seed, 100, 10)
        shard_map = ShardMap(config)
        by_key = {key: shard_map.assign(key) for key in stream}
        shuffled = list(stream)
        random.Random(stream_seed + 1).shuffle(shuffled)
        assert [shard_map.assign(key) for key in shuffled] == [
            by_key[key] for key in shuffled
        ]


class TestBalanceBound:
    @given(seed=seeds, k=shard_counts, threshold=thresholds, stream_seed=seeds,
           distinct=st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_hot_key_balance_bound_on_zipf_streams(
        self, seed, k, threshold, stream_seed, distinct
    ):
        n = 600
        config = ShardMapConfig(
            num_shards=k, policy="hot-key", seed=seed, hot_threshold=threshold
        )
        stream = zipf_stream(stream_seed, n, distinct)
        assignments = ShardMap(config).assign_many(stream)
        balance = shard_balance(assignments, k)
        # Each key pins at most `threshold` occurrences to its home shard;
        # the rest spread round-robin, contributing at most ceil(c/k) + 1 per
        # shard.  Worst case (every home colliding) telescopes to this bound.
        bound = 1.0 + k * distinct * (threshold + 1) / n
        assert balance <= bound + 1e-9

    @given(seed=seeds, k=shard_counts, threshold=thresholds)
    @settings(max_examples=40, deadline=None)
    def test_single_hot_key_cannot_pin_a_shard(self, seed, k, threshold):
        """A one-key stream ends up near-perfectly spread once hot."""

        n = 4 * k * (threshold + 1) + 200
        config = ShardMapConfig(
            num_shards=k, policy="hot-key", seed=seed, hot_threshold=threshold
        )
        assignments = ShardMap(config).assign_many(["mint-contract"] * n)
        balance = shard_balance(assignments, k)
        assert balance <= 1.0 + k * (threshold + 1) / n + 1e-9
        # Under `uniform` the same stream pins everything to one committee.
        uniform = ShardMap(
            ShardMapConfig(num_shards=k, policy="uniform", seed=seed)
        ).assign_many(["mint-contract"] * n)
        assert shard_balance(uniform, k) == float(k)


class TestSingleShardShortCircuit:
    @given(seed=seeds, policy=policies, threshold=thresholds, stream_seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_k1_assigns_zero_without_state(self, seed, policy, threshold, stream_seed):
        config = ShardMapConfig(
            num_shards=1, policy=policy, seed=seed, hot_threshold=threshold
        )
        shard_map = ShardMap(config)
        stream = zipf_stream(stream_seed, 100, 3)
        assert shard_map.assign_many(stream) == [0] * len(stream)
        assert shard_map.home_of(stream[0]) == 0
        # No occurrence counting happens at k=1 — even a stream hammering one
        # key far past the threshold registers nothing as hot.
        assert shard_map.hot_keys() == []
