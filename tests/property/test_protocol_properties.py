"""Property-based tests for protocol-level invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequencer import SequenceAuditor
from repro.mempool.blocks import Block
from repro.mempool.mempool import Mempool
from repro.mempool.ordering import judge_front_running
from repro.mempool.transaction import Transaction
from repro.net.stats import percentile


class TestSequencerProperties:
    @given(
        sequences=st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=40
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_gaps_are_exactly_the_unseen_below_max(self, sequences):
        auditor = SequenceAuditor(gap_timeout_ms=10.0)
        for when, sequence in enumerate(sequences):
            auditor.observe(1, sequence, float(when))
        seen = set(sequences)
        expected_gaps = sorted(set(range(max(seen))) - seen)
        assert auditor.pending_gaps(1) == expected_gaps

    @given(
        sequences=st.permutations(list(range(12))),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_permutation_eventually_gapless(self, sequences):
        auditor = SequenceAuditor(gap_timeout_ms=10.0)
        for when, sequence in enumerate(sequences):
            auditor.observe(1, sequence, float(when))
        assert auditor.pending_gaps(1) == []
        assert auditor.highest_seen(1) == 11


class TestMempoolProperties:
    @given(
        arrivals=st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_arrival_order_is_sorted(self, arrivals):
        pool = Mempool(owner=0)
        for when in arrivals:
            pool.add(Transaction.create(origin=0, created_at=when), when)
        ordered = pool.in_arrival_order()
        times = [pool.arrival_time(tx.tx_id) for tx in ordered]
        assert times == sorted(times)

    @given(
        ids_a=st.sets(st.integers(min_value=0, max_value=100), max_size=20),
        ids_b=st.sets(st.integers(min_value=0, max_value=100), max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_reconciliation_partitions(self, ids_a, ids_b):
        pool = Mempool(owner=0)
        lookup = {}
        for tx_id in ids_a:
            tx = Transaction.create(origin=0, created_at=0.0)
            lookup[tx_id] = tx
            pool.add(tx, 0.0)
        local = pool.known_ids()
        missing = set(pool.missing_from(frozenset(ids_b)))
        absent = set(pool.absent_locally(frozenset(ids_b)))
        assert missing == local - ids_b
        assert absent == ids_b - local


class TestOrderingProperties:
    @given(
        positions=st.permutations(list(range(8))),
        victim=st.integers(min_value=0, max_value=7),
        adversarial=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_verdict_matches_positions(self, positions, victim, adversarial):
        if victim == adversarial:
            return
        block = Block(proposer=0, created_at=0.0, tx_ids=tuple(positions))
        verdict = judge_front_running(block, victim, [adversarial])
        expected = positions.index(adversarial) < positions.index(victim)
        assert verdict.attacker_won == expected


class TestPercentileProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        pct=st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=80, deadline=None)
    def test_percentile_bounded_and_monotone(self, values, pct):
        result = percentile(values, pct)
        assert min(values) <= result <= max(values)
        # Monotonicity in pct.
        assert percentile(values, 0) <= result <= percentile(values, 100)
