"""Property tests for the order-fairness metrics and the front-run judge.

The fairness metrics must behave like *metrics* regardless of what orders a
protocol produced:

* both are bounded — γ in [½, 1] (or exactly 1 for degenerate inputs),
  the inversion rate in [0, 1];
* identical receive orders are perfectly fair — γ = 1, inversions = 0;
* relabeling honest nodes changes nothing — only the multiset of orders
  matters, not which node id held which order;
* restricting every order to the common transactions preserves both values
  (transactions somebody missed contribute no opinion).

The judge properties pin the ``victim_censored`` column added for fig5a/fig7:
censorship is flagged exactly when the victim is absent from the block,
independently of whether the attack "won".
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.fairness import (
    fairness_report,
    gamma_fairness,
    majority_order,
    pairwise_inversion_rate,
)
from repro.mempool.blocks import Block
from repro.mempool.ordering import judge_front_running


@st.composite
def receive_orders(draw, min_nodes=1, max_nodes=6, max_txs=7):
    """Per-node receive orders: random subsets of a tx pool, shuffled."""

    pool = draw(st.integers(min_value=1, max_value=max_txs))
    txs = list(range(pool))
    num_nodes = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    orders = {}
    for node in range(num_nodes):
        subset = draw(st.lists(st.sampled_from(txs), unique=True, max_size=pool))
        orders[node] = tuple(draw(st.permutations(subset)))
    return orders


@given(orders=receive_orders())
@settings(max_examples=200, deadline=None)
def test_metrics_are_bounded(orders):
    gamma = gamma_fairness(orders)
    inversions = pairwise_inversion_rate(orders)
    assert 0.5 <= gamma <= 1.0
    assert 0.0 <= inversions <= 1.0
    report = fairness_report(orders)
    assert 0.0 <= report.gamma_unfairness <= 0.5


@given(
    order=st.permutations(list(range(6))),
    num_nodes=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=50, deadline=None)
def test_identical_orders_are_perfectly_fair(order, num_nodes):
    orders = {node: tuple(order) for node in range(num_nodes)}
    assert gamma_fairness(orders) == 1.0
    assert pairwise_inversion_rate(orders) == 0.0
    assert majority_order(orders) == tuple(order)


@given(orders=receive_orders(min_nodes=2), data=st.data())
@settings(max_examples=100, deadline=None)
def test_metrics_are_node_permutation_symmetric(orders, data):
    relabeled_ids = data.draw(st.permutations(sorted(orders)))
    relabeled = {
        new_id: orders[old_id]
        for new_id, old_id in zip(relabeled_ids, sorted(orders))
    }
    assert gamma_fairness(relabeled) == gamma_fairness(orders)
    assert pairwise_inversion_rate(relabeled) == pairwise_inversion_rate(orders)
    assert majority_order(relabeled) == majority_order(orders)


@given(orders=receive_orders(min_nodes=2))
@settings(max_examples=100, deadline=None)
def test_non_common_transactions_contribute_nothing(orders):
    common = set.intersection(*(set(order) for order in orders.values()))
    restricted = {
        node: tuple(tx for tx in order if tx in common)
        for node, order in orders.items()
    }
    assert gamma_fairness(restricted) == gamma_fairness(orders)
    assert pairwise_inversion_rate(restricted) == pairwise_inversion_rate(orders)


# ----------------------------------------------------------------------
# judge_front_running, including the censorship column
# ----------------------------------------------------------------------


@st.composite
def judged_blocks(draw):
    """A block, a victim id, and an adversarial id list over a small pool."""

    pool = list(range(8))
    tx_ids = tuple(draw(st.permutations(draw(st.lists(
        st.sampled_from(pool), unique=True, max_size=8
    )))))
    victim = draw(st.sampled_from(pool))
    adversarial = draw(
        st.lists(st.sampled_from([tx for tx in pool if tx != victim]), unique=True, max_size=4)
    )
    return Block(proposer=0, created_at=0.0, tx_ids=tx_ids), victim, adversarial


@given(case=judged_blocks())
@settings(max_examples=200, deadline=None)
def test_censorship_flag_tracks_victim_absence(case):
    block, victim, adversarial = case
    verdict = judge_front_running(block, victim, adversarial)
    assert verdict.victim_censored == (victim not in block)
    assert verdict.victim_included == (victim in block)
    assert verdict.victim_censored != verdict.victim_included


@given(case=judged_blocks())
@settings(max_examples=200, deadline=None)
def test_verdict_consistency(case):
    block, victim, adversarial = case
    verdict = judge_front_running(block, victim, adversarial)
    if verdict.attacker_won:
        winner = verdict.winning_adversarial_tx
        assert winner in adversarial and winner in block
        if victim in block:
            assert block.position_of(winner) < block.position_of(victim)
    else:
        assert verdict.winning_adversarial_tx is None
        # Not winning with the victim absent means no adversarial tx landed.
        if verdict.victim_censored:
            assert all(tx not in block for tx in adversarial)
