"""Property-based tests: Merkle trees, batch serialization, fault plans, RBC."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import deserialize_batch, serialize_batch
from repro.crypto.merkle import MerkleTree, verify_inclusion
from repro.mempool.transaction import Transaction
from repro.net.faults import Behavior, FaultPlan


class TestMerkleProperties:
    @given(
        leaves=st.lists(st.binary(min_size=0, max_size=40), min_size=1, max_size=40),
        probe=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_leaf_provable(self, leaves, probe):
        tree = MerkleTree(leaves)
        index = probe % len(leaves)
        proof = tree.proof(index)
        assert verify_inclusion(tree.root, leaves[index], proof)

    @given(
        leaves=st.lists(st.binary(min_size=1, max_size=20), min_size=2, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_cross_proofs_fail(self, leaves):
        """A proof for position i never validates a different leaf value."""

        if len(set(leaves)) < 2:
            return
        tree = MerkleTree(leaves)
        proof = tree.proof(0)
        other = next(leaf for leaf in leaves if leaf != leaves[0])
        assert not verify_inclusion(tree.root, other, proof)

    @given(
        left=st.lists(st.binary(max_size=10), min_size=1, max_size=10),
        right=st.lists(st.binary(max_size=10), min_size=1, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_distinct_leaf_sets_distinct_roots(self, left, right):
        if left == right:
            return
        assert MerkleTree(left).root != MerkleTree(right).root


class TestBatchSerializationProperties:
    @given(
        specs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**30),  # origin
                st.floats(min_value=0, max_value=1e7, allow_nan=False),
                st.integers(min_value=1, max_value=2000),  # size
                st.text(max_size=12),  # tag
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, specs):
        txs = [
            Transaction.create(origin=o, created_at=c, size_bytes=s, tag=t)
            for (o, c, s, t) in specs
        ]
        restored = deserialize_batch(serialize_batch(txs))
        assert len(restored) == len(txs)
        for original, copy in zip(txs, restored):
            assert copy.tx_id == original.tx_id
            assert copy.origin == original.origin
            assert copy.size_bytes == original.size_bytes
            assert copy.tag == original.tag
            # created_at survives at millisecond resolution.
            assert abs(copy.created_at - original.created_at) <= 0.001

    @given(
        count=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_padding_reaches_nominal_size(self, count):
        txs = [Transaction.create(origin=0, created_at=0.0) for _ in range(count)]
        assert len(serialize_batch(txs)) >= 250 * count


class TestFaultPlanProperties:
    @given(
        n=st.integers(min_value=3, max_value=120),
        fraction=st.floats(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=60, deadline=None)
    def test_cap_and_protection(self, n, fraction, seed):
        nodes = list(range(n))
        protected = nodes[: min(3, n)]
        plan = FaultPlan.random_fraction(
            nodes, fraction, Behavior.DROP_RELAY, seed=seed, protected=protected
        )
        assert plan.count() <= n // 3
        assert not any(plan.is_byzantine(p) for p in protected)
        assert len(plan.honest_nodes(nodes)) + plan.count() == n


class TestBrachaRandomFaults:
    @given(
        fault_seed=st.integers(min_value=0, max_value=2**16),
        source=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=10, deadline=None)
    def test_any_f_silent_subset_preserves_validity(self, fault_seed, source):
        """7 members, any 2 silent, honest source: everyone honest delivers."""

        from repro.net.node import Network
        from repro.net.simulator import Simulator
        from repro.net.topology import generate_physical_network
        from repro.rbc.bracha import BrachaNode

        physical = generate_physical_network(10, seed=1)
        simulator = Simulator()
        network = Network(simulator, physical, seed=2)
        members = list(range(7))
        rng = random.Random(fault_seed)
        silent = set(rng.sample([m for m in members if m != source], 2))

        class Silent(BrachaNode):
            def on_message(self, sender, message):
                pass

        nodes = {
            m: (Silent if m in silent else BrachaNode)(m, network, members, f=2)
            for m in members
        }
        nodes[source].broadcast(0, "payload")
        simulator.run()
        for member in members:
            if member not in silent:
                assert (source, 0, "payload") in nodes[member].delivered
