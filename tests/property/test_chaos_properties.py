"""Property tests for the chaos invariant monitors (ISSUE satellite).

Two properties, each checked for HERMES and for the L∅ baseline across
random chaos seeds:

* **Soundness** — an all-honest run never produces a violation record and
  never accuses anyone.
* **Completeness with zero framing** — when the scenario scripts a Byzantine
  deviation, at least one :class:`~repro.core.accountability.Violation` is
  recorded against a deviating node, every observed deviant is attributed,
  and no honest node is ever accused.

The physical environment is cached on ``(num_nodes, f, k)`` with a fixed
build seed inside :func:`~repro.chaos.run_chaos`, so varying the chaos seed
re-rolls fault targets and loss draws without paying overlay construction
per example.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import BehaviorFlip, ChaosScenario, ChaosWorkload, run_chaos

NODES = 24

HONEST = ChaosScenario(
    name="prop-honest",
    description="no scripted faults",
    horizon_ms=3_000.0,
    workload=ChaosWorkload(transactions=2, start_ms=100.0, period_ms=200.0),
    liveness_deadline_ms=2_500.0,
)

CENSOR = ChaosScenario(
    name="prop-censor",
    description="a random sixth of the network turns censor",
    horizon_ms=3_000.0,
    workload=ChaosWorkload(transactions=2, start_ms=100.0, period_ms=200.0),
    events=(BehaviorFlip(at_ms=50.0, behavior="drop-relay", fraction=0.15),),
    liveness_deadline_ms=2_500.0,
)

seeds = st.integers(min_value=0, max_value=10_000)
protocols = st.sampled_from(["hermes", "lzero"])


@given(seed=seeds, protocol=protocols)
@settings(max_examples=8, deadline=None)
def test_honest_runs_yield_zero_violations(seed, protocol):
    report = run_chaos(HONEST, protocol=protocol, num_nodes=NODES, seed=seed)
    assert report.violation_summary["total"] == 0
    assert report.accountability["deviants"] == []
    assert report.accountability["false_accusations"] == []
    assert report.passed


@given(seed=seeds, protocol=protocols)
@settings(max_examples=8, deadline=None)
def test_scripted_deviation_is_attributed_without_framing(seed, protocol):
    report = run_chaos(CENSOR, protocol=protocol, num_nodes=NODES, seed=seed)
    acct = report.accountability
    deviants = set(acct["deviants"])
    assert deviants, "the fraction flip must resolve to concrete nodes"
    # At least one evidence-log entry accuses a deviating node...
    assert set(acct["attributed"]) & deviants
    # ...every deviant the monitors could observe is attributed...
    assert acct["attribution_rate"] == 1.0
    assert set(acct["missed"]) == set()
    # ...and no honest node is ever framed by an accusation (sequence-gap
    # records are suspicions, not accusations, and are accounted separately).
    assert acct["false_accusations"] == []


@given(seed=seeds)
@settings(max_examples=6, deadline=None)
def test_reports_are_deterministic_in_the_seed(seed):
    first = run_chaos(CENSOR, protocol="hermes", num_nodes=NODES, seed=seed)
    second = run_chaos(CENSOR, protocol="hermes", num_nodes=NODES, seed=seed)
    assert first.dumps() == second.dumps()
