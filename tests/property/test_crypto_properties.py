"""Property-based tests (hypothesis) for the crypto substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import PrimeField, lagrange_coefficients_at_zero
from repro.crypto.group import toy_group
from repro.crypto.hashing import encode_for_hash, hash_to_int
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign, schnorr_verify
from repro.crypto.shamir import recover_secret, split_secret
from repro.crypto.threshold import combine_partials, threshold_keygen

GROUP = toy_group()
FIELD = PrimeField(GROUP.q)

# Reusable committee (keygen is cheap on the toy group but no need to repeat).
_PUBLIC, _SIGNERS = threshold_keygen(GROUP, threshold=3, num_members=5, rng=random.Random(0))


class TestShamirProperties:
    @given(
        secret=st.integers(min_value=0, max_value=GROUP.q - 1),
        threshold=st.integers(min_value=1, max_value=5),
        extra=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_recover_roundtrip(self, secret, threshold, extra, seed):
        rng = random.Random(seed)
        num_shares = threshold + extra
        shares = split_secret(FIELD, secret, threshold, num_shares, rng)
        subset = rng.sample(shares, threshold)
        assert recover_secret(FIELD, subset) == secret % FIELD.order

    @given(
        secret=st.integers(min_value=0, max_value=GROUP.q - 1),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=30, deadline=None)
    def test_single_share_reveals_nothing_structural(self, secret, seed):
        """One share of a threshold-2 sharing never equals the secret slot 0
        interpolation (it is an evaluation at x >= 1)."""

        rng = random.Random(seed)
        shares = split_secret(FIELD, secret, 2, 3, rng)
        # Interpolating with only one share treats the polynomial as constant;
        # the result is that share's value, which matches the secret only by
        # 1/q coincidence — we merely check the API doesn't leak trivially.
        assert shares[0].index == 1


class TestLagrangeProperties:
    @given(
        coefficients=st.lists(
            st.integers(min_value=0, max_value=FIELD.order - 1),
            min_size=1,
            max_size=6,
        ),
        points=st.sets(st.integers(min_value=1, max_value=50), min_size=6, max_size=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_interpolation_recovers_p0(self, coefficients, points):
        chosen = sorted(points)[: len(coefficients)]
        if len(chosen) < len(coefficients):
            return
        values = {x: FIELD.eval_polynomial(coefficients, x) for x in chosen}
        lagrange = lagrange_coefficients_at_zero(FIELD, chosen)
        total = 0
        for x in chosen:
            total = FIELD.add(total, FIELD.mul(lagrange[x], values[x]))
        assert total == coefficients[0] % FIELD.order


class TestHashingProperties:
    @given(
        parts_a=st.lists(st.text(max_size=20), max_size=4),
        parts_b=st.lists(st.text(max_size=20), max_size=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_injective_encoding(self, parts_a, parts_b):
        if parts_a != parts_b:
            assert encode_for_hash(*parts_a) != encode_for_hash(*parts_b)

    @given(
        value=st.integers(min_value=0, max_value=2**64),
        modulus=st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_hash_to_int_in_range(self, value, modulus):
        assert 0 <= hash_to_int("p", value, modulus=modulus) < modulus


class TestSchnorrProperties:
    @given(
        message=st.binary(max_size=64),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, message, seed):
        rng = random.Random(seed)
        secret, public = schnorr_keygen(GROUP, rng)
        signature = schnorr_sign(GROUP, secret, message, rng)
        assert schnorr_verify(GROUP, public, message, signature)

    @given(
        message=st.binary(min_size=1, max_size=64),
        other=st.binary(min_size=1, max_size=64),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=30, deadline=None)
    def test_message_binding(self, message, other, seed):
        if message == other:
            return
        rng = random.Random(seed)
        secret, public = schnorr_keygen(GROUP, rng)
        signature = schnorr_sign(GROUP, secret, message, rng)
        assert not schnorr_verify(GROUP, public, other, signature)


class TestThresholdProperties:
    @given(
        message=st.binary(min_size=1, max_size=48),
        quorum_seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=25, deadline=None)
    def test_signature_unique_across_quorums(self, message, quorum_seed):
        rng = random.Random(quorum_seed)
        partials = [s.sign(message, rng) for s in _SIGNERS]
        quorum_a = rng.sample(partials, 3)
        quorum_b = rng.sample(partials, 3)
        sig_a = combine_partials(_PUBLIC, message, quorum_a)
        sig_b = combine_partials(_PUBLIC, message, quorum_b)
        assert sig_a.value == sig_b.value

    @given(
        message=st.binary(min_size=1, max_size=48),
        modulus=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_seed_stable(self, message, modulus):
        rng = random.Random(1)
        partials = [s.sign(message, rng) for s in _SIGNERS[:3]]
        signature = combine_partials(_PUBLIC, message, partials)
        assert 0 <= signature.as_seed(modulus) < modulus
