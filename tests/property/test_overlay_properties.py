"""Property-based tests for overlay construction, encoding and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import generate_physical_network
from repro.overlay.base import TransportSpace
from repro.overlay.encoding import decode_overlay, encode_overlay
from repro.overlay.rank import RankTracker
from repro.overlay.robust_tree import build_robust_tree, prune_to_minimal

# Pre-build a few networks so hypothesis examples stay fast.
_NETWORKS = {
    (n, seed): generate_physical_network(n, min_degree=4, seed=seed)
    for n in (16, 25, 33)
    for seed in (1, 2)
}


class TestRobustTreeInvariants:
    @given(
        n=st.sampled_from([16, 25, 33]),
        net_seed=st.sampled_from([1, 2]),
        f=st.integers(min_value=1, max_value=2),
        tree_seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_construction_always_valid(self, n, net_seed, f, tree_seed):
        physical = _NETWORKS[(n, net_seed)]
        space = TransportSpace(physical)
        tree = build_robust_tree(
            physical.nodes(), space, f, overlay_id=0,
            ranks=RankTracker(physical.nodes()), seed=tree_seed,
        )
        tree.validate(expected_nodes=physical.nodes())

    @given(
        n=st.sampled_from([16, 25]),
        f=st.integers(min_value=1, max_value=2),
        tree_seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_pruning_preserves_invariants(self, n, f, tree_seed):
        physical = _NETWORKS[(n, 1)]
        space = TransportSpace(physical)
        tree = build_robust_tree(
            physical.nodes(), space, f, overlay_id=0,
            ranks=RankTracker(physical.nodes()), seed=tree_seed,
        )
        pruned = prune_to_minimal(tree, space)
        pruned.validate(expected_nodes=physical.nodes())
        assert pruned.num_edges <= tree.num_edges

    @given(
        n=st.sampled_from([16, 25]),
        tree_seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=15, deadline=None)
    def test_single_fault_never_disconnects(self, n, tree_seed):
        """With f = 1, removing any one non-entry node leaves everyone else
        reachable — the f+1-connectivity guarantee."""

        physical = _NETWORKS[(n, 1)]
        space = TransportSpace(physical)
        tree = prune_to_minimal(
            build_robust_tree(
                physical.nodes(), space, 1, overlay_id=0,
                ranks=RankTracker(physical.nodes()), seed=tree_seed,
            ),
            space,
        )
        for failed in tree.nodes():
            if tree.is_entry(failed):
                continue
            reachable = tree.reachable(failed=[failed])
            assert reachable == set(tree.nodes()) - {failed}


class TestEncodingProperties:
    @given(
        n=st.sampled_from([16, 25, 33]),
        f=st.integers(min_value=1, max_value=2),
        tree_seed=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_exact(self, n, f, tree_seed):
        physical = _NETWORKS[(n, 1)]
        space = TransportSpace(physical)
        tree = build_robust_tree(
            physical.nodes(), space, f, overlay_id=tree_seed,
            ranks=RankTracker(physical.nodes()), seed=tree_seed,
        )
        decoded = decode_overlay(encode_overlay(tree))
        assert decoded.overlay_id == tree.overlay_id
        assert decoded.f == tree.f
        assert decoded.entry_points == tree.entry_points
        assert decoded.depth_of == tree.depth_of
        assert {k: sorted(v) for k, v in decoded.successors.items()} == {
            k: sorted(v) for k, v in tree.successors.items()
        }
