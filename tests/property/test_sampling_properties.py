"""Property-based tests (hypothesis) for exact-stream block sampling.

The contract under test (see ``repro.net.sampling``): a block of ``n`` draws
returns *bit-for-bit* the floats that ``n`` scalar calls on the same
``random.Random`` would have returned, and leaves the generator in the exact
state those calls would have left it in — so batched and scalar sampling are
interchangeable mid-stream without perturbing any seeded experiment.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.sampling import (
    BlockSampler,
    batching_enabled,
    gamma_block,
    lognorm_block,
    normal_block,
    uniform_block,
)

pytestmark = pytest.mark.skipif(
    not batching_enabled(), reason="NumPy unavailable: only the scalar path exists"
)

seeds = st.integers(min_value=0, max_value=2**32)
sizes = st.integers(min_value=0, max_value=300)
mus = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
sigmas = st.floats(min_value=1e-3, max_value=20.0, allow_nan=False)
# Cheng's-GB territory (alpha > 1) plus the scalar-fallback ranges around it.
alphas = st.floats(min_value=0.05, max_value=30.0, allow_nan=False)
betas = st.floats(min_value=1e-3, max_value=20.0, allow_nan=False)


class TestBlocksMatchScalarStreams:
    @given(seed=seeds, n=sizes)
    @settings(max_examples=80, deadline=None)
    def test_uniforms(self, seed, n):
        batched, scalar = random.Random(seed), random.Random(seed)
        assert uniform_block(batched, n) == [scalar.random() for _ in range(n)]
        assert batched.getstate() == scalar.getstate()

    @given(seed=seeds, n=sizes, mu=mus, sigma=sigmas)
    @settings(max_examples=80, deadline=None)
    def test_normals(self, seed, n, mu, sigma):
        batched, scalar = random.Random(seed), random.Random(seed)
        expected = [scalar.normalvariate(mu, sigma) for _ in range(n)]
        assert normal_block(batched, mu, sigma, n) == expected
        assert batched.getstate() == scalar.getstate()

    @given(seed=seeds, n=sizes, mu=mus, sigma=sigmas)
    @settings(max_examples=40, deadline=None)
    def test_lognorms(self, seed, n, mu, sigma):
        batched, scalar = random.Random(seed), random.Random(seed)
        expected = [scalar.lognormvariate(mu, sigma) for _ in range(n)]
        assert lognorm_block(batched, mu, sigma, n) == expected
        assert batched.getstate() == scalar.getstate()

    @given(seed=seeds, n=sizes, alpha=alphas, beta=betas)
    @settings(max_examples=80, deadline=None)
    def test_gammas(self, seed, n, alpha, beta):
        batched, scalar = random.Random(seed), random.Random(seed)
        expected = [scalar.gammavariate(alpha, beta) for _ in range(n)]
        assert gamma_block(batched, alpha, beta, n) == expected
        assert batched.getstate() == scalar.getstate()


class TestInterleaving:
    @given(
        seed=seeds,
        plan=st.lists(
            st.tuples(st.sampled_from("usng"), st.integers(min_value=0, max_value=40)),
            min_size=1,
            max_size=12,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_persistent_sampler_interleaves_with_scalar_draws(self, seed, plan):
        """One long-lived BlockSampler tracks a scalar twin through any mix of
        block draws and out-of-band scalar draws (the resync path)."""

        batched, scalar = random.Random(seed), random.Random(seed)
        sampler = BlockSampler(batched)
        for kind, n in plan:
            if kind == "u":
                assert sampler.uniforms(n) == [scalar.random() for _ in range(n)]
            elif kind == "n":
                expected = [scalar.normalvariate(1.0, 0.5) for _ in range(n)]
                assert sampler.normals(1.0, 0.5, n) == expected
            elif kind == "g":
                expected = [scalar.gammavariate(2.2, 0.4) for _ in range(n)]
                assert sampler.gammas(2.2, 0.4, n) == expected
            else:
                # Out-of-band scalar draw on the wrapped rng: the sampler must
                # detect the moved state and resynchronize its mirror.
                assert batched.random() == scalar.random()
            assert batched.getstate() == scalar.getstate()
