"""Property tests for the population subsystem (ISSUE satellite).

Three invariant families over random seeds and adversarial inputs:

* **Sketch soundness** — every :class:`QuantileSketch` percentile lands
  within the sketch's *self-reported* ``rank_error()`` of the exact
  :func:`repro.net.stats.percentile` answer, on adversarial distributions
  (sorted, reversed, constant, heavy-tailed, duplicate-ridden).  This is the
  documented hard bound, not a statistical hope.
* **Merge associativity** — merging partial sketches in any grouping stays
  within the merged sketch's reported bound of the exact answer, so
  distributed aggregation (per-window, per-node) is order-insensitive up to
  the documented error.
* **Replayability** — a :class:`ClientPopulation` is a pure function of
  ``(seed, params)``: independently constructed populations yield identical
  schedules, and longer horizons extend (never rewrite) shorter ones.
"""

import bisect
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.sketch import QuantileSketch, ReservoirSketch
from repro.net.stats import percentile
from repro.population import ClientPopulation, PopulationConfig

seeds = st.integers(min_value=0, max_value=10_000)
capacities = st.sampled_from([8, 32, 64, 256])
percentiles = st.floats(min_value=0.0, max_value=100.0)


def adversarial_values(shape: str, n: int, seed: int) -> list[float]:
    rng = random.Random(seed)
    if shape == "sorted":
        return [float(v) for v in range(n)]
    if shape == "reversed":
        return [float(v) for v in range(n, 0, -1)]
    if shape == "constant":
        return [3.25] * n
    if shape == "duplicates":
        return [float(rng.randrange(5)) for _ in range(n)]
    if shape == "lognormal":
        return [rng.lognormvariate(0.0, 2.0) for _ in range(n)]
    raise AssertionError(shape)


SHAPES = ("sorted", "reversed", "constant", "duplicates", "lognormal")


def assert_within_bound(sketch: QuantileSketch, values: list[float], pct: float):
    """The documented invariant: estimated rank within rank_error()*n + 1."""

    estimate = sketch.percentile(pct)
    ordered = sorted(values)
    n = len(ordered)
    target_rank = (pct / 100.0) * (n - 1)
    # The estimate's plausible rank range in the exact population.
    lo = bisect.bisect_left(ordered, estimate)
    hi = bisect.bisect_right(ordered, estimate)
    tolerance = sketch.rank_error() * n + 1
    # Interpolated estimates fall between two ranks; widen by one.
    distance = max(0.0, lo - target_rank - 1, target_rank - hi)
    assert distance <= tolerance, (
        f"p{pct}: estimate {estimate} sits {distance} ranks from target "
        f"{target_rank}, bound was {tolerance}"
    )


@given(
    seed=seeds,
    capacity=capacities,
    shape=st.sampled_from(SHAPES),
    n=st.integers(min_value=1, max_value=4_000),
    pct=percentiles,
)
@settings(max_examples=60, deadline=None)
def test_sketch_percentile_within_reported_rank_error(seed, capacity, shape, n, pct):
    values = adversarial_values(shape, n, seed)
    sketch = QuantileSketch(capacity)
    for value in values:
        sketch.observe(value)
    assert sketch.count == n
    assert_within_bound(sketch, values, pct)


@given(seed=seeds, capacity=capacities, pct=percentiles)
@settings(max_examples=30, deadline=None)
def test_under_capacity_sketch_is_exact(seed, capacity, pct):
    rng = random.Random(seed)
    values = [rng.uniform(-100, 100) for _ in range(capacity - 1)]
    sketch = QuantileSketch(capacity)
    for value in values:
        sketch.observe(value)
    assert sketch.rank_error() == 0.0
    assert abs(sketch.percentile(pct) - percentile(values, pct)) < 1e-9


@given(
    seed=seeds,
    capacity=capacities,
    shape=st.sampled_from(SHAPES),
    splits=st.integers(min_value=2, max_value=5),
    pct=percentiles,
)
@settings(max_examples=40, deadline=None)
def test_merge_stays_within_bound_in_any_association(seed, capacity, shape, splits, pct):
    values = adversarial_values(shape, 2_000, seed)
    chunks = [values[i::splits] for i in range(splits)]
    parts = []
    for chunk in chunks:
        sketch = QuantileSketch(capacity)
        for value in chunk:
            sketch.observe(value)
        parts.append(sketch)
    # Left-fold association.
    left = QuantileSketch(capacity)
    for part in parts:
        left.merge(part)
    assert left.count == len(values)
    assert_within_bound(left, values, pct)
    # A different association: pairwise, then fold the pair-sums.
    rebuilt = []
    for chunk in chunks:
        sketch = QuantileSketch(capacity)
        for value in chunk:
            sketch.observe(value)
        rebuilt.append(sketch)
    while len(rebuilt) > 1:
        a = rebuilt.pop()
        rebuilt[-1].merge(a)
    assert rebuilt[0].count == len(values)
    assert_within_bound(rebuilt[0], values, pct)


@given(seed=seeds)
@settings(max_examples=25, deadline=None)
def test_reservoir_replays_per_seed(seed):
    a, b = ReservoirSketch(capacity=16, seed=seed), ReservoirSketch(16, seed=seed)
    for value in range(500):
        a.observe(float(value))
        b.observe(float(value))
    assert a.sample() == b.sample()
    assert len(a.sample()) == 16


population_seeds = st.integers(min_value=0, max_value=500)
rates = st.floats(min_value=2.0, max_value=40.0)
skews = st.floats(min_value=0.0, max_value=1.5)


def _population(seed: float, rate: float, zipf_s: float) -> ClientPopulation:
    return ClientPopulation(
        PopulationConfig.for_offered_rate(
            rate,
            num_clients=50_000,
            num_nodes=8,
            seed=seed,
            session_duration_ms=3_000.0,
            zipf_s=zipf_s,
        )
    )


@given(seed=population_seeds, rate=rates, zipf_s=skews)
@settings(max_examples=25, deadline=None)
def test_population_schedules_replay_identically(seed, rate, zipf_s):
    a = _population(seed, rate, zipf_s)
    b = _population(seed, rate, zipf_s)
    first = list(a.events(4_000.0))
    assert first == list(b.events(4_000.0))
    # No hidden state: the same population iterates identically twice.
    assert first == list(a.events(4_000.0))


@given(seed=population_seeds, rate=rates)
@settings(max_examples=15, deadline=None)
def test_longer_horizons_extend_shorter_ones(seed, rate):
    population = _population(seed, rate, 1.1)
    short = list(population.events(2_000.0))
    long = list(population.events(5_000.0))
    assert long[: len(short)] == short
    times = [event.time_ms for event in long]
    assert times == sorted(times)
    assert all(0.0 <= t < 5_000.0 for t in times)
