"""Property tests for the open-loop arrival processes (ISSUE satellite).

Two properties over random seeds, rates and patterns:

* **Replayability** — two independently constructed processes with the same
  ``(seed, params)`` produce byte-equal schedules, and a single process
  yields the same schedule on repeated calls (no hidden mutable state).
* **Rate correctness** — over a long horizon the empirical mean rate of
  every pattern converges to the configured ``rate_tps``; for MMPP this is
  exactly the calibration promise (bursty but same long-run load).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.arrival import ARRIVAL_PATTERNS, make_arrivals

ORIGINS = tuple(range(16))

seeds = st.integers(min_value=0, max_value=10_000)
rates = st.floats(min_value=5.0, max_value=200.0)
patterns = st.sampled_from(ARRIVAL_PATTERNS)
skews = st.floats(min_value=0.0, max_value=2.0)


@given(seed=seeds, rate=rates, pattern=patterns, zipf_s=skews)
@settings(max_examples=40, deadline=None)
def test_same_seed_and_params_replay_identically(seed, rate, pattern, zipf_s):
    a = make_arrivals(
        pattern, rate_tps=rate, origins=ORIGINS, seed=seed, zipf_s=zipf_s
    )
    b = make_arrivals(
        pattern, rate_tps=rate, origins=ORIGINS, seed=seed, zipf_s=zipf_s
    )
    first = a.schedule(5_000.0)
    assert first == b.schedule(5_000.0)
    # No hidden state: calling schedule() again replays the same answer.
    assert first == a.schedule(5_000.0)


@given(seed=seeds, rate=st.floats(min_value=20.0, max_value=120.0), pattern=patterns)
@settings(max_examples=12, deadline=None)
def test_empirical_rate_matches_configured(seed, rate, pattern):
    process = make_arrivals(pattern, rate_tps=rate, origins=ORIGINS, seed=seed)
    horizon_ms = 120_000.0
    count = len(process.schedule(horizon_ms))
    empirical_tps = count / (horizon_ms / 1000.0)
    # MMPP and flash-crowd trade burstiness for variance, so the tolerance
    # is loose; deterministic and Poisson sit well inside it.
    assert empirical_tps > rate * 0.75
    assert empirical_tps < rate * 1.35


@given(seed=seeds, pattern=patterns)
@settings(max_examples=20, deadline=None)
def test_schedules_sorted_and_inside_horizon(seed, pattern):
    process = make_arrivals(pattern, rate_tps=50.0, origins=ORIGINS, seed=seed)
    schedule = process.schedule(3_000.0)
    times = [inj.time_ms for inj in schedule]
    assert times == sorted(times)
    assert all(0.0 <= t < 3_000.0 for t in times)
    assert all(inj.origin in ORIGINS for inj in schedule)
