"""Property-based tests for the Reed–Solomon erasure code."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.erasure import decode_shards, encode_shards, hermes_erasure_parameters


class TestErasureProperties:
    @given(
        payload=st.binary(max_size=400),
        data_shards=st.integers(min_value=1, max_value=8),
        parity=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_k_of_n_recover(self, payload, data_shards, parity, seed):
        total = data_shards + parity
        shards = encode_shards(payload, data_shards, total)
        rng = random.Random(seed)
        subset = rng.sample(shards, data_shards)
        assert decode_shards(subset, data_shards, len(payload)) == payload

    @given(
        f=st.integers(min_value=0, max_value=4),
        k=st.integers(min_value=0, max_value=6),
        payload=st.binary(min_size=1, max_size=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_paper_scheme_survives_f_losses(self, f, k, payload):
        data, total = hermes_erasure_parameters(f, k)
        shards = encode_shards(payload, data, total)
        surviving = shards[f:]  # adversary destroys the f "worst" paths
        assert decode_shards(surviving, data, len(payload)) == payload

    @given(payload=st.binary(max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_shards_equal_length(self, payload):
        shards = encode_shards(payload, 3, 6)
        assert len({len(s.data) for s in shards}) == 1
