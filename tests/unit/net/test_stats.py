"""Unit tests for bandwidth/latency accounting."""

import math

import pytest

from repro.net.stats import NetworkStats, percentile, summarize_latencies


class TestPercentile:
    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_endpoints(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([3.0], 77) == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_pct_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSummary:
    def test_summary_fields(self):
        summary = summarize_latencies([10.0, 20.0, 30.0, 40.0])
        assert summary.count == 4
        assert summary.mean == 25.0
        assert summary.p50 == 25.0
        assert summary.spread == summary.p95 - summary.p5

    def test_empty_population_yields_empty_summary(self):
        # percentile() still refuses empty input, but the summary path
        # degrades gracefully: a run with zero deliveries reports NaN cells
        # instead of crashing the experiment (see LatencySummary.empty).
        summary = summarize_latencies([])
        assert summary.is_empty
        assert summary.count == 0
        assert math.isnan(summary.mean)
        assert math.isnan(summary.p5)
        assert math.isnan(summary.p95)
        assert math.isnan(summary.spread)
        assert summarize_latencies([1.0]).is_empty is False

    def test_empty_summary_from_stats_without_deliveries(self):
        assert NetworkStats().latency_summary().is_empty


class TestNetworkStats:
    def test_send_charges_both_ends(self):
        stats = NetworkStats()
        stats.record_send(1, 2, 100)
        assert stats.bytes_sent[1] == 100
        assert stats.bytes_received[2] == 100
        assert stats.messages_sent[1] == 1
        assert stats.messages_received[2] == 1

    def test_delivery_latency_relative_to_send(self):
        stats = NetworkStats()
        stats.record_dissemination_start("tx", 100.0)
        stats.record_delivery("tx", 5, 180.0)
        stats.record_delivery("tx", 6, 150.0)
        assert sorted(stats.delivery_latencies("tx")) == [50.0, 80.0]

    def test_first_delivery_wins(self):
        stats = NetworkStats()
        stats.record_dissemination_start("tx", 0.0)
        stats.record_delivery("tx", 5, 10.0)
        stats.record_delivery("tx", 5, 99.0)
        assert stats.delivery_latencies("tx") == [10.0]

    def test_pre_send_delivery_clamped_to_zero(self):
        stats = NetworkStats()
        stats.record_submission("tx", 0.0)
        stats.record_delivery("tx", 1, 0.0)
        stats.record_dissemination_start("tx", 50.0)
        assert stats.delivery_latencies("tx") == [0.0]

    def test_unknown_item_raises(self):
        stats = NetworkStats()
        with pytest.raises(KeyError):
            stats.delivery_latencies("nope")

    def test_coverage(self):
        stats = NetworkStats()
        stats.record_dissemination_start("tx", 0.0)
        stats.record_delivery("tx", 1, 5.0)
        stats.record_delivery("tx", 2, 5.0)
        assert stats.coverage("tx", [1, 2, 3, 4]) == 0.5

    def test_coverage_empty_audience_raises(self):
        stats = NetworkStats()
        with pytest.raises(ValueError):
            stats.coverage("tx", [])

    def test_bandwidth_kb_per_minute(self):
        stats = NetworkStats()
        # 2 nodes, 1024 bytes each over 30 seconds => 2 KB/min/node.
        stats.record_send(1, 2, 1024)
        stats.record_send(2, 1, 1024)
        assert stats.bandwidth_kb_per_minute(30_000.0) == pytest.approx(2.0)

    def test_bandwidth_with_explicit_nodes(self):
        stats = NetworkStats()
        stats.record_send(1, 2, 2048)
        value = stats.bandwidth_kb_per_minute(60_000.0, nodes=[1, 2, 3, 4])
        assert value == pytest.approx(2048 / 1024 / 4)

    def test_bandwidth_invalid_duration(self):
        stats = NetworkStats()
        with pytest.raises(ValueError):
            stats.bandwidth_kb_per_minute(0.0)

    def test_setup_overheads(self):
        stats = NetworkStats()
        stats.record_submission("tx", 10.0)
        stats.record_dissemination_start("tx", 35.0)
        assert stats.setup_overheads() == [25.0]

    def test_setup_overhead_zero_when_same_moment(self):
        stats = NetworkStats()
        stats.record_dissemination_start("tx", 10.0)
        assert stats.setup_overheads() == [0.0]


class TestDropAccounting:
    def test_record_drop_accumulates_bytes(self):
        stats = NetworkStats()
        stats.record_drop(512)
        stats.record_drop()  # legacy no-arg call sites still work
        assert stats.messages_dropped == 2
        assert stats.bytes_dropped == 512

    def test_record_capacity_drop_counts_both_ways(self):
        stats = NetworkStats()
        stats.record_capacity_drop(sender=3, wire_bytes=700)
        stats.record_capacity_drop(sender=3, wire_bytes=300)
        stats.record_capacity_drop(sender=5, wire_bytes=100)
        assert stats.messages_dropped == 3
        assert stats.bytes_dropped == 1100
        assert stats.capacity_drops == 3
        assert stats.capacity_dropped_bytes == 1100
        assert stats.capacity_drops_by_node == {3: 2, 5: 1}

    def test_drop_rate(self):
        stats = NetworkStats()
        assert stats.drop_rate() == 0.0
        for _ in range(4):
            stats.record_send(1, 2, 100)
        stats.record_drop(100)
        assert stats.drop_rate() == pytest.approx(0.25)

    def test_goodput_subtracts_dropped_bytes(self):
        stats = NetworkStats()
        # 2 nodes, 1024 bytes each over 30s, half of node 1's bytes dropped.
        stats.record_send(1, 2, 1024)
        stats.record_send(2, 1, 1024)
        stats.record_capacity_drop(sender=1, wire_bytes=1024)
        assert stats.bandwidth_kb_per_minute(30_000.0) == pytest.approx(2.0)
        assert stats.goodput_kb_per_minute(30_000.0) == pytest.approx(1.0)

    def test_goodput_equals_bandwidth_without_drops(self):
        stats = NetworkStats()
        stats.record_send(1, 2, 4096)
        stats.record_send(2, 1, 4096)
        assert stats.goodput_kb_per_minute(60_000.0) == pytest.approx(
            stats.bandwidth_kb_per_minute(60_000.0)
        )

    def test_goodput_invalid_duration(self):
        stats = NetworkStats()
        with pytest.raises(ValueError):
            stats.goodput_kb_per_minute(0.0)
