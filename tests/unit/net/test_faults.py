"""Unit tests for fault planning."""

import pytest

from repro.errors import ConfigurationError
from repro.net.faults import Behavior, FaultPlan


class TestFaultPlan:
    def test_honest_plan_is_empty(self):
        plan = FaultPlan.honest()
        assert plan.count() == 0
        assert not plan.is_byzantine(3)
        assert plan.behavior_of(3) is Behavior.HONEST

    def test_random_fraction_size(self):
        nodes = list(range(100))
        plan = FaultPlan.random_fraction(nodes, 0.2, Behavior.DROP_RELAY, seed=1)
        assert plan.count() == 20

    def test_fraction_capped_at_third(self):
        nodes = list(range(90))
        plan = FaultPlan.random_fraction(nodes, 0.9, Behavior.CRASH, seed=1)
        assert plan.count() == 30

    def test_protected_nodes_never_chosen(self):
        nodes = list(range(60))
        protected = [0, 1, 2]
        for seed in range(10):
            plan = FaultPlan.random_fraction(
                nodes, 0.33, Behavior.FRONT_RUN, seed=seed, protected=protected
            )
            assert not any(plan.is_byzantine(p) for p in protected)

    def test_honest_nodes_complement(self):
        nodes = list(range(30))
        plan = FaultPlan.random_fraction(nodes, 0.1, Behavior.DROP_RELAY, seed=2)
        honest = plan.honest_nodes(nodes)
        assert len(honest) + plan.count() == 30
        assert set(honest).isdisjoint(plan.byzantine_nodes())

    def test_deterministic_for_seed(self):
        nodes = list(range(50))
        a = FaultPlan.random_fraction(nodes, 0.2, Behavior.CRASH, seed=7)
        b = FaultPlan.random_fraction(nodes, 0.2, Behavior.CRASH, seed=7)
        assert a.byzantine_nodes() == b.byzantine_nodes()

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.random_fraction([1, 2, 3], 1.5, Behavior.CRASH)

    def test_zero_fraction(self):
        plan = FaultPlan.random_fraction(list(range(10)), 0.0, Behavior.CRASH)
        assert plan.count() == 0
