"""Unit tests for fault planning."""

import pytest

from repro.errors import ConfigurationError
from repro.net.faults import Behavior, FaultPlan


class TestFaultPlan:
    def test_honest_plan_is_empty(self):
        plan = FaultPlan.honest()
        assert plan.count() == 0
        assert not plan.is_byzantine(3)
        assert plan.behavior_of(3) is Behavior.HONEST

    def test_random_fraction_size(self):
        nodes = list(range(100))
        plan = FaultPlan.random_fraction(nodes, 0.2, Behavior.DROP_RELAY, seed=1)
        assert plan.count() == 20

    def test_fraction_capped_at_third(self):
        nodes = list(range(90))
        plan = FaultPlan.random_fraction(nodes, 0.9, Behavior.CRASH, seed=1)
        assert plan.count() == 30

    def test_protected_nodes_never_chosen(self):
        nodes = list(range(60))
        protected = [0, 1, 2]
        for seed in range(10):
            plan = FaultPlan.random_fraction(
                nodes, 0.33, Behavior.FRONT_RUN, seed=seed, protected=protected
            )
            assert not any(plan.is_byzantine(p) for p in protected)

    def test_honest_nodes_complement(self):
        nodes = list(range(30))
        plan = FaultPlan.random_fraction(nodes, 0.1, Behavior.DROP_RELAY, seed=2)
        honest = plan.honest_nodes(nodes)
        assert len(honest) + plan.count() == 30
        assert set(honest).isdisjoint(plan.byzantine_nodes())

    def test_deterministic_for_seed(self):
        nodes = list(range(50))
        a = FaultPlan.random_fraction(nodes, 0.2, Behavior.CRASH, seed=7)
        b = FaultPlan.random_fraction(nodes, 0.2, Behavior.CRASH, seed=7)
        assert a.byzantine_nodes() == b.byzantine_nodes()

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.random_fraction([1, 2, 3], 1.5, Behavior.CRASH)

    def test_zero_fraction(self):
        plan = FaultPlan.random_fraction(list(range(10)), 0.0, Behavior.CRASH)
        assert plan.count() == 0


class TestRandomFractionEdgeCases:
    """The ⌊n/3⌋ cap, the protected pool and seed stability interact."""

    def test_cap_floors_not_rounds(self):
        # n = 10 → cap is floor(10/3) = 3, even though 0.33 * 10 rounds to 3
        # and 0.4 * 10 would request 4.
        plan = FaultPlan.random_fraction(list(range(10)), 0.4, Behavior.CRASH, seed=0)
        assert plan.count() == 3

    def test_requested_fraction_below_cap_wins(self):
        nodes = list(range(90))  # cap = 30
        plan = FaultPlan.random_fraction(nodes, 0.1, Behavior.CRASH, seed=0)
        assert plan.count() == 9  # round(0.1 * 90), nowhere near the cap

    def test_cap_is_zero_for_tiny_networks(self):
        for n in (1, 2):
            plan = FaultPlan.random_fraction(
                list(range(n)), 1.0, Behavior.CRASH, seed=0
            )
            assert plan.count() == 0

    def test_cap_uses_total_nodes_not_eligible_pool(self):
        # Protecting nodes shrinks the *eligible* pool but the §IV bound is
        # over the whole network: cap stays floor(9/3) = 3.
        nodes = list(range(9))
        plan = FaultPlan.random_fraction(
            nodes, 1.0, Behavior.CRASH, seed=0, protected=[0, 1, 2, 3]
        )
        assert plan.count() == 3
        assert not any(plan.is_byzantine(p) for p in (0, 1, 2, 3))

    def test_eligible_pool_smaller_than_target(self):
        # Everyone but one node protected: only that node can be corrupted.
        nodes = list(range(30))
        plan = FaultPlan.random_fraction(
            nodes, 0.33, Behavior.DROP_RELAY, seed=0, protected=list(range(29))
        )
        assert plan.byzantine_nodes() == [29]

    def test_all_nodes_protected_yields_honest_plan(self):
        nodes = list(range(12))
        plan = FaultPlan.random_fraction(
            nodes, 0.33, Behavior.CRASH, seed=0, protected=nodes
        )
        assert plan.count() == 0

    def test_protected_never_corrupted_at_the_cap(self):
        # Requested count exceeds the cap, and the protected nodes would be
        # attractive picks: across many seeds they must still never appear.
        nodes = list(range(30))
        protected = (0, 7, 29)
        for seed in range(25):
            plan = FaultPlan.random_fraction(
                nodes, 1.0, Behavior.DROP_RELAY, seed=seed, protected=protected
            )
            assert plan.count() == 10
            assert set(plan.byzantine_nodes()).isdisjoint(protected)

    def test_same_seed_same_plan_across_behaviors_differs(self):
        # The seed stream is labelled by behavior, so equal seeds give equal
        # plans only for equal behaviors.
        nodes = list(range(60))
        a = FaultPlan.random_fraction(nodes, 0.2, Behavior.CRASH, seed=3)
        b = FaultPlan.random_fraction(nodes, 0.2, Behavior.CRASH, seed=3)
        c = FaultPlan.random_fraction(nodes, 0.2, Behavior.DROP_RELAY, seed=3)
        assert a.byzantine_nodes() == b.byzantine_nodes()
        assert a.byzantine_nodes() != c.byzantine_nodes()

    def test_different_seeds_differ(self):
        nodes = list(range(60))
        plans = {
            tuple(
                FaultPlan.random_fraction(
                    nodes, 0.2, Behavior.CRASH, seed=s
                ).byzantine_nodes()
            )
            for s in range(8)
        }
        assert len(plans) > 1


class TestTimelineFaultPlan:
    def _plan(self):
        from repro.net.faults import TimelineFaultPlan

        return TimelineFaultPlan.from_plan(FaultPlan.honest())

    def test_from_plan_copies_initial_assignment(self):
        from repro.net.faults import TimelineFaultPlan

        static = FaultPlan(behaviors={5: Behavior.CRASH})
        plan = TimelineFaultPlan.from_plan(static)
        assert plan.behavior_of(5) is Behavior.CRASH
        plan.behaviors[6] = Behavior.CRASH
        assert not static.is_byzantine(6)  # independent copy

    def test_behavior_at_last_transition_wins(self):
        plan = self._plan()
        plan.record_flip(7, 100.0, Behavior.DROP_RELAY)
        plan.record_flip(7, 300.0, Behavior.HONEST)
        assert plan.behavior_at(7, 50.0) is Behavior.HONEST
        assert plan.behavior_at(7, 100.0) is Behavior.DROP_RELAY  # inclusive
        assert plan.behavior_at(7, 200.0) is Behavior.DROP_RELAY
        assert plan.behavior_at(7, 300.0) is Behavior.HONEST
        assert plan.behavior_at(7, 1e9) is Behavior.HONEST

    def test_behavior_at_falls_back_to_static_assignment(self):
        from repro.net.faults import TimelineFaultPlan

        plan = TimelineFaultPlan.from_plan(
            FaultPlan(behaviors={2: Behavior.FRONT_RUN})
        )
        assert plan.behavior_at(2, 500.0) is Behavior.FRONT_RUN
        assert plan.behavior_at(3, 500.0) is Behavior.HONEST

    def test_record_flip_rejects_time_travel(self):
        plan = self._plan()
        plan.record_flip(1, 200.0, Behavior.CRASH)
        with pytest.raises(ConfigurationError):
            plan.record_flip(1, 100.0, Behavior.HONEST)
        # Equal times are allowed (the later record wins).
        plan.record_flip(1, 200.0, Behavior.HONEST)
        assert plan.behavior_at(1, 200.0) is Behavior.HONEST

    def test_ever_byzantine_sees_recovered_nodes(self):
        plan = self._plan()
        plan.record_flip(4, 100.0, Behavior.CRASH)
        plan.record_flip(4, 200.0, Behavior.HONEST)
        plan.record_flip(5, 100.0, Behavior.HONEST)  # flip to honest only
        assert plan.ever_byzantine(4)
        assert not plan.ever_byzantine(5)
        assert plan.deviant_nodes() == [4]
        assert plan.honest_nodes([3, 4, 5]) == [3, 5]

    def test_byzantine_at_is_a_time_slice(self):
        plan = self._plan()
        plan.record_flip(1, 100.0, Behavior.DROP_RELAY)
        plan.record_flip(2, 300.0, Behavior.CRASH)
        plan.record_flip(1, 400.0, Behavior.HONEST)
        nodes = [1, 2, 3]
        assert plan.byzantine_at(nodes, 50.0) == []
        assert plan.byzantine_at(nodes, 150.0) == [1]
        assert plan.byzantine_at(nodes, 350.0) == [1, 2]
        assert plan.byzantine_at(nodes, 450.0) == [2]
