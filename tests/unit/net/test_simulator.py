"""Unit tests for the discrete-event simulator."""

import pytest

from repro.errors import SimulationError
from repro.net.simulator import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(5.0, lambda: order.append("late"))
        simulator.schedule(1.0, lambda: order.append("early"))
        simulator.schedule(3.0, lambda: order.append("middle"))
        simulator.run()
        assert order == ["early", "middle", "late"]

    def test_ties_break_by_insertion_order(self):
        simulator = Simulator()
        order = []
        for label in ("a", "b", "c"):
            simulator.schedule(1.0, lambda label=label: order.append(label))
        simulator.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        simulator = Simulator()
        with pytest.raises(SimulationError):
            simulator.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        simulator = Simulator()
        seen = []
        simulator.schedule_at(7.5, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [7.5]

    def test_nested_scheduling(self):
        simulator = Simulator()
        times = []

        def first():
            times.append(simulator.now)
            simulator.schedule(2.0, lambda: times.append(simulator.now))

        simulator.schedule(1.0, first)
        simulator.run()
        assert times == [1.0, 3.0]


class TestRun:
    def test_run_until_stops_the_clock(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(10.0, lambda: fired.append(True))
        final = simulator.run(until_ms=5.0)
        assert final == 5.0
        assert not fired
        assert simulator.pending_events() == 1

    def test_run_resumes_after_until(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(10.0, lambda: fired.append(simulator.now))
        simulator.run(until_ms=5.0)
        simulator.run()
        assert fired == [10.0]

    def test_until_advances_clock_when_queue_empty(self):
        simulator = Simulator()
        assert simulator.run(until_ms=42.0) == 42.0
        assert simulator.now == 42.0

    def test_max_events(self):
        simulator = Simulator()
        count = []
        for _ in range(10):
            simulator.schedule(1.0, lambda: count.append(1))
        simulator.run(max_events=4)
        assert len(count) == 4

    def test_events_processed_counter(self):
        simulator = Simulator()
        for _ in range(3):
            simulator.schedule(0.0, lambda: None)
        simulator.run()
        assert simulator.events_processed == 3

    def test_not_reentrant(self):
        simulator = Simulator()

        def reenter():
            simulator.run()

        simulator.schedule(0.0, reenter)
        with pytest.raises(SimulationError):
            simulator.run()

    def test_clear_drops_pending(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.clear()
        assert simulator.pending_events() == 0

    def test_clear_keeps_the_clock(self):
        simulator = Simulator()
        simulator.schedule(3.0, lambda: None)
        simulator.run()
        simulator.clear()
        assert simulator.now == 3.0


class TestReset:
    def test_reset_restores_constructed_state(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        simulator.run()
        simulator.schedule(5.0, lambda: None)  # left pending
        simulator.reset()
        assert simulator.now == 0.0
        assert simulator.pending_events() == 0
        assert simulator.events_processed == 0

    def test_reset_rewinds_tie_break_sequence(self):
        # After a reset, same-time events must replay in the same order a
        # fresh simulator would produce — the sequence counter restarts too.
        def ordering(simulator):
            order = []
            for label in ("a", "b", "c"):
                simulator.schedule(1.0, lambda label=label: order.append(label))
            simulator.run()
            return order

        simulator = Simulator()
        first = ordering(simulator)
        simulator.reset()
        assert ordering(simulator) == first == ["a", "b", "c"]

    def test_reset_allows_rescheduling_at_time_zero(self):
        simulator = Simulator()
        simulator.run(until_ms=100.0)
        simulator.reset()
        seen = []
        simulator.schedule_at(1.0, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [1.0]

    def test_reset_rejected_mid_run(self):
        simulator = Simulator()
        failures = []

        def try_reset():
            try:
                simulator.reset()
            except SimulationError:
                failures.append(True)

        simulator.schedule(0.0, try_reset)
        simulator.run()
        assert failures == [True]


class TestResetClearsProfiler:
    def test_reset_wipes_profiler_state_but_keeps_it_attached(self):
        from repro.obs.profiler import SimulatorProfiler

        simulator = Simulator()
        profiler = SimulatorProfiler(queue_sample_interval=1)
        simulator.set_profiler(profiler)
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        simulator.run()
        assert simulator.profile().events == 2
        simulator.reset()
        # Still attached, but no wall-time attribution or queue samples leak
        # from the previous repetition.
        assert simulator.profiler is profiler
        profile = simulator.profile()
        assert profile.events == 0
        assert profile.wall_s == 0.0
        assert profile.callbacks == {}
        assert profile.queue_samples == []
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        assert simulator.profile().events == 1
