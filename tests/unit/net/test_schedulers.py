"""Scheduler backends: heap vs calendar queue vs auto migration.

Both event-list backends must produce the *same total order* — time first,
then insertion sequence (FIFO among same-timestamp events).  These tests pin
that contract directly; the golden-hash integration tests pin it end-to-end.
"""

import random

import pytest

import repro.net.simulator as simulator_mod
from repro.errors import SimulationError
from repro.net.simulator import Simulator

BACKENDS = ("heap", "calendar")


class TestSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(scheduler="fifo")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_explicit_backend_sticks(self, backend):
        sim = Simulator(scheduler=backend)
        sim.schedule(1.0, lambda: None)
        assert sim.scheduler == backend

    def test_auto_starts_on_heap_and_migrates(self, monkeypatch):
        monkeypatch.setattr(simulator_mod, "AUTO_CALENDAR_THRESHOLD", 64)
        sim = Simulator(scheduler="auto")
        assert sim.scheduler == "heap"
        for i in range(100):
            sim.schedule(float(i), lambda: None)
        assert sim.scheduler == "calendar"

    def test_explicit_heap_never_migrates(self, monkeypatch):
        monkeypatch.setattr(simulator_mod, "AUTO_CALENDAR_THRESHOLD", 4)
        sim = Simulator(scheduler="heap")
        for i in range(50):
            sim.schedule(float(i), lambda: None)
        assert sim.scheduler == "heap"


class TestSameTimestampFifo:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ties_run_in_submission_order(self, backend):
        sim = Simulator(scheduler=backend)
        order = []
        for i in range(200):
            sim.schedule(5.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(200))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ties_scheduled_from_callbacks_queue_behind_existing_ties(self, backend):
        """An event scheduled *during* time t for time t runs after every
        event already queued at t (larger sequence number) — on both backends."""

        sim = Simulator(scheduler=backend)
        order = []

        def first():
            order.append("first")
            sim.schedule(0.0, lambda: order.append("nested"))

        sim.schedule(3.0, first)
        sim.schedule(3.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "nested"]


class TestCrossBackendIdentity:
    def _trace(self, backend: str, seed: int) -> list[tuple[float, int]]:
        """Run a random self-scheduling workload; record (time, id) per event."""

        rng = random.Random(seed)
        sim = Simulator(scheduler=backend)
        trace = []
        counter = iter(range(10_000))

        def fire(ident):
            trace.append((sim.now, ident))
            # Fan out with duplicate-prone delays so timestamp ties are common.
            for _ in range(rng.randrange(0, 3)):
                sim.schedule(rng.choice((0.0, 1.0, 1.0, 2.5)), lambda i=next(counter): fire(i))

        for _ in range(20):
            sim.schedule(rng.choice((0.0, 1.0, 2.5)), lambda i=next(counter): fire(i))
        sim.run(until_ms=40.0, max_events=2_000)
        return trace

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_heap_and_calendar_replay_identically(self, seed):
        assert self._trace("heap", seed) == self._trace("calendar", seed)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_auto_migration_mid_run_preserves_order(self, seed, monkeypatch):
        reference = self._trace("heap", seed)
        # A tiny threshold forces the heap -> calendar hand-off mid-workload.
        monkeypatch.setattr(simulator_mod, "AUTO_CALENDAR_THRESHOLD", 8)
        assert self._trace("auto", seed) == reference


class TestCalendarResizing:
    def test_grow_and_shrink_rebuilds_keep_order(self):
        """Push far past the initial bucket count, then drain — crossing both
        the grow and shrink rebuild thresholds — and verify global order."""

        sim = Simulator(scheduler="calendar")
        rng = random.Random(3)
        seen = []
        for i in range(9_000):
            sim.schedule(rng.uniform(0.0, 1_000.0), lambda i=i: seen.append(i))
        sim.run()
        assert len(seen) == 9_000
        assert sim.pending_events() == 0

    def test_sparse_far_future_event_found(self):
        """An event many calendar years ahead takes the O(size) scan path."""

        sim = Simulator(scheduler="calendar")
        seen = []
        sim.schedule(0.5, lambda: seen.append("near"))
        sim.schedule(10_000_000.0, lambda: seen.append("far"))
        sim.run()
        assert seen == ["near", "far"]
