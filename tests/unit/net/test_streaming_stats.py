"""Unit tests for the constant-memory StreamingNetworkStats."""

import pytest

from repro.net.stats import NetworkStats, StreamingNetworkStats, percentile


def deliver_item(stats, item, send_ms, latencies, *, nodes=None):
    """Drive one item through the recording call sites the network uses."""

    stats.record_submission(item, send_ms)
    stats.record_dissemination_start(item, send_ms)
    targets = nodes if nodes is not None else range(len(latencies))
    for node, latency in zip(targets, latencies):
        stats.record_delivery(item, node, send_ms + latency)


class TestThresholdSemantics:
    def test_item_counts_once_it_reaches_the_fraction(self):
        stats = StreamingNetworkStats(node_count=4, delivery_fraction=0.75)
        assert stats.delivery_threshold == 3
        deliver_item(stats, "tx0", 0.0, [5.0, 6.0])
        assert stats.delivered_items == 0
        assert stats.inflight == 1
        stats.record_delivery("tx0", 2, 7.0)
        assert stats.delivered_items == 1
        # All per-node latencies entered the sketch, including pre-threshold.
        assert stats.latency_sketch.count == 3

    def test_full_coverage_evicts_the_inflight_entry(self):
        stats = StreamingNetworkStats(node_count=3, delivery_fraction=1.0)
        deliver_item(stats, "tx0", 0.0, [1.0, 2.0, 3.0])
        assert stats.delivered_items == 1
        assert stats.inflight == 0

    def test_duplicate_deliveries_are_ignored(self):
        stats = StreamingNetworkStats(node_count=2, delivery_fraction=1.0)
        stats.record_submission("tx0", 0.0)
        stats.record_dissemination_start("tx0", 0.0)
        stats.record_delivery("tx0", 0, 5.0)
        stats.record_delivery("tx0", 0, 99.0)
        stats.record_delivery("tx0", 1, 6.0)
        assert stats.latency_sketch.count == 2
        assert stats.latency_sketch.max == 6.0

    def test_latencies_match_exact_stats_population(self):
        """Streaming folds the same population the exact path would build."""

        exact = NetworkStats()
        streaming = StreamingNetworkStats(node_count=4, delivery_fraction=0.99)
        rows = [
            ("a", 10.0, [3.0, 5.0, 8.0, 13.0]),
            ("b", 20.0, [2.0, 2.0, 4.0, 6.0]),
            ("c", 30.0, [1.0, 9.0]),  # under threshold: not delivered
        ]
        for item, send, latencies in rows:
            deliver_item(exact, item, send, latencies)
            deliver_item(streaming, item, send, latencies)
        exact_pop = sorted(
            latency
            for item, _, latencies in rows
            if len(latencies) >= streaming.delivery_threshold
            for latency in latencies
        )
        assert streaming.delivered_items == 2
        assert streaming.latency_sketch.count == len(exact_pop)
        assert streaming.latency_sketch.rank_error() == 0.0
        for pct in (5, 50, 95):
            assert streaming.percentile_ms(pct) == pytest.approx(
                percentile(exact_pop, pct)
            )

    def test_origin_self_delivery_clamps_to_zero(self):
        stats = StreamingNetworkStats(node_count=1, delivery_fraction=1.0)
        stats.record_submission("tx0", 5.0)
        stats.record_delivery("tx0", 0, 5.0)  # origin delivers before dispatch
        stats.record_dissemination_start("tx0", 8.0)
        assert stats.delivered_items == 1
        assert stats.latency_sketch.min == 0.0


class TestExpiry:
    def test_expire_sheds_only_undelivered_stragglers(self):
        stats = StreamingNetworkStats(node_count=3, delivery_fraction=1.0)
        deliver_item(stats, "done", 0.0, [1.0, 2.0, 3.0])
        deliver_item(stats, "stuck", 0.0, [1.0])
        assert stats.inflight == 1
        assert stats.expire(now_ms=50_000.0, ttl_ms=10_000.0) == 1
        assert stats.expired_items == 1
        assert stats.inflight == 0
        # A fresh straggler survives the sweep.
        deliver_item(stats, "fresh", 49_999.0, [1.0])
        assert stats.expire(now_ms=50_000.0, ttl_ms=10_000.0) == 0
        assert stats.inflight == 1


class TestDisabledAccessors:
    def test_per_item_accessors_raise(self):
        stats = StreamingNetworkStats(node_count=2)
        with pytest.raises(NotImplementedError):
            stats.delivery_latencies("x")
        with pytest.raises(NotImplementedError):
            stats.all_delivery_latencies()
        with pytest.raises(NotImplementedError):
            stats.setup_overheads()
        with pytest.raises(NotImplementedError):
            stats.coverage("x", [0, 1])

    def test_latency_summary_from_sketch(self):
        stats = StreamingNetworkStats(node_count=1, delivery_fraction=1.0)
        assert stats.latency_summary().is_empty
        assert stats.percentile_ms(50) is None
        deliver_item(stats, "tx0", 0.0, [10.0])
        summary = stats.latency_summary()
        assert summary.count == 1
        assert summary.p50 == 10.0


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StreamingNetworkStats(node_count=0)
        with pytest.raises(ValueError):
            StreamingNetworkStats(node_count=3, delivery_fraction=0.0)
        with pytest.raises(ValueError):
            StreamingNetworkStats(node_count=3, delivery_fraction=1.5)

    def test_byte_counters_inherited(self):
        stats = StreamingNetworkStats(node_count=2)
        stats.record_send(0, 1, 100)
        assert stats.total_bytes() == 100
        assert stats.drop_rate() == 0.0
