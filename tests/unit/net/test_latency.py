"""Unit tests for the regional latency model."""

import random
import statistics

import pytest

from repro.net.latency import LatencyModel, LatencyParameters
from repro.types import Region


class TestParameters:
    def test_defaults_match_paper(self):
        parameters = LatencyParameters()
        assert parameters.intra_shape == 2.5
        assert parameters.intra_scale == 14.0
        assert parameters.inter_mean == 90.0
        assert parameters.inter_variance == 20.0

    def test_rejects_shape_below_one(self):
        with pytest.raises(ValueError):
            LatencyParameters(intra_shape=0.9)

    def test_rejects_non_positive(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            LatencyParameters(inter_mean=0)


class TestSampling:
    def test_intra_mean_matches_analytics(self):
        model = LatencyModel(rng=random.Random(0))
        samples = [
            model.sample(Region.FRANKFURT, Region.FRANKFURT) for _ in range(4000)
        ]
        # InvGamma(2.5, 14) has mean 14 / 1.5 = 9.33.
        assert statistics.mean(samples) == pytest.approx(9.33, rel=0.15)

    def test_inter_mean_matches_parameters(self):
        model = LatencyModel(rng=random.Random(0))
        samples = [model.sample(Region.FRANKFURT, Region.TOKYO) for _ in range(2000)]
        assert statistics.mean(samples) == pytest.approx(90.0, rel=0.03)

    def test_samples_positive(self):
        model = LatencyModel(rng=random.Random(1))
        for _ in range(500):
            assert model.sample(Region.OHIO, Region.OHIO) > 0
            assert model.sample(Region.OHIO, Region.LONDON) > 0

    def test_intra_faster_than_inter_on_average(self):
        model = LatencyModel(rng=random.Random(2))
        intra = [model.sample(Region.SYDNEY, Region.SYDNEY) for _ in range(500)]
        inter = [model.sample(Region.SYDNEY, Region.IRELAND) for _ in range(500)]
        assert statistics.mean(intra) < statistics.mean(inter)


class TestExpected:
    def test_expected_values(self):
        model = LatencyModel()
        assert model.expected(Region.TOKYO, Region.TOKYO) == pytest.approx(9.333, rel=1e-3)
        assert model.expected(Region.TOKYO, Region.LONDON) == 90.0


class TestPairSampling:
    def test_order_independent(self):
        model = LatencyModel()
        a = model.sample_pair(7, 3, 9, Region.TOKYO, Region.LONDON)
        b = model.sample_pair(7, 9, 3, Region.LONDON, Region.TOKYO)
        assert a == b

    def test_seed_dependent(self):
        model = LatencyModel()
        a = model.sample_pair(7, 3, 9, Region.TOKYO, Region.LONDON)
        b = model.sample_pair(8, 3, 9, Region.TOKYO, Region.LONDON)
        assert a != b

    def test_pair_dependent(self):
        model = LatencyModel()
        a = model.sample_pair(7, 3, 9, Region.TOKYO, Region.LONDON)
        b = model.sample_pair(7, 3, 10, Region.TOKYO, Region.LONDON)
        assert a != b
