"""Unit tests for the network transport layer and protocol-node API."""

import pytest

from repro.errors import SimulationError
from repro.net.channel import LossModel
from repro.net.events import ENVELOPE_OVERHEAD_BYTES, Message
from repro.net.node import Network, ProtocolNode
from repro.net.simulator import Simulator


class Recorder(ProtocolNode):
    """Collects every message it receives with the arrival time."""

    def __init__(self, node_id, network):
        super().__init__(node_id, network)
        self.received = []
        self.started = False

    def on_start(self):
        self.started = True

    def on_message(self, sender, message):
        self.received.append((sender, message.payload, self.now))


@pytest.fixture()
def network(physical40):
    return Network(Simulator(), physical40, seed=3)


class TestRegistration:
    def test_duplicate_registration_rejected(self, network):
        Recorder(0, network)
        with pytest.raises(SimulationError):
            Recorder(0, network)

    def test_unknown_destination_rejected(self, network):
        node = Recorder(0, network)
        with pytest.raises(SimulationError):
            node.send(99, Message("k", None, 1))

    def test_node_lookup(self, network):
        node = Recorder(0, network)
        assert network.node(0) is node
        with pytest.raises(SimulationError):
            network.node(42)

    def test_start_all_invokes_hooks(self, network):
        nodes = [Recorder(i, network) for i in range(3)]
        network.start_all()
        network.simulator.run()
        assert all(node.started for node in nodes)


class TestDelivery:
    def test_message_arrives_after_latency(self, network):
        a, b = Recorder(0, network), Recorder(1, network)
        a.send(1, Message("k", "hello", 10))
        network.simulator.run()
        assert len(b.received) == 1
        sender, payload, when = b.received[0]
        assert sender == 0 and payload == "hello"
        base = network.base_latency(0, 1)
        assert when == pytest.approx(base, rel=0.3)

    def test_multicast_skips_self(self, network):
        a = Recorder(0, network)
        b, c = Recorder(1, network), Recorder(2, network)
        a.multicast([0, 1, 2], Message("k", "x", 5))
        network.simulator.run()
        assert len(b.received) == 1 and len(c.received) == 1

    def test_bandwidth_accounting_includes_envelope(self, network):
        a, _b = Recorder(0, network), Recorder(1, network)
        a.send(1, Message("k", None, 10))
        assert network.stats.bytes_sent[0] == 10 + ENVELOPE_OVERHEAD_BYTES

    def test_lossy_link_drops(self, physical40):
        network = Network(
            Simulator(), physical40, loss_model=LossModel(loss_probability=1.0), seed=1
        )
        a, b = Recorder(0, network), Recorder(1, network)
        a.send(1, Message("k", "x", 5))
        network.simulator.run()
        assert not b.received
        assert network.stats.messages_dropped == 1

    def test_latency_stable_between_same_pair(self, network):
        a, b = Recorder(0, network), Recorder(1, network)
        base = network.base_latency(0, 1)
        assert network.base_latency(0, 1) == base
        assert network.base_latency(1, 0) == base


class TestServiceTime:
    def test_queueing_delays_messages(self, physical40):
        network = Network(
            Simulator(), physical40, service_time_ms=10.0, seed=1
        )
        a, b = Recorder(0, network), Recorder(1, network)
        for _ in range(5):
            a.send(1, Message("k", "x", 1))
        network.simulator.run()
        arrival_times = [when for (_s, _p, when) in b.received]
        # Successive handling must be spaced by the service time.
        gaps = [b2 - b1 for b1, b2 in zip(arrival_times, arrival_times[1:])]
        assert all(gap >= 10.0 - 1e-9 for gap in gaps)


class TestMessage:
    def test_unique_ids(self):
        assert Message("a", None, 1).msg_id != Message("a", None, 1).msg_id

    def test_wire_size(self):
        assert Message("a", None, 100).wire_size() == 100 + ENVELOPE_OVERHEAD_BYTES
