"""Unit tests for the constant-memory telemetry primitives."""

import pytest

from repro.net.sketch import (
    QuantileSketch,
    ReservoirSketch,
    WindowedCounter,
    WindowedQuantiles,
)
from repro.net.stats import percentile


class TestQuantileSketchExactRegime:
    def test_under_capacity_matches_exact_percentile(self):
        values = [float(v) for v in (9, 1, 4, 7, 2, 8, 3, 6, 5, 0)]
        sketch = QuantileSketch(capacity=64)
        for value in values:
            sketch.observe(value)
        assert sketch.rank_error() == 0.0
        for pct in (0, 10, 25, 50, 75, 90, 95, 100):
            assert sketch.percentile(pct) == pytest.approx(percentile(values, pct))

    def test_exact_moments(self):
        sketch = QuantileSketch(capacity=8)
        for value in range(1000):
            sketch.observe(float(value))
        assert sketch.count == 1000
        assert sketch.sum == pytest.approx(sum(range(1000)))
        assert sketch.mean == pytest.approx(499.5)
        assert sketch.min == 0.0
        assert sketch.max == 999.0


class TestQuantileSketchBound:
    def test_rank_error_bound_holds_after_compaction(self):
        n = 20_000
        values = [float(v) for v in range(n)]
        sketch = QuantileSketch(capacity=64)
        for value in values:
            sketch.observe(value)
        assert 0.0 < sketch.rank_error() < 1.0
        tolerance = sketch.rank_error() * n + 1
        for pct in (1, 25, 50, 75, 99):
            estimate = sketch.percentile(pct)
            true_rank = (pct / 100.0) * (n - 1)
            # Values ARE their ranks here, so the rank displacement is direct.
            assert abs(estimate - true_rank) <= tolerance

    def test_bound_is_not_vacuous_at_reference_scale(self):
        sketch = QuantileSketch(capacity=512)
        for value in range(100_000):
            sketch.observe(float(value))
        # The documented regime: ~1.5% rank error at n=1e5, k=512.
        assert sketch.rank_error() < 0.02

    def test_memory_is_logarithmic(self):
        sketch = QuantileSketch(capacity=64)
        for value in range(100_000):
            sketch.observe(float(value))
        held = sum(len(level) for level in sketch._levels)
        assert held <= 64 * len(sketch._levels)
        assert len(sketch._levels) <= 16

    def test_merge_preserves_count_sum_and_bound(self):
        n = 5_000
        left, right = QuantileSketch(capacity=32), QuantileSketch(capacity=32)
        for value in range(n):
            (left if value % 2 else right).observe(float(value))
        left.merge(right)
        assert left.count == n
        assert left.sum == pytest.approx(sum(range(n)))
        tolerance = left.rank_error() * n + 1
        assert abs(left.percentile(50) - (n - 1) / 2) <= tolerance


class TestQuantileSketchValidation:
    def test_capacity_rounded_even_and_floor(self):
        assert QuantileSketch(capacity=5).capacity == 6
        with pytest.raises(ValueError):
            QuantileSketch(capacity=1)

    def test_empty_sketch_rejects_reads(self):
        sketch = QuantileSketch()
        assert sketch.rank_error() == 0.0
        assert sketch.summary() == {"count": 0}
        with pytest.raises(ValueError):
            sketch.percentile(50)
        with pytest.raises(ValueError):
            _ = sketch.mean

    def test_percentile_range_checked(self):
        sketch = QuantileSketch()
        sketch.observe(1.0)
        with pytest.raises(ValueError):
            sketch.percentile(101)

    def test_summary_is_json_ready(self):
        sketch = QuantileSketch(capacity=16)
        for value in range(100):
            sketch.observe(float(value))
        summary = sketch.summary()
        assert summary["count"] == 100
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert 0.0 <= summary["rank_error"] <= 1.0


class TestReservoirSketch:
    def test_exact_while_under_capacity(self):
        reservoir = ReservoirSketch(capacity=100, seed=1)
        for value in range(50):
            reservoir.observe(float(value))
        assert reservoir.sample() == [float(v) for v in range(50)]
        assert reservoir.percentile(50) == pytest.approx(24.5)

    def test_bounded_and_deterministic_over_capacity(self):
        a = ReservoirSketch(capacity=10, seed=7)
        b = ReservoirSketch(capacity=10, seed=7)
        for value in range(1000):
            a.observe(float(value))
            b.observe(float(value))
        assert len(a.sample()) == 10
        assert a.sample() == b.sample()
        assert a.count == 1000
        assert a.mean == pytest.approx(499.5)

    def test_seed_changes_sample(self):
        a = ReservoirSketch(capacity=10, seed=0)
        b = ReservoirSketch(capacity=10, seed=1)
        for value in range(1000):
            a.observe(float(value))
            b.observe(float(value))
        assert a.sample() != b.sample()


class TestWindowedCounter:
    def test_bucketing_and_totals(self):
        counter = WindowedCounter(window_ms=1000.0)
        for t in (0.0, 999.0, 1000.0, 2500.0, 2600.0):
            counter.add(t)
        assert counter.series() == [(0.0, 2.0), (1000.0, 1.0), (2000.0, 2.0)]
        assert counter.total == 5.0

    def test_rate_series_scales_by_window(self):
        counter = WindowedCounter(window_ms=2000.0)
        counter.add(0.0, amount=10.0)
        assert counter.rate_series(per_ms=1000.0) == [(0.0, 5.0)]

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowedCounter(window_ms=0.0)


class TestWindowedQuantiles:
    def test_series_and_merged_agree_on_totals(self):
        windows = WindowedQuantiles(window_ms=1000.0, capacity=32)
        for t in range(3000):
            windows.observe(float(t), float(t % 100))
        assert len(windows) == 3
        rows = windows.series((50.0, 95.0))
        assert [row["start_ms"] for row in rows] == [0.0, 1000.0, 2000.0]
        assert all(row["count"] == 1000 for row in rows)
        assert all("p50" in row and "p95" in row for row in rows)
        merged = windows.merged()
        assert merged.count == 3000
