"""Unit tests for the link loss/jitter model."""

import random
import statistics

import pytest

from repro.errors import ConfigurationError
from repro.net.channel import LossModel


class TestLossModel:
    def test_zero_loss_never_drops(self):
        model = LossModel(loss_probability=0.0)
        rng = random.Random(0)
        assert not any(model.drops(rng) for _ in range(1000))

    def test_full_loss_always_drops(self):
        model = LossModel(loss_probability=1.0)
        rng = random.Random(0)
        assert all(model.drops(rng) for _ in range(100))

    def test_loss_rate_approximates_probability(self):
        model = LossModel(loss_probability=0.2)
        rng = random.Random(1)
        rate = sum(model.drops(rng) for _ in range(5000)) / 5000
        assert rate == pytest.approx(0.2, abs=0.03)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            LossModel(loss_probability=1.5)

    def test_jitter_mean_near_one(self):
        model = LossModel(jitter_sigma=0.05)
        rng = random.Random(2)
        factors = [model.jitter_factor(rng) for _ in range(3000)]
        assert statistics.mean(factors) == pytest.approx(1.0, abs=0.02)
        assert all(f > 0 for f in factors)

    def test_zero_jitter_is_identity(self):
        model = LossModel(jitter_sigma=0.0)
        assert model.jitter_factor(random.Random(0)) == 1.0


class TestJitterValidation:
    def test_zero_jitter_is_legal(self):
        assert LossModel(jitter_sigma=0.0).jitter_sigma == 0.0

    def test_negative_jitter_rejected_with_accurate_message(self):
        with pytest.raises(ValueError, match=r"jitter_sigma must be >= 0"):
            LossModel(jitter_sigma=-0.1)
