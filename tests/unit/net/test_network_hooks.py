"""Chaos hooks on the transport: on_send, on_receive and the disruptor.

The invariant monitors of :mod:`repro.chaos` hang off these three attach
points, so their semantics are load-bearing: ``on_send`` must witness intent
*before* loss is sampled (a dropped message can never frame its sender) and
``on_receive`` must fire only for transmissions that actually arrive.
"""

import random

import pytest

from repro.chaos import LinkDisruptor
from repro.net.channel import LossModel
from repro.net.events import Message
from repro.net.node import Network, ProtocolNode
from repro.net.simulator import Simulator


class Sink(ProtocolNode):
    def __init__(self, node_id, network):
        super().__init__(node_id, network)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((sender, message.payload))


@pytest.fixture()
def network(physical40):
    return Network(Simulator(), physical40, seed=3)


class TestOnSend:
    def test_fires_before_loss_with_send_time(self, physical40):
        # 100% loss: nothing is delivered, yet the send hook still witnesses
        # the forwarding intent.
        network = Network(
            Simulator(), physical40, loss_model=LossModel(loss_probability=1.0), seed=1
        )
        a, b = Sink(0, network), Sink(1, network)
        sends = []
        network.on_send = lambda src, dst, message, t: sends.append((src, dst, t))
        a.send(1, Message("k", "x", 5))
        network.simulator.run()
        assert sends == [(0, 1, 0.0)]
        assert not b.received

    def test_fires_before_disruptor_drop(self, network):
        disruptor = LinkDisruptor(random.Random(0))
        disruptor.add_partition(0.0, 1_000.0, frozenset({0}))
        network.disruptor = disruptor
        _a, b = Sink(0, network), Sink(1, network)
        sends = []
        network.on_send = lambda src, dst, message, t: sends.append((src, dst))
        network.send(0, 1, Message("k", "x", 5))
        network.simulator.run()
        assert sends == [(0, 1)]
        assert not b.received
        assert disruptor.dropped_by_partition == 1
        assert network.stats.messages_dropped == 1


class TestOnReceive:
    def test_fires_at_delivery_time_before_the_receiver(self, network):
        a, b = Sink(0, network), Sink(1, network)
        arrivals = []

        def on_receive(src, dst, message, t):
            # The receiver must not have processed the message yet.
            arrivals.append((src, dst, t, len(b.received)))

        network.on_receive = on_receive
        a.send(1, Message("k", "hello", 5))
        network.simulator.run()
        ((src, dst, t, backlog),) = arrivals
        assert (src, dst) == (0, 1)
        assert t > 0.0  # delivery time, not send time
        assert backlog == 0
        assert b.received == [(0, "hello")]

    def test_silent_for_lost_messages(self, physical40):
        network = Network(
            Simulator(), physical40, loss_model=LossModel(loss_probability=1.0), seed=1
        )
        a, _b = Sink(0, network), Sink(1, network)
        arrivals = []
        network.on_receive = lambda *record: arrivals.append(record)
        a.send(1, Message("k", "x", 5))
        network.simulator.run()
        assert arrivals == []


class TestDisruptor:
    def test_latency_factor_stretches_delivery(self, network):
        a, b = Sink(0, network), Sink(1, network)
        a.send(1, Message("k", "first", 5))
        network.simulator.run()
        baseline = network.simulator.now

        disruptor = LinkDisruptor(random.Random(0))
        disruptor.add_latency_spike(0.0, 1e9, 4.0)
        network.disruptor = disruptor
        a.send(1, Message("k", "second", 5))
        network.simulator.run()
        stretched = network.simulator.now - baseline
        # Jitter differs between sends, so compare against a loose 2x bound
        # rather than exactly 4x the first delivery.
        assert stretched > 2.0 * baseline
        assert [p for (_s, p) in b.received] == ["first", "second"]

    def test_disrupted_drops_count_separately_from_loss(self, network):
        disruptor = LinkDisruptor(random.Random(0))
        disruptor.add_partition(0.0, 1_000.0, frozenset({0}))
        network.disruptor = disruptor
        Sink(0, network), Sink(1, network)
        network.send(0, 1, Message("k", "x", 5))
        assert disruptor.dropped_by_partition == 1
        assert disruptor.dropped_by_loss == 0
        assert network.stats.messages_dropped == 1
