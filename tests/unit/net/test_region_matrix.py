"""Unit tests for the pair-specific inter-region latency matrix."""

import random
import statistics

import pytest

from repro.net.region_matrix import (
    REALISTIC_ONE_WAY_MS,
    MatrixLatencyModel,
    realistic_latency_model,
)
from repro.net.topology import generate_physical_network
from repro.types import ALL_REGIONS, Region


class TestMatrix:
    def test_symmetric(self):
        for (a, b), value in REALISTIC_ONE_WAY_MS.items():
            assert REALISTIC_ONE_WAY_MS[(b, a)] == value

    def test_complete_over_all_pairs(self):
        for a in ALL_REGIONS:
            for b in ALL_REGIONS:
                if a != b:
                    assert (a, b) in REALISTIC_ONE_WAY_MS

    def test_values_plausible(self):
        assert all(1.0 < v < 250.0 for v in REALISTIC_ONE_WAY_MS.values())


class TestMatrixModel:
    def test_pair_specific_means(self):
        model = realistic_latency_model(seed=1)
        close = [
            model.sample(Region.LONDON, Region.FRANKFURT) for _ in range(500)
        ]
        far = [model.sample(Region.SYDNEY, Region.FRANKFURT) for _ in range(500)]
        assert statistics.mean(close) == pytest.approx(8.0, abs=2.0)
        assert statistics.mean(far) == pytest.approx(145.0, rel=0.05)

    def test_expected_uses_matrix(self):
        model = realistic_latency_model()
        assert model.expected(Region.LONDON, Region.IRELAND) == 6.0
        assert model.expected(Region.TOKYO, Region.TOKYO) == pytest.approx(
            14.0 / 1.5, rel=1e-3
        )

    def test_unknown_pair_falls_back(self):
        model = MatrixLatencyModel(matrix={})
        assert model.expected(Region.LONDON, Region.TOKYO) == 90.0

    def test_pair_sampling_stable(self):
        model = realistic_latency_model()
        a = model.sample_pair(3, 1, 2, Region.TOKYO, Region.SYDNEY)
        b = model.sample_pair(3, 2, 1, Region.SYDNEY, Region.TOKYO)
        assert a == b

    def test_intra_unchanged_from_paper_fit(self):
        model = realistic_latency_model(seed=2)
        samples = [model.sample(Region.OHIO, Region.OHIO) for _ in range(2000)]
        assert statistics.mean(samples) == pytest.approx(9.33, rel=0.15)


class TestNetworkGeneration:
    def test_generate_with_matrix_model(self):
        network = generate_physical_network(
            30, latency_model=realistic_latency_model(seed=5), seed=5
        )
        assert network.num_nodes == 30
        # Find a cross-continental edge and check it reflects geography.
        for u, v in network.graph.edges:
            if {network.region_of(u), network.region_of(v)} == {
                Region.SYDNEY,
                Region.FRANKFURT,
            }:
                assert network.latency(u, v) > 100.0
                break

    def test_transport_latency_pairs_use_matrix(self):
        network = generate_physical_network(
            40, latency_model=realistic_latency_model(seed=5), seed=5
        )
        nodes = network.nodes()
        london = next(n for n in nodes if network.region_of(n) is Region.LONDON)
        dublin = next(n for n in nodes if network.region_of(n) is Region.IRELAND)
        sydney = next(n for n in nodes if network.region_of(n) is Region.SYDNEY)
        assert network.transport_latency(london, dublin) < network.transport_latency(
            london, sydney
        )


class TestMatrixCompleteness:
    def test_covers_all_36_unordered_pairs_symmetrically(self):
        unordered = {frozenset(pair) for pair in REALISTIC_ONE_WAY_MS}
        expected = len(ALL_REGIONS) * (len(ALL_REGIONS) - 1) // 2
        assert expected == 36
        assert len(unordered) == expected
        # Every unordered pair appears in both orders with equal values.
        assert len(REALISTIC_ONE_WAY_MS) == 2 * expected
        for (a, b), value in REALISTIC_ONE_WAY_MS.items():
            assert REALISTIC_ONE_WAY_MS[(b, a)] == value

    def test_inter_pair_samples_respect_shared_latency_floor(self):
        from repro.net.latency import MIN_LATENCY_MS

        model = realistic_latency_model(seed=3)
        samples = [
            model.sample(Region.LONDON, Region.FRANKFURT) for _ in range(2000)
        ]
        assert min(samples) >= MIN_LATENCY_MS
