"""Unit tests for physical network generation and mutation."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.net.topology import generate_physical_network
from repro.types import Region


class TestGeneration:
    def test_node_count(self, physical40):
        assert physical40.num_nodes == 40
        assert physical40.nodes() == list(range(40))

    def test_minimum_degree(self, physical40):
        assert all(physical40.degree(n) >= 4 for n in physical40.nodes())

    def test_vertex_connectivity(self, physical40):
        physical40.validate_connectivity(4)

    def test_every_edge_has_latency_label(self, physical40):
        for u, v in physical40.graph.edges:
            assert physical40.latency(u, v) > 0

    def test_latency_symmetric_accessor(self, physical40):
        u, v = next(iter(physical40.graph.edges))
        assert physical40.latency(u, v) == physical40.latency(v, u)

    def test_non_edge_latency_raises(self, physical40):
        non_edges = nx.non_edges(physical40.graph)
        u, v = next(non_edges)
        with pytest.raises(TopologyError):
            physical40.latency(u, v)

    def test_regions_assigned_evenly(self, physical40):
        from collections import Counter

        counts = Counter(physical40.regions.values())
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_deterministic_per_seed(self):
        a = generate_physical_network(20, seed=3)
        b = generate_physical_network(20, seed=3)
        assert set(a.graph.edges) == set(b.graph.edges)
        assert a.latencies == b.latencies

    def test_different_seeds_differ(self):
        a = generate_physical_network(30, seed=1)
        b = generate_physical_network(30, seed=2)
        assert set(a.graph.edges) != set(b.graph.edges)

    def test_rejects_impossible_parameters(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            generate_physical_network(1)
        with pytest.raises(ConfigurationError):
            generate_physical_network(5, min_degree=5)

    def test_min_cut_between_nodes(self, physical40):
        assert physical40.min_cut_between(0, 20) >= 4


class TestTransportLatency:
    def test_self_latency_zero(self, physical40):
        assert physical40.transport_latency(5, 5) == 0.0

    def test_edge_pairs_use_label(self, physical40):
        u, v = next(iter(physical40.graph.edges))
        assert physical40.transport_latency(u, v) == physical40.latency(u, v)

    def test_non_edge_pairs_stable(self, physical40):
        u, v = next(nx.non_edges(physical40.graph))
        first = physical40.transport_latency(u, v)
        assert physical40.transport_latency(v, u) == first
        assert physical40.transport_latency(u, v) == first


class TestMutation:
    def test_join_and_leave(self):
        network = generate_physical_network(20, seed=9)
        network.add_node_with_links(100, Region.TOKYO, [0, 1, 2])
        assert 100 in network.graph
        assert network.region_of(100) is Region.TOKYO
        assert network.latency(100, 0) > 0
        network.remove_node(100)
        assert 100 not in network.graph
        assert (0, 100) not in network.latencies

    def test_join_duplicate_rejected(self):
        network = generate_physical_network(20, seed=9)
        with pytest.raises(TopologyError):
            network.add_node_with_links(5, Region.TOKYO, [0])

    def test_join_needs_known_neighbors(self):
        network = generate_physical_network(20, seed=9)
        with pytest.raises(TopologyError):
            network.add_node_with_links(100, Region.TOKYO, [999])

    def test_join_needs_some_neighbor(self):
        network = generate_physical_network(20, seed=9)
        with pytest.raises(TopologyError):
            network.add_node_with_links(100, Region.TOKYO, [])

    def test_remove_unknown_rejected(self):
        network = generate_physical_network(20, seed=9)
        with pytest.raises(TopologyError):
            network.remove_node(999)
