"""Unit tests for physical network generation and mutation."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.net.latency import LatencyModel
from repro.net.topology import PhysicalNetwork, generate_physical_network
from repro.types import Region


class TestGeneration:
    def test_node_count(self, physical40):
        assert physical40.num_nodes == 40
        assert physical40.nodes() == list(range(40))

    def test_minimum_degree(self, physical40):
        assert all(physical40.degree(n) >= 4 for n in physical40.nodes())

    def test_vertex_connectivity(self, physical40):
        physical40.validate_connectivity(4)

    def test_every_edge_has_latency_label(self, physical40):
        for u, v in physical40.graph.edges:
            assert physical40.latency(u, v) > 0

    def test_latency_symmetric_accessor(self, physical40):
        u, v = next(iter(physical40.graph.edges))
        assert physical40.latency(u, v) == physical40.latency(v, u)

    def test_non_edge_latency_raises(self, physical40):
        non_edges = nx.non_edges(physical40.graph)
        u, v = next(non_edges)
        with pytest.raises(TopologyError):
            physical40.latency(u, v)

    def test_regions_assigned_evenly(self, physical40):
        from collections import Counter

        counts = Counter(physical40.regions.values())
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_deterministic_per_seed(self):
        a = generate_physical_network(20, seed=3)
        b = generate_physical_network(20, seed=3)
        assert set(a.graph.edges) == set(b.graph.edges)
        assert a.latencies == b.latencies

    def test_different_seeds_differ(self):
        a = generate_physical_network(30, seed=1)
        b = generate_physical_network(30, seed=2)
        assert set(a.graph.edges) != set(b.graph.edges)

    def test_rejects_impossible_parameters(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            generate_physical_network(1)
        with pytest.raises(ConfigurationError):
            generate_physical_network(5, min_degree=5)

    def test_min_cut_between_nodes(self, physical40):
        assert physical40.min_cut_between(0, 20) >= 4


class TestTransportLatency:
    def test_self_latency_zero(self, physical40):
        assert physical40.transport_latency(5, 5) == 0.0

    def test_edge_pairs_use_label(self, physical40):
        u, v = next(iter(physical40.graph.edges))
        assert physical40.transport_latency(u, v) == physical40.latency(u, v)

    def test_non_edge_pairs_stable(self, physical40):
        u, v = next(nx.non_edges(physical40.graph))
        first = physical40.transport_latency(u, v)
        assert physical40.transport_latency(v, u) == first
        assert physical40.transport_latency(u, v) == first


class TestMutation:
    def test_join_and_leave(self):
        network = generate_physical_network(20, seed=9)
        network.add_node_with_links(100, Region.TOKYO, [0, 1, 2])
        assert 100 in network.graph
        assert network.region_of(100) is Region.TOKYO
        assert network.latency(100, 0) > 0
        network.remove_node(100)
        assert 100 not in network.graph
        assert (0, 100) not in network.latencies

    def test_join_duplicate_rejected(self):
        network = generate_physical_network(20, seed=9)
        with pytest.raises(TopologyError):
            network.add_node_with_links(5, Region.TOKYO, [0])

    def test_join_needs_known_neighbors(self):
        network = generate_physical_network(20, seed=9)
        with pytest.raises(TopologyError):
            network.add_node_with_links(100, Region.TOKYO, [999])

    def test_join_needs_some_neighbor(self):
        network = generate_physical_network(20, seed=9)
        with pytest.raises(TopologyError):
            network.add_node_with_links(100, Region.TOKYO, [])

    def test_remove_unknown_rejected(self):
        network = generate_physical_network(20, seed=9)
        with pytest.raises(TopologyError):
            network.remove_node(999)


class TestValidationModes:
    def test_explicit_modes_return_identical_networks(self):
        fast = generate_physical_network(30, seed=3, validate="fast")
        full = generate_physical_network(30, seed=3, validate="full")
        assert sorted(fast.graph.edges) == sorted(full.graph.edges)
        assert fast.latencies == full.latencies
        assert fast.regions == full.regions

    def test_unknown_mode_rejected(self):
        with pytest.raises(Exception):
            generate_physical_network(10, validate="eventually")

    def test_fast_check_accepts_generated_graph(self, physical40):
        physical40.validate_connectivity_fast(4)

    def test_fast_check_rejects_low_degree(self, physical40):
        with pytest.raises(TopologyError):
            physical40.validate_connectivity_fast(physical40.num_nodes - 1)

    def test_fast_check_rejects_disconnected(self):
        graph = nx.Graph()
        # Two disjoint triangles: min degree 2, but not connected at all.
        graph.add_edges_from([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        network = PhysicalNetwork(
            graph=graph,
            regions={n: Region.FRANKFURT for n in graph.nodes},
            latencies={},
            latency_model=LatencyModel(),
        )
        with pytest.raises(TopologyError):
            network.validate_connectivity_fast(2)

    def test_fast_check_rejects_too_few_nodes(self):
        graph = nx.complete_graph(3)
        network = PhysicalNetwork(
            graph=graph,
            regions={n: Region.FRANKFURT for n in graph.nodes},
            latencies={},
            latency_model=LatencyModel(),
        )
        with pytest.raises(TopologyError):
            network.validate_connectivity_fast(3)


class TestVersionAndPairCache:
    def test_mutations_bump_the_version(self):
        network = generate_physical_network(20, min_degree=3, seed=2)
        before = network.version
        network.add_node_with_links(99, network.region_of(0), [0, 1, 2])
        assert network.version == before + 1
        network.remove_node(99)
        assert network.version == before + 2

    def test_join_purges_stale_pair_draw(self):
        network = generate_physical_network(20, min_degree=3, seed=2)
        # Find a non-adjacent pair and warm its internet-path cache entry.
        u = 0
        v = next(n for n in network.nodes() if n != u and not network.has_edge(u, n))
        internet = network.transport_latency(u, v)
        network.remove_node(v)
        network.add_node_with_links(v, network.region_of(u), [u])
        # Now a direct link: the label, not the stale cached draw.
        assert network.transport_latency(u, v) == network.latency(u, v)
        assert network.transport_latency(u, v) != internet
