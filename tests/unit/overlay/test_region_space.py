"""Unit tests for the overlay-space bulk hooks and RegionMeanSpace.

Two contracts:

* the default :class:`OverlaySpace` hook implementations are the historical
  scalar code, verified here by brute force against ``space.latency`` — so a
  space that overrides nothing behaves exactly as it did before the hooks
  existed (the golden-hash suite pins this end-to-end);
* :class:`RegionMeanSpace` computes the same *aggregates* from closed-form
  regional means in O(1)/O(regions) — verified against its own brute-force
  equivalents, since its whole point is replacing the per-pair draws.
"""

import random

import pytest

from repro.net.topology import generate_physical_network
from repro.overlay.base import (
    LATENCY_SAMPLE_SIZE,
    RegionMeanSpace,
    TransportSpace,
)
from repro.overlay.robust_tree import RobustTreeConfig, build_overlay_family


@pytest.fixture(scope="module")
def physical():
    return generate_physical_network(60, seed=0)


@pytest.fixture(scope="module")
def space(physical):
    return RegionMeanSpace(physical)


class TestRegionMeanLatency:
    def test_self_latency_is_zero(self, space):
        assert space.latency(7, 7) == 0.0

    def test_pairs_use_the_models_expected_value(self, physical, space):
        model = physical.latency_model
        for u, v in [(0, 1), (3, 40), (12, 59)]:
            assert space.latency(u, v) == model.expected(u, v)
            assert space.latency(u, v) == space.latency(v, u)

    def test_every_pair_connected(self, space):
        assert space.complete
        assert space.are_connected(0, 59)
        assert not space.are_connected(4, 4)


class TestAggregateHooks:
    def test_average_latency_matches_brute_force(self, physical, space):
        nodes = physical.nodes()
        rng = random.Random(5)
        got = space.average_latency(2, nodes, rng)
        others = [p for p in nodes if p != 2]
        assert got == pytest.approx(
            sum(space.latency(2, p) for p in others) / len(others)
        )

    def test_average_latency_without_self_in_peers(self, physical, space):
        peers = [n for n in physical.nodes() if n != 2]
        got = space.average_latency(2, peers, random.Random(5))
        assert got == pytest.approx(
            sum(space.latency(2, p) for p in peers) / len(peers)
        )

    def test_layer_latency_fn_matches_brute_force(self, physical, space):
        layer = physical.nodes()[:17]
        fn = space.layer_latency_fn(layer)
        # Construction only queries candidates *outside* the layer (remaining
        # is disjoint from previous_layer) — the hook's stated contract.
        for node in (20, 30, 45):
            assert fn(node) == pytest.approx(
                sum(space.latency(node, p) for p in layer) / len(layer)
            )

    def test_nearest_parents_picks_closest_regions_first(self, physical, space):
        parents = physical.nodes()[:30]
        chosen = space.nearest_parents(41, parents, 5)
        assert len(chosen) == 5
        assert 41 not in chosen
        assert set(chosen) <= set(parents)
        # No unchosen parent may be strictly closer (by regional mean) than
        # the farthest chosen one — the rotation only permutes within ties.
        worst = max(space.latency(41, p) for p in chosen)
        for p in parents:
            if p not in chosen and p != 41:
                assert space.latency(41, p) >= worst

    def test_nearest_parents_rotation_spreads_load(self, physical, space):
        """Distinct children with the same candidate set must not all pick the
        identical parent list (the rotation de-clusters hot parents)."""

        parents = physical.nodes()[:30]
        picks = {tuple(space.nearest_parents(n, parents, 3)) for n in range(31, 55)}
        assert len(picks) > 1


class TestDefaultHooksAreTheHistoricalScalarCode:
    def test_default_average_latency_samples_and_averages(self, physical):
        transport = TransportSpace(physical)
        nodes = physical.nodes()
        assert len(nodes) > LATENCY_SAMPLE_SIZE
        got = transport.average_latency(3, nodes, random.Random(9))
        # Replay the historical body with an identically seeded rng.
        rng = random.Random(9)
        others = [p for p in nodes if p != 3 and transport.are_connected(3, p)]
        sample = rng.sample(others, LATENCY_SAMPLE_SIZE)
        assert got == pytest.approx(
            sum(transport.latency(3, p) for p in sample) / len(sample)
        )

    def test_default_average_latency_empty_peers_is_inf(self, physical):
        transport = TransportSpace(physical)
        assert transport.average_latency(3, [3], random.Random(0)) == float("inf")

    def test_default_nearest_parents_sorts_by_latency(self, physical):
        transport = TransportSpace(physical)
        parents = physical.nodes()[:12]
        chosen = transport.nearest_parents(50, parents, 4)
        expected = sorted(parents, key=lambda p: (transport.latency(p, 50), p))[:4]
        assert chosen == expected


class TestPaperScaleFamily:
    def test_family_built_in_region_space_validates(self, physical):
        overlays, _ = build_overlay_family(
            physical,
            f=1,
            k=3,
            space=RegionMeanSpace(physical),
            tree_config=RobustTreeConfig(layer_connect_count=2),
            optimize=False,
            seed=0,
        )
        assert len(overlays) == 3
        for overlay in overlays:
            overlay.validate(expected_nodes=physical.nodes())
            # layer_connect_count=f+1 keeps the family sparse: every node has
            # at most max(layer_connect_count, f+1) = 2 parents.
            for node, preds in overlay.predecessors.items():
                assert len(preds) <= 2, (node, preds)
