"""Unit tests for overlay encoding and committee certification (Alg. 5)."""

import pytest

from repro.crypto.backend import FastCryptoBackend
from repro.errors import TopologyError
from repro.overlay.encoding import (
    EncodedOverlay,
    certify_overlays,
    decode_overlay,
    encode_overlay,
)


def canonical(overlay):
    return (
        overlay.overlay_id,
        overlay.f,
        overlay.entry_points,
        dict(overlay.depth_of),
        {node: sorted(children) for node, children in overlay.successors.items()},
    )


class TestRoundtrip:
    def test_roundtrip_preserves_structure(self, overlay_family40):
        overlays, _ranks = overlay_family40
        for overlay in overlays:
            decoded = decode_overlay(encode_overlay(overlay))
            assert canonical(decoded) == canonical(overlay)

    def test_encoding_deterministic(self, overlay_family40):
        overlays, _ranks = overlay_family40
        assert encode_overlay(overlays[0]).data == encode_overlay(overlays[0]).data

    def test_encoding_is_compact(self, overlay_family40):
        """A useful sanity bound: bytes should scale with edges, not n^2."""

        overlays, _ranks = overlay_family40
        overlay = overlays[0]
        encoded = encode_overlay(overlay)
        assert encoded.size_bytes < 12 * (overlay.num_nodes + overlay.num_edges)

    def test_decoded_overlay_validates(self, overlay_family40, physical40):
        overlays, _ranks = overlay_family40
        decoded = decode_overlay(encode_overlay(overlays[0]))
        decoded.validate(expected_nodes=physical40.nodes())


class TestMalformedInput:
    def test_bad_magic_rejected(self):
        with pytest.raises(TopologyError):
            decode_overlay(b"\x00\x01\x02")

    def test_truncated_rejected(self, overlay_family40):
        overlays, _ranks = overlay_family40
        data = encode_overlay(overlays[0]).data
        with pytest.raises(TopologyError):
            decode_overlay(data[: len(data) // 2])

    def test_trailing_bytes_rejected(self, overlay_family40):
        overlays, _ranks = overlay_family40
        data = encode_overlay(overlays[0]).data
        with pytest.raises(TopologyError):
            decode_overlay(data + b"\x00")

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            decode_overlay(b"")


class TestCertification:
    def test_certificates_verify(self, overlay_family40):
        overlays, _ranks = overlay_family40
        backend = FastCryptoBackend(1)
        committee = [0, 1, 2, 3]
        backend.setup_committee(committee, threshold=3)
        certificates = certify_overlays(overlays, backend, committee)
        assert len(certificates) == len(overlays)
        for certificate in certificates:
            assert certificate.verify(backend)

    def test_tampered_certificate_fails(self, overlay_family40):
        overlays, _ranks = overlay_family40
        backend = FastCryptoBackend(1)
        committee = [0, 1, 2, 3]
        backend.setup_committee(committee, threshold=3)
        certificate = certify_overlays(overlays[:1], backend, committee)[0]
        tampered = type(certificate)(
            encoded=EncodedOverlay(
                overlay_id=certificate.encoded.overlay_id,
                data=certificate.encoded.data + b"",
            ),
            signature=object(),
        )
        assert not tampered.verify(backend)

    def test_certificate_bound_to_encoding(self, overlay_family40):
        overlays, _ranks = overlay_family40
        backend = FastCryptoBackend(1)
        committee = [0, 1, 2, 3]
        backend.setup_committee(committee, threshold=3)
        cert_a, cert_b = certify_overlays(overlays[:2], backend, committee)
        swapped = type(cert_a)(encoded=cert_b.encoded, signature=cert_a.signature)
        assert not swapped.verify(backend)

    def test_certificate_size_includes_signature(self, overlay_family40):
        overlays, _ranks = overlay_family40
        backend = FastCryptoBackend(1)
        committee = [0, 1, 2, 3]
        backend.setup_committee(committee, threshold=3)
        certificate = certify_overlays(overlays[:1], backend, committee)[0]
        assert certificate.size_bytes > certificate.encoded.size_bytes
