"""Unit tests for the Eq. (1) objective function."""

import pytest

from repro.overlay.base import Overlay
from repro.overlay.objective import ObjectiveConfig, evaluate_overlay
from repro.overlay.rank import RankTracker


class _UnitSpace:
    def are_connected(self, u, v):
        return u != v

    def latency(self, u, v):
        return 1.0


def build_overlay(broken: bool = False) -> Overlay:
    overlay = Overlay.empty(0, f=1, entry_points=[0, 1])
    overlay.add_node(2, 1)
    overlay.add_node(3, 1)
    overlay.add_node(4, 2)
    for entry in (0, 1):
        overlay.add_edge(entry, 2)
        overlay.add_edge(entry, 3)
    overlay.add_edge(2, 4)
    if not broken:
        overlay.add_edge(3, 4)
    return overlay


class TestObjective:
    def test_terms_are_composed(self):
        overlay = build_overlay()
        value = evaluate_overlay(overlay, _UnitSpace(), RankTracker(overlay.nodes()))
        assert value.total == pytest.approx(
            value.num_edges
            + value.avg_latency
            + value.connectivity_penalty
            + value.path_penalty
            + value.rank_penalty
        )

    def test_edge_term_scales_with_edges(self):
        config = ObjectiveConfig(edge_weight=1.0)
        overlay = build_overlay()
        value = evaluate_overlay(
            overlay, _UnitSpace(), RankTracker(overlay.nodes()), config
        )
        assert value.num_edges == overlay.num_edges

    def test_avg_latency_from_entries(self):
        overlay = build_overlay()
        value = evaluate_overlay(overlay, _UnitSpace(), RankTracker(overlay.nodes()))
        # arrivals: 0,0,1,1,2 -> avg 0.8
        assert value.avg_latency == pytest.approx(0.8)

    def test_connectivity_penalty_counts_violations(self):
        overlay = build_overlay()
        honest = evaluate_overlay(
            overlay, _UnitSpace(), RankTracker()
        ).connectivity_penalty
        # Dropping an entry edge leaves node 2 with one predecessor.
        overlay.remove_edge(0, 2)
        broken = evaluate_overlay(
            overlay, _UnitSpace(), RankTracker()
        ).connectivity_penalty
        assert broken > honest

    def test_path_penalty_for_unreachable(self):
        overlay = build_overlay()
        overlay.remove_edge(2, 4)
        overlay.remove_edge(3, 4)
        value = evaluate_overlay(overlay, _UnitSpace(), RankTracker())
        assert value.path_penalty > 0

    def test_rank_penalty_prefers_high_rank_near_root(self):
        """Placing the historically favoured node near the root costs more."""

        ranks = RankTracker([0, 1, 2, 3, 4])
        ranks.absorb_overlay({0: 0, 1: 0, 2: 5, 3: 5, 4: 5})
        # Overlay A keeps 0,1 (low rank = favoured before) as entries again.
        overlay_a = build_overlay()
        value_a = evaluate_overlay(overlay_a, _UnitSpace(), ranks)

        # Overlay B instead puts 2,3 (high rank) at the entries.
        overlay_b = Overlay.empty(0, f=1, entry_points=[2, 3])
        overlay_b.add_node(0, 1)
        overlay_b.add_node(1, 1)
        overlay_b.add_node(4, 2)
        for entry in (2, 3):
            overlay_b.add_edge(entry, 0)
            overlay_b.add_edge(entry, 1)
        overlay_b.add_edge(0, 4)
        overlay_b.add_edge(1, 4)
        value_b = evaluate_overlay(overlay_b, _UnitSpace(), ranks)

        assert value_b.rank_penalty < value_a.rank_penalty

    def test_zero_rank_history_no_penalty(self):
        overlay = build_overlay()
        value = evaluate_overlay(overlay, _UnitSpace(), RankTracker(overlay.nodes()))
        assert value.rank_penalty == 0.0
