"""Unit tests for accumulated-rank tracking."""

import pytest

from repro.overlay.rank import RankTracker


class TestRankTracker:
    def test_initial_ranks_zero(self):
        tracker = RankTracker([1, 2, 3])
        assert tracker.rank(1) == 0
        assert tracker.rank(99) == 0  # unknown nodes default to 0

    def test_add_depth_accumulates(self):
        tracker = RankTracker([1])
        tracker.add_depth(1, 3)
        tracker.add_depth(1, 2)
        assert tracker.rank(1) == 5

    def test_negative_depth_rejected(self):
        tracker = RankTracker([1])
        with pytest.raises(ValueError):
            tracker.add_depth(1, -1)

    def test_absorb_overlay(self):
        tracker = RankTracker([1, 2])
        tracker.absorb_overlay({1: 0, 2: 4})
        assert tracker.rank(1) == 0 and tracker.rank(2) == 4
        assert tracker.max_rank() == 4

    def test_snapshot_is_copy(self):
        tracker = RankTracker([1])
        snap = tracker.snapshot()
        snap[1] = 99
        assert tracker.rank(1) == 0

    def test_selection_prefers_high_rank(self):
        tracker = RankTracker([1, 2, 3])
        tracker.add_depth(2, 5)  # node 2 was deepest before
        chosen = tracker.select_for_near_root([1, 2, 3], 1, latency_key=lambda n: 0.0)
        assert chosen == [2]

    def test_selection_ties_break_by_latency(self):
        tracker = RankTracker([1, 2])
        chosen = tracker.select_for_near_root(
            [1, 2], 1, latency_key=lambda n: {1: 9.0, 2: 1.0}[n]
        )
        assert chosen == [2]

    def test_selection_count_validation(self):
        tracker = RankTracker([1])
        with pytest.raises(ValueError):
            tracker.select_for_near_root([1], -1, latency_key=lambda n: 0.0)

    def test_selection_handles_short_candidate_list(self):
        tracker = RankTracker([1, 2])
        assert len(tracker.select_for_near_root([1], 5, lambda n: 0.0)) == 1

    def test_forget(self):
        tracker = RankTracker([1])
        tracker.add_depth(1, 7)
        tracker.forget(1)
        assert tracker.rank(1) == 0
        assert tracker.max_rank() == 0


class TestRoleRotation:
    def test_ranks_rotate_entry_choice(self):
        """Simulates Alg. 1's rank update over 3 rounds: the entry role moves."""

        tracker = RankTracker([1, 2, 3, 4])
        entries_seen = []
        for _ in range(3):
            entry = tracker.select_for_near_root([1, 2, 3, 4], 1, lambda n: 0.0)[0]
            entries_seen.append(entry)
            # The entry gets depth 0, everyone else depth 2.
            for node in (1, 2, 3, 4):
                tracker.add_depth(node, 0 if node == entry else 2)
        assert len(set(entries_seen)) == 3  # never the same node twice
