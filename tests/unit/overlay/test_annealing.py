"""Unit tests for simulated annealing (Algorithms 2 and 3)."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.overlay.annealing import (
    AnnealingConfig,
    GenerateNeighborConfig,
    anneal,
    generate_neighbor,
)
from repro.overlay.objective import evaluate_overlay
from repro.overlay.rank import RankTracker
from repro.overlay.robust_tree import build_robust_tree


@pytest.fixture()
def tree_and_ranks(physical40, space40):
    ranks = RankTracker(physical40.nodes())
    tree = build_robust_tree(
        physical40.nodes(), space40, f=1, overlay_id=0, ranks=ranks, seed=3
    )
    return tree, ranks


class TestConfigs:
    def test_annealing_config_validation(self):
        with pytest.raises(ConfigurationError):
            AnnealingConfig(cooling_rate=1.0)
        with pytest.raises(ConfigurationError):
            AnnealingConfig(initial_temperature=0)
        with pytest.raises(ConfigurationError):
            AnnealingConfig(moves_per_temperature=0)


class TestGenerateNeighbor:
    def test_neighbor_preserves_invariants(self, tree_and_ranks, space40, physical40):
        tree, ranks = tree_and_ranks
        rng = random.Random(1)
        current = tree
        for _ in range(15):
            current = generate_neighbor(current, space40, ranks, rng)
            current.validate(expected_nodes=physical40.nodes())

    def test_neighbor_does_not_mutate_input(self, tree_and_ranks, space40):
        tree, ranks = tree_and_ranks
        edges_before = set(tree.edges())
        generate_neighbor(tree, space40, ranks, random.Random(2))
        assert set(tree.edges()) == edges_before

    def test_greedy_filter_never_worsens(self, tree_and_ranks, space40):
        tree, ranks = tree_and_ranks
        config = GenerateNeighborConfig(greedy_filter=True)
        rng = random.Random(3)
        baseline = evaluate_overlay(tree, space40, ranks).total
        neighbor = generate_neighbor(tree, space40, ranks, rng, config)
        assert evaluate_overlay(neighbor, space40, ranks).total <= baseline


class TestAnneal:
    def test_anneal_improves_objective(self, tree_and_ranks, space40):
        tree, ranks = tree_and_ranks
        config = AnnealingConfig(
            initial_temperature=20.0,
            min_temperature=2.0,
            cooling_rate=0.7,
            moves_per_temperature=3,
        )
        before = evaluate_overlay(tree, space40, ranks).total
        optimized = anneal(tree, space40, ranks, config, rng=random.Random(4))
        after = evaluate_overlay(optimized, space40, ranks).total
        assert after <= before

    def test_anneal_output_valid(self, tree_and_ranks, space40, physical40):
        tree, ranks = tree_and_ranks
        config = AnnealingConfig(
            initial_temperature=10.0, min_temperature=3.0, cooling_rate=0.6,
            moves_per_temperature=2,
        )
        optimized = anneal(tree, space40, ranks, config, rng=random.Random(5))
        optimized.validate(expected_nodes=physical40.nodes())

    def test_anneal_deterministic_for_rng(self, tree_and_ranks, space40):
        tree, ranks = tree_and_ranks
        config = AnnealingConfig(
            initial_temperature=10.0, min_temperature=3.0, cooling_rate=0.6,
            moves_per_temperature=2,
        )
        a = anneal(tree, space40, ranks, config, rng=random.Random(6))
        b = anneal(tree, space40, ranks, config, rng=random.Random(6))
        assert set(a.edges()) == set(b.edges())
