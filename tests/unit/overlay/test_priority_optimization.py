"""Unit tests for the §VIII-D validator-priority overlay optimization."""

import random
import statistics

import pytest

from repro.overlay.annealing import AnnealingConfig, anneal
from repro.overlay.objective import ObjectiveConfig, evaluate_overlay
from repro.overlay.rank import RankTracker
from repro.overlay.robust_tree import build_robust_tree, prune_to_minimal


@pytest.fixture()
def setup(physical40, space40):
    ranks = RankTracker(physical40.nodes())
    tree = prune_to_minimal(
        build_robust_tree(
            physical40.nodes(), space40, f=1, overlay_id=0, ranks=ranks, seed=9
        ),
        space40,
    )
    validators = frozenset(physical40.nodes()[30:38])
    return tree, ranks, validators


class TestPriorityObjective:
    def test_priority_term_zero_without_priority_nodes(self, setup, space40):
        tree, ranks, _validators = setup
        value = evaluate_overlay(tree, space40, ranks)
        assert value.priority_penalty == 0.0

    def test_priority_term_positive_with_priority_nodes(self, setup, space40):
        tree, ranks, validators = setup
        config = ObjectiveConfig(priority_nodes=validators)
        value = evaluate_overlay(tree, space40, ranks, config)
        assert value.priority_penalty > 0.0
        assert value.total > evaluate_overlay(tree, space40, ranks).total

    def test_priority_term_tracks_validator_latency(self, setup, space40):
        tree, ranks, validators = setup
        config = ObjectiveConfig(priority_nodes=validators, priority_weight=1.0)
        value = evaluate_overlay(tree, space40, ranks, config)
        arrivals = tree.arrival_times(space40)
        expected = statistics.mean(arrivals[v] for v in validators)
        assert value.priority_penalty == pytest.approx(expected)


class TestPriorityAnnealing:
    def test_annealing_reduces_validator_latency(self, setup, space40):
        """On average over seeds, the priority term keeps validators at least
        as fast as plain optimization (annealing is stochastic, so the claim
        is statistical, not per-seed)."""

        tree, ranks, validators = setup
        annealing = AnnealingConfig(
            initial_temperature=30.0,
            min_temperature=1.0,
            cooling_rate=0.85,
            moves_per_temperature=4,
        )

        def validator_latency(overlay):
            arrivals = overlay.arrival_times(space40)
            return statistics.mean(arrivals[v] for v in validators)

        plain_latencies, prioritized_latencies = [], []
        for seed in range(4):
            plain = anneal(
                tree, space40, ranks, config=annealing, rng=random.Random(seed)
            )
            prioritized = anneal(
                tree,
                space40,
                ranks,
                config=annealing,
                objective_config=ObjectiveConfig(
                    priority_nodes=validators, priority_weight=5.0
                ),
                rng=random.Random(seed),
            )
            plain_latencies.append(validator_latency(plain))
            prioritized_latencies.append(validator_latency(prioritized))
        assert statistics.mean(prioritized_latencies) <= statistics.mean(
            plain_latencies
        ) + 5.0

    def test_prioritized_overlay_still_valid(self, setup, space40, physical40):
        tree, ranks, validators = setup
        optimized = anneal(
            tree,
            space40,
            ranks,
            config=AnnealingConfig(
                initial_temperature=10.0, min_temperature=2.0,
                cooling_rate=0.7, moves_per_temperature=2,
            ),
            objective_config=ObjectiveConfig(priority_nodes=validators),
            rng=random.Random(6),
        )
        optimized.validate(expected_nodes=physical40.nodes())
