"""Unit tests for the Overlay abstraction."""

import math

import pytest

from repro.errors import OverlayConnectivityError, TopologyError
from repro.overlay.base import Overlay


def small_overlay() -> Overlay:
    """Entries {0, 1}; depth-1 nodes {2, 3}; depth-2 node {4}; f = 1."""

    overlay = Overlay.empty(overlay_id=0, f=1, entry_points=[0, 1])
    overlay.add_node(2, 1)
    overlay.add_node(3, 1)
    overlay.add_node(4, 2)
    for entry in (0, 1):
        overlay.add_edge(entry, 2)
        overlay.add_edge(entry, 3)
    overlay.add_edge(2, 4)
    overlay.add_edge(3, 4)
    return overlay


class _UnitSpace:
    """Every pair connected with latency 1 (for arrival-time tests)."""

    def are_connected(self, u, v):
        return u != v

    def latency(self, u, v):
        return 1.0


class TestConstruction:
    def test_duplicate_entries_rejected(self):
        with pytest.raises(TopologyError):
            Overlay.empty(0, 1, [5, 5])

    def test_duplicate_node_rejected(self):
        overlay = small_overlay()
        with pytest.raises(TopologyError):
            overlay.add_node(2, 1)

    def test_depth_zero_reserved_for_entries(self):
        overlay = small_overlay()
        with pytest.raises(TopologyError):
            overlay.add_node(9, 0)

    def test_edge_must_deepen(self):
        overlay = small_overlay()
        with pytest.raises(TopologyError):
            overlay.add_edge(2, 3)  # same depth
        with pytest.raises(TopologyError):
            overlay.add_edge(4, 2)  # backwards

    def test_edge_endpoints_must_exist(self):
        overlay = small_overlay()
        with pytest.raises(TopologyError):
            overlay.add_edge(0, 99)

    def test_add_edge_idempotent(self):
        overlay = small_overlay()
        before = overlay.num_edges
        overlay.add_edge(0, 2)
        assert overlay.num_edges == before

    def test_remove_edge(self):
        overlay = small_overlay()
        overlay.remove_edge(2, 4)
        assert 4 not in overlay.successors[2]
        with pytest.raises(TopologyError):
            overlay.remove_edge(2, 4)


class TestInspection:
    def test_counts(self):
        overlay = small_overlay()
        assert overlay.num_nodes == 5
        assert overlay.num_edges == 6
        assert overlay.max_depth() == 2

    def test_layers(self):
        overlay = small_overlay()
        assert overlay.layers() == {0: [0, 1], 1: [2, 3], 2: [4]}

    def test_leaf_and_entry_predicates(self):
        overlay = small_overlay()
        assert overlay.is_entry(0) and not overlay.is_entry(2)
        assert overlay.is_leaf(4) and not overlay.is_leaf(2)

    def test_valid_senders(self):
        overlay = small_overlay()
        assert overlay.valid_senders(4) == frozenset({2, 3})
        assert overlay.valid_senders(0) == frozenset()

    def test_required_predecessors(self):
        overlay = small_overlay()
        assert overlay.required_predecessors(0) == 0
        assert overlay.required_predecessors(2) == 2
        assert overlay.required_predecessors(4) == 2

    def test_shallower_counts(self):
        overlay = small_overlay()
        assert overlay.shallower_counts() == {0: 0, 1: 2, 2: 4}

    def test_copy_is_independent(self):
        overlay = small_overlay()
        clone = overlay.copy()
        clone.remove_edge(2, 4)
        assert 4 in overlay.successors[2]

    def test_forwarding_load(self):
        overlay = small_overlay()
        load = overlay.forwarding_load()
        assert load[0] == 2 and load[4] == 0


class TestAnalysis:
    def test_reachability_full(self):
        overlay = small_overlay()
        assert overlay.reachable() == {0, 1, 2, 3, 4}

    def test_reachability_with_failures(self):
        overlay = small_overlay()
        # One failed relay cannot cut node 4 off (f+1 = 2 predecessors).
        assert 4 in overlay.reachable(failed=[2])
        assert 4 in overlay.reachable(failed=[3])
        # Both relays failing does.
        assert 4 not in overlay.reachable(failed=[2, 3])

    def test_arrival_times(self):
        overlay = small_overlay()
        times = overlay.arrival_times(_UnitSpace())
        assert times[0] == 0.0 and times[1] == 0.0
        assert times[2] == 1.0 and times[4] == 2.0

    def test_arrival_unreachable_is_inf(self):
        overlay = small_overlay()
        overlay.remove_edge(2, 4)
        overlay.remove_edge(3, 4)
        assert math.isinf(overlay.arrival_times(_UnitSpace())[4])


class TestValidation:
    def test_valid_overlay_passes(self):
        overlay = small_overlay()
        overlay.validate(expected_nodes=range(5))
        assert overlay.tolerates_local_faults()

    def test_missing_nodes_detected(self):
        overlay = small_overlay()
        with pytest.raises(OverlayConnectivityError):
            overlay.validate(expected_nodes=range(6))

    def test_wrong_entry_count_detected(self):
        overlay = Overlay.empty(0, f=2, entry_points=[0, 1])  # needs 3
        with pytest.raises(OverlayConnectivityError):
            overlay.validate()

    def test_insufficient_predecessors_detected(self):
        overlay = small_overlay()
        overlay.remove_edge(0, 2)
        with pytest.raises(OverlayConnectivityError):
            overlay.validate()
        assert not overlay.tolerates_local_faults()

    def test_unreachable_node_detected(self):
        overlay = small_overlay()
        overlay.remove_edge(2, 4)
        overlay.remove_edge(3, 4)
        with pytest.raises(OverlayConnectivityError):
            overlay.validate()
