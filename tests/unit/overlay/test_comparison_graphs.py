"""Unit tests for the Fig. 2 comparison overlays."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.overlay.chordal_ring import build_chordal_ring
from repro.overlay.hypercube import build_hypercube
from repro.overlay.random_graph import build_random_connected_overlay

NODES = list(range(24))


class TestChordalRing:
    def test_connectivity(self):
        graph = build_chordal_ring(NODES, f=1)
        assert nx.node_connectivity(graph) >= 2

    def test_higher_f(self):
        graph = build_chordal_ring(NODES, f=3)
        assert nx.node_connectivity(graph) >= 4

    def test_long_chords_shrink_diameter(self):
        with_chords = build_chordal_ring(NODES, f=1, long_chords=True)
        without = build_chordal_ring(NODES, f=1, long_chords=False)
        assert nx.diameter(with_chords) < nx.diameter(without)

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            build_chordal_ring([1, 2], f=1)

    def test_all_nodes_present(self):
        graph = build_chordal_ring(NODES, f=1)
        assert set(graph.nodes) == set(NODES)


class TestHypercube:
    def test_power_of_two_is_regular(self):
        graph = build_hypercube(list(range(16)))
        assert all(degree == 4 for _node, degree in graph.degree)

    def test_incomplete_hypercube_connected(self):
        graph = build_hypercube(list(range(23)))
        assert nx.is_connected(graph)

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            build_hypercube([1])

    def test_two_nodes(self):
        graph = build_hypercube([7, 8])
        assert graph.has_edge(7, 8)

    def test_edges_follow_bit_flips(self):
        nodes = list(range(8))
        graph = build_hypercube(nodes)
        for u, v in graph.edges:
            xor = nodes.index(u) ^ nodes.index(v)
            assert xor & (xor - 1) == 0  # exactly one differing bit


class TestRandomOverlay:
    def test_connectivity_and_degree(self):
        graph = build_random_connected_overlay(NODES, f=2, seed=4)
        assert nx.node_connectivity(graph) >= 3
        assert all(degree >= 3 for _node, degree in graph.degree)

    def test_deterministic(self):
        a = build_random_connected_overlay(NODES, f=1, seed=9)
        b = build_random_connected_overlay(NODES, f=1, seed=9)
        assert set(a.edges) == set(b.edges)

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            build_random_connected_overlay([1, 2], f=1)
