"""Unit tests for vertex-disjoint path discovery."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.overlay.paths import find_disjoint_paths


def verify_disjoint(paths):
    """Interior nodes must not repeat across paths."""

    interiors = []
    for path in paths:
        interiors.extend(path[1:-1])
    assert len(interiors) == len(set(interiors))


class TestFindDisjointPaths:
    def test_basic_two_paths(self, physical40):
        targets = [10, 20, 30]
        paths = find_disjoint_paths(physical40.graph, 0, targets, 2)
        assert len(paths) == 2
        for path in paths:
            assert path[0] == 0
            assert path[-1] in targets
        ends = [p[-1] for p in paths]
        assert len(set(ends)) == 2
        verify_disjoint(paths)

    def test_source_is_target(self, physical40):
        paths = find_disjoint_paths(physical40.graph, 5, [5, 9], 2)
        assert [5] in paths
        assert len(paths) == 2
        verify_disjoint(paths)

    def test_adjacent_target_direct_path(self, physical40):
        neighbor = physical40.neighbors(0)[0]
        paths = find_disjoint_paths(physical40.graph, 0, [neighbor], 1)
        assert paths == [[0, neighbor]]

    def test_count_validation(self, physical40):
        with pytest.raises(TopologyError):
            find_disjoint_paths(physical40.graph, 0, [1], 0)

    def test_too_few_targets_rejected(self, physical40):
        with pytest.raises(TopologyError):
            find_disjoint_paths(physical40.graph, 0, [1], 2)

    def test_duplicate_targets_deduplicated(self, physical40):
        with pytest.raises(TopologyError):
            find_disjoint_paths(physical40.graph, 0, [1, 1], 2)

    def test_disconnected_raises(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edge(1, 2)
        with pytest.raises(TopologyError):
            find_disjoint_paths(graph, 0, [2], 1)

    def test_bottleneck_raises(self):
        # 0 - 1 - {2, 3}: only one vertex-disjoint route out of 0.
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (1, 3)])
        with pytest.raises(TopologyError):
            find_disjoint_paths(graph, 0, [2, 3], 2)

    def test_paths_prefer_short(self, physical40):
        paths = find_disjoint_paths(physical40.graph, 0, physical40.nodes()[1:6], 2)
        assert len(paths[0]) <= len(paths[-1])
