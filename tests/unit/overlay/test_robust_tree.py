"""Unit tests for robust-tree construction (Algorithm 1)."""

import pytest

from repro.errors import TopologyError
from repro.overlay.base import PhysicalSpace, TransportSpace
from repro.overlay.rank import RankTracker
from repro.overlay.robust_tree import (
    RobustTreeConfig,
    build_overlay_family,
    build_robust_tree,
    prune_to_minimal,
)


@pytest.fixture()
def tree40(physical40, space40):
    ranks = RankTracker(physical40.nodes())
    tree = build_robust_tree(
        physical40.nodes(), space40, f=1, overlay_id=0, ranks=ranks, seed=3
    )
    return tree, ranks


class TestConstruction:
    def test_all_nodes_included(self, tree40, physical40):
        tree, _ranks = tree40
        assert set(tree.nodes()) == set(physical40.nodes())

    def test_entry_count_is_f_plus_one(self, tree40):
        tree, _ranks = tree40
        assert len(tree.entry_points) == 2

    def test_layer_capacities_follow_doubling(self, tree40):
        tree, _ranks = tree40
        layers = tree.layers()
        for depth, nodes in layers.items():
            if depth == 0:
                assert len(nodes) == 2
            else:
                assert len(nodes) <= (2**depth) * 2

    def test_layered_nodes_connect_to_all_previous(self, tree40):
        tree, _ranks = tree40
        layers = tree.layers()
        for depth in sorted(layers)[1:]:
            previous = set(layers[depth - 1])
            for node in layers[depth]:
                predecessors = set(tree.predecessors[node])
                # In transport space every layered node is wired to the whole
                # previous layer (or at least f+1 of it after missing-node
                # attachment).
                assert len(predecessors & previous) >= min(2, len(previous)) or len(
                    predecessors
                ) >= 2

    def test_validates(self, tree40, physical40):
        tree, _ranks = tree40
        tree.validate(expected_nodes=physical40.nodes())

    def test_rank_update_applied(self, tree40):
        tree, ranks = tree40
        for node, depth in tree.depth_of.items():
            assert ranks.rank(node) == depth

    def test_too_few_nodes_rejected(self, space40):
        with pytest.raises(TopologyError):
            build_robust_tree([1], space40, f=1, overlay_id=0, ranks=RankTracker())

    def test_config_validation(self):
        with pytest.raises(TopologyError):
            RobustTreeConfig(branching_base=1)
        with pytest.raises(TopologyError):
            RobustTreeConfig(layer_connect_count=0)

    def test_layer_connect_cap(self, physical40, space40):
        config = RobustTreeConfig(layer_connect_count=3)
        tree = build_robust_tree(
            physical40.nodes(),
            space40,
            f=1,
            overlay_id=0,
            ranks=RankTracker(physical40.nodes()),
            config=config,
            seed=3,
        )
        tree.validate(expected_nodes=physical40.nodes())

    def test_physical_space_construction(self, physical40):
        """Over the sparse graph most nodes attach via the missing-node path."""

        space = PhysicalSpace(physical40)
        tree = build_robust_tree(
            physical40.nodes(),
            space,
            f=1,
            overlay_id=0,
            ranks=RankTracker(physical40.nodes()),
            seed=3,
        )
        tree.validate(expected_nodes=physical40.nodes())
        # Every overlay edge must be a physical link.
        for parent, child in tree.edges():
            assert physical40.has_edge(parent, child)


class TestPruning:
    def test_prune_reduces_edges(self, tree40, space40):
        tree, _ranks = tree40
        pruned = prune_to_minimal(tree, space40)
        assert pruned.num_edges <= tree.num_edges

    def test_pruned_tree_still_valid(self, tree40, space40, physical40):
        tree, _ranks = tree40
        pruned = prune_to_minimal(tree, space40)
        pruned.validate(expected_nodes=physical40.nodes())

    def test_prune_keeps_f_plus_one_predecessors(self, tree40, space40):
        tree, _ranks = tree40
        pruned = prune_to_minimal(tree, space40)
        for node in pruned.nodes():
            if not pruned.is_entry(node):
                assert len(pruned.predecessors[node]) >= 2

    def test_prune_prefers_low_latency_parents(self, tree40, space40):
        tree, _ranks = tree40
        pruned = prune_to_minimal(tree, space40)
        for node in pruned.nodes():
            kept = pruned.predecessors[node]
            dropped = set(tree.predecessors[node]) - set(kept)
            if not kept or not dropped:
                continue
            worst_kept = max(space40.latency(p, node) for p in kept)
            best_dropped = min(space40.latency(p, node) for p in dropped)
            assert worst_kept <= best_dropped + 1e-9


class TestFamily:
    def test_family_size(self, overlay_family40, physical40):
        overlays, _ranks = overlay_family40
        assert len(overlays) == 3
        for overlay in overlays:
            overlay.validate(expected_nodes=physical40.nodes())

    def test_entry_points_rotate(self, overlay_family40):
        overlays, _ranks = overlay_family40
        entry_sets = [set(o.entry_points) for o in overlays]
        # No two overlays share their full entry set.
        for i in range(len(entry_sets)):
            for j in range(i + 1, len(entry_sets)):
                assert entry_sets[i] != entry_sets[j]

    def test_invalid_k_rejected(self, physical40):
        with pytest.raises(TopologyError):
            build_overlay_family(physical40, f=1, k=0)

    def test_unoptimized_family(self, physical40):
        overlays, _ranks = build_overlay_family(
            physical40, f=1, k=2, optimize=False, seed=1
        )
        assert len(overlays) == 2
        for overlay in overlays:
            overlay.validate(expected_nodes=physical40.nodes())
