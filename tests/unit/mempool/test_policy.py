"""Admission control, eviction, TTL expiry, and the policy=None regression."""

import pytest

from repro.mempool import Mempool, MempoolPolicy, Transaction


def tx(tx_id, fee=0.0, origin=0):
    return Transaction(tx_id=tx_id, origin=origin, created_at=0.0, fee=fee)


class TestPolicyValidation:
    def test_field_floors(self):
        with pytest.raises(ValueError):
            MempoolPolicy(max_size=0)
        with pytest.raises(ValueError):
            MempoolPolicy(ttl_ms=0.0)
        with pytest.raises(ValueError):
            MempoolPolicy(min_fee=-1.0)

    def test_unbounded_predicate(self):
        assert MempoolPolicy().is_unbounded
        assert not MempoolPolicy(max_size=10).is_unbounded
        assert not MempoolPolicy(ttl_ms=100.0).is_unbounded
        assert not MempoolPolicy(min_fee=0.5).is_unbounded


class TestDefaultPolicyIsUnbounded:
    """The conservative-default regression: MempoolPolicy() must behave
    byte-identically to the historical policy=None mempool."""

    def test_identical_contents_order_and_commitment(self):
        bare = Mempool(owner=0)
        governed = Mempool(owner=0)
        governed.install_policy(MempoolPolicy())
        txs = [tx(i, fee=float((i * 7) % 5)) for i in range(200)]
        for i, t in enumerate(txs):
            now = float(i % 13)
            assert bare.add(t, now) == governed.add(t, now)
        assert len(bare) == len(governed) == 200
        assert bare.known_ids() == governed.known_ids()
        assert bare.commitment() == governed.commitment()
        assert bare.in_arrival_order() == governed.in_arrival_order()
        assert bare.in_priority_order() == governed.in_priority_order()
        assert governed.evicted == governed.expired == governed.rejected == 0

    def test_first_arrival_still_wins(self):
        governed = Mempool(owner=0)
        governed.install_policy(MempoolPolicy())
        t = tx(1)
        assert governed.add(t, 5.0)
        assert not governed.add(t, 9.0)
        assert governed.arrival_time(1) == 5.0


class TestSizeCap:
    def make(self, max_size=3):
        drops = []
        pool = Mempool(owner=0)
        pool.install_policy(
            MempoolPolicy(max_size=max_size),
            on_drop=lambda reason, victim: drops.append((reason, victim.tx_id)),
        )
        return pool, drops

    def test_evicts_cheapest_for_a_strictly_higher_bid(self):
        pool, drops = self.make(max_size=2)
        pool.add(tx(1, fee=1.0), 0.0)
        pool.add(tx(2, fee=3.0), 1.0)
        assert pool.add(tx(3, fee=2.0), 2.0)
        assert 1 not in pool and 3 in pool
        assert pool.evicted == 1
        assert drops == [("evicted", 1)]

    def test_fee_tie_rejects_the_newcomer(self):
        pool, drops = self.make(max_size=1)
        pool.add(tx(1, fee=2.0), 0.0)
        assert not pool.add(tx(2, fee=2.0), 1.0)
        assert 1 in pool and 2 not in pool
        assert pool.rejected == 1
        assert drops == [("rejected", 2)]

    def test_tie_among_residents_evicts_latest_arrival(self):
        pool, _ = self.make(max_size=2)
        pool.add(tx(1, fee=1.0), 0.0)
        pool.add(tx(2, fee=1.0), 5.0)
        assert pool.add(tx(3, fee=9.0), 6.0)
        assert 1 in pool and 2 not in pool

    def test_cap_never_exceeded_under_churn(self):
        pool, _ = self.make(max_size=5)
        for i in range(100):
            pool.add(tx(i, fee=float(i % 17)), float(i))
            assert len(pool) <= 5
        assert pool.evicted + pool.rejected == 95


class TestMinFee:
    def test_below_floor_is_rejected(self):
        pool = Mempool(owner=0)
        pool.install_policy(MempoolPolicy(min_fee=1.0))
        assert not pool.add(tx(1, fee=0.5), 0.0)
        assert pool.add(tx(2, fee=1.0), 0.0)
        assert pool.rejected == 1


class TestTtl:
    def test_lazy_sweep_on_add(self):
        pool = Mempool(owner=0)
        pool.install_policy(MempoolPolicy(ttl_ms=100.0))
        pool.add(tx(1), 0.0)
        pool.add(tx(2), 150.0)
        pool.add(tx(3), 200.0)  # sweeps tx 1 (cutoff 100) but not tx 2
        assert 1 not in pool and 2 in pool and 3 in pool
        assert pool.expired == 1

    def test_explicit_expire(self):
        pool = Mempool(owner=0)
        pool.install_policy(MempoolPolicy(ttl_ms=100.0))
        pool.add(tx(1), 0.0)
        pool.add(tx(2), 10.0)
        assert pool.expire(500.0) == 2
        assert len(pool) == 0

    def test_expire_is_a_noop_without_ttl(self):
        pool = Mempool(owner=0)
        pool.install_policy(MempoolPolicy(max_size=10))
        pool.add(tx(1), 0.0)
        assert pool.expire(1e9) == 0
        assert 1 in pool
        bare = Mempool(owner=0)
        assert bare.expire(1e9) == 0


class TestPopNext:
    def test_requires_a_policy(self):
        with pytest.raises(RuntimeError):
            Mempool(owner=0).pop_next()

    def test_fifo_order(self):
        pool = Mempool(owner=0)
        pool.install_policy(MempoolPolicy())
        pool.add(tx(2), 0.0)
        pool.add(tx(1), 1.0)
        assert pool.pop_next()[0].tx_id == 2
        assert pool.pop_next()[0].tx_id == 1
        assert pool.pop_next() is None

    def test_priority_order_fee_then_arrival_then_id(self):
        pool = Mempool(owner=0)
        pool.install_policy(MempoolPolicy())
        pool.add(tx(1, fee=1.0), 0.0)
        pool.add(tx(2, fee=5.0), 1.0)
        pool.add(tx(3, fee=5.0), 0.5)
        order = [pool.pop_next(priority=True)[0].tx_id for _ in range(3)]
        assert order == [3, 2, 1]
        assert len(pool) == 0

    def test_pop_returns_arrival_stamp(self):
        pool = Mempool(owner=0)
        pool.install_policy(MempoolPolicy())
        pool.add(tx(1), 42.0)
        popped, arrival = pool.pop_next()
        assert popped.tx_id == 1 and arrival == 42.0

    def test_stale_heap_entries_are_skipped(self):
        pool = Mempool(owner=0)
        pool.install_policy(MempoolPolicy(max_size=2))
        pool.add(tx(1, fee=1.0), 0.0)
        pool.add(tx(2, fee=2.0), 1.0)
        pool.add(tx(3, fee=9.0), 2.0)  # evicts tx 1, stale entries remain
        assert pool.pop_next(priority=True)[0].tx_id == 3
        assert pool.pop_next(priority=True)[0].tx_id == 2
        assert pool.pop_next(priority=True) is None


class TestInstallPolicy:
    def test_backfills_existing_residents(self):
        pool = Mempool(owner=0)
        pool.add(tx(1, fee=1.0), 5.0)
        pool.add(tx(2, fee=7.0), 3.0)
        pool.install_policy(MempoolPolicy(max_size=2))
        # Service indexes see the pre-policy residents.
        assert pool.pop_next(priority=True)[0].tx_id == 2
        assert pool.pop_next()[0].tx_id == 1

    def test_backfilled_residents_are_evictable(self):
        pool = Mempool(owner=0)
        pool.add(tx(1, fee=1.0), 0.0)
        pool.add(tx(2, fee=5.0), 1.0)
        pool.install_policy(MempoolPolicy(max_size=2))
        assert pool.add(tx(3, fee=9.0), 2.0)
        assert 1 not in pool
        assert pool.evicted == 1


class TestIndexCompaction:
    """The lazy-deletion indexes must stay O(live), not O(ever admitted) —
    the constant-memory claim of a sustained million-transaction run."""

    def test_sustained_churn_keeps_indexes_bounded(self):
        pool = Mempool(owner=0)
        pool.install_policy(MempoolPolicy(max_size=50, ttl_ms=500.0))
        for i in range(5_000):
            pool.add(tx(i, fee=float((i * 7919) % 101)), float(i))
            if i % 2 == 0:
                pool.pop_next(priority=True)
        assert len(pool) <= 50
        bound = 4 * len(pool) + 64
        assert len(pool._fee_heap) <= bound
        assert len(pool._prio_heap) <= bound
        assert len(pool._fifo) <= bound
        assert len(pool._ttl_queue) <= bound

    def test_compaction_preserves_service_order(self):
        def churn(pool):
            for i in range(2_000):
                pool.add(tx(i, fee=float((i * 31) % 17)), float(i))
            return pool

        compacted = churn(
            (lambda p: (p.install_policy(MempoolPolicy(max_size=20)), p)[1])(
                Mempool(owner=0)
            )
        )
        fees = []
        while (popped := compacted.pop_next(priority=True)) is not None:
            fees.append(popped[0].fee)
        assert fees == sorted(fees, reverse=True)
        assert len(fees) == 20

    def test_compaction_preserves_fifo_order(self):
        pool = Mempool(owner=0)
        pool.install_policy(MempoolPolicy(max_size=30))
        for i in range(1_000):
            pool.add(tx(i, fee=float(i % 7)), float(i))
        arrivals = []
        while (popped := pool.pop_next()) is not None:
            arrivals.append(popped[1])
        assert arrivals == sorted(arrivals)
        assert len(arrivals) == 30
