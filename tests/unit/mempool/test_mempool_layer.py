"""Unit tests for transactions, mempools, blocks and front-run adjudication."""

import pytest

from repro.mempool.blocks import Block, build_block
from repro.mempool.mempool import Mempool
from repro.mempool.ordering import judge_front_running
from repro.mempool.transaction import TX_SIZE_BYTES, Transaction


def tx(origin=0, created=0.0, tag=""):
    return Transaction.create(origin=origin, created_at=created, tag=tag)


class TestTransaction:
    def test_unique_ids(self):
        assert tx().tx_id != tx().tx_id

    def test_default_size_matches_paper(self):
        assert tx().size_bytes == TX_SIZE_BYTES == 250

    def test_digest_stable(self):
        transaction = tx()
        assert transaction.digest() == transaction.digest()
        assert len(transaction.digest()) == 32

    def test_digest_distinct_per_tx(self):
        assert tx().digest() != tx().digest()

    def test_adversarial_tag(self):
        assert tx(tag="adversarial").is_adversarial
        assert not tx(tag="victim").is_adversarial


class TestMempool:
    def test_first_arrival_wins(self):
        pool = Mempool(owner=1)
        transaction = tx()
        assert pool.add(transaction, 5.0)
        assert not pool.add(transaction, 2.0)
        assert pool.arrival_time(transaction.tx_id) == 5.0

    def test_contains_len_get(self):
        pool = Mempool(owner=1)
        transaction = tx()
        pool.add(transaction, 1.0)
        assert transaction.tx_id in pool
        assert len(pool) == 1
        assert pool.get(transaction.tx_id) is transaction
        assert pool.get(999999) is None

    def test_arrival_time_unknown_raises(self):
        pool = Mempool(owner=1)
        with pytest.raises(KeyError):
            pool.arrival_time(42)

    def test_arrival_order(self):
        pool = Mempool(owner=1)
        a, b, c = tx(), tx(), tx()
        pool.add(b, 2.0)
        pool.add(a, 1.0)
        pool.add(c, 3.0)
        assert [t.tx_id for t in pool.in_arrival_order()] == [a.tx_id, b.tx_id, c.tx_id]

    def test_arrival_order_ties_break_by_id(self):
        pool = Mempool(owner=1)
        a, b = tx(), tx()
        pool.add(b, 1.0)
        pool.add(a, 1.0)
        assert [t.tx_id for t in pool.in_arrival_order()] == sorted([a.tx_id, b.tx_id])

    def test_commitment_changes_with_content(self):
        pool = Mempool(owner=1)
        empty_commitment = pool.commitment()
        pool.add(tx(), 1.0)
        assert pool.commitment() != empty_commitment

    def test_commitment_order_independent(self):
        a, b = tx(), tx()
        pool1, pool2 = Mempool(owner=1), Mempool(owner=2)
        pool1.add(a, 1.0)
        pool1.add(b, 2.0)
        pool2.add(b, 1.0)
        pool2.add(a, 2.0)
        assert pool1.commitment() == pool2.commitment()

    def test_reconciliation_sets(self):
        pool = Mempool(owner=1)
        a, b = tx(), tx()
        pool.add(a, 1.0)
        peer_known = frozenset({b.tx_id})
        assert pool.missing_from(peer_known) == [a.tx_id]
        assert pool.absent_locally(peer_known) == [b.tx_id]


class TestBlocks:
    def test_block_orders_by_arrival(self):
        pool = Mempool(owner=9)
        a, b = tx(), tx()
        pool.add(b, 1.0)
        pool.add(a, 2.0)
        block = build_block(pool, now=10.0)
        assert block.tx_ids == (b.tx_id, a.tx_id)
        assert block.proposer == 9

    def test_block_max_transactions(self):
        pool = Mempool(owner=9)
        txs = [tx() for _ in range(5)]
        for index, transaction in enumerate(txs):
            pool.add(transaction, float(index))
        block = build_block(pool, now=0.0, max_transactions=3)
        assert len(block) == 3

    def test_block_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            build_block(Mempool(owner=1), 0.0, max_transactions=-1)

    def test_position_and_contains(self):
        block = Block(proposer=1, created_at=0.0, tx_ids=(5, 7, 9))
        assert block.position_of(7) == 1
        assert 9 in block and 4 not in block
        with pytest.raises(ValueError):
            block.position_of(4)


class TestFrontRunJudging:
    def test_adversarial_first_wins(self):
        block = Block(proposer=1, created_at=0.0, tx_ids=(2, 1))
        verdict = judge_front_running(block, victim_tx=1, adversarial_txs=[2])
        assert verdict.attacker_won
        assert verdict.winning_adversarial_tx == 2

    def test_victim_first_defends(self):
        block = Block(proposer=1, created_at=0.0, tx_ids=(1, 2))
        verdict = judge_front_running(block, victim_tx=1, adversarial_txs=[2])
        assert not verdict.attacker_won
        assert verdict.victim_included

    def test_not_immediately_before_still_counts(self):
        block = Block(proposer=1, created_at=0.0, tx_ids=(2, 7, 8, 1))
        verdict = judge_front_running(block, victim_tx=1, adversarial_txs=[2])
        assert verdict.attacker_won

    def test_victim_censored_with_adversarial_present(self):
        block = Block(proposer=1, created_at=0.0, tx_ids=(2,))
        verdict = judge_front_running(block, victim_tx=1, adversarial_txs=[2])
        assert verdict.attacker_won
        assert not verdict.victim_included

    def test_void_trial_when_neither_present(self):
        block = Block(proposer=1, created_at=0.0, tx_ids=(9,))
        verdict = judge_front_running(block, victim_tx=1, adversarial_txs=[2])
        assert not verdict.attacker_won
        assert not verdict.victim_included

    def test_no_adversarial_txs(self):
        block = Block(proposer=1, created_at=0.0, tx_ids=(1,))
        verdict = judge_front_running(block, victim_tx=1, adversarial_txs=[])
        assert not verdict.attacker_won
