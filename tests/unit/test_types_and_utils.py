"""Unit tests for shared types, validation helpers, RNG plumbing and tables."""

import pytest

from repro.errors import ConfigurationError
from repro.types import ALL_REGIONS, NodeDescriptor, Region, validate_fault_parameters
from repro.utils.rng import derive_rng, fork_rng
from repro.utils.tables import format_table
from repro.utils.validation import require, require_positive, require_probability


class TestTypes:
    def test_nine_regions(self):
        assert len(ALL_REGIONS) == 9

    def test_descriptor_rejects_negative_id(self):
        with pytest.raises(ValueError):
            NodeDescriptor(node_id=-1, region=Region.TOKYO)

    def test_fault_parameter_bound(self):
        validate_fault_parameters(4, 1)
        with pytest.raises(ConfigurationError):
            validate_fault_parameters(3, 1)
        with pytest.raises(ConfigurationError):
            validate_fault_parameters(0, 0)
        with pytest.raises(ConfigurationError):
            validate_fault_parameters(10, -1)


class TestRng:
    def test_derivation_deterministic(self):
        assert derive_rng(1, "a").random() == derive_rng(1, "a").random()

    def test_labels_namespace_streams(self):
        assert derive_rng(1, "a").random() != derive_rng(1, "b").random()

    def test_seed_matters(self):
        assert derive_rng(1, "a").random() != derive_rng(2, "a").random()

    def test_fork_is_deterministic_given_parent_state(self):
        parent_a, parent_b = derive_rng(5, "x"), derive_rng(5, "x")
        assert fork_rng(parent_a).random() == fork_rng(parent_b).random()


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigurationError):
            require(False, "boom")

    def test_require_positive(self):
        require_positive(1, "x")
        with pytest.raises(ConfigurationError):
            require_positive(0, "x")

    def test_require_probability(self):
        require_probability(0.5, "p")
        with pytest.raises(ConfigurationError):
            require_probability(-0.1, "p")
        with pytest.raises(ConfigurationError):
            require_probability(1.1, "p")


class TestTables:
    def test_basic_rendering(self):
        text = format_table(["a", "b"], [[1, 2.5]])
        assert "a | b" in text
        assert "1 | 2.50" in text

    def test_title_prepended(self):
        text = format_table(["a"], [[1]], title="My table")
        assert text.startswith("My table")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text
