"""Scenario declaration, validation and JSON round-tripping."""

import json

import pytest

from repro.chaos import (
    BehaviorFlip,
    ChaosEvent,
    ChaosScenario,
    ChaosWorkload,
    ChurnBurst,
    ForgeryInjection,
    LatencySpike,
    LossWindow,
    RegionalPartition,
    Restore,
    builtin_scenarios,
    get_scenario,
)
from repro.errors import ConfigurationError


class TestEventValidation:
    def test_flip_requires_exactly_one_selector(self):
        with pytest.raises(ConfigurationError):
            BehaviorFlip(at_ms=100.0, nodes=(1, 2), fraction=0.1)
        with pytest.raises(ConfigurationError):
            BehaviorFlip(at_ms=100.0)

    def test_flip_rejects_unknown_behavior(self):
        with pytest.raises(ValueError):
            BehaviorFlip(at_ms=100.0, behavior="teleport", nodes=(1,))

    def test_partition_rejects_unknown_region(self):
        with pytest.raises(ValueError):
            RegionalPartition(at_ms=100.0, heal_ms=200.0, regions=("atlantis",))

    def test_windows_must_end_after_start(self):
        with pytest.raises(ConfigurationError):
            LatencySpike(at_ms=500.0, end_ms=500.0)
        with pytest.raises(ConfigurationError):
            LossWindow(at_ms=500.0, end_ms=100.0)
        with pytest.raises(ConfigurationError):
            RegionalPartition(at_ms=500.0, heal_ms=400.0, regions=("frankfurt",))

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            Restore(at_ms=-1.0)

    def test_churn_and_forgery_bounds(self):
        with pytest.raises(ConfigurationError):
            ChurnBurst(at_ms=0.0, fraction=1.5)
        with pytest.raises(ConfigurationError):
            ChurnBurst(at_ms=0.0, down_ms=0.0)
        with pytest.raises(ConfigurationError):
            ForgeryInjection(at_ms=0.0, targets=0)


class TestScenarioValidation:
    def test_event_beyond_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosScenario(
                name="x",
                horizon_ms=1_000.0,
                workload=ChaosWorkload(transactions=1, start_ms=0.0, period_ms=1.0),
                events=(Restore(at_ms=2_000.0),),
                liveness_deadline_ms=500.0,
            )

    def test_deadline_beyond_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosScenario(
                name="x",
                horizon_ms=1_000.0,
                workload=ChaosWorkload(transactions=2, start_ms=500.0, period_ms=400.0),
                liveness_deadline_ms=900.0,
            )

    def test_workload_submit_times(self):
        workload = ChaosWorkload(transactions=3, start_ms=100.0, period_ms=50.0)
        assert workload.submit_times() == [100.0, 150.0, 200.0]


class TestSerialization:
    def test_every_builtin_round_trips(self):
        for name, scenario in builtin_scenarios().items():
            doc = scenario.to_json()
            # The wire form must survive an actual JSON encode/decode.
            restored = ChaosScenario.from_json(json.loads(json.dumps(doc)))
            assert restored == scenario, name

    def test_event_dispatch_by_kind(self):
        event = RegionalPartition(
            at_ms=10.0, heal_ms=20.0, regions=("frankfurt", "tokyo")
        )
        restored = ChaosEvent.from_json(event.to_json())
        assert restored == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent.from_json({"kind": "meteor-strike", "at_ms": 1.0})

    def test_load_from_file(self, tmp_path):
        scenario = builtin_scenarios()["escalation"]
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(scenario.to_json()))
        assert ChaosScenario.load(str(path)) == scenario
        assert get_scenario(str(path)) == scenario

    def test_get_scenario_by_name_and_unknown(self):
        assert get_scenario("honest").name == "honest"
        with pytest.raises(ConfigurationError):
            get_scenario("no-such-campaign")


class TestFlashCrowdWorkload:
    def test_plain_workload_unchanged(self):
        workload = ChaosWorkload(transactions=3, start_ms=100.0, period_ms=200.0)
        assert workload.submit_times() == [100.0, 300.0, 500.0]
        assert "flash_at_ms" not in workload.to_json()

    def test_flash_window_accelerates_submissions(self):
        workload = ChaosWorkload(
            transactions=8,
            start_ms=200.0,
            period_ms=500.0,
            flash_at_ms=1_200.0,
            flash_duration_ms=1_200.0,
            flash_factor=4.0,
        )
        times = workload.submit_times()
        assert len(times) == 8
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert min(gaps) == pytest.approx(125.0)
        assert max(gaps) == pytest.approx(500.0)

    def test_flash_fields_round_trip_through_json(self):
        workload = ChaosWorkload(
            transactions=5, flash_at_ms=800.0, flash_duration_ms=600.0,
            flash_factor=3.0,
        )
        assert ChaosWorkload.from_json(workload.to_json()) == workload

    def test_flash_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosWorkload(flash_at_ms=-1.0)
        with pytest.raises(ConfigurationError):
            ChaosWorkload(flash_at_ms=100.0, flash_factor=0.5)

    def test_flash_crowd_builtin_registered(self):
        scenario = get_scenario("flash-crowd")
        assert scenario.workload.flash_at_ms is not None
        assert ChaosScenario.from_json(scenario.to_json()) == scenario
