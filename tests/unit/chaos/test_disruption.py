"""LinkDisruptor window semantics."""

import random

import pytest

from repro.chaos import LinkDisruptor
from repro.errors import ConfigurationError


def make() -> LinkDisruptor:
    return LinkDisruptor(random.Random(0))


class TestPartitions:
    def test_drops_only_cross_group_traffic_inside_window(self):
        disruptor = make()
        disruptor.add_partition(100.0, 200.0, frozenset({1, 2}))
        assert disruptor.apply(1, 5, 150.0).dropped  # crossing out
        assert disruptor.apply(5, 2, 150.0).dropped  # crossing in
        assert not disruptor.apply(1, 2, 150.0).dropped  # within the island
        assert not disruptor.apply(5, 6, 150.0).dropped  # outside entirely
        assert disruptor.dropped_by_partition == 2

    def test_window_is_half_open(self):
        disruptor = make()
        disruptor.add_partition(100.0, 200.0, frozenset({1}))
        assert not disruptor.apply(1, 2, 99.9).dropped
        assert disruptor.apply(1, 2, 100.0).dropped
        assert not disruptor.apply(1, 2, 200.0).dropped  # healed at the instant


class TestLatencyAndLoss:
    def test_latency_factors_multiply_across_overlapping_windows(self):
        disruptor = make()
        disruptor.add_latency_spike(0.0, 100.0, 2.0)
        disruptor.add_latency_spike(50.0, 150.0, 3.0)
        assert disruptor.apply(1, 2, 25.0).latency_factor == 2.0
        assert disruptor.apply(1, 2, 75.0).latency_factor == 6.0
        assert disruptor.apply(1, 2, 125.0).latency_factor == 3.0
        assert disruptor.apply(1, 2, 200.0).latency_factor == 1.0

    def test_loss_draws_randomness_only_inside_window(self):
        rng = random.Random(7)
        disruptor = LinkDisruptor(rng)
        disruptor.add_loss_window(100.0, 200.0, 0.5)
        state = rng.getstate()
        disruptor.apply(1, 2, 50.0)  # outside: must not touch the rng
        assert rng.getstate() == state
        disruptor.apply(1, 2, 150.0)  # inside: consumes one draw
        assert rng.getstate() != state

    def test_loss_counter_is_deterministic(self):
        a, b = LinkDisruptor(random.Random(3)), LinkDisruptor(random.Random(3))
        for d in (a, b):
            d.add_loss_window(0.0, 100.0, 0.4)
            for i in range(50):
                d.apply(1, 2, float(i))
        assert a.dropped_by_loss == b.dropped_by_loss > 0


class TestValidation:
    def test_bad_windows_rejected(self):
        disruptor = make()
        with pytest.raises(ConfigurationError):
            disruptor.add_partition(10.0, 10.0, frozenset({1}))
        with pytest.raises(ConfigurationError):
            disruptor.add_latency_spike(0.0, 10.0, 0.5)
        with pytest.raises(ConfigurationError):
            disruptor.add_loss_window(0.0, 10.0, 1.5)
