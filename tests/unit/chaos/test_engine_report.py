"""End-to-end chaos runs at small scale, plus the report contract.

These use a reduced deployment (24 nodes) and short horizons so the whole
module stays fast; the full-size campaigns live behind ``python -m repro
chaos`` and the property tests.
"""

import json

import pytest

from repro.chaos import (
    BehaviorFlip,
    ChaosReport,
    ChaosScenario,
    ChaosWorkload,
    ForgeryInjection,
    run_chaos,
)
from repro.errors import ConfigurationError

NODES = 24


def tiny(name="tiny", events=(), horizon_ms=3_000.0, transactions=2):
    return ChaosScenario(
        name=name,
        description="unit-test campaign",
        horizon_ms=horizon_ms,
        workload=ChaosWorkload(
            transactions=transactions, start_ms=100.0, period_ms=200.0
        ),
        events=tuple(events),
        liveness_deadline_ms=horizon_ms - 500.0,
    )


CENSOR = tiny(
    name="tiny-censor",
    events=(BehaviorFlip(at_ms=50.0, behavior="drop-relay", fraction=0.15),),
)


class TestHonestRuns:
    def test_honest_run_passes_with_zero_violations(self):
        report = run_chaos(tiny(), protocol="hermes", num_nodes=NODES, seed=1)
        assert report.passed
        assert report.violation_summary["total"] == 0
        assert report.accountability["deviants"] == []
        assert report.accountability["false_accusations"] == []
        assert report.accountability["attribution_rate"] == 1.0
        # Every workload transaction reached every node by the deadline.
        assert len(report.transactions) == 2
        assert all(t["coverage"] == 1.0 for t in report.transactions)

    def test_honest_lzero_also_passes(self):
        report = run_chaos(tiny(), protocol="lzero", num_nodes=NODES, seed=1)
        assert report.passed
        assert report.accountability["false_accusations"] == []


class TestAttribution:
    def test_every_accusation_names_a_real_deviant(self):
        report = run_chaos(CENSOR, protocol="hermes", num_nodes=NODES, seed=3)
        acct = report.accountability
        assert acct["deviants"]  # the flip resolved to concrete nodes
        assert set(acct["attributed"]) <= set(acct["deviants"])
        assert acct["false_accusations"] == []
        assert acct["attribution_rate"] == 1.0
        assert report.fault_log, "resolved fault log must not be empty"
        flip = report.fault_log[0]
        assert flip["kind"] == "behavior-flip"
        assert sorted(flip["nodes"]) == acct["deviants"]

    def test_forgery_is_attributed_on_hermes(self):
        scenario = tiny(
            name="tiny-forge",
            events=(ForgeryInjection(at_ms=400.0, targets=2),),
        )
        report = run_chaos(scenario, protocol="hermes", num_nodes=NODES, seed=5)
        acct = report.accountability
        (injector,) = acct["deviants"]
        assert injector in acct["attributed"]
        assert acct["false_accusations"] == []
        assert report.violation_summary["by_kind"].get("bad-signature", 0) >= 1

    def test_forgery_skipped_on_protocols_without_envelopes(self):
        scenario = tiny(
            name="tiny-forge",
            events=(ForgeryInjection(at_ms=400.0, targets=2),),
        )
        report = run_chaos(scenario, protocol="lzero", num_nodes=NODES, seed=5)
        (entry,) = [e for e in report.fault_log if e["kind"] == "inject-forgery"]
        assert entry["applied"] is False
        assert report.accountability["deviants"] == []


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        first = run_chaos(CENSOR, protocol="hermes", num_nodes=NODES, seed=9)
        second = run_chaos(CENSOR, protocol="hermes", num_nodes=NODES, seed=9)
        assert first.dumps() == second.dumps()
        assert first.content_hash() == second.content_hash()

    def test_different_seed_different_bytes(self):
        first = run_chaos(CENSOR, protocol="hermes", num_nodes=NODES, seed=9)
        other = run_chaos(CENSOR, protocol="hermes", num_nodes=NODES, seed=10)
        assert first.dumps() != other.dumps()


class TestReportContract:
    def test_round_trips_through_json(self):
        report = run_chaos(CENSOR, protocol="hermes", num_nodes=NODES, seed=3)
        wire = json.loads(json.dumps(report.to_json()))
        assert ChaosReport.from_json(wire).dumps() == report.dumps()

    def test_passed_reflects_invariant_status(self):
        report = ChaosReport(
            scenario="x",
            protocol="hermes",
            seed=0,
            num_nodes=4,
            f=1,
            horizon_ms=1.0,
            final_time_ms=1.0,
            invariants={
                "a": {"status": "pass", "checks": 1, "violations": []},
                "b": {"status": "n/a", "checks": 0, "violations": []},
            },
        )
        assert report.passed
        failing = ChaosReport(
            scenario="x",
            protocol="hermes",
            seed=0,
            num_nodes=4,
            f=1,
            horizon_ms=1.0,
            final_time_ms=1.0,
            invariants={
                "a": {
                    "status": "fail",
                    "checks": 1,
                    "violations": [{"detail": "boom"}],
                }
            },
        )
        assert not failing.passed
        assert "FAIL" in failing.format()
        assert "boom" in failing.format()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            run_chaos(tiny(), protocol="carrier-pigeon", num_nodes=NODES)


class TestRunnerIntegration:
    def test_chaos_task_is_registered_and_returns_report_json(self):
        from repro.runner.tasks import get_task

        task = get_task("chaos.run")
        doc = task(
            {
                "scenario": "honest",
                "protocol": "hermes",
                "num_nodes": NODES,
                "seed": 2,
            }
        )
        report = ChaosReport.from_json(doc)
        assert report.scenario == "honest"
        assert report.passed

    def test_chaos_sweeps_resume_from_the_store(self, tmp_path):
        from repro.runner import ResultStore, RunSpec, run_sweep

        specs = [
            RunSpec(
                task="chaos.run",
                params={
                    "scenario": "honest",
                    "protocol": "hermes",
                    "num_nodes": NODES,
                    "seed": seed,
                },
            )
            for seed in (1, 2)
        ]
        store = ResultStore(str(tmp_path))
        first = run_sweep(specs, store=store)
        assert (first.executed, first.skipped, first.failed) == (2, 0, 0)
        # A finished sweep re-invoked against the same store runs nothing.
        second = run_sweep(specs, store=store)
        assert (second.executed, second.skipped, second.failed) == (0, 2, 0)
        assert [r.result for r in second.records] == [
            r.result for r in first.records
        ]
