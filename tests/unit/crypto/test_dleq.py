"""Unit tests for Chaum–Pedersen DLEQ proofs."""

import pytest

from repro.crypto.dleq import DleqProof, prove_dleq, verify_dleq


@pytest.fixture()
def bases(group):
    return group.g, group.hash_to_group("second-base")


class TestDleq:
    def test_honest_proof_verifies(self, group, bases, rng):
        base_a, base_b = bases
        secret = 31337 % group.q
        proof = prove_dleq(group, secret, base_a, base_b, rng)
        assert verify_dleq(
            group,
            base_a,
            group.exp(base_a, secret),
            base_b,
            group.exp(base_b, secret),
            proof,
        )

    def test_mismatched_exponents_fail(self, group, bases, rng):
        base_a, base_b = bases
        proof = prove_dleq(group, 42, base_a, base_b, rng)
        assert not verify_dleq(
            group,
            base_a,
            group.exp(base_a, 42),
            base_b,
            group.exp(base_b, 43),  # different discrete log
            proof,
        )

    def test_tampered_proof_fails(self, group, bases, rng):
        base_a, base_b = bases
        secret = 77
        proof = prove_dleq(group, secret, base_a, base_b, rng)
        tampered = DleqProof(
            challenge=(proof.challenge + 1) % group.q, response=proof.response
        )
        assert not verify_dleq(
            group,
            base_a,
            group.exp(base_a, secret),
            base_b,
            group.exp(base_b, secret),
            tampered,
        )

    def test_non_group_elements_rejected(self, group, bases, rng):
        base_a, base_b = bases
        proof = prove_dleq(group, 5, base_a, base_b, rng)
        assert not verify_dleq(group, 0, 1, base_b, 1, proof)

    def test_proof_bound_to_bases(self, group, rng):
        base_a = group.g
        base_b = group.hash_to_group("b1")
        base_c = group.hash_to_group("b2")
        secret = 99
        proof = prove_dleq(group, secret, base_a, base_b, rng)
        # Same exponent over a different second base must not verify.
        assert not verify_dleq(
            group,
            base_a,
            group.exp(base_a, secret),
            base_c,
            group.exp(base_c, secret),
            proof,
        )
