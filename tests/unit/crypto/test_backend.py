"""Unit tests for the two crypto backends (identical observable behaviour)."""

import pytest

from repro.crypto.backend import FastCryptoBackend, RealCryptoBackend
from repro.errors import ThresholdNotReachedError

COMMITTEE = [10, 11, 12, 13]
THRESHOLD = 3


@pytest.fixture(params=["real", "fast"])
def backend(request):
    backend = (
        RealCryptoBackend(seed=3) if request.param == "real" else FastCryptoBackend(3)
    )
    backend.setup_committee(COMMITTEE, THRESHOLD)
    for node in (0, 1, 2):
        backend.register_node(node)
    return backend


class TestNodeSignatures:
    def test_sign_verify(self, backend):
        signature = backend.sign(0, b"msg")
        assert backend.verify(0, b"msg", signature)

    def test_wrong_node_fails(self, backend):
        signature = backend.sign(0, b"msg")
        assert not backend.verify(1, b"msg", signature)

    def test_wrong_message_fails(self, backend):
        signature = backend.sign(0, b"msg")
        assert not backend.verify(0, b"other", signature)

    def test_garbage_signature_fails(self, backend):
        assert not backend.verify(0, b"msg", object())


class TestThresholdFlow:
    def test_partial_verifies(self, backend):
        partial = backend.partial_sign(10, b"binding")
        assert backend.verify_partial(b"binding", partial)

    def test_partial_bound_to_message(self, backend):
        partial = backend.partial_sign(10, b"binding")
        assert not backend.verify_partial(b"other", partial)

    def test_non_member_cannot_partial_sign(self, backend):
        with pytest.raises(ThresholdNotReachedError):
            backend.partial_sign(0, b"binding")

    def test_combine_needs_threshold(self, backend):
        partials = [backend.partial_sign(m, b"b") for m in COMMITTEE[:2]]
        with pytest.raises(ThresholdNotReachedError):
            backend.combine(b"b", partials)

    def test_combined_unique_across_quorums(self, backend):
        partials = [backend.partial_sign(m, b"b") for m in COMMITTEE]
        seed_a = backend.seed_from_signature(backend.combine(b"b", partials[:3]), 100)
        seed_b = backend.seed_from_signature(backend.combine(b"b", partials[1:]), 100)
        assert seed_a == seed_b

    def test_verify_combined(self, backend):
        partials = [backend.partial_sign(m, b"b") for m in COMMITTEE[:3]]
        signature = backend.combine(b"b", partials)
        assert backend.verify_combined(b"b", signature)
        assert not backend.verify_combined(b"other", signature)
        assert not backend.verify_combined(b"b", object())

    def test_seed_depends_on_message(self, backend):
        seeds = set()
        for label in range(8):
            message = f"msg-{label}".encode()
            partials = [backend.partial_sign(m, message) for m in COMMITTEE[:3]]
            seeds.add(backend.seed_from_signature(backend.combine(message, partials), 1000))
        # Eight messages should not all collapse to one seed.
        assert len(seeds) > 1

    def test_duplicate_partials_not_a_quorum(self, backend):
        partial = backend.partial_sign(10, b"b")
        with pytest.raises(ThresholdNotReachedError):
            backend.combine(b"b", [partial, partial, partial])


class TestBackendMisc:
    def test_hash_is_sha_sized(self, backend):
        assert len(backend.hash(b"payload")) == 32

    def test_committee_not_setup_raises(self):
        fresh = FastCryptoBackend(1)
        with pytest.raises(ThresholdNotReachedError):
            fresh.combine(b"x", [])

    def test_fast_backend_invalid_threshold(self):
        fresh = FastCryptoBackend(1)
        with pytest.raises(ThresholdNotReachedError):
            fresh.setup_committee([1, 2], threshold=3)
