"""Unit tests for the key registry."""

import pytest

from repro.crypto.keys import KeyRegistry
from repro.errors import CryptoError


@pytest.fixture()
def registry(group, rng):
    registry = KeyRegistry(group)
    for node_id in range(3):
        registry.generate(node_id, rng)
    return registry


class TestKeyRegistry:
    def test_generate_is_idempotent(self, registry, rng):
        first = registry.keypair(0)
        second = registry.generate(0, rng)
        assert first == second

    def test_contains_and_len(self, registry):
        assert 0 in registry and 2 in registry
        assert 9 not in registry
        assert len(registry) == 3

    def test_unknown_node_raises(self, registry):
        with pytest.raises(CryptoError):
            registry.public_key(42)

    def test_sign_verify(self, registry, rng):
        signature = registry.sign(1, b"payload", rng)
        assert registry.verify(1, b"payload", signature)

    def test_cross_node_verification_fails(self, registry, rng):
        signature = registry.sign(1, b"payload", rng)
        assert not registry.verify(2, b"payload", signature)

    def test_verify_unknown_node_returns_false(self, registry, rng):
        signature = registry.sign(0, b"x", rng)
        assert not registry.verify(77, b"x", signature)

    def test_public_key_is_group_element(self, registry, group):
        assert group.is_element(registry.public_key(0))
