"""Unit tests for prime-field arithmetic and Lagrange interpolation."""

import pytest

from repro.crypto.field import PrimeField, lagrange_coefficients_at_zero


@pytest.fixture()
def field() -> PrimeField:
    return PrimeField(101)


class TestPrimeField:
    def test_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            PrimeField(1)

    def test_reduce_wraps(self, field):
        assert field.reduce(205) == 3
        assert field.reduce(-1) == 100

    def test_add_sub_inverse_each_other(self, field):
        assert field.sub(field.add(40, 70), 70) == 40

    def test_mul_and_inv(self, field):
        for a in range(1, 101):
            assert field.mul(a, field.inv(a)) == 1

    def test_inv_of_zero_raises(self, field):
        with pytest.raises(ZeroDivisionError):
            field.inv(0)

    def test_neg(self, field):
        assert field.add(field.neg(17), 17) == 0

    def test_eval_polynomial_horner(self, field):
        # p(x) = 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38
        assert field.eval_polynomial([3, 2, 1], 5) == 38

    def test_eval_constant(self, field):
        assert field.eval_polynomial([9], 1234) == 9


class TestLagrange:
    def test_recovers_constant_term(self, field):
        coefficients = [12, 7, 3]  # degree-2 polynomial
        points = [1, 2, 3]
        values = {x: field.eval_polynomial(coefficients, x) for x in points}
        lagrange = lagrange_coefficients_at_zero(field, points)
        recovered = 0
        for x in points:
            recovered = field.add(recovered, field.mul(lagrange[x], values[x]))
        assert recovered == 12

    def test_any_subset_recovers(self, field):
        coefficients = [55, 1, 9]
        all_points = [1, 2, 3, 4, 5]
        values = {x: field.eval_polynomial(coefficients, x) for x in all_points}
        for subset in ([1, 2, 3], [2, 4, 5], [1, 3, 5]):
            lagrange = lagrange_coefficients_at_zero(field, subset)
            total = 0
            for x in subset:
                total = field.add(total, field.mul(lagrange[x], values[x]))
            assert total == 55

    def test_rejects_duplicate_points(self, field):
        with pytest.raises(ValueError):
            lagrange_coefficients_at_zero(field, [1, 1, 2])

    def test_rejects_zero_point(self, field):
        with pytest.raises(ValueError):
            lagrange_coefficients_at_zero(field, [0, 1, 2])

    def test_coefficients_sum_to_one(self, field):
        # Interpolating the constant polynomial 1 must give 1.
        lagrange = lagrange_coefficients_at_zero(field, [3, 7, 9])
        assert sum(lagrange.values()) % field.order == 1
