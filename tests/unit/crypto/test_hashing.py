"""Unit tests for the canonical hashing helpers."""

import pytest

from repro.crypto.hashing import encode_for_hash, hash_bytes, hash_to_int, sha256_hex


class TestEncodeForHash:
    def test_length_prefix_prevents_ambiguity(self):
        assert encode_for_hash("ab", "c") != encode_for_hash("a", "bc")

    def test_accepts_bytes_str_int(self):
        encoded = encode_for_hash(b"raw", "text", 42)
        assert isinstance(encoded, bytes)

    def test_negative_integers_encode(self):
        assert encode_for_hash(-1) != encode_for_hash(1)

    def test_zero_encodes(self):
        assert isinstance(encode_for_hash(0), bytes)

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            encode_for_hash(3.14)

    def test_empty_parts_distinct_from_no_parts(self):
        assert encode_for_hash("") != encode_for_hash()


class TestHashBytes:
    def test_deterministic(self):
        assert hash_bytes("x", 1) == hash_bytes("x", 1)

    def test_order_sensitive(self):
        assert hash_bytes("a", "b") != hash_bytes("b", "a")

    def test_digest_is_32_bytes(self):
        assert len(hash_bytes("anything")) == 32

    def test_hex_matches_bytes(self):
        assert sha256_hex("v") == hash_bytes("v").hex()


class TestHashToInt:
    def test_within_modulus(self):
        for value in range(20):
            assert 0 <= hash_to_int("seed", value, modulus=7) < 7

    def test_no_modulus_gives_full_width(self):
        assert hash_to_int("x") < 2**256

    def test_rejects_non_positive_modulus(self):
        with pytest.raises(ValueError):
            hash_to_int("x", modulus=0)

    def test_distribution_covers_residues(self):
        seen = {hash_to_int("d", i, modulus=5) for i in range(200)}
        assert seen == {0, 1, 2, 3, 4}
