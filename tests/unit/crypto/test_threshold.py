"""Unit tests for the threshold signature / DVRF scheme."""

import random

import pytest

from repro.crypto.threshold import (
    combine_partials,
    threshold_keygen,
    verify_partial,
    verify_threshold_signature,
)
from repro.errors import ThresholdNotReachedError


@pytest.fixture()
def committee(group):
    rng = random.Random(5)
    public, signers = threshold_keygen(group, threshold=3, num_members=4, rng=rng)
    return public, signers


class TestKeygen:
    def test_member_count(self, committee):
        public, signers = committee
        assert len(signers) == 4
        assert len(public.share_commitments) == 4

    def test_commitments_match_shares(self, group, committee):
        public, signers = committee
        message = b"probe"
        for signer in signers:
            partial = signer.sign(message, random.Random(signer.index))
            assert verify_partial(public, message, partial)


class TestPartials:
    def test_partial_from_wrong_share_rejected(self, group, committee, rng):
        public, signers = committee
        partial = signers[0].sign(b"m", rng)
        # Claim it came from member 2.
        forged = type(partial)(index=2, value=partial.value, proof=partial.proof)
        assert not verify_partial(public, b"m", forged)

    def test_partial_bound_to_message(self, committee, rng):
        public, signers = committee
        partial = signers[0].sign(b"m1", rng)
        assert not verify_partial(public, b"m2", partial)

    def test_unknown_index_rejected(self, committee, rng):
        public, signers = committee
        partial = signers[0].sign(b"m", rng)
        forged = type(partial)(index=99, value=partial.value, proof=partial.proof)
        assert not verify_partial(public, b"m", forged)


class TestCombination:
    def test_any_quorum_gives_same_signature(self, committee):
        public, signers = committee
        message = b"unique"
        partials = [s.sign(message, random.Random(i)) for i, s in enumerate(signers)]
        sig_a = combine_partials(public, message, partials[:3])
        sig_b = combine_partials(public, message, partials[1:])
        assert sig_a.value == sig_b.value

    def test_below_threshold_raises(self, committee, rng):
        public, signers = committee
        partials = [signers[0].sign(b"m", rng), signers[1].sign(b"m", rng)]
        with pytest.raises(ThresholdNotReachedError):
            combine_partials(public, b"m", partials)

    def test_invalid_partials_discarded(self, committee, rng):
        public, signers = committee
        message = b"m"
        good = [s.sign(message, rng) for s in signers[:3]]
        bad = signers[3].sign(b"other", rng)  # valid proof, wrong message
        signature = combine_partials(public, message, good + [bad])
        assert signature.value == combine_partials(public, message, good).value

    def test_duplicate_partials_do_not_fake_quorum(self, committee, rng):
        public, signers = committee
        partial = signers[0].sign(b"m", rng)
        with pytest.raises(ThresholdNotReachedError):
            combine_partials(public, b"m", [partial, partial, partial])

    def test_different_messages_different_signatures(self, committee, rng):
        public, signers = committee
        sig_1 = combine_partials(
            public, b"m1", [s.sign(b"m1", rng) for s in signers[:3]]
        )
        sig_2 = combine_partials(
            public, b"m2", [s.sign(b"m2", rng) for s in signers[:3]]
        )
        assert sig_1.value != sig_2.value


class TestSeedDerivation:
    def test_seed_in_range(self, committee, rng):
        public, signers = committee
        signature = combine_partials(
            public, b"m", [s.sign(b"m", rng) for s in signers[:3]]
        )
        for modulus in (1, 2, 10, 1000):
            assert 0 <= signature.as_seed(modulus) < modulus

    def test_seed_deterministic_across_quorums(self, committee):
        public, signers = committee
        message = b"m"
        partials = [s.sign(message, random.Random(i)) for i, s in enumerate(signers)]
        seed_a = combine_partials(public, message, partials[:3]).as_seed(10)
        seed_b = combine_partials(public, message, partials[1:]).as_seed(10)
        assert seed_a == seed_b

    def test_rejects_bad_modulus(self, committee, rng):
        public, signers = committee
        signature = combine_partials(
            public, b"m", [s.sign(b"m", rng) for s in signers[:3]]
        )
        with pytest.raises(ValueError):
            signature.as_seed(0)


class TestVerifyCombined:
    def test_verify_with_certificate(self, committee, rng):
        public, signers = committee
        partials = [s.sign(b"m", rng) for s in signers[:3]]
        signature = combine_partials(public, b"m", partials)
        assert verify_threshold_signature(public, b"m", signature, partials)

    def test_verify_rejects_wrong_value(self, committee, rng):
        public, signers = committee
        partials = [s.sign(b"m", rng) for s in signers[:3]]
        signature = combine_partials(public, b"m", partials)
        forged = type(signature)(value=public.group.g, contributors=(1, 2, 3))
        assert not verify_threshold_signature(public, b"m", forged, partials)
