"""Unit tests for Merkle trees and inclusion proofs."""

import pytest

from repro.crypto.merkle import MerkleProof, MerkleTree, merkle_root, verify_inclusion


def leaves(count):
    return [f"leaf-{i}".encode() for i in range(count)]


class TestConstruction:
    def test_single_leaf(self):
        tree = MerkleTree(leaves(1))
        assert len(tree) == 1
        assert verify_inclusion(tree.root, b"leaf-0", tree.proof(0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_root_deterministic(self):
        assert merkle_root(leaves(7)) == merkle_root(leaves(7))

    def test_root_depends_on_content(self):
        assert merkle_root(leaves(4)) != merkle_root([b"x"] * 4)

    def test_root_depends_on_order(self):
        items = leaves(4)
        assert merkle_root(items) != merkle_root(list(reversed(items)))

    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 8, 13, 16, 31])
    def test_all_proofs_verify(self, count):
        items = leaves(count)
        tree = MerkleTree(items)
        for index, leaf in enumerate(items):
            assert verify_inclusion(tree.root, leaf, tree.proof(index))

    def test_proof_length_logarithmic(self):
        tree = MerkleTree(leaves(16))
        assert len(tree.proof(0).path) == 4


class TestSecurity:
    def test_wrong_leaf_rejected(self):
        tree = MerkleTree(leaves(8))
        proof = tree.proof(3)
        assert not verify_inclusion(tree.root, b"not-a-leaf", proof)

    def test_wrong_position_rejected(self):
        tree = MerkleTree(leaves(8))
        proof = tree.proof(3)
        moved = MerkleProof(leaf_index=2, path=proof.path)
        assert not verify_inclusion(tree.root, b"leaf-3", moved)

    def test_wrong_root_rejected(self):
        tree = MerkleTree(leaves(8))
        other = MerkleTree(leaves(9))
        assert not verify_inclusion(other.root, b"leaf-3", tree.proof(3))

    def test_truncated_proof_rejected(self):
        tree = MerkleTree(leaves(8))
        proof = tree.proof(3)
        truncated = MerkleProof(leaf_index=3, path=proof.path[:-1])
        assert not verify_inclusion(tree.root, b"leaf-3", truncated)

    def test_leaf_interior_domain_separation(self):
        """An interior digest reinterpreted as a leaf must not verify."""

        tree = MerkleTree(leaves(4))
        # The parent of leaves 0,1 is an interior node; presenting it as a
        # "leaf" with a shortened path must fail thanks to domain separation.
        from repro.crypto.merkle import _leaf_hash, _node_hash

        interior = _node_hash(_leaf_hash(b"leaf-0"), _leaf_hash(b"leaf-1"))
        short_proof = MerkleProof(leaf_index=0, path=tree.proof(0).path[1:])
        assert not verify_inclusion(tree.root, interior, short_proof)

    def test_index_out_of_range(self):
        tree = MerkleTree(leaves(4))
        with pytest.raises(IndexError):
            tree.proof(4)
