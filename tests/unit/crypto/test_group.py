"""Unit tests for the Schnorr group."""

import pytest

from repro.crypto.group import SchnorrGroup, default_group, toy_group


class TestToyGroup:
    def test_generator_has_order_q(self, group):
        assert pow(group.g, group.q, group.p) == 1

    def test_q_divides_p_minus_one(self, group):
        assert (group.p - 1) % group.q == 0

    def test_exp_reduces_exponent(self, group):
        assert group.exp(group.g, group.q + 5) == group.exp(group.g, 5)

    def test_mul_inv(self, group):
        element = group.exp(group.g, 1234)
        assert group.mul(element, group.inv(element)) == 1

    def test_is_element_accepts_subgroup(self, group):
        for exponent in (1, 2, 99, group.q - 1):
            assert group.is_element(group.exp(group.g, exponent))

    def test_is_element_rejects_outside(self, group):
        assert not group.is_element(0)
        assert not group.is_element(group.p)
        # A quadratic non-residue is not in the order-q subgroup of a safe
        # prime group; find one by scanning.
        for candidate in range(2, 50):
            if pow(candidate, group.q, group.p) != 1:
                assert not group.is_element(candidate)
                break

    def test_hash_to_group_lands_in_subgroup(self, group):
        for label in range(10):
            element = group.hash_to_group("test", label)
            assert group.is_element(element)
            assert element != 1

    def test_hash_to_group_deterministic(self, group):
        assert group.hash_to_group("a", 1) == group.hash_to_group("a", 1)

    def test_hash_to_scalar_in_range(self, group):
        for label in range(10):
            scalar = group.hash_to_scalar("s", label)
            assert 0 < scalar < group.q

    def test_scalar_field_order(self, group):
        assert group.scalar_field.order == group.q


class TestGroupValidation:
    def test_rejects_bad_generator(self):
        toy = toy_group()
        with pytest.raises(ValueError):
            SchnorrGroup(p=toy.p, q=toy.q, g=1)

    def test_rejects_non_dividing_order(self):
        toy = toy_group()
        with pytest.raises(ValueError):
            SchnorrGroup(p=toy.p, q=toy.q - 1, g=toy.g)

    def test_rejects_wrong_order_generator(self):
        toy = toy_group()
        # Find an element NOT of order q (a non-residue).
        for candidate in range(2, 200):
            if pow(candidate, toy.q, toy.p) != 1:
                with pytest.raises(ValueError):
                    SchnorrGroup(p=toy.p, q=toy.q, g=candidate)
                return
        pytest.fail("no non-residue found")


class TestDefaultGroup:
    def test_parameters_are_consistent(self):
        big = default_group()
        assert (big.p - 1) % big.q == 0
        assert pow(big.g, big.q, big.p) == 1

    def test_cached(self):
        assert default_group() is default_group()
