"""Unit tests for Schnorr signatures."""

import random

import pytest

from repro.crypto.schnorr import (
    SchnorrSignature,
    schnorr_keygen,
    schnorr_sign,
    schnorr_verify,
)


@pytest.fixture()
def keypair(group, rng):
    return schnorr_keygen(group, rng)


class TestSchnorr:
    def test_sign_verify_roundtrip(self, group, keypair, rng):
        secret, public = keypair
        signature = schnorr_sign(group, secret, b"hello", rng)
        assert schnorr_verify(group, public, b"hello", signature)

    def test_wrong_message_fails(self, group, keypair, rng):
        secret, public = keypair
        signature = schnorr_sign(group, secret, b"hello", rng)
        assert not schnorr_verify(group, public, b"goodbye", signature)

    def test_wrong_key_fails(self, group, keypair, rng):
        secret, _public = keypair
        _other_secret, other_public = schnorr_keygen(group, rng)
        signature = schnorr_sign(group, secret, b"m", rng)
        assert not schnorr_verify(group, other_public, b"m", signature)

    def test_tampered_challenge_fails(self, group, keypair, rng):
        secret, public = keypair
        signature = schnorr_sign(group, secret, b"m", rng)
        tampered = SchnorrSignature(
            challenge=(signature.challenge + 1) % group.q,
            response=signature.response,
        )
        assert not schnorr_verify(group, public, b"m", tampered)

    def test_tampered_response_fails(self, group, keypair, rng):
        secret, public = keypair
        signature = schnorr_sign(group, secret, b"m", rng)
        tampered = SchnorrSignature(
            challenge=signature.challenge,
            response=(signature.response + 1) % group.q,
        )
        assert not schnorr_verify(group, public, b"m", tampered)

    def test_out_of_range_values_rejected(self, group, keypair):
        _secret, public = keypair
        bogus = SchnorrSignature(challenge=0, response=0)
        assert not schnorr_verify(group, public, b"m", bogus)
        oversized = SchnorrSignature(challenge=group.q + 1, response=1)
        assert not schnorr_verify(group, public, b"m", oversized)

    def test_invalid_public_key_rejected(self, group, keypair, rng):
        secret, _public = keypair
        signature = schnorr_sign(group, secret, b"m", rng)
        assert not schnorr_verify(group, 0, b"m", signature)

    def test_signatures_are_randomized(self, group, keypair):
        secret, _public = keypair
        first = schnorr_sign(group, secret, b"m", random.Random(1))
        second = schnorr_sign(group, secret, b"m", random.Random(2))
        assert first != second

    def test_empty_message_signs(self, group, keypair, rng):
        secret, public = keypair
        signature = schnorr_sign(group, secret, b"", rng)
        assert schnorr_verify(group, public, b"", signature)
