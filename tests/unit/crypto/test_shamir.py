"""Unit tests for Shamir secret sharing."""

import random

import pytest

from repro.crypto.field import PrimeField
from repro.crypto.shamir import ShamirShare, recover_secret, split_secret
from repro.errors import ShareError


@pytest.fixture()
def field() -> PrimeField:
    return PrimeField(2**31 - 1)  # a Mersenne prime


class TestSplitSecret:
    def test_produces_requested_share_count(self, field, rng):
        shares = split_secret(field, 42, threshold=3, num_shares=7, rng=rng)
        assert len(shares) == 7
        assert [s.index for s in shares] == list(range(1, 8))

    def test_rejects_zero_threshold(self, field, rng):
        with pytest.raises(ShareError):
            split_secret(field, 1, threshold=0, num_shares=3, rng=rng)

    def test_rejects_too_few_shares(self, field, rng):
        with pytest.raises(ShareError):
            split_secret(field, 1, threshold=4, num_shares=3, rng=rng)

    def test_rejects_field_too_small(self, rng):
        with pytest.raises(ShareError):
            split_secret(PrimeField(5), 1, threshold=2, num_shares=5, rng=rng)

    def test_share_index_must_be_positive(self):
        with pytest.raises(ShareError):
            ShamirShare(index=0, value=5)


class TestRecoverSecret:
    def test_threshold_shares_recover(self, field, rng):
        shares = split_secret(field, 987654, threshold=3, num_shares=6, rng=rng)
        for subset in (shares[:3], shares[2:5], [shares[0], shares[3], shares[5]]):
            assert recover_secret(field, subset) == 987654

    def test_more_than_threshold_also_recovers(self, field, rng):
        shares = split_secret(field, 11, threshold=2, num_shares=5, rng=rng)
        assert recover_secret(field, shares) == 11

    def test_below_threshold_yields_garbage(self, field):
        rng = random.Random(99)
        shares = split_secret(field, 1234, threshold=3, num_shares=5, rng=rng)
        # With only 2 of 3 shares interpolation produces a different value
        # for almost all polynomials; assert it differs for this seed.
        assert recover_secret(field, shares[:2]) != 1234

    def test_empty_shares_rejected(self, field):
        with pytest.raises(ShareError):
            recover_secret(field, [])

    def test_duplicate_indexes_rejected(self, field, rng):
        shares = split_secret(field, 5, threshold=2, num_shares=3, rng=rng)
        with pytest.raises(ShareError):
            recover_secret(field, [shares[0], shares[0]])

    def test_threshold_one_is_the_secret(self, field, rng):
        shares = split_secret(field, 77, threshold=1, num_shares=4, rng=rng)
        for share in shares:
            assert share.value == 77

    def test_secret_reduced_into_field(self, field, rng):
        shares = split_secret(
            field, field.order + 3, threshold=2, num_shares=3, rng=rng
        )
        assert recover_secret(field, shares[:2]) == 3
