"""Unit tests for the ASCII bar chart renderer."""

import pytest

from repro.utils.ascii_chart import bar_chart


class TestBarChart:
    def test_proportional_bars(self):
        chart = bar_chart({"a": 2.0, "b": 4.0}, width=4)
        lines = chart.splitlines()
        assert lines[0].count("█") == 2
        assert lines[1].count("█") == 4

    def test_title(self):
        chart = bar_chart({"a": 1.0}, title="My chart")
        assert chart.splitlines()[0] == "My chart"

    def test_values_rendered(self):
        chart = bar_chart({"x": 3.5})
        assert "3.50" in chart

    def test_zero_values_allowed(self):
        chart = bar_chart({"a": 0.0, "b": 0.0}, width=5)
        assert "█" not in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)

    def test_labels_aligned(self):
        chart = bar_chart({"short": 1.0, "a-much-longer-label": 2.0})
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")
