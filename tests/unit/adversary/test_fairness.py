"""Exact-value tests for the order-fairness metrics."""

import json

from repro.adversary.fairness import (
    FairnessReport,
    fairness_report,
    gamma_fairness,
    majority_order,
    pairwise_inversion_rate,
    receive_orders_from_trace,
)


class TestGamma:
    def test_unanimous_orders_give_one(self):
        orders = {0: (1, 2, 3), 1: (1, 2, 3), 2: (1, 2, 3)}
        assert gamma_fairness(orders) == 1.0

    def test_coin_flip_pair_gives_half(self):
        orders = {0: (1, 2), 1: (2, 1)}
        assert gamma_fairness(orders) == 0.5

    def test_three_of_four_agree(self):
        orders = {0: (1, 2), 1: (1, 2), 2: (1, 2), 3: (2, 1)}
        assert gamma_fairness(orders) == 0.75

    def test_minimum_over_pairs(self):
        # Pair (1,2) is unanimous; pair (2,3) splits 2/4.
        orders = {
            0: (1, 2, 3),
            1: (1, 2, 3),
            2: (1, 3, 2),
            3: (1, 3, 2),
        }
        assert gamma_fairness(orders) == 0.5

    def test_degenerate_inputs_give_one(self):
        assert gamma_fairness({}) == 1.0
        assert gamma_fairness({0: (1, 2, 3)}) == 1.0  # a single order
        assert gamma_fairness({0: (1,), 1: (1,)}) == 1.0  # a single common tx
        # No common transaction at all.
        assert gamma_fairness({0: (1, 2), 1: (3, 4)}) == 1.0


class TestMajorityOrder:
    def test_unanimous(self):
        orders = {0: (3, 1, 2), 1: (3, 1, 2)}
        assert majority_order(orders) == (3, 1, 2)

    def test_borda_mean_rank(self):
        # tx 1 ranks 0,0,2 (total 2); tx 2 ranks 1,2,0 (3); tx 3 ranks 2,1,1 (4).
        orders = {0: (1, 2, 3), 1: (1, 3, 2), 2: (2, 3, 1)}
        assert majority_order(orders) == (1, 2, 3)

    def test_tie_breaks_by_tx_id(self):
        orders = {0: (1, 2), 1: (2, 1)}
        assert majority_order(orders) == (1, 2)

    def test_restricted_to_common_transactions(self):
        orders = {0: (9, 1, 2), 1: (1, 2)}
        assert majority_order(orders) == (1, 2)


class TestInversionRate:
    def test_identical_orders_give_zero(self):
        orders = {0: (5, 6, 7), 1: (5, 6, 7), 2: (5, 6, 7)}
        assert pairwise_inversion_rate(orders) == 0.0

    def test_one_dissenter_among_three(self):
        # Majority order is (1, 2, 3); node 2 inverts exactly pair (2, 3).
        orders = {0: (1, 2, 3), 1: (1, 2, 3), 2: (1, 3, 2)}
        assert pairwise_inversion_rate(orders) == (0 + 0 + 1 / 3) / 3

    def test_explicit_reference(self):
        orders = {0: (1, 2), 1: (1, 2)}
        assert pairwise_inversion_rate(orders, reference=(2, 1)) == 1.0

    def test_degenerate_inputs_give_zero(self):
        assert pairwise_inversion_rate({}) == 0.0
        assert pairwise_inversion_rate({0: (1,), 1: (1,)}) == 0.0


class TestReport:
    def test_bundles_both_metrics(self):
        orders = {0: (1, 2), 1: (2, 1)}
        report = fairness_report(orders)
        assert report == FairnessReport(
            gamma=0.5, inversion_rate=0.5, num_orders=2, num_transactions=2
        )
        assert report.gamma_unfairness == 0.5


def _event(seq, time_ms, name, attrs):
    return {
        "type": "event",
        "seq": seq,
        "time_ms": time_ms,
        "name": name,
        "span_id": None,
        "attrs": attrs,
    }


class TestTraceOrders:
    def _trace(self, records):
        from repro.obs.analysis import read_trace

        header = {
            "type": "header",
            "v": 1,
            "schema": "repro.trace/1",
            "events": 0,
            "spans": 0,
            "events_dropped": 0,
            "spans_dropped": 0,
        }
        return read_trace([json.dumps(r) for r in [header] + records])

    def test_orders_by_arrival_with_backdating(self):
        trace = self._trace(
            [
                _event(0, 10.0, "tx.deliver", {"tx_id": 1, "node": 0, "sender": 9}),
                # tx 2 physically arrives later but is backdated before tx 1
                # (the F3B commit-anchored position).
                _event(
                    1,
                    20.0,
                    "tx.deliver",
                    {"tx_id": 2, "node": 0, "sender": 9, "arrival_ms": 5.0},
                ),
                _event(2, 12.0, "tx.deliver", {"tx_id": 1, "node": 1, "sender": 9}),
                _event(3, 15.0, "tx.deliver", {"tx_id": 2, "node": 1, "sender": 9}),
                _event(4, 1.0, "tx.dispatch", {"tx_id": 1, "origin": 9}),
            ]
        )
        orders = receive_orders_from_trace(trace.events)
        assert orders == {0: (2, 1), 1: (1, 2)}

    def test_node_and_tx_filters(self):
        trace = self._trace(
            [
                _event(0, 1.0, "tx.deliver", {"tx_id": 1, "node": 0, "sender": 9}),
                _event(1, 2.0, "tx.deliver", {"tx_id": 7, "node": 0, "sender": 9}),
                _event(2, 3.0, "tx.deliver", {"tx_id": 1, "node": 5, "sender": 9}),
            ]
        )
        orders = receive_orders_from_trace(trace.events, nodes=[0], tx_ids=[1])
        assert orders == {0: (1,)}
