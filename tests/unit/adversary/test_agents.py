"""Strategy agents, the registry, and zoo trials against small systems."""

import pytest

from repro.adversary import (
    AdversaryTrialResult,
    get_strategy,
    run_adversary_trial,
    strategy_names,
)
from repro.adversary.agent import StrategyAgent, register_strategy
from repro.adversary.strategies import SandwichStrategy
from repro.baselines.f3b import F3BSystem
from repro.baselines.lzero import LZeroSystem
from repro.baselines.mercury import MercurySystem
from repro.errors import ConfigurationError
from repro.net.faults import Behavior


@pytest.fixture()
def mercury_factory(physical40):
    def factory(plan, hook):
        return MercurySystem(physical40, fault_plan=plan, observe_hook=hook, seed=6)

    return factory


class TestRegistry:
    def test_builtins_registered(self):
        names = strategy_names()
        for expected in (
            "sandwich",
            "priority-race",
            "censor-reorder",
            "blackout",
            "flood",
        ):
            assert expected in names

    def test_unknown_strategy_raises(self):
        with pytest.raises(ConfigurationError, match="unknown strategy"):
            get_strategy("does-not-exist")

    def test_get_strategy_forwards_params(self):
        agent = get_strategy("sandwich", trail_delay_ms=50.0)
        assert isinstance(agent, SandwichStrategy)
        assert agent.trail_delay_ms == 50.0

    def test_registering_without_name_raises(self):
        with pytest.raises(ConfigurationError, match="non-empty name"):

            @register_strategy
            class Nameless(StrategyAgent):
                pass

    def test_registering_twice_raises(self):
        with pytest.raises(ConfigurationError, match="registered twice"):

            @register_strategy
            class Clone(StrategyAgent):
                name = "sandwich"


class TestSandwichTrial:
    def test_launches_two_legs(self, mercury_factory, physical40):
        result = run_adversary_trial(
            mercury_factory,
            physical40.nodes(),
            "sandwich",
            0.3,
            victim=0,
            proposer=20,
            horizon_ms=4_000,
            seed=1,
        )
        assert isinstance(result, AdversaryTrialResult)
        assert result.strategy == "sandwich"
        assert result.outcome.legs_launched == 2
        assert result.attacker not in (0, 20)
        assert result.observation_time is not None
        # The transport sighting can never lag the content observation.
        if result.first_frame_time is not None:
            assert result.first_frame_time <= result.observation_time

    def test_zero_malicious_means_no_attack(self, mercury_factory, physical40):
        result = run_adversary_trial(
            mercury_factory,
            physical40.nodes(),
            "sandwich",
            0.0,
            victim=0,
            proposer=20,
            horizon_ms=3_000,
            seed=1,
        )
        assert not result.attack_launched
        assert result.outcome.gross == 0.0
        assert result.verdict.victim_included
        assert result.victim_coverage == 1.0

    def test_as_record_round_trips_the_scores(self, mercury_factory, physical40):
        result = run_adversary_trial(
            mercury_factory,
            physical40.nodes(),
            "sandwich",
            0.3,
            victim=0,
            proposer=20,
            horizon_ms=4_000,
            seed=1,
        )
        record = result.as_record()
        assert record["strategy"] == "sandwich"
        assert record["attacker_won"] == result.verdict.attacker_won
        assert record["net"] == result.outcome.net
        assert record["gamma"] == result.fairness.gamma


class TestPriorityRace:
    def test_declares_fee_market_blocks(self):
        assert get_strategy("priority-race").block_priority

    def test_outbids_victim_on_fee_market(self, mercury_factory, physical40):
        result = run_adversary_trial(
            mercury_factory,
            physical40.nodes(),
            "priority-race",
            0.3,
            victim=0,
            proposer=20,
            value_model=None,
            victim_fee=1.0,
            horizon_ms=4_000,
            seed=1,
        )
        # The race leg bid victim_fee + fee_premium and no cutoff was set,
        # so on the fee-market block it must precede the victim.
        assert result.attack_launched
        assert result.verdict.attacker_won


class TestCensorReorder:
    def test_arms_coalition_censorship_where_deniable(
        self, mercury_factory, physical40
    ):
        result = run_adversary_trial(
            mercury_factory,
            physical40.nodes(),
            "censor-reorder",
            0.3,
            victim=0,
            proposer=20,
            horizon_ms=4_000,
            seed=1,
        )
        assert result.attack_launched
        # Some honest nodes may still be starved by the censoring coalition.
        assert 0.0 <= result.victim_coverage <= 1.0

    def test_noop_against_accountable_protocol(self, physical40):
        def factory(plan, hook):
            return LZeroSystem(
                physical40, fault_plan=plan, observe_hook=hook, seed=6
            )

        result = run_adversary_trial(
            factory,
            physical40.nodes(),
            "censor-reorder",
            0.3,
            victim=0,
            proposer=20,
            horizon_ms=4_000,
            seed=1,
        )
        # Censorship is attributable on L0: no node may arm censor_ids.
        system_censors = result.victim_coverage
        assert system_censors == 1.0


class TestF3BResistsReactiveStrategies:
    def test_sandwich_orders_behind_the_victim(self, physical40):
        def factory(plan, hook):
            return F3BSystem(physical40, fault_plan=plan, observe_hook=hook, seed=6)

        for seed in range(3):
            result = run_adversary_trial(
                factory,
                physical40.nodes(),
                "sandwich",
                0.33,
                victim=0,
                proposer=20,
                horizon_ms=5_000,
                seed=seed,
            )
            # Content reveals only after positions lock: a reactive lead can
            # never precede the victim in arrival order.
            assert not result.verdict.attacker_won
            assert result.outcome.gross == 0.0


class TestBlackout:
    def test_behavior_is_drop_relay(self):
        agent = get_strategy("blackout")
        assert agent.behavior is Behavior.DROP_RELAY
        assert not agent.block_priority
