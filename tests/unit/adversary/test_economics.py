"""Settlement rules: roles × block positions → extracted value."""

import pytest

from repro.adversary.economics import AttackLedger, ValueModel
from repro.mempool.blocks import Block
from repro.mempool.transaction import Transaction


MODEL = ValueModel(victim_value=100.0, fee_premium=1.0, partial_capture=0.5)


def _tx(fee=0.0):
    return Transaction.create(origin=0, created_at=0.0, tag="adversarial", fee=fee)


def _block(*tx_ids):
    return Block(proposer=0, created_at=1000.0, tx_ids=tuple(tx_ids))


class TestValueModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ValueModel(victim_value=-1.0)
        with pytest.raises(ValueError):
            ValueModel(fee_premium=-0.5)
        with pytest.raises(ValueError):
            ValueModel(partial_capture=1.5)


class TestLedger:
    def test_rejects_unknown_role(self):
        ledger = AttackLedger()
        with pytest.raises(ValueError):
            ledger.record(_tx(), "steal", now=0.0)

    def test_adversarial_ids_in_launch_order(self):
        ledger = AttackLedger()
        first, second = _tx(), _tx()
        ledger.record(first, "lead", now=0.0)
        ledger.record(second, "trail", now=5.0)
        assert ledger.adversarial_ids() == [first.tx_id, second.tx_id]


class TestSettlement:
    def test_complete_sandwich_full_value(self):
        ledger = AttackLedger()
        victim = _tx()
        lead, trail = _tx(fee=2.0), _tx()
        ledger.record(lead, "lead", now=0.0)
        ledger.record(trail, "trail", now=5.0)
        outcome = ledger.settle(
            _block(lead.tx_id, victim.tx_id, trail.tx_id), victim.tx_id, MODEL
        )
        assert outcome.gross == 100.0
        assert outcome.fees_paid == 2.0
        assert outcome.net == 98.0
        assert outcome.sandwich_complete
        assert outcome.profitable and outcome.extracted

    def test_lead_only_partial_capture(self):
        ledger = AttackLedger()
        victim = _tx()
        lead = _tx(fee=2.0)
        ledger.record(lead, "lead", now=0.0)
        outcome = ledger.settle(_block(lead.tx_id, victim.tx_id), victim.tx_id, MODEL)
        assert outcome.gross == 50.0
        assert outcome.net == 48.0
        assert not outcome.sandwich_complete

    def test_trail_on_wrong_side_pays_nothing(self):
        ledger = AttackLedger()
        victim = _tx()
        trail = _tx()
        ledger.record(trail, "trail", now=0.0)
        outcome = ledger.settle(_block(trail.tx_id, victim.tx_id), victim.tx_id, MODEL)
        assert outcome.gross == 0.0

    def test_lead_behind_victim_pays_fee_for_nothing(self):
        ledger = AttackLedger()
        victim = _tx()
        lead = _tx(fee=2.0)
        ledger.record(lead, "lead", now=0.0)
        outcome = ledger.settle(_block(victim.tx_id, lead.tx_id), victim.tx_id, MODEL)
        assert outcome.gross == 0.0
        assert outcome.fees_paid == 2.0
        assert outcome.net == -2.0
        assert not outcome.profitable

    def test_censored_victim_with_landed_leg_steals_full_value(self):
        ledger = AttackLedger()
        victim = _tx()
        push = _tx()
        ledger.record(push, "push", now=0.0)
        outcome = ledger.settle(_block(push.tx_id), victim.tx_id, MODEL)
        assert outcome.gross == 100.0
        assert outcome.legs_included == 1

    def test_censored_victim_without_legs_pays_nothing(self):
        ledger = AttackLedger()
        victim = _tx()
        push = _tx(fee=3.0)
        ledger.record(push, "push", now=0.0)
        outcome = ledger.settle(_block(), victim.tx_id, MODEL)
        assert outcome.gross == 0.0
        assert outcome.fees_paid == 0.0  # unincluded bids cost nothing
        assert outcome.legs_launched == 1 and outcome.legs_included == 0

    def test_no_records_no_value(self):
        ledger = AttackLedger()
        victim = _tx()
        outcome = ledger.settle(_block(victim.tx_id), victim.tx_id, MODEL)
        assert outcome.gross == 0.0 and outcome.net == 0.0
        assert outcome.legs_launched == 0
