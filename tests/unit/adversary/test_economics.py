"""Settlement rules: roles × block positions → extracted value."""

import pytest

from repro.adversary.agent import AgentContext
from repro.adversary.economics import AttackLedger, ValueModel
from repro.mempool.blocks import Block
from repro.mempool.transaction import Transaction
from repro.population import FeeMarket, FeeMarketConfig


MODEL = ValueModel(victim_value=100.0, fee_premium=1.0, partial_capture=0.5)


def _tx(fee=0.0):
    return Transaction.create(origin=0, created_at=0.0, tag="adversarial", fee=fee)


def _block(*tx_ids):
    return Block(proposer=0, created_at=1000.0, tx_ids=tuple(tx_ids))


class TestValueModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ValueModel(victim_value=-1.0)
        with pytest.raises(ValueError):
            ValueModel(fee_premium=-0.5)
        with pytest.raises(ValueError):
            ValueModel(partial_capture=1.5)


class TestLedger:
    def test_rejects_unknown_role(self):
        ledger = AttackLedger()
        with pytest.raises(ValueError):
            ledger.record(_tx(), "steal", now=0.0)

    def test_adversarial_ids_in_launch_order(self):
        ledger = AttackLedger()
        first, second = _tx(), _tx()
        ledger.record(first, "lead", now=0.0)
        ledger.record(second, "trail", now=5.0)
        assert ledger.adversarial_ids() == [first.tx_id, second.tx_id]


class TestSettlement:
    def test_complete_sandwich_full_value(self):
        ledger = AttackLedger()
        victim = _tx()
        lead, trail = _tx(fee=2.0), _tx()
        ledger.record(lead, "lead", now=0.0)
        ledger.record(trail, "trail", now=5.0)
        outcome = ledger.settle(
            _block(lead.tx_id, victim.tx_id, trail.tx_id), victim.tx_id, MODEL
        )
        assert outcome.gross == 100.0
        assert outcome.fees_paid == 2.0
        assert outcome.net == 98.0
        assert outcome.sandwich_complete
        assert outcome.profitable and outcome.extracted

    def test_lead_only_partial_capture(self):
        ledger = AttackLedger()
        victim = _tx()
        lead = _tx(fee=2.0)
        ledger.record(lead, "lead", now=0.0)
        outcome = ledger.settle(_block(lead.tx_id, victim.tx_id), victim.tx_id, MODEL)
        assert outcome.gross == 50.0
        assert outcome.net == 48.0
        assert not outcome.sandwich_complete

    def test_trail_on_wrong_side_pays_nothing(self):
        ledger = AttackLedger()
        victim = _tx()
        trail = _tx()
        ledger.record(trail, "trail", now=0.0)
        outcome = ledger.settle(_block(trail.tx_id, victim.tx_id), victim.tx_id, MODEL)
        assert outcome.gross == 0.0

    def test_lead_behind_victim_pays_fee_for_nothing(self):
        ledger = AttackLedger()
        victim = _tx()
        lead = _tx(fee=2.0)
        ledger.record(lead, "lead", now=0.0)
        outcome = ledger.settle(_block(victim.tx_id, lead.tx_id), victim.tx_id, MODEL)
        assert outcome.gross == 0.0
        assert outcome.fees_paid == 2.0
        assert outcome.net == -2.0
        assert not outcome.profitable

    def test_censored_victim_with_landed_leg_steals_full_value(self):
        ledger = AttackLedger()
        victim = _tx()
        push = _tx()
        ledger.record(push, "push", now=0.0)
        outcome = ledger.settle(_block(push.tx_id), victim.tx_id, MODEL)
        assert outcome.gross == 100.0
        assert outcome.legs_included == 1

    def test_censored_victim_without_legs_pays_nothing(self):
        ledger = AttackLedger()
        victim = _tx()
        push = _tx(fee=3.0)
        ledger.record(push, "push", now=0.0)
        outcome = ledger.settle(_block(), victim.tx_id, MODEL)
        assert outcome.gross == 0.0
        assert outcome.fees_paid == 0.0  # unincluded bids cost nothing
        assert outcome.legs_launched == 1 and outcome.legs_included == 0

    def test_no_records_no_value(self):
        ledger = AttackLedger()
        victim = _tx()
        outcome = ledger.settle(_block(victim.tx_id), victim.tx_id, MODEL)
        assert outcome.gross == 0.0 and outcome.net == 0.0
        assert outcome.legs_launched == 0


def _context(fee_market=None, model=MODEL):
    return AgentContext(
        system=None,
        coalition=frozenset(),
        ledger=AttackLedger(),
        value_model=model,
        fee_market=fee_market,
    )


class TestBidFee:
    def test_flat_premium_without_a_market(self):
        ctx = _context()
        assert ctx.bid_fee(3.0) == 4.0  # historical victim.fee + premium

    def test_market_bid_clears_the_base_fee(self):
        market = FeeMarket(FeeMarketConfig(initial_base_fee=1.0))
        for tick in range(1, 11):
            market.on_pressure(2.0, tick * 500.0)  # sustained overload
        ctx = _context(fee_market=market)
        assert ctx.bid_fee(0.5) == pytest.approx(market.base_fee + 1.0)
        # A victim bidding above the base fee still gets outbid directly.
        assert ctx.bid_fee(market.base_fee + 5.0) == pytest.approx(
            market.base_fee + 6.0
        )

    def test_spiked_market_flips_net_negative(self):
        """The satellite invariant: a sandwich that is profitable at calm
        prices loses money when the base fee spikes past the opportunity."""

        victim = _tx()
        model = ValueModel(victim_value=10.0, fee_premium=1.0)

        def settle_at(market):
            ctx = _context(fee_market=market, model=model)
            lead = _tx(fee=ctx.bid_fee(victim.fee))
            trail = _tx(fee=ctx.bid_fee(victim.fee))
            ctx.ledger.record(lead, "lead", now=0.0)
            ctx.ledger.record(trail, "trail", now=5.0)
            block = _block(lead.tx_id, victim.tx_id, trail.tx_id)
            return ctx.ledger.settle(block, victim.tx_id, model)

        calm = settle_at(None)
        assert calm.gross == 10.0
        assert calm.net == 10.0 - 2.0  # two legs at the flat premium
        assert calm.profitable

        spiked = FeeMarket(FeeMarketConfig(initial_base_fee=1.0))
        for tick in range(1, 25):  # 1.125**24 ≈ 17x the opportunity covers
            spiked.on_pressure(2.0, tick * 500.0)
        under_water = settle_at(spiked)
        assert under_water.gross == 10.0  # the sandwich still lands
        assert under_water.fees_paid > under_water.gross
        assert under_water.net < 0
        assert not under_water.profitable
