"""Unit tests for the F3B commit-then-reveal baseline."""

import pytest

from repro.baselines.f3b import F3BConfig, F3BSystem
from repro.errors import ConfigurationError
from repro.mempool.transaction import Transaction
from repro.net.faults import Behavior, FaultPlan


def run_tx(system, origin=0, horizon=6_000):
    system.start()
    tx = Transaction.create(origin=origin, created_at=0.0)
    system.submit(origin, tx)
    system.run(until_ms=horizon)
    return tx


class TestConfig:
    def test_defaults(self):
        config = F3BConfig()
        assert config.fanout == 8
        assert config.reveal_delay_ms == 300.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            F3BConfig(fanout=0)
        with pytest.raises(ConfigurationError):
            F3BConfig(reveal_delay_ms=-1.0)


class TestPeerGraph:
    def test_symmetric(self, physical40):
        system = F3BSystem(physical40, seed=5)
        for node in physical40.nodes():
            for peer in system.peers_of(node):
                assert node in system.peers_of(peer)

    def test_no_self_loops(self, physical40):
        system = F3BSystem(physical40, seed=5)
        for node in physical40.nodes():
            assert node not in system.peers_of(node)


class TestCommitThenReveal:
    def test_full_coverage_honest(self, physical40):
        system = F3BSystem(physical40, seed=5)
        tx = run_tx(system)
        assert len(system.stats.deliveries[tx.tx_id]) == 40

    def test_position_locks_before_content_is_usable(self, physical40):
        system = F3BSystem(physical40, seed=5)
        tx = run_tx(system)
        deliveries = system.stats.deliveries[tx.tx_id]
        for node_id, node in system.nodes.items():
            if node_id == tx.origin:
                continue
            commit_at = node.commit_times[tx.tx_id]
            # The mempool position is the commit's arrival...
            assert node.mempool.arrival_time(tx.tx_id) == commit_at
            # ...but usable (stats) delivery waits for the origin's reveal
            # round to elapse, and always lags the locked position.
            assert deliveries[node_id] >= system.config.reveal_delay_ms
            assert deliveries[node_id] > commit_at

    def test_observe_hook_fires_only_at_reveal(self, physical40):
        observations = []

        def hook(node, tx):
            observations.append((node.node_id, node.now))

        system = F3BSystem(physical40, observe_hook=hook, seed=5)
        tx = run_tx(system)
        by_node = dict(
            (node_id, when) for node_id, when in observations if node_id != tx.origin
        )
        assert len(by_node) == 39
        for node_id, observed_at in by_node.items():
            # An adversary's content tap sees the transaction only after its
            # position locked at commit arrival.
            assert observed_at > system.nodes[node_id].commit_times[tx.tx_id]

    def test_reveal_backdates_are_commit_arrivals_not_reveal_times(self, physical40):
        system = F3BSystem(physical40, seed=5)
        tx1 = run_tx(system, origin=0, horizon=6_000)
        # A second submission after the first is fully revealed must order
        # after it everywhere.
        tx2 = Transaction.create(origin=1, created_at=system.simulator.now)
        system.submit(1, tx2)
        system.run(until_ms=12_000)
        for node in system.nodes.values():
            order = [t.tx_id for t in node.mempool.in_arrival_order()]
            assert order.index(tx1.tx_id) < order.index(tx2.tx_id)


class TestByzantineBehaviour:
    def test_drop_relay_nodes_slow_but_rarely_stop_the_flood(self, physical40):
        plan = FaultPlan.random_fraction(
            physical40.nodes(), 0.2, Behavior.DROP_RELAY, seed=3, protected=(0,)
        )
        system = F3BSystem(physical40, fault_plan=plan, seed=5)
        tx = run_tx(system)
        honest = set(system.honest_node_ids())
        delivered = set(system.stats.deliveries[tx.tx_id])
        # The fanout-8 flood is redundant enough that content-blind dropping
        # by 20% of nodes leaves the honest population covered.
        assert honest <= delivered

    def test_crashed_origin_sends_nothing(self, physical40):
        plan = FaultPlan(behaviors={0: Behavior.CRASH})
        system = F3BSystem(physical40, fault_plan=plan, seed=5)
        tx = run_tx(system, origin=0)
        assert tx.tx_id not in system.stats.deliveries

    def test_targeted_censorship_cannot_unlock_positions(self, physical40):
        """Reveal-phase censors delay usability but never reorder."""

        plan = FaultPlan.random_fraction(
            physical40.nodes(), 0.25, Behavior.FRONT_RUN, seed=3, protected=(0,)
        )
        system = F3BSystem(physical40, fault_plan=plan, seed=5)
        system.start()
        tx = Transaction.create(origin=0, created_at=0.0)
        # Arm reveal-phase censorship on every malicious node up front.
        for node in system.nodes.values():
            if node.behavior is not Behavior.HONEST:
                node.censor_ids.add(tx.tx_id)
        system.submit(0, tx)
        system.run(until_ms=8_000)
        for node_id in system.honest_node_ids():
            node = system.nodes[node_id]
            if tx.tx_id in node.mempool:
                assert (
                    node.mempool.arrival_time(tx.tx_id)
                    == node.commit_times[tx.tx_id]
                )
