"""Unit tests for the plain gossip and simple-tree baselines."""

import pytest

from repro.baselines.gossip import GossipConfig, GossipSystem
from repro.baselines.simple_tree import SimpleTreeConfig, SimpleTreeSystem, tree_children
from repro.errors import ConfigurationError
from repro.mempool.transaction import Transaction
from repro.net.faults import Behavior, FaultPlan


def run_one_tx(system, origin=0, horizon=5_000):
    system.start()
    tx = Transaction.create(origin=origin, created_at=0.0)
    system.submit(origin, tx)
    system.run(until_ms=horizon)
    return tx


class TestGossip:
    def test_full_coverage_honest(self, physical40):
        system = GossipSystem(physical40, seed=2)
        tx = run_one_tx(system)
        assert len(system.stats.deliveries[tx.tx_id]) == 40

    def test_fanout_validated(self):
        with pytest.raises(ConfigurationError):
            GossipConfig(fanout=0)

    def test_higher_fanout_converges_faster(self, physical40):
        slow = GossipSystem(physical40, config=GossipConfig(fanout=2), seed=2)
        fast = GossipSystem(physical40, config=GossipConfig(fanout=10), seed=2)
        tx_slow, tx_fast = run_one_tx(slow), run_one_tx(fast)
        import statistics

        mean = lambda s, t: statistics.mean(s.stats.delivery_latencies(t.tx_id))
        assert mean(fast, tx_fast) < mean(slow, tx_slow)

    def test_droppers_reduce_coverage_somewhat(self, physical40):
        plan = FaultPlan.random_fraction(
            physical40.nodes(), 0.3, Behavior.DROP_RELAY, seed=1, protected=[0]
        )
        system = GossipSystem(
            physical40, config=GossipConfig(fanout=3), fault_plan=plan, seed=2
        )
        tx = run_one_tx(system)
        coverage = system.stats.coverage(tx.tx_id, system.honest_node_ids())
        assert 0.3 <= coverage <= 1.0

    def test_crash_node_receives_nothing(self, physical40):
        plan = FaultPlan(behaviors={5: Behavior.CRASH})
        system = GossipSystem(physical40, fault_plan=plan, seed=2)
        tx = run_one_tx(system)
        assert 5 not in system.stats.deliveries[tx.tx_id]


class TestSimpleTree:
    def test_full_coverage_honest(self, physical40):
        system = SimpleTreeSystem(physical40, seed=2)
        tx = run_one_tx(system, origin=17)
        assert len(system.stats.deliveries[tx.tx_id]) == 40

    def test_tree_children_shape(self):
        assert tree_children(0, 4, 40) == [1, 2, 3, 4]
        assert tree_children(1, 4, 40) == [5, 6, 7, 8]
        assert tree_children(39, 4, 40) == []

    def test_interior_dropper_severs_subtree(self, physical40):
        # Node at position 1 (the second node in sorted order) drops.
        order = physical40.nodes()
        plan = FaultPlan(behaviors={order[1]: Behavior.DROP_RELAY})
        system = SimpleTreeSystem(physical40, fault_plan=plan, seed=2)
        tx = run_one_tx(system, origin=order[0])
        delivered = set(system.stats.deliveries[tx.tx_id])
        # The dropper's subtree (positions 5..8 and their descendants) starves.
        missing = set(order) - delivered
        assert missing, "a censoring interior node must cost coverage"
        assert order[5] in missing

    def test_non_root_origin_routes_via_root(self, physical40):
        system = SimpleTreeSystem(physical40, seed=2)
        origin = physical40.nodes()[20]
        tx = run_one_tx(system, origin=origin)
        assert len(system.stats.deliveries[tx.tx_id]) == 40

    def test_branching_validated(self):
        with pytest.raises(ConfigurationError):
            SimpleTreeConfig(branching=0)
