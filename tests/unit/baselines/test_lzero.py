"""Unit tests for the L∅ baseline."""

import pytest

from repro.baselines.lzero import LZeroConfig, LZeroSystem
from repro.errors import ConfigurationError
from repro.mempool.transaction import Transaction
from repro.net.faults import Behavior, FaultPlan


def run_tx(system, origin=0, horizon=6_000):
    system.start()
    tx = Transaction.create(origin=origin, created_at=0.0)
    system.submit(origin, tx)
    system.run(until_ms=horizon)
    return tx


class TestLZero:
    def test_eventual_full_coverage(self, physical40):
        system = LZeroSystem(physical40, seed=3)
        tx = run_tx(system)
        assert len(system.stats.deliveries[tx.tx_id]) == 40

    def test_partner_overlay_static_and_bounded(self, physical40):
        system = LZeroSystem(physical40, seed=3)
        for node in physical40.nodes():
            partners = system.partners_of(node)
            assert len(partners) == 3
            assert node not in partners

    def test_commitments_recorded(self, physical40):
        system = LZeroSystem(physical40, seed=3)
        tx = run_tx(system)
        receiving_nodes = [
            system.nodes[n]
            for n in physical40.nodes()
            if system.nodes[n].peer_commitments
        ]
        assert receiving_nodes, "commitments must accompany forwarded transactions"
        sample = receiving_nodes[0]
        commitment = next(iter(sample.peer_commitments.values()))
        assert isinstance(commitment, bytes) and len(commitment) == 32

    def test_reconciliation_repairs_partition(self, physical40):
        """Even when gossip forwarding is censored, digests propagate the tx."""

        plan = FaultPlan.random_fraction(
            physical40.nodes(), 0.33, Behavior.DROP_RELAY, seed=5, protected=[0]
        )
        system = LZeroSystem(
            physical40,
            config=LZeroConfig(fanout=3, reconcile_period_ms=200.0),
            fault_plan=plan,
            seed=3,
        )
        tx = run_tx(system, horizon=10_000)
        coverage = system.stats.coverage(tx.tx_id, system.honest_node_ids())
        assert coverage >= 0.9

    def test_bandwidth_is_frugal(self, physical40):
        """L∅ must spend less than plain fanout-8 gossip (Fig. 3b's point)."""

        from repro.baselines.gossip import GossipConfig, GossipSystem

        lzero = LZeroSystem(physical40, seed=3)
        run_tx(lzero, horizon=3_000)
        lzero_bytes = lzero.stats.total_bytes()

        gossip = GossipSystem(physical40, config=GossipConfig(fanout=8), seed=3)
        run_tx(gossip, horizon=3_000)
        assert lzero_bytes < gossip.stats.total_bytes()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            LZeroConfig(fanout=0)
        with pytest.raises(ConfigurationError):
            LZeroConfig(reconcile_period_ms=0)
