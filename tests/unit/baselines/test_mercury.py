"""Unit tests for the Mercury baseline."""

import statistics

import pytest

from repro.baselines.mercury import MercuryConfig, MercurySystem, assign_clusters
from repro.errors import ConfigurationError
from repro.mempool.transaction import Transaction
from repro.net.faults import Behavior, FaultPlan


def run_tx(system, origin=0, horizon=5_000):
    system.start()
    tx = Transaction.create(origin=origin, created_at=0.0)
    system.submit(origin, tx)
    system.run(until_ms=horizon)
    return tx


class TestClustering:
    def test_paper_parameters(self):
        config = MercuryConfig()
        assert config.num_clusters == 8
        assert config.inner_cluster_peers == 4
        assert config.max_peers == 8

    def test_every_node_assigned(self, physical40):
        clusters, landmarks = assign_clusters(physical40, 8, seed=1)
        assert set(clusters) == set(physical40.nodes())
        assert len(landmarks) == 8
        assert all(0 <= c < 8 for c in clusters.values())

    def test_nodes_assigned_to_nearest_landmark(self, physical40):
        clusters, landmarks = assign_clusters(physical40, 4, seed=1)
        for node, cluster in clusters.items():
            own = physical40.transport_latency(node, landmarks[cluster])
            for other in landmarks:
                assert own <= physical40.transport_latency(node, other) + 1e-9

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MercuryConfig(num_clusters=0)
        with pytest.raises(ConfigurationError):
            MercuryConfig(max_peers=2, inner_cluster_peers=4)


class TestPeers:
    def test_regular_nodes_know_their_leader(self, physical40):
        system = MercurySystem(physical40, seed=5)
        for node in physical40.nodes():
            if node in system.landmarks:
                continue
            leader = system.landmarks[system.clusters[node]]
            assert leader in system.peers_of(node)

    def test_leaders_form_a_mesh(self, physical40):
        system = MercurySystem(physical40, seed=5)
        for leader in system.landmarks:
            cross = [p for p in system.peers_of(leader) if p in system.landmarks]
            assert cross, "every leader needs contacts to other leaders"

    def test_peer_links_symmetric(self, physical40):
        system = MercurySystem(physical40, seed=5)
        for node in physical40.nodes():
            for peer in system.peers_of(node):
                assert node in system.peers_of(peer)


class TestDissemination:
    def test_full_coverage_honest(self, physical40):
        system = MercurySystem(physical40, seed=5)
        tx = run_tx(system)
        assert len(system.stats.deliveries[tx.tx_id]) == 40

    def test_low_latency_vs_lzero(self, physical40):
        from repro.baselines.lzero import LZeroSystem

        mercury = MercurySystem(physical40, seed=5)
        tx_m = run_tx(mercury)
        lzero = LZeroSystem(physical40, seed=5)
        tx_l = run_tx(lzero)
        mean = lambda s, t: statistics.mean(s.stats.delivery_latencies(t.tx_id))
        assert mean(mercury, tx_m) < mean(lzero, tx_l)

    def test_vcs_traffic_charged(self, physical40):
        system = MercurySystem(physical40, seed=5)
        system.start()
        system.run(until_ms=5_000)
        # No transactions at all: every byte on the wire is VCS maintenance.
        assert system.stats.total_bytes() > 0

    def test_byzantine_leader_blacks_out_cluster(self, physical40):
        system_probe = MercurySystem(physical40, seed=5)
        # Pick a leader of a cluster that the sender is NOT in.
        sender = 0
        leader = next(
            l
            for l in system_probe.landmarks
            if system_probe.clusters[l] != system_probe.clusters[sender]
        )
        plan = FaultPlan(behaviors={leader: Behavior.DROP_RELAY})
        system = MercurySystem(physical40, fault_plan=plan, seed=5)
        tx = run_tx(system, origin=sender)
        cluster_members = [
            n
            for n in physical40.nodes()
            if system.clusters[n] == system.clusters[leader] and n != leader
        ]
        delivered = set(system.stats.deliveries[tx.tx_id])
        reached = [n for n in cluster_members if n in delivered]
        # With its leader censoring, the cluster is (mostly) dark.
        assert len(reached) < len(cluster_members)
