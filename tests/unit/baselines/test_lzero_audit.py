"""Unit tests for L∅'s commitment-based reordering audit."""

import pytest

from repro.baselines.lzero import LZeroConfig, LZeroSystem
from repro.baselines.lzero_audit import (
    audit_block_order,
    first_commitment_round,
)
from repro.mempool.blocks import Block
from repro.mempool.transaction import Transaction


def history(*rounds):
    """rounds: (time, ids...)"""

    return [(when, frozenset(ids)) for when, *ids in rounds]


class TestFirstCommitmentRound:
    def test_found_in_earliest_round(self):
        h = history((1.0, 5), (2.0, 5, 6))
        assert first_commitment_round(h, 5) == 1.0
        assert first_commitment_round(h, 6) == 2.0

    def test_never_committed(self):
        assert first_commitment_round(history((1.0, 5)), 9) is None


class TestAudit:
    def test_honest_order_clean(self):
        h = history((1.0, 1), (2.0, 1, 2), (3.0, 1, 2, 3))
        block = Block(proposer=0, created_at=4.0, tx_ids=(1, 2, 3))
        assert audit_block_order(h, block) == []

    def test_reordering_detected(self):
        h = history((1.0, 1), (2.0, 1, 2))
        # The proposer provably knew tx 1 before tx 2, yet ordered 2 first.
        block = Block(proposer=0, created_at=3.0, tx_ids=(2, 1))
        evidence = audit_block_order(h, block)
        assert len(evidence) == 1
        assert evidence[0].earlier_tx == 1 and evidence[0].later_tx == 2

    def test_same_round_pairs_not_flagged(self):
        """Two txs first committed in the same round cannot be adjudicated."""

        h = history((1.0, 1, 2))
        block = Block(proposer=0, created_at=2.0, tx_ids=(2, 1))
        assert audit_block_order(h, block) == []

    def test_uncommitted_txs_skipped(self):
        h = history((1.0, 1))
        block = Block(proposer=0, created_at=2.0, tx_ids=(9, 1))
        assert audit_block_order(h, block) == []

    def test_multiple_violations(self):
        h = history((1.0, 1), (2.0, 1, 2), (3.0, 1, 2, 3))
        block = Block(proposer=0, created_at=4.0, tx_ids=(3, 2, 1))
        evidence = audit_block_order(h, block)
        assert len(evidence) == 3  # (1,2), (1,3), (2,3) all inverted


class TestEndToEnd:
    def test_live_lzero_node_history_is_audit_clean(self, physical40):
        """A real run's arrival-ordered block never contradicts commitments."""

        system = LZeroSystem(
            physical40, config=LZeroConfig(reconcile_period_ms=150.0), seed=9
        )
        system.start()
        txs = []
        for index, origin in enumerate((0, 10, 20)):
            tx = Transaction.create(origin=origin, created_at=0.0)
            txs.append(tx)
            system.simulator.schedule_at(
                index * 400.0, lambda o=origin, t=tx: system.submit(o, t)
            )
        system.run(until_ms=5_000)
        from repro.mempool.blocks import build_block

        proposer = system.nodes[30]
        block = build_block(proposer.mempool, system.simulator.now)
        assert audit_block_order(proposer.commitment_history, block) == []

    def test_manipulated_block_caught(self, physical40):
        """Reversing a real node's arrival order produces evidence."""

        system = LZeroSystem(
            physical40, config=LZeroConfig(reconcile_period_ms=150.0), seed=9
        )
        system.start()
        txs = []
        for index, origin in enumerate((0, 10, 20)):
            tx = Transaction.create(origin=origin, created_at=0.0)
            txs.append(tx)
            system.simulator.schedule_at(
                index * 600.0, lambda o=origin, t=tx: system.submit(o, t)
            )
        system.run(until_ms=6_000)
        proposer = system.nodes[30]
        honest_order = [t.tx_id for t in proposer.mempool.in_arrival_order()]
        manipulated = Block(
            proposer=30,
            created_at=system.simulator.now,
            tx_ids=tuple(reversed(honest_order)),
        )
        evidence = audit_block_order(proposer.commitment_history, manipulated)
        assert evidence, "a reversed block must contradict the commitments"
