"""Unit tests for the Narwhal baseline."""

import pytest

from repro.baselines.narwhal import NarwhalConfig, NarwhalSystem
from repro.errors import ConfigurationError
from repro.mempool.transaction import Transaction
from repro.net.faults import Behavior, FaultPlan


def run_tx(system, origin=0, horizon=6_000):
    system.start()
    tx = Transaction.create(origin=origin, created_at=0.0)
    system.submit(origin, tx)
    system.run(until_ms=horizon)
    return tx


class TestStructure:
    def test_validator_set_size(self, physical40):
        system = NarwhalSystem(physical40, seed=4)
        assert len(system.validators) == max(4, 40 // 3)

    def test_explicit_validator_count(self, physical40):
        system = NarwhalSystem(
            physical40, config=NarwhalConfig(num_validators=6), seed=4
        )
        assert len(system.validators) == 6

    def test_every_non_validator_subscribes(self, physical40):
        system = NarwhalSystem(physical40, seed=4)
        subscribed = set()
        for validator, subs in system._subscribers.items():
            subscribed.update(subs)
        non_validators = set(physical40.nodes()) - set(system.validators)
        assert non_validators <= subscribed

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            NarwhalConfig(num_validators=0)
        with pytest.raises(ConfigurationError):
            NarwhalConfig(subscriptions_per_node=0)
        with pytest.raises(ConfigurationError):
            NarwhalConfig(ack_quorum_fraction=0)


class TestDissemination:
    def test_mempool_coverage(self, physical40):
        system = NarwhalSystem(physical40, seed=4)
        tx = run_tx(system)
        mempool_holders = sum(
            1 for node in system.nodes.values() if tx.tx_id in node.mempool
        )
        assert mempool_holders == 40

    def test_certified_delivery_recorded(self, physical40):
        system = NarwhalSystem(physical40, seed=4)
        tx = run_tx(system)
        # Stats deliveries require batch + certificate.
        assert len(system.stats.deliveries[tx.tx_id]) == 40
        for node in system.nodes.values():
            assert tx.tx_id in node.certified_ids

    def test_mempool_arrival_precedes_certified_delivery(self, physical40):
        system = NarwhalSystem(physical40, seed=4)
        tx = run_tx(system)
        for node_id, when in system.stats.deliveries[tx.tx_id].items():
            node = system.nodes[node_id]
            assert node.mempool.arrival_time(tx.tx_id) <= when

    def test_batch_delay_applies_to_honest_senders(self, physical40):
        system = NarwhalSystem(
            physical40, config=NarwhalConfig(batch_delay_ms=100.0), seed=4
        )
        tx = run_tx(system)
        assert system.stats.send_times[tx.tx_id] >= 100.0

    def test_front_runner_skips_batch_delay(self, physical40):
        plan = FaultPlan(behaviors={0: Behavior.FRONT_RUN})
        system = NarwhalSystem(
            physical40,
            config=NarwhalConfig(batch_delay_ms=100.0),
            fault_plan=plan,
            seed=4,
        )
        tx = run_tx(system, origin=0)
        assert system.stats.send_times[tx.tx_id] == 0.0


class TestRobustness:
    def test_byzantine_validators_starve_their_subscribers(self, physical40):
        plan = FaultPlan.random_fraction(
            physical40.nodes(), 0.33, Behavior.DROP_RELAY, seed=9, protected=[0]
        )
        system = NarwhalSystem(physical40, fault_plan=plan, seed=4)
        tx = run_tx(system)
        coverage = system.stats.coverage(tx.tx_id, system.honest_node_ids())
        assert coverage < 1.0  # some subscribers depend only on byz validators
        assert coverage > 0.5
