"""Unit tests for the sweep executor, task registry and aggregation.

Everything here runs serially (``jobs=1``); the multi-process paths — crash
retry and serial-vs-parallel byte identity — live in
``tests/integration/test_sweep_parallel.py`` where spawn overhead is paid
once per suite, not per unit test.
"""

import pytest

from repro.errors import ConfigurationError, SweepExecutionError
from repro.runner import (
    MemoryStore,
    ResultStore,
    RunSpec,
    SweepSpec,
    get_task,
    group_records,
    latency_summaries,
    mean_by_group,
    merged_latencies,
    register_task,
    run_sweep,
    task_names,
)


class TestRegistry:
    def test_builtin_tasks_present(self):
        names = task_names()
        for expected in (
            "dissemination",
            "fig3a.protocol",
            "fig3b.protocol",
            "fig5a.trial",
            "fig5b.trial",
            "selftest.echo",
        ):
            assert expected in names

    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigurationError):
            get_task("no-such-task")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_task("selftest.echo")(lambda params: params)


class TestRunSweepSerial:
    def test_grid_executes_every_cell_in_order(self):
        report = run_sweep(SweepSpec(task="selftest.echo", grid={"x": [1, 2, 3]}))
        assert report.executed == 3
        assert report.skipped == report.failed == 0
        assert [r.result["x"] for r in report.records] == [1, 2, 3]
        assert report.results() == [{"x": 1}, {"x": 2}, {"x": 3}]

    def test_duplicate_specs_execute_once(self):
        spec = RunSpec(task="selftest.echo", params={"x": 1})
        report = run_sweep([spec, spec, RunSpec(task="selftest.echo", params={"x": 1})])
        assert report.total == 1
        assert report.executed == 1

    def test_resume_skips_completed_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep = SweepSpec(task="selftest.echo", grid={"x": [1, 2]})
        first = run_sweep(sweep, store=store)
        assert first.executed == 2
        again = run_sweep(sweep, store=store)
        assert again.executed == 0
        assert again.skipped == 2
        assert [r.result for r in again.records] == [r.result for r in first.records]

    def test_no_resume_reexecutes(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep = SweepSpec(task="selftest.echo", grid={"x": [1]})
        run_sweep(sweep, store=store)
        again = run_sweep(sweep, store=store, resume=False)
        assert again.executed == 1 and again.skipped == 0

    def test_failed_record_is_not_resumed(self, tmp_path):
        calls = []

        @register_task("_test.flaky_once")
        def _flaky(params):
            calls.append(1)
            if len(calls) == 1:
                raise ValueError("first call explodes")
            return {"ok": True}

        store = ResultStore(tmp_path)
        spec = RunSpec(task="_test.flaky_once")
        first = run_sweep([spec], store=store)
        assert first.failed == 1
        assert "ValueError: first call explodes" in first.records[0]["error"]
        second = run_sweep([spec], store=store)
        assert second.executed == 1 and second.failed == 0
        assert second.records[0].ok

    def test_task_exception_recorded_not_raised(self):
        @register_task("_test.always_fails")
        def _fails(params):
            raise RuntimeError("deterministic failure")

        report = run_sweep([RunSpec(task="_test.always_fails", params={})])
        record = report.records[0]
        assert report.failed == 1
        assert not record.ok
        assert "RuntimeError: deterministic failure" in record["error"]

    def test_timeout_records_error(self):
        report = run_sweep(
            [RunSpec(task="selftest.sleep", params={"seconds": 5.0})],
            timeout_s=0.2,
        )
        record = report.records[0]
        assert not record.ok
        assert "timeout" in record["error"]

    def test_fast_run_beats_timeout(self):
        report = run_sweep(
            [RunSpec(task="selftest.sleep", params={"seconds": 0.0})],
            timeout_s=5.0,
        )
        assert report.records[0].ok

    def test_progress_callback_sees_every_record(self, tmp_path):
        seen = []
        sweep = SweepSpec(task="selftest.echo", grid={"x": [1, 2]})
        store = ResultStore(tmp_path)
        run_sweep(sweep, store=store, progress=lambda r, done, total: seen.append(
            (r["spec"]["params"]["x"], done, total)
        ))
        assert [x for x, _, _ in seen] == [1, 2]
        assert seen[-1][1:] == (2, 2)
        seen.clear()
        run_sweep(sweep, store=store, progress=lambda r, done, total: seen.append(
            (r["spec"]["params"]["x"], done, total)
        ))  # resumed records still reported
        assert len(seen) == 2

    def test_memory_store_default(self):
        report = run_sweep([RunSpec(task="selftest.echo", params={"x": 9})])
        assert report.records[0].result == {"x": 9}

    def test_bad_arguments_rejected(self):
        spec = RunSpec(task="selftest.echo")
        with pytest.raises(ConfigurationError):
            run_sweep([spec], jobs=0)
        with pytest.raises(ConfigurationError):
            run_sweep([spec], retries=-1)
        with pytest.raises(ConfigurationError):
            run_sweep([])

    def test_summary_line(self, tmp_path):
        report = run_sweep(SweepSpec(task="selftest.echo", grid={"x": [1]}))
        line = report.summary_line()
        assert "1 runs" in line and "1 executed" in line


def _fake_record(protocol, latencies, ok=True, extra=None):
    spec = RunSpec(
        task="dissemination", params={"protocol": protocol, **(extra or {})}
    )
    from repro.runner import RunRecord

    if ok:
        return RunRecord.build(spec, result={"latencies": latencies})
    return RunRecord.build(spec, status="error", error="boom")


class TestAggregation:
    def test_group_records_by_param(self):
        records = [
            _fake_record("hermes", [1.0], extra={"seed": 0}),
            _fake_record("lzero", [2.0], extra={"seed": 0}),
            _fake_record("hermes", [3.0], extra={"seed": 1}),
        ]
        grouped = group_records(records, "protocol")
        assert set(grouped) == {("hermes",), ("lzero",)}
        assert len(grouped[("hermes",)]) == 2

    def test_group_records_excludes_failures(self):
        records = [
            _fake_record("hermes", [1.0]),
            _fake_record("hermes", [], ok=False),
        ]
        grouped = group_records(records, "protocol")
        assert len(grouped[("hermes",)]) == 1

    def test_group_records_needs_keys(self):
        with pytest.raises(ValueError):
            group_records([], )

    def test_merged_latencies(self):
        records = [
            _fake_record("hermes", [1.0, 2.0], extra={"seed": 0}),
            _fake_record("hermes", [3.0], extra={"seed": 1}),
        ]
        assert merged_latencies(records) == [1.0, 2.0, 3.0]

    def test_latency_summaries_match_population(self):
        records = [
            _fake_record("hermes", [10.0, 20.0], extra={"seed": 0}),
            _fake_record("hermes", [30.0], extra={"seed": 1}),
            _fake_record("lzero", [100.0], extra={"seed": 0}),
        ]
        summaries = latency_summaries(records)
        assert summaries["hermes"].count == 3
        assert summaries["hermes"].mean == pytest.approx(20.0)
        assert summaries["lzero"].mean == pytest.approx(100.0)

    def test_mean_by_group(self):
        from repro.runner import RunRecord

        def record(protocol, seed, coverage):
            spec = RunSpec(
                task="dissemination", params={"protocol": protocol, "seed": seed}
            )
            return RunRecord.build(spec, result={"coverage": coverage})

        records = [
            record("hermes", 0, 1.0),
            record("hermes", 1, 0.5),
            record("lzero", 0, 0.25),
        ]
        means = mean_by_group(records, "coverage", "protocol")
        assert means[("hermes",)] == pytest.approx(0.75)
        assert means[("lzero",)] == pytest.approx(0.25)


class TestSweepHelper:
    def test_run_cells_raises_on_failure(self):
        from repro.experiments._sweep import run_cells

        @register_task("_test.sweep_helper_fails")
        def _fails(params):
            raise RuntimeError("cell exploded")

        with pytest.raises(SweepExecutionError, match="cell exploded"):
            run_cells("_test.sweep_helper_fails", [{}])

    def test_run_cells_returns_report(self):
        from repro.experiments._sweep import run_cells

        report = run_cells("selftest.echo", [{"x": 1}, {"x": 2}])
        assert report.executed == 2
        assert [r.result["x"] for r in report.records] == [1, 2]


class TestCliHelpers:
    def test_parse_axis_types_values(self):
        from repro.runner.cli import parse_axis

        key, values = parse_axis("seed=0,1,2")
        assert key == "seed" and values == [0, 1, 2]
        key, values = parse_axis("protocol=hermes,lzero")
        assert values == ["hermes", "lzero"]
        key, values = parse_axis("fraction=0.1,0.33")
        assert values == [0.1, 0.33]
        key, values = parse_axis("flag=true")
        assert values == [True]

    def test_parse_axis_rejects_malformed(self):
        from repro.runner.cli import parse_axis

        for bad in ("seed", "=1", "seed="):
            with pytest.raises(ConfigurationError):
                parse_axis(bad)

    def test_list_tasks_exit_code(self, capsys):
        from repro.runner.cli import main

        assert main(["--list-tasks"]) == 0
        out = capsys.readouterr().out
        assert "dissemination" in out and "selftest.echo" in out

    def test_cli_task_mode_runs(self, tmp_path, capsys):
        from repro.runner.cli import main

        code = main(
            [
                "--task",
                "selftest.echo",
                "--set",
                "x=1,2",
                "--results-dir",
                str(tmp_path / "store"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 runs: 2 executed" in out
        code = main(
            [
                "--task",
                "selftest.echo",
                "--set",
                "x=1,2",
                "--results-dir",
                str(tmp_path / "store"),
            ]
        )
        assert code == 0
        assert "0 executed, 2 resumed" in capsys.readouterr().out
