"""Unit tests for the sweep timeline: emission, tagging, reading, progress.

Everything here uses in-memory telemetry and fake clocks; the real
multi-process timeline (spawn pool, SIGALRM, crash retry) is exercised in
``tests/integration/test_sweep_telemetry.py``.
"""

import io

import pytest

from repro.errors import TraceReadError
from repro.obs.wall import WallClock
from repro.runner import (
    PHASES,
    SWEEPTRACE_SCHEMA,
    MemoryStore,
    ProgressConsole,
    SweepSpec,
    SweepTelemetry,
    read_timeline,
    run_sweep,
)
from repro.runner.telemetry import RUN_PHASES, WORKER_PHASES, run_tags


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.t = start

    def advance(self, seconds: float) -> None:
        self.t += seconds

    def __call__(self) -> float:
        return self.t


class TestPhaseVocabulary:
    def test_phase_tuples_are_consistent(self):
        assert set(PHASES) == set(RUN_PHASES) | set(WORKER_PHASES)
        assert "enqueue_wait" in RUN_PHASES
        assert "spawn" in WORKER_PHASES


class TestRunTags:
    def test_ok_record_has_no_tags(self):
        assert run_tags({"status": "ok"}) == []

    def test_timeout_error_is_tagged(self):
        record = {"status": "error", "error": "run exceeded timeout of 2s"}
        assert run_tags(record) == ["timeout"]

    def test_exhausted_crash_is_tagged(self):
        record = {
            "status": "error",
            "error": "worker crashed and retry budget exhausted after 3 attempts",
        }
        assert run_tags(record) == ["crash", "failed"]

    def test_plain_task_error_is_tagged_error(self):
        assert run_tags({"status": "error", "error": "ValueError: boom"}) == ["error"]


class TestSweepTelemetryEmission:
    def test_serial_sweep_emits_full_timeline(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        telemetry = SweepTelemetry(path)
        report = run_sweep(
            SweepSpec(task="selftest.echo", grid={"x": [1, 2]}),
            telemetry=telemetry,
        )
        assert report.executed == 2
        timeline = read_timeline(path)
        assert timeline.header["schema"] == SWEEPTRACE_SCHEMA
        assert timeline.jobs == 1
        assert timeline.cells == 2
        assert len(timeline.completed_runs()) == 2
        assert timeline.summary["executed"] == 2
        for run in timeline.runs:
            assert run["status"] == "ok"
            assert run["tags"] == []
            # Serial runs: no pool, so wait/pickle phases are genuinely zero.
            assert run["phases"]["enqueue_wait"] == 0.0
            assert run["phases"]["serialize"] == 0.0
            assert run["phases"]["execute"] >= 0.0
            assert run["t_stored"] >= run["t_end"] >= run["t_submit"]

    def test_resumed_cells_emit_resumed_records(self, tmp_path):
        store_dir = tmp_path / "store"
        from repro.runner import ResultStore

        sweep = SweepSpec(task="selftest.echo", grid={"x": [1, 2]})
        store = ResultStore(store_dir)
        run_sweep(sweep, store=store)

        path = tmp_path / "timeline.jsonl"
        telemetry = SweepTelemetry(path)
        report = run_sweep(sweep, store=store, telemetry=telemetry)
        assert report.skipped == 2
        timeline = read_timeline(path)
        assert len(timeline.resumed) == 2
        assert timeline.header["resumed"] == 2
        assert timeline.completed_runs() == []

    def test_memory_only_telemetry_keeps_records(self):
        telemetry = SweepTelemetry()
        run_sweep(SweepSpec(task="selftest.echo", grid={"x": [1]}), telemetry=telemetry)
        kinds = [r.get("kind") for r in telemetry.records]
        assert kinds[0] == "header"
        assert kinds[-1] == "summary"
        assert "run" in kinds

    def test_task_error_lands_tagged_in_timeline(self):
        telemetry = SweepTelemetry()
        # A non-numeric `seconds` makes selftest.sleep raise deterministically.
        report = run_sweep(
            SweepSpec(task="selftest.sleep", grid={"seconds": ["not-a-number"]}),
            telemetry=telemetry,
        )
        assert report.failed == 1
        runs = [r for r in telemetry.records if r.get("kind") == "run"]
        assert runs[0]["status"] == "error"
        assert runs[0]["tags"] == ["error"]

    def test_listener_sees_every_record(self):
        seen = []
        telemetry = SweepTelemetry(listener=seen.append)
        run_sweep(SweepSpec(task="selftest.echo", grid={"x": [1]}), telemetry=telemetry)
        assert seen == telemetry.records

    def test_worker_seen_dedups_by_pid(self):
        telemetry = SweepTelemetry()
        telemetry.sweep_started(jobs=2, cells=1, resumed=0)
        info = {"pid": 7, "t_spawned": 0.5, "t_ready": 0.7, "spawn": 0.5, "env_build": 0.2}
        telemetry.worker_seen(info)
        telemetry.worker_seen(info)
        telemetry.worker_seen(None)
        workers = [r for r in telemetry.records if r.get("kind") == "worker"]
        assert len(workers) == 1
        assert workers[0]["phases"] == {"spawn": 0.5, "env_build": 0.2}

    def test_stored_records_carry_no_wall_clock_data(self):
        # The observation-only invariant at the record level: nothing the
        # telemetry measures leaks into what the store persists.
        store = MemoryStore()
        telemetry = SweepTelemetry()
        report = run_sweep(
            SweepSpec(task="selftest.echo", grid={"x": [1]}),
            store=store,
            telemetry=telemetry,
        )
        record = report.records[0]
        assert set(record) <= {
            "schema", "spec", "spec_hash", "status", "result", "error",
            "attempts", "duration_note",
        } or all(key not in record for key in ("t_submit", "phases", "timing"))


class TestReadTimeline:
    def test_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "something.else/1"}\n', encoding="utf-8")
        with pytest.raises(TraceReadError):
            read_timeline(path)

    def test_rejects_unsupported_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            f'{{"schema": "{SWEEPTRACE_SCHEMA}", "v": 2, "kind": "header"}}\n',
            encoding="utf-8",
        )
        with pytest.raises(TraceReadError):
            read_timeline(path)

    def test_empty_file_is_an_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(TraceReadError):
            read_timeline(path)

    def test_torn_tail_keeps_the_prefix(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            f'{{"schema": "{SWEEPTRACE_SCHEMA}", "v": 1, "kind": "header", '
            '"jobs": 2, "cells": 3}\n'
            '{"kind": "run", "status": "ok", "tags": [], "phases": {}}\n'
            '{"kind": "run", "stat',  # the sweep was killed mid-write
            encoding="utf-8",
        )
        timeline = read_timeline(path)
        assert timeline.jobs == 2
        assert len(timeline.runs) == 1

    def test_wall_seconds_falls_back_to_last_stamp(self, tmp_path):
        path = tmp_path / "nosummary.jsonl"
        path.write_text(
            f'{{"schema": "{SWEEPTRACE_SCHEMA}", "v": 1, "kind": "header"}}\n'
            '{"kind": "run", "status": "ok", "t_stored": 4.5, "phases": {}}\n',
            encoding="utf-8",
        )
        assert read_timeline(path).wall_seconds() == 4.5


class TestProgressConsole:
    def _drive(self, records, clock=None):
        stream = io.StringIO()
        console = ProgressConsole(stream, clock=clock or WallClock(clock=FakeClock(0.0)))
        for record in records:
            console(record)
        return stream.getvalue(), console

    def test_counts_runs_and_renders_line(self):
        source = FakeClock()
        clock = WallClock(clock=source)
        stream = io.StringIO()
        console = ProgressConsole(stream, clock=clock)
        console({"kind": "header", "cells": 4, "resumed": 1})
        source.advance(2.0)
        console(
            {
                "kind": "run",
                "status": "ok",
                "tags": [],
                "worker": 7,
                "phases": {"execute": 1.0, "deserialize": 0.5, "serialize": 0.5},
            }
        )
        text = stream.getvalue()
        assert "sweep 2/4 cells (50%)" in text
        assert "runs/s" in text
        assert "eta" in text
        assert console.done == 2
        assert console.executed == 1

    def test_requeued_crash_does_not_count_done(self):
        _, console = self._drive(
            [
                {"kind": "header", "cells": 2, "resumed": 0},
                {"kind": "run", "status": "crash", "tags": ["crash", "retry"]},
            ]
        )
        assert console.done == 0

    def test_failed_runs_are_counted(self):
        _, console = self._drive(
            [
                {"kind": "header", "cells": 1, "resumed": 0},
                {"kind": "run", "status": "error", "tags": ["error"], "phases": {}},
            ]
        )
        assert console.failed == 1

    def test_summary_prints_final_line(self):
        text, _ = self._drive(
            [
                {"kind": "header", "cells": 1, "resumed": 0},
                {
                    "kind": "summary",
                    "executed": 1,
                    "skipped": 0,
                    "failed": 0,
                    "wall_s": 2.0,
                    "jobs": 2,
                },
            ]
        )
        assert "sweep done: 1 executed" in text
        assert text.endswith("\n")

    def test_worker_utilization_appears(self):
        source = FakeClock()
        clock = WallClock(clock=source)
        stream = io.StringIO()
        console = ProgressConsole(stream, clock=clock)
        console({"kind": "header", "cells": 2, "resumed": 0})
        console({"kind": "worker", "worker": 11, "t_ready": 0.0, "phases": {}})
        source.advance(2.0)
        console(
            {
                "kind": "run",
                "status": "ok",
                "tags": [],
                "worker": 11,
                "phases": {"execute": 1.0},
            }
        )
        assert "w1 50%" in stream.getvalue()
