"""Unit tests for the content-addressed result store."""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    RECORD_SCHEMA,
    MemoryStore,
    ResultStore,
    RunRecord,
    RunSpec,
)


@pytest.fixture
def spec():
    return RunSpec(task="selftest.echo", params={"x": 1})


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "results")


class TestRunRecord:
    def test_build_ok(self, spec):
        record = RunRecord.build(spec, result={"x": 1})
        assert record.ok
        assert record["schema"] == RECORD_SCHEMA
        assert record["spec_hash"] == spec.spec_hash
        assert record.result == {"x": 1}
        assert record.spec == spec

    def test_build_error(self, spec):
        record = RunRecord.build(spec, status="error", error="boom", attempts=3)
        assert not record.ok
        assert record["error"] == "boom"
        assert record["attempts"] == 3

    def test_is_a_plain_dict(self, spec):
        record = RunRecord.build(spec, result=1)
        assert json.loads(json.dumps(record)) == dict(record)


class TestResultStore:
    def test_save_and_load_round_trip(self, store, spec):
        record = RunRecord.build(spec, result={"v": [1.5, 2.5]})
        path = store.save(record)
        assert path.name == f"{spec.spec_hash}.json"
        loaded = store.load(spec)
        assert loaded == record
        assert loaded.ok

    def test_contains_by_spec_and_hash(self, store, spec):
        assert spec not in store
        store.save(RunRecord.build(spec, result=1))
        assert spec in store
        assert spec.spec_hash in store

    def test_missing_record_loads_as_none(self, store, spec):
        assert store.load(spec) is None

    def test_corrupt_record_treated_as_missing(self, store, spec):
        store.save(RunRecord.build(spec, result=1))
        store.path_for(spec).write_text('{"schema": "repro.runner/1", trunc')
        assert store.load(spec) is None
        assert spec.spec_hash not in store.completed_hashes()

    def test_wrong_schema_treated_as_missing(self, store, spec):
        path = store.path_for(spec)
        path.write_text(json.dumps({"schema": "other/9", "spec_hash": spec.spec_hash}))
        assert store.load(spec) is None

    def test_completed_hashes_excludes_failures(self, store):
        ok = RunSpec(task="t", params={"x": 1})
        bad = RunSpec(task="t", params={"x": 2})
        store.save(RunRecord.build(ok, result=1))
        store.save(RunRecord.build(bad, status="error", error="boom"))
        assert store.completed_hashes() == {ok.spec_hash}
        assert len(store) == 2

    def test_records_in_hash_order(self, store):
        specs = [RunSpec(task="t", params={"x": i}) for i in range(5)]
        for s in specs:
            store.save(RunRecord.build(s, result=s.params["x"]))
        hashes = [r["spec_hash"] for r in store.records()]
        assert hashes == sorted(s.spec_hash for s in specs)

    def test_rejects_foreign_schema_on_save(self, store, spec):
        record = dict(RunRecord.build(spec, result=1))
        record["schema"] = "not-ours"
        with pytest.raises(ConfigurationError):
            store.save(record)

    def test_rejects_record_without_hash(self, store, spec):
        record = dict(RunRecord.build(spec, result=1))
        del record["spec_hash"]
        with pytest.raises(ConfigurationError):
            store.save(record)

    def test_save_is_byte_deterministic(self, store, spec):
        record = RunRecord.build(spec, result={"b": 2, "a": 1})
        path = store.save(record)
        first = path.read_bytes()
        store.save(RunRecord.build(spec, result={"a": 1, "b": 2}))
        assert path.read_bytes() == first

    def test_no_temp_files_left_behind(self, store, spec):
        store.save(RunRecord.build(spec, result=1))
        leftovers = [p for p in os.listdir(store.root) if p.endswith(".tmp")]
        assert leftovers == []

    def test_overwrite_replaces_atomically(self, store, spec):
        store.save(RunRecord.build(spec, status="error", error="first try"))
        store.save(RunRecord.build(spec, result=42))
        loaded = store.load(spec)
        assert loaded.ok and loaded.result == 42
        assert len(store) == 1


class TestMemoryStore:
    def test_same_interface(self, spec):
        store = MemoryStore()
        assert spec not in store
        assert store.load(spec) is None
        store.save(RunRecord.build(spec, result=7))
        assert spec in store and spec.spec_hash in store
        assert store.load(spec).result == 7
        assert store.completed_hashes() == {spec.spec_hash}
        assert [r["spec_hash"] for r in store.records()] == [spec.spec_hash]
        assert len(store) == 1
