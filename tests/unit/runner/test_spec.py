"""Unit tests for run/sweep specifications and content hashing."""

import pytest

from repro.errors import ConfigurationError
from repro.runner import RunSpec, SweepSpec, canonical_json, spec_hash


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_fixed_separators(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_non_json_value_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_json({"fn": lambda: None})

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_json({"x": float("nan")})


class TestSpecHash:
    def test_stable_across_param_order(self):
        a = spec_hash("t", {"x": 1, "y": 2})
        b = spec_hash("t", {"y": 2, "x": 1})
        assert a == b

    def test_known_value_is_pinned(self):
        # The hash is a storage address: changing the hashing scheme silently
        # orphans every existing results directory, so pin one known vector.
        assert (
            spec_hash("selftest.echo", {"x": 1})
            == "d1eaef95f2a67db7d666e9183e15bb8ac4c41921fa9cbccf92ee0e3f727492a5"
        )

    def test_task_and_params_both_matter(self):
        base = spec_hash("t", {"x": 1})
        assert spec_hash("u", {"x": 1}) != base
        assert spec_hash("t", {"x": 2}) != base


class TestRunSpec:
    def test_hash_matches_function(self):
        spec = RunSpec(task="t", params={"x": 1})
        assert spec.spec_hash == spec_hash("t", {"x": 1})

    def test_params_copied_not_aliased(self):
        params = {"x": 1}
        spec = RunSpec(task="t", params=params)
        params["x"] = 99
        assert spec.params["x"] == 1

    def test_bad_params_fail_at_construction(self):
        with pytest.raises(ConfigurationError):
            RunSpec(task="t", params={"obj": object()})

    def test_empty_task_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec(task="")

    def test_json_round_trip(self):
        spec = RunSpec(task="t", params={"x": 1, "name": "a"})
        again = RunSpec.from_json(spec.to_json())
        assert again == spec
        assert again.spec_hash == spec.spec_hash

    def test_equality_and_set_membership(self):
        a = RunSpec(task="t", params={"x": 1})
        b = RunSpec(task="t", params={"x": 1})
        c = RunSpec(task="t", params={"x": 2})
        assert a == b and a != c
        assert len({a, b, c}) == 2


class TestSweepSpec:
    def test_expansion_order_last_axis_fastest(self):
        sweep = SweepSpec(
            task="t", grid={"p": ["a", "b"], "s": [0, 1]}
        )
        cells = [(spec.params["p"], spec.params["s"]) for spec in sweep]
        assert cells == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]

    def test_base_merged_and_overridden_by_grid(self):
        sweep = SweepSpec(task="t", base={"n": 10, "s": 99}, grid={"s": [0, 1]})
        cells = sweep.expand()
        assert all(spec.params["n"] == 10 for spec in cells)
        assert [spec.params["s"] for spec in cells] == [0, 1]

    def test_len_is_grid_product(self):
        sweep = SweepSpec(task="t", grid={"a": [1, 2, 3], "b": [1, 2]})
        assert len(sweep) == 6
        assert len(sweep.expand()) == 6

    def test_empty_grid_is_single_base_cell(self):
        sweep = SweepSpec(task="t", base={"x": 1})
        cells = sweep.expand()
        assert len(cells) == 1
        assert cells[0].params == {"x": 1}

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(task="t", grid={"a": []})

    def test_expansion_is_deterministic(self):
        sweep = SweepSpec(task="t", grid={"a": [1, 2], "b": ["x", "y"]})
        hashes = [spec.spec_hash for spec in sweep.expand()]
        assert hashes == [spec.spec_hash for spec in sweep.expand()]
