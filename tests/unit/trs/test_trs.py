"""Unit tests for Threshold Random Seed generation (Algorithm 4)."""

import pytest

from repro.crypto.backend import FastCryptoBackend
from repro.net.events import Message
from repro.net.node import Network, ProtocolNode
from repro.net.simulator import Simulator
from repro.trs.committee import TRS_REQUEST_KIND, TrsCommitteeMember, trs_binding
from repro.trs.seed import TrsClient, TrsResult


class CommitteeNode(ProtocolNode):
    def __init__(self, node_id, network, committee, f, backend):
        super().__init__(node_id, network)
        self.member = TrsCommitteeMember(self, committee, f, backend)

    def on_message(self, sender, message):
        self.member.handle(sender, message)


class SenderNode(ProtocolNode):
    def __init__(self, node_id, network, committee, f, backend, k=10):
        super().__init__(node_id, network)
        self.client = TrsClient(self, committee, f, backend, num_overlays=k)
        self.results: list[TrsResult] = []

    def request_seed(self, digest):
        return self.client.request(digest, self.results.append)

    def on_message(self, sender, message):
        self.client.handle(sender, message)


@pytest.fixture()
def trs_world(physical40):
    simulator = Simulator()
    network = Network(simulator, physical40, seed=4)
    committee = [0, 1, 2, 3]
    backend = FastCryptoBackend(9)
    backend.setup_committee(committee, threshold=3)
    members = {
        i: CommitteeNode(i, network, committee, 1, backend) for i in committee
    }
    sender = SenderNode(10, network, committee, 1, backend)
    return simulator, network, members, sender, backend


class TestSeedGeneration:
    def test_seed_minted(self, trs_world):
        simulator, _n, _m, sender, _b = trs_world
        sender.request_seed(b"digest-0" * 4)
        simulator.run()
        assert len(sender.results) == 1
        result = sender.results[0]
        assert result.sequence == 0
        assert 0 <= result.overlay_id < 10

    def test_callback_fires_once(self, trs_world):
        simulator, _n, _m, sender, _b = trs_world
        sender.request_seed(b"d" * 32)
        simulator.run()
        assert len(sender.results) == 1  # 4 partials arrive, one combine

    def test_sequences_increase(self, trs_world):
        simulator, _n, _m, sender, _b = trs_world
        sender.request_seed(b"a" * 32)
        sender.request_seed(b"b" * 32)
        simulator.run()
        assert sorted(r.sequence for r in sender.results) == [0, 1]

    def test_seed_is_deterministic_in_binding(self, trs_world):
        """Same (requester, sequence, digest) => same overlay selection."""

        simulator, _n, _m, sender, backend = trs_world
        digest = b"d" * 32
        sender.request_seed(digest)
        simulator.run()
        result = sender.results[0]
        binding = trs_binding(sender.node_id, 0, digest)
        partials = [backend.partial_sign(m, binding) for m in (0, 1, 2)]
        recombined = backend.combine(binding, partials)
        assert backend.seed_from_signature(recombined, 10) == result.overlay_id

    def test_signature_verifies(self, trs_world):
        simulator, _n, _m, sender, backend = trs_world
        digest = b"d" * 32
        sender.request_seed(digest)
        simulator.run()
        result = sender.results[0]
        assert backend.verify_combined(
            trs_binding(sender.node_id, 0, digest), result.signature
        )

    def test_different_digests_can_select_different_overlays(self, trs_world):
        simulator, _n, _m, sender, _b = trs_world
        for index in range(12):
            sender.request_seed(bytes([index]) * 32)
        simulator.run()
        overlays = {r.overlay_id for r in sender.results}
        assert len(overlays) > 1


class TestSequencingEnforcement:
    def test_out_of_order_requests_parked(self, trs_world):
        """A gap in sequence numbers stalls seed issuance until filled."""

        simulator, network, members, sender, backend = trs_world
        # Forge a request with sequence 5 directly (bypassing the client).
        request = Message(TRS_REQUEST_KIND, (sender.node_id, 5, b"x" * 32), 44)
        for member in members:
            network.send(sender.node_id, member, request)
        simulator.run()
        assert not sender.results  # never served: sequences 0..4 missing

    def test_parked_request_served_after_gap_fills(self, trs_world):
        simulator, network, members, sender, backend = trs_world
        request_late = Message(TRS_REQUEST_KIND, (sender.node_id, 1, b"y" * 32), 44)
        for member in members:
            network.send(sender.node_id, member, request_late)
        simulator.run()
        assert not sender.results
        # Now issue sequence 0 through the normal client path.
        sender.request_seed(b"z" * 32)
        simulator.run()
        # Both sequence 0 (client) and the parked sequence 1 get served; the
        # client records only sequence 0 (it never asked for 1 itself).
        assert [r.sequence for r in sender.results] == [0]

    def test_relayed_request_dropped(self, trs_world):
        """Committee only accepts a seed request from the requester itself."""

        simulator, network, members, sender, _b = trs_world
        forged = Message(TRS_REQUEST_KIND, (99, 0, b"x" * 32), 44)
        network.send(sender.node_id, 0, forged)  # sender relays for node 99
        simulator.run()
        assert not sender.results


class TestByzantineCommittee:
    def test_seed_minted_with_f_silent_members(self, physical40):
        simulator = Simulator()
        network = Network(simulator, physical40, seed=4)
        committee = [0, 1, 2, 3]
        backend = FastCryptoBackend(9)
        backend.setup_committee(committee, threshold=3)

        class SilentMember(CommitteeNode):
            def on_message(self, sender, message):
                pass

        for i in committee:
            cls = SilentMember if i == 3 else CommitteeNode
            cls(i, network, committee, 1, backend)
        sender = SenderNode(10, network, committee, 1, backend)
        sender.request_seed(b"d" * 32)
        simulator.run()
        assert len(sender.results) == 1

    def test_two_silent_members_block_threshold(self, physical40):
        simulator = Simulator()
        network = Network(simulator, physical40, seed=4)
        committee = [0, 1, 2, 3]
        backend = FastCryptoBackend(9)
        backend.setup_committee(committee, threshold=3)

        class SilentMember(CommitteeNode):
            def on_message(self, sender, message):
                pass

        for i in committee:
            cls = SilentMember if i in (2, 3) else CommitteeNode
            cls(i, network, committee, 1, backend)
        sender = SenderNode(10, network, committee, 1, backend)
        sender.request_seed(b"d" * 32)
        simulator.run()
        assert not sender.results  # 2 > f faults exceed the tolerance
