"""Unit tests for the seeded open-loop arrival processes."""

import pytest

from repro.errors import ConfigurationError
from repro.load.arrival import (
    ARRIVAL_PATTERNS,
    DeterministicArrivals,
    FlashCrowdArrivals,
    MMPPArrivals,
    PoissonArrivals,
    flash_crowd_times,
    make_arrivals,
)

ORIGINS = tuple(range(10))


class TestDeterministic:
    def test_metronome_spacing(self):
        process = DeterministicArrivals(rate_tps=10.0, origins=ORIGINS, seed=0)
        times = [inj.time_ms for inj in process.schedule(500.0)]
        assert times == [0.0, 100.0, 200.0, 300.0, 400.0]

    def test_horizon_is_exclusive(self):
        process = DeterministicArrivals(rate_tps=10.0, origins=ORIGINS, seed=0)
        assert all(inj.time_ms < 300.0 for inj in process.schedule(300.0))


class TestPoisson:
    def test_sorted_and_inside_horizon(self):
        process = PoissonArrivals(rate_tps=50.0, origins=ORIGINS, seed=3)
        times = [inj.time_ms for inj in process.schedule(2_000.0)]
        assert times == sorted(times)
        assert all(0.0 < t < 2_000.0 for t in times)

    def test_different_seeds_differ(self):
        a = PoissonArrivals(rate_tps=50.0, origins=ORIGINS, seed=1).schedule(1_000.0)
        b = PoissonArrivals(rate_tps=50.0, origins=ORIGINS, seed=2).schedule(1_000.0)
        assert a != b


class TestMMPP:
    def test_long_run_rate_matches_configured(self):
        process = MMPPArrivals(rate_tps=40.0, origins=ORIGINS, seed=5)
        horizon = 300_000.0
        count = len(process.schedule(horizon))
        assert count / (horizon / 1000.0) == pytest.approx(40.0, rel=0.15)

    def test_quiet_rate_below_configured_mean(self):
        process = MMPPArrivals(rate_tps=40.0, origins=ORIGINS, seed=5)
        assert process.quiet_rate_tps < process.rate_tps
        assert process.quiet_rate_tps * process.burst_factor > process.rate_tps

    def test_burst_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals(rate_tps=10.0, origins=ORIGINS, seed=0, burst_factor=0.5)


class TestFlashCrowd:
    def test_window_is_denser(self):
        process = FlashCrowdArrivals(
            rate_tps=20.0,
            origins=ORIGINS,
            seed=7,
            flash_at_ms=2_000.0,
            flash_duration_ms=1_000.0,
            flash_factor=6.0,
        )
        times = [inj.time_ms for inj in process.schedule(5_000.0)]
        inside = sum(1 for t in times if 2_000.0 <= t < 3_000.0)
        outside = sum(1 for t in times if t < 2_000.0 or t >= 3_000.0)
        # The 1s window holds a 6x rate; the other 4s hold the base rate.
        assert inside > outside / 4.0 * 2.0

    def test_deterministic_base(self):
        process = FlashCrowdArrivals(
            rate_tps=10.0, origins=ORIGINS, seed=0, base="deterministic"
        )
        first = process.schedule(4_000.0)
        assert first == process.schedule(4_000.0)

    def test_unknown_base_rejected(self):
        with pytest.raises(ConfigurationError):
            FlashCrowdArrivals(rate_tps=10.0, origins=ORIGINS, seed=0, base="mmpp")


class TestFlashCrowdTimes:
    def test_fixed_count_and_acceleration(self):
        times = flash_crowd_times(
            8,
            start_ms=200.0,
            period_ms=500.0,
            flash_at_ms=1_200.0,
            flash_duration_ms=1_200.0,
            flash_factor=4.0,
        )
        assert len(times) == 8
        assert times == sorted(times)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert min(gaps) == pytest.approx(125.0)
        assert max(gaps) == pytest.approx(500.0)

    def test_no_flash_factor_one_is_plain_periodic(self):
        times = flash_crowd_times(4, 0.0, 100.0, 150.0, 100.0, 1.0)
        assert times == [0.0, 100.0, 200.0, 300.0]

    def test_bad_count_rejected(self):
        with pytest.raises(ConfigurationError):
            flash_crowd_times(0, 0.0, 100.0, 0.0, 100.0, 2.0)


class TestOrigins:
    def test_origins_come_from_the_pool(self):
        process = PoissonArrivals(rate_tps=100.0, origins=(4, 5, 6), seed=1)
        assert {inj.origin for inj in process.schedule(3_000.0)} <= {4, 5, 6}

    def test_zipf_skews_toward_few_origins(self):
        process = PoissonArrivals(
            rate_tps=200.0, origins=tuple(range(20)), seed=1, zipf_s=1.5
        )
        schedule = process.schedule(20_000.0)
        counts: dict[int, int] = {}
        for inj in schedule:
            counts[inj.origin] = counts.get(inj.origin, 0) + 1
        top = max(counts.values())
        assert top > len(schedule) * 0.25  # the hottest origin dominates

    def test_uniform_when_zipf_zero(self):
        process = PoissonArrivals(
            rate_tps=200.0, origins=tuple(range(20)), seed=1, zipf_s=0.0
        )
        schedule = process.schedule(20_000.0)
        counts: dict[int, int] = {}
        for inj in schedule:
            counts[inj.origin] = counts.get(inj.origin, 0) + 1
        assert max(counts.values()) < len(schedule) * 0.15

    def test_empty_origins_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate_tps=10.0, origins=(), seed=0)

    def test_negative_zipf_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate_tps=10.0, origins=ORIGINS, seed=0, zipf_s=-1.0)


class TestFactory:
    def test_every_pattern_constructs(self):
        for pattern in ARRIVAL_PATTERNS:
            process = make_arrivals(
                pattern, rate_tps=20.0, origins=ORIGINS, seed=2
            )
            assert process.pattern == pattern
            assert process.schedule(1_000.0)

    def test_extra_params_forwarded(self):
        process = make_arrivals(
            "mmpp", rate_tps=20.0, origins=ORIGINS, seed=2, burst_factor=3.0
        )
        assert process.burst_factor == 3.0

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            make_arrivals("fractal", rate_tps=20.0, origins=ORIGINS, seed=2)

    def test_describe_is_json_scalars(self):
        doc = make_arrivals(
            "poisson", rate_tps=20.0, origins=ORIGINS, seed=2, zipf_s=0.9
        ).describe()
        assert doc["pattern"] == "poisson"
        assert doc["rate_tps"] == 20.0
        assert doc["zipf_s"] == 0.9
        assert doc["origins"] == len(ORIGINS)
