"""Unit tests for the open-loop load driver."""

import pytest

from repro.baselines import LZeroSystem
from repro.load.arrival import DeterministicArrivals, PoissonArrivals
from repro.load.capacity import CapacityConfig, CapacityModel
from repro.load.driver import LoadDriver, LoadResult
from repro.net.topology import generate_physical_network
from repro.obs import Observability

NODES = 12


def make_system(obs=None):
    physical = generate_physical_network(NODES, seed=0)
    return LZeroSystem(physical, seed=13, obs=obs)


def make_driver(system, rate_tps=5.0, **kwargs):
    arrivals = DeterministicArrivals(
        rate_tps=rate_tps, origins=system.network.node_ids(), seed=3
    )
    return LoadDriver(system, arrivals, **kwargs)


class TestRun:
    def test_open_loop_injection_counts(self):
        driver = make_driver(make_system(), rate_tps=5.0)
        result = driver.run(2_000.0, drain_ms=1_500.0)
        assert result.injected == 10
        assert result.offered_tps == pytest.approx(5.0)
        assert result.duration_ms == 2_000.0
        assert result.horizon_ms == 3_500.0

    def test_delivers_under_light_load(self):
        driver = make_driver(make_system(), rate_tps=4.0)
        result = driver.run(2_000.0, drain_ms=2_000.0)
        assert result.delivered == result.injected
        assert result.goodput_tps == pytest.approx(result.offered_tps)
        assert result.p50_ms is not None and result.p50_ms > 0
        assert result.p95_ms >= result.p50_ms
        assert result.drop_rate == 0.0
        assert result.capacity_drops == 0

    def test_protocol_label_defaults_to_class_name(self):
        system = make_system()
        assert make_driver(system).protocol == "LZeroSystem"
        assert make_driver(system, protocol="lzero").protocol == "lzero"

    def test_sampler_records_on_cadence(self):
        driver = make_driver(make_system(), rate_tps=5.0)
        driver.sample_interval_ms = 500.0
        driver.run(2_000.0, drain_ms=0.0)
        assert len(driver.samples) == 4
        times = [t for t, _, _ in driver.samples]
        assert times == [500.0, 1000.0, 1500.0, 2000.0]

    def test_mempool_occupancy_observed(self):
        driver = make_driver(make_system(), rate_tps=10.0)
        result = driver.run(2_000.0, drain_ms=1_000.0)
        assert result.mempool_peak > 0
        assert 0 < result.mempool_mean <= result.mempool_peak

    def test_obs_gauges_populated(self):
        obs = Observability.enabled()
        driver = make_driver(make_system(obs=obs), rate_tps=5.0)
        driver.run(2_000.0)
        snapshot = obs.metrics.snapshot()
        names = {metric["name"] for metric in snapshot["gauges"]}
        assert "load.mempool.occupancy" in names
        assert "load.mempool.peak" in names
        assert "load.queue.backlog_bytes" in names


class TestCapacityIntegration:
    def test_tight_uplinks_saturate(self):
        system = make_system()
        system.network.capacity = CapacityModel(
            CapacityConfig(
                uplink_kb_per_s=4.0, downlink_kb_per_s=16.0, queue_bytes=4_096
            )
        )
        driver = make_driver(system, rate_tps=40.0, protocol="lzero")
        result = driver.run(2_000.0, drain_ms=1_000.0)
        assert result.capacity_drops > 0
        assert result.drop_rate > 0.0
        assert result.max_queue_bytes > 0.0
        assert result.goodput_tps < result.offered_tps
        assert result.goodput_kb_per_min < result.bandwidth_kb_per_min

    def test_queue_backlog_sampled(self):
        system = make_system()
        system.network.capacity = CapacityModel(
            CapacityConfig(
                uplink_kb_per_s=4.0, downlink_kb_per_s=16.0, queue_bytes=65_536
            )
        )
        driver = make_driver(system, rate_tps=40.0)
        driver.run(2_000.0)
        assert any(backlog > 0 for _, _, backlog in driver.samples)


class TestValidation:
    def test_bad_delivery_fraction(self):
        system = make_system()
        with pytest.raises(ValueError):
            make_driver(system, delivery_fraction=0.0)
        with pytest.raises(ValueError):
            make_driver(system, delivery_fraction=1.5)

    def test_bad_durations(self):
        driver = make_driver(make_system())
        with pytest.raises(Exception):
            driver.run(0.0)
        with pytest.raises(ValueError):
            driver.run(1_000.0, drain_ms=-1.0)


class TestResultRoundTrip:
    def test_json_round_trip(self):
        driver = make_driver(make_system(), rate_tps=5.0)
        result = driver.run(1_000.0, drain_ms=1_000.0)
        doc = result.to_json()
        assert LoadResult.from_json(doc) == result

    def test_delivery_ratio(self):
        arrivals = PoissonArrivals(rate_tps=5.0, origins=(1, 2), seed=0)
        empty = LoadResult(
            protocol="x",
            offered_tps=0.0,
            injected=0,
            delivered=0,
            goodput_tps=0.0,
            mean_ms=None,
            p50_ms=None,
            p95_ms=None,
            drop_rate=0.0,
            capacity_drops=0,
            goodput_kb_per_min=0.0,
            bandwidth_kb_per_min=0.0,
            max_queue_bytes=0.0,
            mempool_peak=0,
            mempool_mean=0.0,
            duration_ms=1.0,
            horizon_ms=1.0,
        )
        assert empty.delivery_ratio == 0.0
        assert arrivals.interval_ms == pytest.approx(200.0)
