"""Unit tests for the per-node link capacity model."""

import pytest

from repro.errors import ConfigurationError
from repro.load.capacity import CapacityConfig, CapacityModel


def model(**overrides) -> CapacityModel:
    defaults = dict(
        uplink_kb_per_s=1000.0 / 1.024,  # exactly 1000 bytes/ms
        downlink_kb_per_s=2000.0 / 1.024,  # exactly 2000 bytes/ms
        queue_bytes=4_000,
    )
    defaults.update(overrides)
    return CapacityModel(CapacityConfig(**defaults))


class TestConfig:
    def test_defaults_valid(self):
        config = CapacityConfig()
        assert config.uplink_bytes_per_ms == pytest.approx(1024 * 1024 / 1000)

    def test_rates_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CapacityConfig(uplink_kb_per_s=0.0)
        with pytest.raises(ConfigurationError):
            CapacityConfig(downlink_kb_per_s=-1.0)
        with pytest.raises(ConfigurationError):
            CapacityConfig(queue_bytes=0)


class TestEgress:
    def test_idle_link_serializes_immediately(self):
        m = model()
        verdict = m.admit_egress(1, 2_000, now=10.0)
        assert not verdict.dropped
        assert verdict.finish_ms == pytest.approx(12.0)
        assert verdict.queued_ms == 0.0

    def test_back_to_back_messages_queue_fifo(self):
        m = model()
        first = m.admit_egress(1, 2_000, now=0.0)
        second = m.admit_egress(1, 1_000, now=0.0)
        assert first.finish_ms == pytest.approx(2.0)
        assert second.finish_ms == pytest.approx(3.0)
        assert second.queued_ms == pytest.approx(2.0)

    def test_backlog_drains_over_time(self):
        m = model()
        m.admit_egress(1, 3_000, now=0.0)
        assert m.backlog_bytes(1, 0.0) == pytest.approx(3_000)
        assert m.backlog_bytes(1, 1.5) == pytest.approx(1_500)
        assert m.backlog_bytes(1, 10.0) == 0.0

    def test_overflow_drops_and_counts(self):
        m = model()  # queue bound 4000 bytes
        assert not m.admit_egress(1, 3_000, now=0.0).dropped
        verdict = m.admit_egress(1, 1_500, now=0.0)  # 4500 > 4000
        assert verdict.dropped
        assert m.drops == 1
        assert m.drops_by_node == {1: 1}
        # The dropped message must not occupy the link.
        assert m.backlog_bytes(1, 0.0) == pytest.approx(3_000)

    def test_drop_frees_room_for_later_traffic(self):
        m = model()
        m.admit_egress(1, 3_000, now=0.0)
        assert m.admit_egress(1, 1_500, now=0.0).dropped
        # After 2ms the backlog drained to 1000 bytes; 1500 now fits.
        assert not m.admit_egress(1, 1_500, now=2.0).dropped

    def test_nodes_are_independent(self):
        m = model()
        m.admit_egress(1, 4_000, now=0.0)
        verdict = m.admit_egress(2, 4_000, now=0.0)
        assert not verdict.dropped
        assert verdict.queued_ms == 0.0

    def test_high_water_mark_tracked(self):
        m = model()
        m.admit_egress(1, 2_000, now=0.0)
        m.admit_egress(1, 1_500, now=0.0)
        assert m.max_backlog_bytes == pytest.approx(3_500)


class TestIngress:
    def test_idle_downlink(self):
        m = model()
        assert m.ingress_finish(2, 2_000, arrival_ms=5.0) == pytest.approx(6.0)

    def test_downlink_fifo(self):
        m = model()
        first = m.ingress_finish(2, 4_000, arrival_ms=0.0)
        second = m.ingress_finish(2, 2_000, arrival_ms=0.5)
        assert first == pytest.approx(2.0)
        assert second == pytest.approx(3.0)

    def test_downlink_never_drops(self):
        m = model()
        for _ in range(50):
            m.ingress_finish(2, 4_000, arrival_ms=0.0)
        assert m.drops == 0


class TestBookkeeping:
    def test_total_backlog_sums_nodes(self):
        m = model()
        m.admit_egress(1, 2_000, now=0.0)
        m.admit_egress(2, 1_000, now=0.0)
        assert m.total_backlog_bytes(0.0) == pytest.approx(3_000)

    def test_reset_clears_everything(self):
        m = model()
        m.admit_egress(1, 4_000, now=0.0)
        m.admit_egress(1, 4_000, now=0.0)
        m.ingress_finish(2, 1_000, arrival_ms=0.0)
        m.reset()
        assert m.drops == 0
        assert m.drops_by_node == {}
        assert m.max_backlog_bytes == 0.0
        assert m.total_backlog_bytes(0.0) == 0.0
        assert m.admit_egress(1, 4_000, now=0.0).queued_ms == 0.0

    def test_determinism_no_randomness(self):
        def trace():
            m = model()
            out = []
            for i in range(20):
                verdict = m.admit_egress(i % 3, 1_000 + 37 * i, now=float(i))
                out.append((verdict.dropped, verdict.finish_ms, verdict.queued_ms))
                out.append(m.ingress_finish(i % 2, 500, arrival_ms=float(i)))
            return out

        assert trace() == trace()
