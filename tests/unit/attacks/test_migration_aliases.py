"""The legacy attack modules now alias the adversary subsystem.

``repro.attacks.censorship`` / ``repro.attacks.overload`` kept their public
names through the migration, so anything importing the old paths keeps
working — but the objects must be the *same* objects the zoo exports, not
parallel implementations that could drift.
"""

from repro import adversary
from repro.adversary import injection, strategies, zoo
from repro.attacks import censorship, frontrun, overload


class TestAliasIdentity:
    def test_censorship_trial_is_the_zoo_implementation(self):
        assert censorship.run_censorship_trial is zoo.run_censorship_trial
        assert censorship.CensorshipResult is zoo.CensorshipResult

    def test_overload_trial_is_the_zoo_implementation(self):
        assert overload.run_overload_trial is zoo.run_overload_trial
        assert overload.OverloadResult is zoo.OverloadResult
        assert overload.FlooderNode is strategies.FlooderNode

    def test_frontrun_levers_are_the_injection_implementations(self):
        assert frontrun.adversarial_strategy_for is injection.adversarial_strategy_for
        assert frontrun.censorship_is_deniable is injection.censorship_is_deniable
        # The pre-migration private names stay importable for older callers.
        assert frontrun._default_adversarial_submit is injection.default_adversarial_submit
        assert frontrun._mercury_direct_injection is injection.mercury_direct_injection

    def test_package_exports_match(self):
        assert adversary.run_censorship_trial is zoo.run_censorship_trial
        assert adversary.run_overload_trial is zoo.run_overload_trial


class TestLegacyEquivalence:
    def test_censorship_trial_matches_blackout_fault_plans(self, physical40):
        """The migrated trial must draw the exact legacy fault plans."""

        from repro.adversary import get_strategy
        from repro.net.faults import FaultPlan

        blackout = get_strategy("blackout")
        nodes = physical40.nodes()
        legacy_plan = FaultPlan.random_fraction(
            nodes, 0.33, blackout.behavior, seed=3, protected=(0,)
        )
        again = FaultPlan.random_fraction(
            nodes, 0.33, blackout.behavior, seed=3, protected=(0,)
        )
        assert [legacy_plan.behavior_of(n) for n in nodes] == [
            again.behavior_of(n) for n in nodes
        ]

    def test_censorship_trial_still_runs(self, physical40):
        from repro.baselines.gossip import GossipSystem

        result = censorship.run_censorship_trial(
            lambda plan: GossipSystem(physical40, fault_plan=plan, seed=7),
            physical40.nodes(),
            malicious_fraction=0.0,
            sender=0,
            horizon_ms=3_000,
        )
        assert result.coverage == 1.0
