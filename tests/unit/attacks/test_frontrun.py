"""Unit tests for the front-running attack driver."""

import pytest

from repro.attacks.frontrun import (
    adversarial_strategy_for,
    censorship_is_deniable,
    run_front_running_trial,
)
from repro.baselines.lzero import LZeroSystem
from repro.baselines.mercury import MercurySystem
from repro.baselines.narwhal import NarwhalSystem
from repro.core.config import HermesConfig
from repro.core.protocol import HermesSystem


@pytest.fixture()
def mercury_factory(physical40):
    def factory(plan, hook):
        return MercurySystem(physical40, fault_plan=plan, observe_hook=hook, seed=6)

    return factory


class TestStrategySelection:
    def test_mercury_gets_direct_injection(self, physical40):
        system = MercurySystem(physical40, seed=6)
        strategy = adversarial_strategy_for(system)
        assert strategy.__name__ == "mercury_direct_injection"

    def test_others_get_protocol_submission(self, physical40):
        system = LZeroSystem(physical40, seed=6)
        strategy = adversarial_strategy_for(system)
        assert strategy.__name__ == "default_adversarial_submit"

    def test_censorship_deniability(self, physical40, overlay_family40):
        overlays, _ranks = overlay_family40
        assert censorship_is_deniable(MercurySystem(physical40, seed=6))
        assert censorship_is_deniable(NarwhalSystem(physical40, seed=6))
        assert not censorship_is_deniable(LZeroSystem(physical40, seed=6))
        hermes = HermesSystem(
            physical40,
            HermesConfig(f=1, num_overlays=3),
            overlays=overlays,
            seed=6,
        )
        assert not censorship_is_deniable(hermes)


class TestTrial:
    def test_attack_launches(self, mercury_factory, physical40):
        result = run_front_running_trial(
            mercury_factory,
            physical40.nodes(),
            malicious_fraction=0.3,
            victim=0,
            proposer=20,
            horizon_ms=4_000,
            seed=1,
        )
        assert result.attack_launched
        assert result.observation_time is not None
        assert result.attacker not in (0, 20)

    def test_zero_malicious_means_no_attack(self, mercury_factory, physical40):
        result = run_front_running_trial(
            mercury_factory,
            physical40.nodes(),
            malicious_fraction=0.0,
            victim=0,
            proposer=20,
            horizon_ms=3_000,
            seed=1,
        )
        assert not result.attack_launched
        assert not result.verdict.attacker_won
        assert result.verdict.victim_included

    def test_victim_and_proposer_protected(self, mercury_factory, physical40):
        for seed in range(5):
            result = run_front_running_trial(
                mercury_factory,
                physical40.nodes(),
                malicious_fraction=0.33,
                victim=0,
                proposer=20,
                horizon_ms=3_000,
                seed=seed,
            )
            assert result.attacker not in (0, 20)

    def test_arrival_times_reported(self, mercury_factory, physical40):
        result = run_front_running_trial(
            mercury_factory,
            physical40.nodes(),
            malicious_fraction=0.3,
            victim=0,
            proposer=20,
            horizon_ms=4_000,
            seed=2,
        )
        if result.verdict.attacker_won and result.verdict.victim_included:
            assert (
                result.adversarial_arrival_at_proposer
                < result.victim_arrival_at_proposer
            )

    def test_hermes_resists(self, physical40, overlay_family40):
        overlays, _ranks = overlay_family40

        def factory(plan, hook):
            config = HermesConfig(f=1, num_overlays=3, gossip_fallback_enabled=False)
            return HermesSystem(
                physical40,
                config,
                fault_plan=plan,
                observe_hook=hook,
                overlays=overlays,
                seed=6,
            )

        wins = 0
        for seed in range(4):
            result = run_front_running_trial(
                factory,
                physical40.nodes(),
                malicious_fraction=0.33,
                victim=0,
                proposer=20,
                horizon_ms=4_000,
                seed=seed,
                protected=tuple(range(4)),
            )
            wins += result.verdict.attacker_won
        assert wins == 0
