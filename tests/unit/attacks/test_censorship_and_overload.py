"""Unit tests for censorship trials and targeted overload."""

import pytest

from repro.attacks.censorship import run_censorship_trial
from repro.attacks.overload import FlooderNode, run_overload_trial
from repro.baselines.gossip import GossipConfig, GossipSystem
from repro.baselines.simple_tree import SimpleTreeSystem


class TestCensorshipTrial:
    def test_honest_network_full_coverage(self, physical40):
        result = run_censorship_trial(
            lambda plan: GossipSystem(physical40, fault_plan=plan, seed=7),
            physical40.nodes(),
            malicious_fraction=0.0,
            sender=0,
            horizon_ms=4_000,
        )
        assert result.coverage == 1.0
        assert result.honest_nodes == 40

    def test_coverage_decreases_with_censors(self, physical40):
        low = run_censorship_trial(
            lambda plan: GossipSystem(
                physical40, config=GossipConfig(fanout=3), fault_plan=plan, seed=7
            ),
            physical40.nodes(),
            malicious_fraction=0.33,
            sender=0,
            horizon_ms=4_000,
            seed=3,
        )
        assert low.coverage < 1.0

    def test_sender_protected(self, physical40):
        result = run_censorship_trial(
            lambda plan: GossipSystem(physical40, fault_plan=plan, seed=7),
            physical40.nodes(),
            malicious_fraction=0.33,
            sender=0,
            horizon_ms=2_000,
            seed=3,
        )
        assert result.reached >= 1  # the sender at least holds its own tx


class TestOverload:
    def test_flooder_validates_interval(self, physical40):
        from repro.net.node import Network
        from repro.net.simulator import Simulator

        network = Network(Simulator(), physical40, seed=1)
        with pytest.raises(ValueError):
            FlooderNode(100, network, target=0, interval_ms=0.0)

    def test_overload_degrades_single_tree(self, physical40):
        """Flooding the tree root delays everyone behind it."""

        order = physical40.nodes()

        def factory():
            from repro.net.node import Network
            from repro.net.simulator import Simulator

            system = SimpleTreeSystem(physical40, seed=8)
            # Rebuild network with queueing enabled.
            system.network.service_time_ms = 0.4
            return system

        result = run_overload_trial(
            factory,
            sender=order[10],
            target=order[0],  # the tree root
            flood_interval_ms=0.5,
            horizon_ms=8_000,
        )
        assert result.attacked_mean_ms > result.baseline_mean_ms
        assert result.degradation > 1.0
