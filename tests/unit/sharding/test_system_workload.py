"""Unit tests: ShardedSystem construction/placement and the load driver."""

import pytest

from repro.errors import ConfigurationError
from repro.load.arrival import make_arrivals
from repro.load.capacity import CapacityConfig
from repro.mempool.transaction import reset_tx_ids
from repro.net.events import reset_message_ids
from repro.sharding import ShardedLoadDriver, ShardedLoadResult, ShardedSystem


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_tx_ids()
    reset_message_ids()


def small_system(**overrides) -> ShardedSystem:
    defaults = dict(protocol="hermes", f=1, k=3, seed=0)
    defaults.update(overrides)
    return ShardedSystem(2, 32, **defaults)


class TestShardedSystem:
    def test_shards_are_mirrored_but_independent(self):
        system = small_system()
        assert system.num_shards == 2
        assert system.total_nodes == 32
        assert [shard.node_ids for shard in system.shards] == [
            list(range(16)),
            list(range(16)),
        ]
        # Independent system seeds give each shard its own TRS committee
        # membership stream; both committees exist and are full-size.
        committees = [shard.committee for shard in system.shards]
        assert all(len(c) == 3 * 1 + 1 for c in committees)
        # Envelope shard tags are installed only on multi-shard deployments.
        configs = [shard.system.config for shard in system.shards]
        assert [config.shard_id for config in configs] == [0, 1]
        assert [shard.system.network.shard_id for shard in system.shards] == [0, 1]

    def test_single_shard_leaves_config_untagged(self):
        system = ShardedSystem(1, 16, protocol="hermes", f=1, k=3)
        assert system.shards[0].system.config.shard_id is None

    def test_place_routes_only_off_home_submissions(self):
        system = small_system()
        routed, direct = 0, 0
        for origin in range(system.total_nodes):
            placed = system.place(100.0, origin)
            home = system.plan.shard_of(origin)
            if placed.routed:
                routed += 1
                assert placed.shard != home
                assert placed.time_ms > 100.0  # paid the cross-shard hop
            else:
                direct += 1
                assert placed.shard == home
                assert placed.time_ms == 100.0
                assert placed.origin_local == system.plan.to_local(origin)
        assert routed == system.router.routed
        assert routed + direct == system.total_nodes
        assert routed > 0  # a uniform map over 32 clients crosses shards

    def test_explicit_key_overrides_origin(self):
        system = small_system()
        target = system.shard_map.assign("contract-7")
        system.shard_map.reset()
        placed = system.place(0.0, origin_global=0, key="contract-7")
        assert placed.shard == target

    def test_mismatched_shard_map_rejected(self):
        from repro.sharding import ShardMap, ShardMapConfig

        wrong = ShardMap(ShardMapConfig(num_shards=3))
        with pytest.raises(ConfigurationError):
            small_system(shard_map=wrong)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            small_system(protocol="paxos")

    def test_capacity_books_cover_every_shard(self):
        capacity = CapacityConfig(
            uplink_kb_per_s=32.0, downlink_kb_per_s=128.0, queue_bytes=32 * 1024
        )
        system = small_system(capacity=capacity)
        system.start()
        system.run(until_ms=500.0)
        books = system.capacity_by_shard()
        assert sorted(books) == [0, 1]
        for entry in books.values():
            assert {"bytes_sent", "messages_dropped", "capacity_drops",
                    "max_queue_bytes"} <= set(entry)

    def test_describe_reports_geometry(self):
        doc = small_system().describe()
        assert doc["num_shards"] == 2
        assert doc["shard_size"] == 16
        assert doc["map"]["policy"] == "uniform"
        assert doc["router"]["routed"] == 0


class TestShardedLoadDriver:
    def test_aggregate_accounts_every_injection(self):
        system = small_system()
        arrivals = make_arrivals(
            "poisson", rate_tps=20.0, origins=list(range(32)), seed=0
        )
        result = ShardedLoadDriver(system, arrivals, protocol="hermes").run(
            2_000.0, drain_ms=1_000.0
        )
        assert result.num_shards == 2
        assert result.injected == sum(r.injected for r in result.per_shard)
        assert result.delivered == sum(r.delivered for r in result.per_shard)
        assert result.aggregate_goodput_tps == pytest.approx(
            sum(r.goodput_tps for r in result.per_shard)
        )
        assert result.routed == system.router.routed
        assert 0.0 < result.routed_fraction < 1.0
        p95s = [r.p95_ms for r in result.per_shard if r.p95_ms is not None]
        assert result.p95_ms == max(p95s)

    def test_result_json_round_trip(self):
        system = small_system()
        arrivals = make_arrivals(
            "deterministic", rate_tps=10.0, origins=list(range(32)), seed=1
        )
        result = ShardedLoadDriver(system, arrivals).run(1_000.0, drain_ms=500.0)
        restored = ShardedLoadResult.from_json(result.to_json())
        assert restored == result
