"""Unit tests for the cross-shard fairness fold."""

import pytest

from repro.adversary.fairness import FairnessReport
from repro.sharding import cross_shard_fairness


def report(gamma: float, inversion: float, n: int) -> FairnessReport:
    return FairnessReport(
        gamma=gamma,
        inversion_rate=inversion,
        num_orders=4,
        num_transactions=n,
    )


class TestCrossShardFairness:
    def test_worst_shard_sets_system_gamma(self):
        verdict = cross_shard_fairness(
            {0: report(0.9, 0.05, 10), 1: report(0.6, 0.2, 10), 2: report(0.8, 0.1, 10)}
        )
        assert verdict.gamma == 0.6
        assert verdict.worst_shard == 1
        assert verdict.num_shards == 3
        assert verdict.gamma_unfairness == pytest.approx(0.4)

    def test_inversions_are_pair_weighted(self):
        # Shard 0: 3 txs -> 3 pairs; shard 1: 5 txs -> 10 pairs.
        verdict = cross_shard_fairness(
            {0: report(1.0, 0.5, 3), 1: report(1.0, 0.1, 5)}
        )
        assert verdict.inversion_rate == pytest.approx((0.5 * 3 + 0.1 * 10) / 13)

    def test_shards_without_pairs_are_vacuous(self):
        # A one-transaction shard has no comparable pair: it cannot drag the
        # verdict down, nor be the worst shard.
        verdict = cross_shard_fairness(
            {0: report(0.0, 0.0, 1), 1: report(0.8, 0.2, 4)}
        )
        assert verdict.gamma == 0.8
        assert verdict.worst_shard == 1
        assert verdict.inversion_rate == pytest.approx(0.2)

    def test_all_vacuous_is_fair(self):
        verdict = cross_shard_fairness(
            {0: report(0.0, 0.9, 1), 1: report(0.0, 0.9, 0)}
        )
        assert verdict.gamma == 1.0
        assert verdict.inversion_rate == 0.0
        assert verdict.worst_shard == 0

    def test_empty_reports_rejected(self):
        with pytest.raises(ValueError):
            cross_shard_fairness({})

    def test_to_json_round_trips_per_shard_evidence(self):
        verdict = cross_shard_fairness({0: report(0.7, 0.15, 6)})
        doc = verdict.to_json()
        assert doc["gamma"] == 0.7
        assert doc["per_shard"]["0"]["num_transactions"] == 6
