"""Unit tests: shard plan arithmetic, cross-shard routing, map policies."""

import pytest

from repro.errors import ConfigurationError
from repro.sharding import (
    CrossShardRouter,
    ShardMap,
    ShardMapConfig,
    ShardPlan,
    shard_balance,
)


class TestShardPlan:
    def test_round_trip_ids(self):
        plan = ShardPlan(num_shards=4, total_nodes=64)
        assert plan.shard_size == 16
        for global_id in range(plan.total_nodes):
            shard = plan.shard_of(global_id)
            local = plan.to_local(global_id)
            assert plan.to_global(shard, local) == global_id
        assert list(plan.globals_of(2)) == list(range(32, 48))

    def test_single_shard_is_identity(self):
        plan = ShardPlan(num_shards=1, total_nodes=48)
        assert plan.shard_of(17) == 0
        assert plan.to_local(17) == 17

    @pytest.mark.parametrize(
        "num_shards,total_nodes",
        [(0, 8), (3, 2), (3, 16)],  # zero shards / too few nodes / uneven
    )
    def test_bad_geometry_rejected(self, num_shards, total_nodes):
        with pytest.raises(ConfigurationError):
            ShardPlan(num_shards=num_shards, total_nodes=total_nodes)

    def test_out_of_range_ids_rejected(self):
        plan = ShardPlan(num_shards=2, total_nodes=8)
        with pytest.raises(ConfigurationError):
            plan.shard_of(8)
        with pytest.raises(ConfigurationError):
            plan.to_global(2, 0)
        with pytest.raises(ConfigurationError):
            plan.to_global(0, 4)


class TestCrossShardRouter:
    def test_routing_accounts_flows_and_bytes(self):
        plan = ShardPlan(num_shards=2, total_nodes=8)
        router = CrossShardRouter(plan, hop_ms=25.0)
        decision = router.route(100.0, origin_global=1, target_shard=1, size_bytes=300)
        assert decision.shard == 1
        assert decision.ingress_local == 1  # mirror position on the target
        assert decision.time_ms == 125.0
        router.route(200.0, origin_global=5, target_shard=0)
        assert router.routed == 2
        assert router.routed_bytes == 300 + 250
        assert router.describe()["flows"] == {"0->1": 1, "1->0": 1}

    def test_same_shard_submission_never_routes(self):
        plan = ShardPlan(num_shards=2, total_nodes=8)
        router = CrossShardRouter(plan, hop_ms=25.0)
        with pytest.raises(ValueError):
            router.route(0.0, origin_global=1, target_shard=0)
        assert router.routed == 0


class TestShardMapPolicies:
    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardMapConfig(num_shards=0)
        with pytest.raises(ConfigurationError):
            ShardMapConfig(num_shards=2, policy="sticky")
        with pytest.raises(ConfigurationError):
            ShardMapConfig(num_shards=2, hot_threshold=0)

    def test_hot_key_spreads_round_robin_after_threshold(self):
        config = ShardMapConfig(num_shards=4, policy="hot-key", hot_threshold=3)
        shard_map = ShardMap(config)
        home = shard_map.home_of("pair")
        assignments = shard_map.assign_many(["pair"] * 7)
        # First `hot_threshold` occurrences stay home, then one shard per
        # occurrence starting from home.
        assert assignments == [home] * 3 + [(home + i) % 4 for i in range(4)]
        assert shard_map.hot_keys() == ["pair"]

    def test_describe_is_json_ready(self):
        config = ShardMapConfig(num_shards=2, policy="hot-key", seed=9, hot_threshold=5)
        assert ShardMap(config).describe() == {
            "num_shards": 2,
            "policy": "hot-key",
            "seed": 9,
            "hot_threshold": 5,
        }

    def test_shard_balance_definition(self):
        assert shard_balance([], 4) == 1.0
        assert shard_balance([0, 1, 2, 3], 4) == 1.0
        assert shard_balance([0, 0, 0, 0], 4) == 4.0
        with pytest.raises(ConfigurationError):
            shard_balance([0], 0)
