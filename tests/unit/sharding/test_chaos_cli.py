"""Unit tests: the cross-shard partition drill and the shard CLI front end."""

import json

import pytest

from repro.chaos.scenario import get_scenario
from repro.sharding import run_cross_shard_partition
from repro.sharding.cli import main as shard_main


@pytest.fixture(scope="module")
def drill_report():
    return run_cross_shard_partition(2, 12, protocol="hermes", f=1, k=3, seed=0)


class TestCrossShardPartitionDrill:
    def test_builtin_scenario_registered(self):
        scenario = get_scenario("cross-shard-partition")
        assert any(e.kind == "committee-partition" for e in scenario.events)
        assert scenario.liveness_deadline_ms is not None

    def test_healthy_shards_keep_liveness(self, drill_report):
        assert drill_report.num_shards == 2
        assert drill_report.partitioned_shard == 0
        assert drill_report.healthy_shards_live
        flags = {entry.shard: entry.partitioned for entry in drill_report.per_shard}
        assert flags == {0: True, 1: False}
        for entry in drill_report.per_shard:
            assert entry.transactions > 0

    def test_report_json_shape(self, drill_report):
        doc = drill_report.to_json()
        assert doc["scenario"] == "cross-shard-partition"
        assert doc["healthy_shards_live"] == drill_report.healthy_shards_live
        assert len(doc["per_shard"]) == 2

    def test_bad_partition_target_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_cross_shard_partition(2, 12, partitioned_shard=5)


class TestShardCli:
    def test_run_defaults_to_run_subcommand(self, capsys):
        code = shard_main(
            ["--shards", "2", "--nodes", "16", "--k", "3", "--rate", "10",
             "--duration", "1000", "--drain", "500", "--no-capacity", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["deployment"]["num_shards"] == 2
        assert doc["result"]["num_shards"] == 2
        assert len(doc["result"]["per_shard"]) == 2

    def test_run_table_output(self, capsys):
        code = shard_main(
            ["run", "--shards", "2", "--nodes", "16", "--k", "3", "--rate", "10",
             "--duration", "1000", "--drain", "500", "--no-capacity"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregate goodput" in out
        assert "cross-shard routed" in out

    def test_drill_json(self, capsys):
        code = shard_main(
            ["drill", "--shards", "2", "--shard-size", "12", "--k", "3", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["scenario"] == "cross-shard-partition"
        assert doc["num_shards"] == 2

    def test_config_errors_exit_2(self, capsys):
        # 2 shards cannot split 15 nodes evenly.
        code = shard_main(["run", "--shards", "2", "--nodes", "15"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
