"""Documentation link-checker: everything the docs name must really exist.

Two guarantees, enforced against the live packages so the docs cannot drift:

1. Every ``from repro... import X`` inside a ```python fence in docs/*.md and
   README.md resolves — the module imports and exposes ``X``.
2. Every ``repro.<subpackage>`` the docs mention appears in ``repro.__all__``
   (the documented public surface), and each fenced snippet is valid Python.
"""

import ast
import importlib
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted(
    [*(REPO_ROOT / "docs").glob("*.md"), REPO_ROOT / "README.md"],
    key=lambda p: p.name,
)

FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)
# `(?![-/])` skips versioned schema identifiers such as `repro.trace/1`
# and `repro.bench-baseline/1`, which name on-disk formats, not modules.
SUBPACKAGE_RE = re.compile(r"\brepro\.([a-z_]+)\b(?![-/])")


def python_fences(path: Path) -> list[str]:
    return FENCE_RE.findall(path.read_text())


def doc_ids() -> list[str]:
    return [path.name for path in DOC_FILES]


@pytest.mark.parametrize("path", DOC_FILES, ids=doc_ids())
def test_python_fences_parse(path: Path) -> None:
    for index, fence in enumerate(python_fences(path)):
        try:
            ast.parse(fence)
        except SyntaxError as exc:  # pragma: no cover - failure path
            pytest.fail(f"{path.name} fence #{index + 1} is not valid Python: {exc}")


def imported_names(source: str) -> list[tuple[str, str | None]]:
    """(module, name) pairs for every repro import in *source*."""

    out: list[tuple[str, str | None]] = []
    for node in ast.walk(ast.parse(source)):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "repro" or node.module.startswith("repro."):
                out.extend((node.module, alias.name) for alias in node.names)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    out.append((alias.name, None))
    return out


@pytest.mark.parametrize("path", DOC_FILES, ids=doc_ids())
def test_documented_imports_resolve(path: Path) -> None:
    problems: list[str] = []
    for fence in python_fences(path):
        for module_name, name in imported_names(fence):
            try:
                module = importlib.import_module(module_name)
            except ImportError as exc:
                problems.append(f"import {module_name}: {exc}")
                continue
            if name is None or name == "*" or hasattr(module, name):
                continue
            # `from pkg import sub` also resolves submodules that the
            # package does not re-export as attributes.
            try:
                importlib.import_module(f"{module_name}.{name}")
            except ImportError:
                problems.append(f"from {module_name} import {name}")
    assert not problems, f"{path.name} documents names that do not exist: {problems}"


@pytest.mark.parametrize("path", DOC_FILES, ids=doc_ids())
def test_mentioned_subpackages_are_public(path: Path) -> None:
    """Any `repro.<sub>` the prose or code mentions must be in repro.__all__."""

    mentioned = set(SUBPACKAGE_RE.findall(path.read_text()))
    # Drop matches that are module paths below a subpackage (repro.net.stats
    # matches "net" via the first segment, which is what we want) and words
    # that are attribute access on the package in prose, e.g. repro.__all__.
    unknown = {
        name
        for name in mentioned
        if name not in repro.__all__ and not name.startswith("_")
    }
    assert not unknown, (
        f"{path.name} mentions repro.{unknown} but repro.__all__ is "
        f"{sorted(repro.__all__)}"
    )


def test_public_subpackages_all_import_and_declare_all() -> None:
    for name in repro.__all__:
        module = importlib.import_module(f"repro.{name}")
        assert hasattr(module, "__all__"), f"repro.{name} lacks __all__"
