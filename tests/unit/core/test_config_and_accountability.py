"""Unit tests for HermesConfig, the violation log, and the monitor."""

import pytest

from repro.core.accountability import (
    AccountabilityMonitor,
    Violation,
    ViolationKind,
    ViolationLog,
)
from repro.core.config import HermesConfig
from repro.errors import ConfigurationError


class TestHermesConfig:
    def test_paper_defaults(self):
        config = HermesConfig()
        assert config.f == 1
        assert config.num_overlays == 10
        assert config.committee_size == 4
        assert config.committee_threshold == 3

    def test_committee_sizing_scales_with_f(self):
        config = HermesConfig(f=3)
        assert config.committee_size == 10
        assert config.committee_threshold == 7

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            HermesConfig(f=-1)
        with pytest.raises(ConfigurationError):
            HermesConfig(num_overlays=0)
        with pytest.raises(ConfigurationError):
            HermesConfig(gossip_fanout=0)
        with pytest.raises(ConfigurationError):
            HermesConfig(gossip_period_ms=0)


class TestViolationLog:
    def test_record_and_query(self):
        log = ViolationLog()
        log.record(Violation(ViolationKind.BAD_SIGNATURE, accused=3, reporter=1, time_ms=5.0))
        log.record(Violation(ViolationKind.SEQUENCE_GAP, accused=3, reporter=2, time_ms=6.0))
        log.record(Violation(ViolationKind.BAD_SIGNATURE, accused=4, reporter=1, time_ms=7.0))
        assert len(log) == 3
        assert len(log.against(3)) == 2
        assert len(log.by_kind(ViolationKind.BAD_SIGNATURE)) == 2
        assert log.accused_nodes() == {3, 4}


class TestMonitor:
    def test_flag_records_and_excludes(self):
        log = ViolationLog()
        monitor = AccountabilityMonitor(owner=1, log=log)
        monitor.flag(ViolationKind.WRONG_OVERLAY, accused=9, time_ms=3.0)
        assert monitor.is_excluded(9)
        assert log.against(9)[0].reporter == 1

    def test_exclusion_can_be_disabled(self):
        log = ViolationLog()
        monitor = AccountabilityMonitor(owner=1, log=log, exclude_violators=False)
        monitor.flag(ViolationKind.WRONG_OVERLAY, accused=9, time_ms=3.0)
        assert not monitor.is_excluded(9)
        assert len(log) == 1

    def test_excluded_nodes_snapshot(self):
        monitor = AccountabilityMonitor(owner=1, log=ViolationLog())
        monitor.flag(ViolationKind.BAD_SIGNATURE, accused=5, time_ms=0.0)
        monitor.flag(ViolationKind.BAD_SIGNATURE, accused=6, time_ms=0.0)
        assert monitor.excluded_nodes() == frozenset({5, 6})


class TestViolationSummary:
    def test_empty_log_summary(self):
        summary = ViolationLog().summary()
        assert summary == {
            "total": 0,
            "by_kind": {},
            "by_accused": {},
            "accused": [],
            "first_detection_ms": None,
            "last_detection_ms": None,
        }

    def test_summary_counts_and_bounds(self):
        log = ViolationLog()
        log.record(Violation(ViolationKind.BAD_SIGNATURE, accused=3, reporter=1, time_ms=5.0))
        log.record(Violation(ViolationKind.SEQUENCE_GAP, accused=3, reporter=2, time_ms=9.0))
        log.record(Violation(ViolationKind.BAD_SIGNATURE, accused=11, reporter=1, time_ms=7.0))
        summary = log.summary()
        assert summary["total"] == 3
        assert summary["by_kind"] == {"bad-signature": 2, "sequence-gap": 1}
        assert summary["by_accused"] == {"3": 2, "11": 1}
        assert summary["accused"] == [3, 11]
        assert summary["first_detection_ms"] == 5.0
        assert summary["last_detection_ms"] == 9.0

    def test_summary_is_json_stable(self):
        import json

        log = ViolationLog()
        for accused in (30, 4, 30):
            log.record(
                Violation(ViolationKind.RELAY_OMISSION, accused=accused, reporter=-1, time_ms=1.0)
            )
        # Accused keys sort numerically (not lexicographically) and the
        # document round-trips through JSON unchanged.
        assert list(log.summary()["by_accused"]) == ["4", "30"]
        encoded = json.dumps(log.summary(), sort_keys=True)
        assert json.loads(encoded) == log.summary()
