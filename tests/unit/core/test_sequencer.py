"""Unit tests for receiver-side sequence auditing."""

import pytest

from repro.core.sequencer import SequenceAuditor


class TestObserve:
    def test_in_order_no_gaps(self):
        auditor = SequenceAuditor(gap_timeout_ms=100.0)
        for sequence in range(5):
            assert auditor.observe(origin=1, sequence=sequence, now=float(sequence))
        assert auditor.pending_gaps(1) == []
        assert auditor.highest_seen(1) == 4

    def test_duplicate_returns_false(self):
        auditor = SequenceAuditor(gap_timeout_ms=100.0)
        assert auditor.observe(1, 0, 0.0)
        assert not auditor.observe(1, 0, 1.0)

    def test_gap_detected(self):
        auditor = SequenceAuditor(gap_timeout_ms=100.0)
        auditor.observe(1, 0, 0.0)
        auditor.observe(1, 3, 10.0)
        assert auditor.pending_gaps(1) == [1, 2]

    def test_gap_fills(self):
        auditor = SequenceAuditor(gap_timeout_ms=100.0)
        auditor.observe(1, 0, 0.0)
        auditor.observe(1, 2, 10.0)
        auditor.observe(1, 1, 20.0)
        assert auditor.pending_gaps(1) == []

    def test_negative_sequence_rejected(self):
        auditor = SequenceAuditor(gap_timeout_ms=100.0)
        with pytest.raises(ValueError):
            auditor.observe(1, -1, 0.0)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            SequenceAuditor(gap_timeout_ms=0.0)

    def test_origins_tracked_separately(self):
        auditor = SequenceAuditor(gap_timeout_ms=100.0)
        auditor.observe(1, 2, 0.0)
        auditor.observe(2, 0, 0.0)
        assert auditor.pending_gaps(1) == [0, 1]
        assert auditor.pending_gaps(2) == []


class TestExpiry:
    def test_gap_expires_after_timeout(self):
        auditor = SequenceAuditor(gap_timeout_ms=100.0)
        auditor.observe(1, 1, 0.0)  # gap: sequence 0
        assert auditor.expired_gaps(1, 50.0) == []
        assert auditor.expired_gaps(1, 100.0) == [0]

    def test_filled_gap_never_expires(self):
        auditor = SequenceAuditor(gap_timeout_ms=100.0)
        auditor.observe(1, 1, 0.0)
        auditor.observe(1, 0, 10.0)
        assert auditor.expired_gaps(1, 500.0) == []

    def test_origins_with_expired_gaps(self):
        auditor = SequenceAuditor(gap_timeout_ms=100.0)
        auditor.observe(1, 1, 0.0)
        auditor.observe(2, 0, 0.0)
        assert auditor.origins_with_expired_gaps(200.0) == [1]

    def test_gap_clock_starts_when_noticed(self):
        auditor = SequenceAuditor(gap_timeout_ms=100.0)
        auditor.observe(1, 0, 0.0)
        auditor.observe(1, 5, 300.0)  # gaps 1..4 noticed at 300
        assert auditor.expired_gaps(1, 350.0) == []
        assert auditor.expired_gaps(1, 400.0) == [1, 2, 3, 4]

    def test_unknown_origin_no_gaps(self):
        auditor = SequenceAuditor(gap_timeout_ms=100.0)
        assert auditor.expired_gaps(42, 1000.0) == []
        assert auditor.highest_seen(42) == -1
