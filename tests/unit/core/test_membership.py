"""Unit tests for epoch membership and churn handling (§VII-B)."""

import pytest

from repro.core.membership import MembershipManager
from repro.errors import MembershipError
from repro.net.topology import generate_physical_network
from repro.types import Region


@pytest.fixture()
def manager():
    physical = generate_physical_network(30, min_degree=4, seed=13)
    return MembershipManager(physical, f=1, k=2, seed=4)


class TestInitial:
    def test_overlays_built_and_valid(self, manager):
        assert len(manager.overlays) == 2
        manager.validate()

    def test_members(self, manager):
        assert len(manager.members()) == 30


class TestJoin:
    def test_join_integrates_into_every_overlay(self, manager):
        manager.join(100, Region.TOKYO, neighbors=[0, 1, 2])
        manager.validate()
        for overlay in manager.overlays:
            assert overlay.contains(100)
            assert len(overlay.predecessors[100]) >= 2

    def test_join_records_event(self, manager):
        manager.join(100, Region.TOKYO, neighbors=[0, 1])
        assert manager.events[-1].kind == "join"
        assert manager.events[-1].node == 100

    def test_joined_node_reachable(self, manager):
        manager.join(100, Region.TOKYO, neighbors=[0, 1])
        for overlay in manager.overlays:
            assert 100 in overlay.reachable()


class TestLeave:
    def test_leave_repairs_overlays(self, manager):
        victim = next(
            n for n in manager.members()
            if not any(o.is_entry(n) for o in manager.overlays)
        )
        manager.leave(victim)
        manager.validate()
        for overlay in manager.overlays:
            assert not overlay.contains(victim)

    def test_leave_unknown_rejected(self, manager):
        with pytest.raises(MembershipError):
            manager.leave(999)

    def test_entry_point_departure_elects_replacement(self, manager):
        entry = manager.overlays[0].entry_points[0]
        manager.leave(entry)
        manager.validate()
        for overlay in manager.overlays:
            assert len(overlay.entry_points) == 2
            assert entry not in overlay.entry_points

    def test_many_leaves_keep_invariants(self, manager):
        import random

        rng = random.Random(3)
        for _ in range(8):
            candidates = manager.members()
            manager.leave(rng.choice(candidates))
            manager.validate()

    def test_rank_forgotten(self, manager):
        victim = manager.members()[5]
        manager.leave(victim)
        assert manager.ranks.rank(victim) == 0


class TestEpoch:
    def test_advance_epoch_rebuilds(self, manager):
        before = [set(o.edges()) for o in manager.overlays]
        manager.advance_epoch()
        manager.validate()
        after = [set(o.edges()) for o in manager.overlays]
        assert manager.epoch == 1
        assert before != after  # a fresh seed reshuffles roles

    def test_epoch_after_churn_includes_everyone(self, manager):
        manager.join(100, Region.LONDON, neighbors=[0, 1, 2])
        manager.leave(manager.members()[3])
        manager.advance_epoch()
        manager.validate()
        members = set(manager.members())
        for overlay in manager.overlays:
            assert set(overlay.nodes()) == members
