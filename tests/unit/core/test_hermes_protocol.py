"""Unit tests for the HERMES protocol node and system."""

import pytest

from repro.core.accountability import ViolationKind
from repro.core.config import HermesConfig
from repro.core.dissemination import DISSEMINATE_KIND, DisseminationEnvelope
from repro.core.protocol import HermesSystem
from repro.errors import ConfigurationError
from repro.mempool.transaction import Transaction
from repro.net.events import Message
from repro.net.faults import Behavior, FaultPlan


@pytest.fixture()
def hermes40(physical40, overlay_family40):
    overlays, _ranks = overlay_family40
    config = HermesConfig(f=1, num_overlays=3, gossip_fallback_enabled=False)
    return HermesSystem(physical40, config, overlays=overlays, seed=21)


class TestSetup:
    def test_committee_size(self, hermes40):
        assert len(hermes40.committee) == 4

    def test_all_nodes_created(self, hermes40, physical40):
        assert set(hermes40.nodes) == set(physical40.nodes())

    def test_nodes_verified_certificates(self, hermes40):
        for node in hermes40.nodes.values():
            assert set(node.overlays) == {0, 1, 2}

    def test_overlay_count_mismatch_rejected(self, physical40, overlay_family40):
        overlays, _ranks = overlay_family40
        config = HermesConfig(f=1, num_overlays=5)
        with pytest.raises(ConfigurationError):
            HermesSystem(physical40, config, overlays=overlays, seed=1)

    def test_network_too_small_for_committee(self, overlay_family40):
        from repro.net.topology import generate_physical_network

        tiny = generate_physical_network(3, min_degree=2, seed=1)
        with pytest.raises(ConfigurationError):
            HermesSystem(tiny, HermesConfig(f=1, num_overlays=1), seed=1)


class TestDissemination:
    def test_full_delivery(self, hermes40, physical40):
        hermes40.start()
        tx = Transaction.create(origin=7, created_at=0.0)
        hermes40.submit(7, tx)
        hermes40.run(until_ms=5_000)
        assert len(hermes40.stats.deliveries[tx.tx_id]) == physical40.num_nodes
        assert len(hermes40.violation_log) == 0

    def test_selected_overlay_matches_seed(self, hermes40):
        hermes40.start()
        tx = Transaction.create(origin=7, created_at=0.0)
        hermes40.submit(7, tx)
        hermes40.run(until_ms=5_000)
        node = hermes40.nodes[7]
        assert node.trs_client.next_sequence == 1

    def test_multiple_senders(self, hermes40, physical40):
        hermes40.start()
        txs = [Transaction.create(origin=o, created_at=0.0) for o in (3, 15, 30)]
        for tx in txs:
            hermes40.submit(tx.origin, tx)
        hermes40.run(until_ms=6_000)
        for tx in txs:
            assert len(hermes40.stats.deliveries[tx.tx_id]) == physical40.num_nodes

    def test_txs_spread_over_overlays(self, hermes40):
        """With enough transactions the random selection uses several overlays."""

        hermes40.start()
        seen_overlays = set()
        original = type(hermes40.nodes[0])._dispatch_to_entry_points

        def spy(node, envelope):
            seen_overlays.add(envelope.overlay_id)
            return original(node, envelope)

        type(hermes40.nodes[0])._dispatch_to_entry_points = spy
        try:
            for origin in (1, 2, 3, 4, 5, 6, 8, 9):
                hermes40.submit(origin, Transaction.create(origin=origin, created_at=0.0))
            hermes40.run(until_ms=8_000)
        finally:
            type(hermes40.nodes[0])._dispatch_to_entry_points = original
        assert len(seen_overlays) > 1

    def test_crash_origin_sends_nothing(self, physical40, overlay_family40):
        overlays, _ranks = overlay_family40
        plan = FaultPlan(behaviors={7: Behavior.CRASH})
        config = HermesConfig(f=1, num_overlays=3, gossip_fallback_enabled=False)
        system = HermesSystem(
            physical40, config, fault_plan=plan, overlays=overlays, seed=21
        )
        system.start()
        tx = Transaction.create(origin=7, created_at=0.0)
        system.submit(7, tx)
        system.run(until_ms=3_000)
        assert tx.tx_id not in system.stats.deliveries


class TestAccountability:
    def test_forged_envelope_flagged(self, hermes40):
        """An envelope without a valid TRS is rejected and the sender flagged."""

        hermes40.start()
        hermes40.run(until_ms=10)
        tx = Transaction.create(origin=5, created_at=0.0)
        forged = DisseminationEnvelope(
            tx=tx, origin=5, sequence=0, signature=object(), overlay_id=0
        )
        attacker = hermes40.nodes[5]
        overlay = attacker.overlays[0]
        target = overlay.entry_points[0]
        attacker.send(target, Message(DISSEMINATE_KIND, forged, 300))
        hermes40.run(until_ms=2_000)
        kinds = {v.kind for v in hermes40.violation_log.against(5)}
        assert ViolationKind.BAD_SIGNATURE in kinds
        assert tx.tx_id not in hermes40.stats.deliveries

    def test_illegitimate_predecessor_flagged(self, hermes40):
        """A valid envelope sent outside the overlay structure is flagged."""

        hermes40.start()
        tx = Transaction.create(origin=5, created_at=0.0)
        hermes40.submit(5, tx)
        hermes40.run(until_ms=5_000)

        # Grab the envelope a node received legitimately and replay it from a
        # node that is NOT a predecessor of the target.
        overlayid = None
        envelope = None
        for node in hermes40.nodes.values():
            pass
        # Reconstruct the envelope through the backend for replay:
        sequence = 0
        from repro.core.dissemination import DisseminationEnvelope as Env
        from repro.trs.committee import trs_binding

        binding = trs_binding(5, sequence, tx.digest())
        partials = [
            hermes40.backend.partial_sign(m, binding) for m in hermes40.committee[:3]
        ]
        signature = hermes40.backend.combine(binding, partials)
        overlay_id = hermes40.backend.seed_from_signature(signature, 3)
        envelope = Env(
            tx=tx, origin=5, sequence=sequence, signature=signature,
            overlay_id=overlay_id,
        )
        overlay = hermes40.overlays[overlay_id]
        # Find a deep node and a non-predecessor sender.
        target = max(overlay.nodes(), key=lambda n: overlay.depth_of[n])
        legitimate = overlay.valid_senders(target)
        impostor = next(
            n
            for n in overlay.nodes()
            if n not in legitimate and n != target and n != 5
        )
        hermes40.nodes[impostor].send(target, Message(DISSEMINATE_KIND, envelope, 300))
        hermes40.run(until_ms=8_000)
        kinds = {v.kind for v in hermes40.violation_log.against(impostor)}
        assert ViolationKind.ILLEGITIMATE_PREDECESSOR in kinds

    def test_wrong_overlay_claim_flagged(self, hermes40):
        """Claiming a different overlay than the seed selects is a violation."""

        hermes40.start()
        hermes40.run(until_ms=10)
        tx = Transaction.create(origin=5, created_at=0.0)
        from repro.trs.committee import trs_binding

        binding = trs_binding(5, 0, tx.digest())
        partials = [
            hermes40.backend.partial_sign(m, binding) for m in hermes40.committee[:3]
        ]
        signature = hermes40.backend.combine(binding, partials)
        correct = hermes40.backend.seed_from_signature(signature, 3)
        wrong = (correct + 1) % 3
        envelope = DisseminationEnvelope(
            tx=tx, origin=5, sequence=0, signature=signature, overlay_id=wrong
        )
        target = hermes40.overlays[wrong].entry_points[0]
        hermes40.nodes[5].send(target, Message(DISSEMINATE_KIND, envelope, 300))
        hermes40.run(until_ms=2_000)
        kinds = {v.kind for v in hermes40.violation_log.against(5)}
        assert ViolationKind.BAD_SIGNATURE in kinds

    def test_excluded_node_messages_dropped(self, hermes40):
        hermes40.start()
        node = hermes40.nodes[10]
        node.monitor.flag(ViolationKind.BAD_SIGNATURE, accused=11, time_ms=0.0)
        tx = Transaction.create(origin=11, created_at=0.0)
        envelope = DisseminationEnvelope(
            tx=tx, origin=11, sequence=0, signature=object(), overlay_id=0
        )
        hermes40.nodes[11].send(10, Message(DISSEMINATE_KIND, envelope, 300))
        hermes40.run(until_ms=2_000)
        kinds = {v.kind for v in hermes40.violation_log.against(11)}
        assert ViolationKind.EXCLUDED_SENDER in kinds


class TestRobustness:
    def test_drop_relays_cannot_block_delivery(self, physical40, overlay_family40):
        overlays, _ranks = overlay_family40
        plan = FaultPlan.random_fraction(
            physical40.nodes(), 0.15, Behavior.DROP_RELAY, seed=3, protected=[7]
        )
        config = HermesConfig(f=1, num_overlays=3, gossip_fallback_enabled=False)
        system = HermesSystem(
            physical40, config, fault_plan=plan, overlays=overlays, seed=21
        )
        system.start()
        tx = Transaction.create(origin=7, created_at=0.0)
        system.submit(7, tx)
        system.run(until_ms=5_000)
        honest = system.honest_node_ids()
        coverage = system.stats.coverage(tx.tx_id, honest)
        assert coverage >= 0.9

    def test_gossip_fallback_repairs(self, physical40, overlay_family40):
        overlays, _ranks = overlay_family40
        plan = FaultPlan.random_fraction(
            physical40.nodes(), 0.3, Behavior.DROP_RELAY, seed=5, protected=[7]
        )
        config = HermesConfig(
            f=1,
            num_overlays=3,
            gossip_fallback_enabled=True,
            gossip_fallback_delay_ms=300.0,
            gossip_period_ms=150.0,
        )
        system = HermesSystem(
            physical40, config, fault_plan=plan, overlays=overlays, seed=21
        )
        system.start()
        tx = Transaction.create(origin=7, created_at=0.0)
        system.submit(7, tx)
        system.run(until_ms=4_000)
        coverage = system.stats.coverage(tx.tx_id, system.honest_node_ids())
        assert coverage == 1.0


class TestSharedOverlayDecode:
    """System construction verifies+decodes each certificate once and shares
    the resulting Overlay objects across nodes (they are read-only at
    runtime); a directly constructed node still does its own verify+decode."""

    def test_system_nodes_share_decoded_overlay_objects(self, hermes40):
        nodes = list(hermes40.nodes.values())
        first, rest = nodes[0], nodes[1:]
        for overlay_id, overlay in first.overlays.items():
            for other in rest:
                assert other.overlays[overlay_id] is overlay

    def test_each_node_keeps_its_own_mapping(self, hermes40):
        a, b = hermes40.nodes[0], hermes40.nodes[1]
        assert a.overlays is not b.overlays

    def test_direct_construction_decodes_from_certificates(self, hermes40, physical40):
        from repro.core.accountability import ViolationLog
        from repro.core.protocol import HermesNode
        from repro.net.node import Network
        from repro.net.simulator import Simulator

        network = Network(Simulator(), physical40, seed=3)
        node = HermesNode(
            node_id=0,
            network=network,
            config=hermes40.config,
            backend=hermes40.backend,
            committee=hermes40.committee,
            certificates=hermes40.certificates,
            violation_log=ViolationLog(),
        )
        shared = hermes40.nodes[0].overlays
        assert set(node.overlays) == set(shared)
        for overlay_id, overlay in node.overlays.items():
            # Independently decoded: equal structure, distinct objects.
            assert overlay is not shared[overlay_id]
            assert overlay.depth_of == shared[overlay_id].depth_of
