"""Unit tests for the Reed–Solomon erasure coding (§VIII-D extension)."""

import pytest

from repro.core.erasure import (
    Shard,
    decode_shards,
    encode_shards,
    hermes_erasure_parameters,
)
from repro.errors import ConfigurationError


class TestParameters:
    def test_paper_scheme(self):
        # (k+1, f+1+k): f = 2, k = 3 -> data 4, total 6.
        assert hermes_erasure_parameters(f=2, k=3) == (4, 6)

    def test_f_zero_degenerates_to_no_redundancy(self):
        data, total = hermes_erasure_parameters(f=0, k=2)
        assert data == total == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            hermes_erasure_parameters(-1, 0)


class TestEncode:
    def test_shard_count(self):
        shards = encode_shards(b"hello world", 3, 5)
        assert len(shards) == 5
        assert [shard.index for shard in shards] == list(range(5))

    def test_equal_shard_lengths(self):
        shards = encode_shards(b"x" * 10, 3, 5)
        lengths = {len(shard.data) for shard in shards}
        assert len(lengths) == 1

    def test_systematic_first_shard_not_required(self):
        payload = b"some payload bytes"
        shards = encode_shards(payload, 2, 4)
        assert decode_shards(shards[2:], 2, len(payload)) == payload

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            encode_shards(b"x", 0, 1)
        with pytest.raises(ConfigurationError):
            encode_shards(b"x", 3, 2)
        with pytest.raises(ConfigurationError):
            encode_shards(b"x", 2, 300)

    def test_empty_payload(self):
        shards = encode_shards(b"", 2, 3)
        assert decode_shards(shards[:2], 2, 0) == b""


class TestDecode:
    def test_any_subset_recovers(self):
        payload = bytes(range(200))
        shards = encode_shards(payload, 4, 7)
        import itertools

        for subset in itertools.combinations(shards, 4):
            assert decode_shards(list(subset), 4, len(payload)) == payload

    def test_loss_of_f_shards_tolerated(self):
        """The paper's (k+1, f+1+k) scheme survives f lost paths."""

        f, k = 2, 3
        data, total = hermes_erasure_parameters(f, k)
        payload = b"transaction batch" * 20
        shards = encode_shards(payload, data, total)
        surviving = shards[f:]  # f shards lost
        assert decode_shards(surviving, data, len(payload)) == payload

    def test_insufficient_shards_rejected(self):
        shards = encode_shards(b"payload", 3, 5)
        with pytest.raises(ConfigurationError):
            decode_shards(shards[:2], 3, 7)

    def test_duplicate_shards_not_counted_twice(self):
        shards = encode_shards(b"payload", 3, 5)
        with pytest.raises(ConfigurationError):
            decode_shards([shards[0], shards[0], shards[0]], 3, 7)

    def test_inconsistent_lengths_rejected(self):
        shards = encode_shards(b"payload", 2, 3)
        broken = [shards[0], Shard(index=1, data=shards[1].data + b"x")]
        with pytest.raises(ConfigurationError):
            decode_shards(broken, 2, 7)

    def test_binary_payload(self):
        payload = bytes([0, 255, 1, 254] * 64)
        shards = encode_shards(payload, 5, 8)
        assert decode_shards(shards[3:], 5, len(payload)) == payload
