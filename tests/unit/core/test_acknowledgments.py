"""Unit tests for the optional acknowledgment flow (§IV step 3)."""

import pytest

from repro.core.config import HermesConfig
from repro.core.protocol import HermesSystem
from repro.mempool.transaction import Transaction
from repro.net.faults import Behavior, FaultPlan


def build_system(physical, overlays, plan=None, **config_overrides):
    config = HermesConfig(
        f=1,
        num_overlays=len(overlays),
        gossip_fallback_enabled=False,
        acknowledgments_enabled=True,
        ack_flush_timeout_ms=300.0,
        **config_overrides,
    )
    return HermesSystem(physical, config, fault_plan=plan, overlays=overlays, seed=33)


class TestHonestAcks:
    def test_sender_learns_full_coverage(self, physical40, overlay_family40):
        overlays, _ranks = overlay_family40
        system = build_system(physical40, overlays)
        system.start()
        tx = Transaction.create(origin=9, created_at=0.0)
        system.submit(9, tx)
        system.run(until_ms=8_000)
        confirmations = system.nodes[9].ack_confirmations.get(tx.tx_id, set())
        # Every node except the origin is confirmed through the overlay.
        assert confirmations >= set(physical40.nodes()) - {9}

    def test_acks_disabled_by_default(self, physical40, overlay_family40):
        overlays, _ranks = overlay_family40
        config = HermesConfig(
            f=1, num_overlays=len(overlays), gossip_fallback_enabled=False
        )
        system = HermesSystem(physical40, config, overlays=overlays, seed=33)
        system.start()
        tx = Transaction.create(origin=9, created_at=0.0)
        system.submit(9, tx)
        system.run(until_ms=6_000)
        assert not system.nodes[9].ack_confirmations

    def test_multiple_txs_tracked_independently(self, physical40, overlay_family40):
        overlays, _ranks = overlay_family40
        system = build_system(physical40, overlays)
        system.start()
        tx_a = Transaction.create(origin=9, created_at=0.0)
        tx_b = Transaction.create(origin=22, created_at=0.0)
        system.submit(9, tx_a)
        system.submit(22, tx_b)
        system.run(until_ms=8_000)
        assert len(system.nodes[9].ack_confirmations.get(tx_a.tx_id, ())) >= 39
        assert len(system.nodes[22].ack_confirmations.get(tx_b.tx_id, ())) >= 39
        assert tx_b.tx_id not in system.nodes[9].ack_confirmations


class TestByzantineAcks:
    def test_droppers_missing_from_confirmations(self, physical40, overlay_family40):
        """Nodes that drop everything never ack, so the sender can see the
        delivery gap — the receipt-confirmation use case of §IV."""

        overlays, _ranks = overlay_family40
        plan = FaultPlan.random_fraction(
            physical40.nodes(), 0.1, Behavior.DROP_RELAY, seed=4, protected=[9]
        )
        system = build_system(physical40, overlays, plan=plan)
        system.start()
        tx = Transaction.create(origin=9, created_at=0.0)
        system.submit(9, tx)
        system.run(until_ms=8_000)
        confirmations = system.nodes[9].ack_confirmations.get(tx.tx_id, set())
        droppers = set(plan.byzantine_nodes())
        assert not (confirmations & droppers)
        # Honest nodes still get confirmed despite the silent droppers
        # (flush timeouts prevent them from muting whole subtrees).
        honest = set(system.honest_node_ids()) - {9}
        assert len(confirmations & honest) >= 0.9 * len(honest)

    def test_forged_ack_from_non_successor_flagged(
        self, physical40, overlay_family40
    ):
        overlays, _ranks = overlay_family40
        system = build_system(physical40, overlays)
        system.start()
        system.run(until_ms=10)
        from repro.core.accountability import ViolationKind
        from repro.core.dissemination import ACK_KIND
        from repro.net.events import Message

        overlay = overlays[0]
        target = overlay.entry_points[0]
        impostor = next(
            n
            for n in overlay.nodes()
            if n not in overlay.successors.get(target, ()) and n != target
        )
        body = (999999, overlay.overlay_id, frozenset({impostor}))
        system.nodes[impostor].send(target, Message(ACK_KIND, body, 56))
        system.run(until_ms=2_000)
        kinds = {v.kind for v in system.violation_log.against(impostor)}
        assert ViolationKind.ILLEGITIMATE_PREDECESSOR in kinds
