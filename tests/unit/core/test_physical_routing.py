"""Unit tests for source-routed entry-point hand-off (use_physical_paths).

When the deployment restricts senders to physical links, the sender reaches
the f+1 entry points through f+1 vertex-disjoint paths of the physical graph
(§IV dissemination step 1), source-routing the envelope hop by hop.
"""

import pytest

from repro.core.config import HermesConfig
from repro.core.protocol import HermesSystem
from repro.mempool.transaction import Transaction
from repro.net.faults import Behavior, FaultPlan


@pytest.fixture()
def routed_system(physical40, overlay_family40):
    overlays, _ranks = overlay_family40
    config = HermesConfig(
        f=1,
        num_overlays=3,
        gossip_fallback_enabled=False,
        use_physical_paths=True,
    )
    return HermesSystem(physical40, config, overlays=overlays, seed=61)


class TestSourceRouting:
    def test_full_delivery_via_disjoint_paths(self, routed_system, physical40):
        routed_system.start()
        tx = Transaction.create(origin=11, created_at=0.0)
        routed_system.submit(11, tx)
        routed_system.run(until_ms=8_000)
        assert len(routed_system.stats.deliveries[tx.tx_id]) == physical40.num_nodes
        assert len(routed_system.violation_log) == 0

    def test_route_messages_travel_physical_links_only(
        self, routed_system, physical40
    ):
        """Every ROUTE hop must be a physical edge."""

        from repro.core.dissemination import ROUTE_KIND
        from repro.net.node import Network

        hops = []
        original_send = Network.send

        def spy(network, src, dst, message):
            if message.kind == ROUTE_KIND:
                hops.append((src, dst))
            return original_send(network, src, dst, message)

        Network.send = spy
        try:
            routed_system.start()
            tx = Transaction.create(origin=11, created_at=0.0)
            routed_system.submit(11, tx)
            routed_system.run(until_ms=8_000)
        finally:
            Network.send = original_send
        for src, dst in hops:
            assert physical40.has_edge(src, dst)

    def test_one_faulty_path_relay_cannot_block(
        self, physical40, overlay_family40
    ):
        """f disjoint-path relays may drop; the message still arrives."""

        from repro.overlay.paths import find_disjoint_paths

        overlays, _ranks = overlay_family40
        # Find the relays node 11 would use toward overlay 0's entries and
        # corrupt the interior of one path.
        paths = find_disjoint_paths(
            physical40.graph, 11, list(overlays[0].entry_points), 2
        )
        interior = next(
            (node for path in paths for node in path[1:-1]), None
        )
        if interior is None:
            pytest.skip("both disjoint paths are direct edges")
        plan = FaultPlan(behaviors={interior: Behavior.DROP_RELAY})
        config = HermesConfig(
            f=1, num_overlays=3, gossip_fallback_enabled=False,
            use_physical_paths=True,
        )
        system = HermesSystem(
            physical40, config, fault_plan=plan, overlays=overlays, seed=61
        )
        system.start()
        tx = Transaction.create(origin=11, created_at=0.0)
        system.submit(11, tx)
        system.run(until_ms=8_000)
        coverage = system.stats.coverage(tx.tx_id, system.honest_node_ids())
        assert coverage >= 0.95
