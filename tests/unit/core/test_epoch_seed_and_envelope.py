"""Unit tests for committee epoch seeds and the dissemination envelope."""

import pytest

from repro.core.dissemination import DisseminationEnvelope
from repro.core.membership import committee_epoch_seed
from repro.crypto.backend import FastCryptoBackend
from repro.mempool.transaction import Transaction
from repro.trs.committee import trs_binding

COMMITTEE = [0, 1, 2, 3]


@pytest.fixture()
def backend():
    backend = FastCryptoBackend(7)
    backend.setup_committee(COMMITTEE, threshold=3)
    return backend


class TestEpochSeed:
    def test_deterministic(self, backend):
        assert committee_epoch_seed(backend, COMMITTEE, 1) == committee_epoch_seed(
            backend, COMMITTEE, 1
        )

    def test_epochs_differ(self, backend):
        seeds = {committee_epoch_seed(backend, COMMITTEE, e) for e in range(6)}
        assert len(seeds) > 1

    def test_quorum_subset_suffices(self, backend):
        full = committee_epoch_seed(backend, COMMITTEE, 3)
        quorum = committee_epoch_seed(backend, COMMITTEE[:3], 3)
        assert full == quorum  # unique combined signature => same seed

    def test_in_range(self, backend):
        for epoch in range(4):
            assert 0 <= committee_epoch_seed(backend, COMMITTEE, epoch) < 2**31


class TestEnvelope:
    def _make(self, backend, overlay_count=5):
        tx = Transaction.create(origin=9, created_at=0.0)
        binding = trs_binding(9, 0, tx.digest())
        partials = [backend.partial_sign(m, binding) for m in COMMITTEE[:3]]
        signature = backend.combine(binding, partials)
        overlay_id = backend.seed_from_signature(signature, overlay_count)
        return DisseminationEnvelope(
            tx=tx, origin=9, sequence=0, signature=signature, overlay_id=overlay_id
        )

    def test_valid_envelope_verifies(self, backend):
        envelope = self._make(backend)
        assert envelope.verify(backend, 5)

    def test_wrong_overlay_count_invalidates(self, backend):
        """Verification binds the claimed overlay to the modulus actually used."""

        envelope = self._make(backend, overlay_count=5)
        seed_with_7 = backend.seed_from_signature(envelope.signature, 7)
        if seed_with_7 != envelope.overlay_id:
            assert not envelope.verify(backend, 7)

    def test_tampered_signature_fails(self, backend):
        envelope = self._make(backend)
        forged = DisseminationEnvelope(
            tx=envelope.tx,
            origin=envelope.origin,
            sequence=envelope.sequence,
            signature=object(),
            overlay_id=envelope.overlay_id,
        )
        assert not forged.verify(backend, 5)

    def test_wrong_sequence_fails(self, backend):
        envelope = self._make(backend)
        shifted = DisseminationEnvelope(
            tx=envelope.tx,
            origin=envelope.origin,
            sequence=envelope.sequence + 1,
            signature=envelope.signature,
            overlay_id=envelope.overlay_id,
        )
        assert not shifted.verify(backend, 5)

    def test_wire_bytes_cover_payload_and_signature(self, backend):
        envelope = self._make(backend)
        assert envelope.wire_bytes(backend) >= envelope.tx.size_bytes + 96
