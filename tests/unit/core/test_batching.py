"""Unit tests for erasure-coded batch dissemination over HERMES."""

import pytest

from repro.core.batching import (
    BatchingHermesSystem,
    deserialize_batch,
    serialize_batch,
)
from repro.core.config import HermesConfig
from repro.errors import ConfigurationError
from repro.mempool.transaction import Transaction
from repro.net.faults import Behavior, FaultPlan


def make_txs(origin, count):
    return [Transaction.create(origin=origin, created_at=0.0) for _ in range(count)]


class TestBatchSerialization:
    def test_roundtrip(self):
        txs = make_txs(3, 5)
        restored = deserialize_batch(serialize_batch(txs))
        assert [(t.tx_id, t.origin, t.size_bytes) for t in restored] == [
            (t.tx_id, t.origin, t.size_bytes) for t in txs
        ]

    def test_tags_survive(self):
        txs = [Transaction.create(origin=1, created_at=0.0, tag="victim")]
        restored = deserialize_batch(serialize_batch(txs))
        assert restored[0].tag == "victim"

    def test_padded_to_nominal_size(self):
        txs = make_txs(1, 4)
        blob = serialize_batch(txs)
        assert len(blob) >= sum(t.size_bytes for t in txs)

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            serialize_batch([])


@pytest.fixture()
def batching_system(physical40, overlay_family40):
    overlays, _ranks = overlay_family40
    config = HermesConfig(f=1, num_overlays=3, gossip_fallback_enabled=False)
    return BatchingHermesSystem(physical40, config, overlays=overlays, seed=41)


class TestBatchDissemination:
    def test_batch_reaches_everyone(self, batching_system, physical40):
        batching_system.start()
        txs = make_txs(6, 8)
        batching_system.submit_batch(6, txs)
        batching_system.run(until_ms=10_000)
        for node in batching_system.nodes.values():
            for tx in txs:
                assert tx.tx_id in node.mempool

    def test_every_node_decodes_once(self, batching_system):
        batching_system.start()
        batching_system.submit_batch(6, make_txs(6, 4))
        batching_system.run(until_ms=10_000)
        for node_id, node in batching_system.nodes.items():
            if node_id == 6:
                continue
            assert node.batches_decoded == 1

    def test_two_batches_independent(self, batching_system):
        batching_system.start()
        txs_a = make_txs(6, 3)
        txs_b = make_txs(30, 3)
        batching_system.submit_batch(6, txs_a)
        batching_system.submit_batch(30, txs_b)
        batching_system.run(until_ms=12_000)
        probe = batching_system.nodes[12]
        for tx in txs_a + txs_b:
            assert tx.tx_id in probe.mempool
        assert probe.batches_decoded == 2

    def test_empty_batch_rejected(self, batching_system):
        with pytest.raises(ConfigurationError):
            batching_system.submit_batch(6, [])

    def test_shard_loss_tolerated(self, physical40, overlay_family40):
        """Batches decode even when droppers starve some shard streams.

        Shards travel thin (one path each); lost streams are covered first by
        the erasure redundancy and ultimately by the §VII-A gossip fallback,
        which reconciles shard transactions like any others.
        """

        overlays, _ranks = overlay_family40
        plan = FaultPlan.random_fraction(
            physical40.nodes(), 0.1, Behavior.DROP_RELAY, seed=3, protected=[6]
        )
        config = HermesConfig(
            f=1,
            num_overlays=3,
            gossip_fallback_enabled=True,
            gossip_fallback_delay_ms=400.0,
            gossip_period_ms=200.0,
        )
        system = BatchingHermesSystem(
            physical40, config, fault_plan=plan, overlays=overlays, seed=41
        )
        system.start()
        txs = make_txs(6, 5)
        system.submit_batch(6, txs)
        system.run(until_ms=10_000)
        honest = system.honest_node_ids()
        decoded = sum(
            1 for n in honest if system.nodes[n].batches_decoded >= 1 or n == 6
        )
        assert decoded / len(honest) >= 0.95

    def test_bandwidth_cheaper_than_individual_sends(
        self, physical40, overlay_family40
    ):
        """The §VIII-D claim: sharding beats full replication per tree."""

        overlays, _ranks = overlay_family40
        config = HermesConfig(f=1, num_overlays=3, gossip_fallback_enabled=False)

        batched = BatchingHermesSystem(
            physical40, config, overlays=overlays, seed=41
        )
        batched.start()
        batched.submit_batch(6, make_txs(6, 10))
        batched.run(until_ms=10_000)

        from repro.core.protocol import HermesSystem

        individual = HermesSystem(physical40, config, overlays=overlays, seed=41)
        individual.start()
        for tx in make_txs(6, 10):
            individual.submit(6, tx)
        individual.run(until_ms=10_000)

        assert batched.stats.total_bytes() < individual.stats.total_bytes()
