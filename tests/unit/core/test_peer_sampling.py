"""Unit tests for the SecureCyclon-style peer sampling."""

import statistics

import pytest

from repro.core.peer_sampling import (
    PartialView,
    PeerDescriptor,
    PeerSamplingNode,
    bootstrap_ring_views,
    indegree_distribution,
)
from repro.net.faults import Behavior
from repro.net.node import Network
from repro.net.simulator import Simulator


class TestPartialView:
    def test_capacity_enforced(self):
        view = PartialView(owner=0, capacity=3)
        for node in range(1, 10):
            view.add(PeerDescriptor(node, age=node))
        assert len(view) <= 3

    def test_never_stores_self(self):
        view = PartialView(owner=0, capacity=3)
        assert not view.add(PeerDescriptor(0))
        assert 0 not in view

    def test_never_duplicates(self):
        view = PartialView(owner=0, capacity=3)
        view.add(PeerDescriptor(1, age=5))
        view.add(PeerDescriptor(1, age=2))
        assert len(view) == 1
        # The fresher descriptor wins.
        assert view.descriptors()[0].age == 2

    def test_eviction_prefers_stale(self):
        view = PartialView(owner=0, capacity=2)
        view.add(PeerDescriptor(1, age=9))
        view.add(PeerDescriptor(2, age=1))
        view.add(PeerDescriptor(3, age=0))  # evicts 1 (stalest)
        assert 1 not in view and 2 in view and 3 in view

    def test_stale_descriptor_not_inserted_when_full(self):
        view = PartialView(owner=0, capacity=2)
        view.add(PeerDescriptor(1, age=0))
        view.add(PeerDescriptor(2, age=0))
        assert not view.add(PeerDescriptor(3, age=9))

    def test_age_all(self):
        view = PartialView(owner=0, capacity=4)
        view.add(PeerDescriptor(1, age=0))
        view.age_all()
        assert view.descriptors()[0].age == 1

    def test_oldest_peer(self):
        view = PartialView(owner=0, capacity=4)
        view.add(PeerDescriptor(1, age=3))
        view.add(PeerDescriptor(2, age=7))
        assert view.oldest_peer() == 2
        assert PartialView(owner=0, capacity=2).oldest_peer() is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PartialView(owner=0, capacity=0)


class TestShuffling:
    def _run(self, physical, byzantine=(), ms=8_000):
        simulator = Simulator()
        network = Network(simulator, physical, seed=6)
        node_ids = physical.nodes()
        views = bootstrap_ring_views(node_ids, view_size=6, seed=2)
        nodes = {}
        for node_id in node_ids:
            behavior = (
                Behavior.DROP_RELAY if node_id in byzantine else Behavior.HONEST
            )
            nodes[node_id] = PeerSamplingNode(
                node_id, network, views[node_id], view_size=6, behavior=behavior
            )
        network.start_all()
        simulator.run(until_ms=ms)
        return nodes

    def test_shuffles_complete(self, physical40):
        nodes = self._run(physical40)
        assert all(node.shuffles_completed > 0 for node in nodes.values())

    def test_views_stay_full(self, physical40):
        nodes = self._run(physical40)
        assert all(len(node.view) >= 4 for node in nodes.values())

    def test_indegree_balanced(self, physical40):
        nodes = self._run(physical40)
        indegree = indegree_distribution(nodes)
        mean = statistics.mean(indegree.values())
        # No node should be wildly over-represented in views.
        assert max(indegree.values()) <= 4 * mean

    def test_byzantine_nodes_do_not_dominate(self, physical40):
        byzantine = set(physical40.nodes()[:6])
        nodes = self._run(physical40, byzantine=byzantine)
        indegree = indegree_distribution(nodes)
        honest_mean = statistics.mean(
            v for n, v in indegree.items() if n not in byzantine
        )
        byz_mean = statistics.mean(v for n, v in indegree.items() if n in byzantine)
        assert byz_mean <= 2 * honest_mean


class TestBootstrap:
    def test_views_exclude_self(self, physical40):
        views = bootstrap_ring_views(physical40.nodes(), view_size=5, seed=1)
        for node, view in views.items():
            assert node not in view
            assert len(view) <= 5
