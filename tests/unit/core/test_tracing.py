"""Unit tests for activity tracing (§I's "thorough logging")."""

import pytest

from repro.core.config import HermesConfig
from repro.core.protocol import HermesSystem
from repro.core.tracing import (
    ActivityKind,
    ActivityRecord,
    ActivityTrace,
    cross_check,
    reconstruct_path,
)
from repro.mempool.transaction import Transaction
from repro.net.faults import Behavior, FaultPlan


@pytest.fixture()
def traced_run(physical40, overlay_family40):
    overlays, _ranks = overlay_family40
    config = HermesConfig(
        f=1, num_overlays=3, gossip_fallback_enabled=False, tracing_enabled=True
    )
    system = HermesSystem(physical40, config, overlays=overlays, seed=71)
    system.start()
    tx = Transaction.create(origin=13, created_at=0.0)
    system.submit(13, tx)
    system.run(until_ms=6_000)
    return system, tx


class TestTraceCollection:
    def test_disabled_by_default(self, physical40, overlay_family40):
        overlays, _ranks = overlay_family40
        config = HermesConfig(f=1, num_overlays=3, gossip_fallback_enabled=False)
        system = HermesSystem(physical40, config, overlays=overlays, seed=71)
        system.start()
        tx = Transaction.create(origin=13, created_at=0.0)
        system.submit(13, tx)
        system.run(until_ms=4_000)
        assert len(system.activity_trace) == 0

    def test_lifecycle_recorded(self, traced_run):
        system, tx = traced_run
        trace = system.activity_trace
        kinds = {r.kind for r in trace.for_tx(tx.tx_id)}
        assert ActivityKind.TRS_REQUESTED in kinds
        assert ActivityKind.DISPATCHED in kinds
        assert ActivityKind.RELAYED in kinds
        assert ActivityKind.DELIVERED in kinds

    def test_deliveries_match_stats(self, traced_run, physical40):
        system, tx = traced_run
        traced = system.activity_trace.deliveries(tx.tx_id)
        measured = system.stats.deliveries[tx.tx_id]
        # The origin delivers to itself without a DELIVERED record (it never
        # receives its own envelope at first delivery).
        assert set(traced) == set(measured) - {13}

    def test_queries(self, traced_run):
        system, tx = traced_run
        trace = system.activity_trace
        assert trace.for_node(13)
        assert trace.by_kind(ActivityKind.DISPATCHED)


class TestPathReconstruction:
    def test_parents_are_overlay_predecessors_or_origin(self, traced_run):
        system, tx = traced_run
        parents = reconstruct_path(system.activity_trace, tx.tx_id)
        dispatched = system.activity_trace.by_kind(ActivityKind.DISPATCHED)
        overlay = system.overlays[dispatched[0].overlay_id]
        for receiver, provider in parents.items():
            if overlay.is_entry(receiver):
                assert provider == tx.origin
            else:
                assert provider in overlay.valid_senders(receiver)

    def test_every_non_origin_node_has_a_parent(self, traced_run, physical40):
        system, tx = traced_run
        parents = reconstruct_path(system.activity_trace, tx.tx_id)
        assert set(parents) == set(physical40.nodes()) - {13}


class TestCrossCheck:
    def test_clean_run_cross_checks(self, traced_run):
        system, tx = traced_run
        assert cross_check(system.activity_trace, tx.tx_id) == []

    def test_fabricated_relay_claim_flagged(self):
        trace = ActivityTrace()
        trace.record(
            ActivityRecord(1.0, node=1, kind=ActivityKind.RELAYED, tx_id=5, peer=2)
        )
        # Node 2 never logged a delivery from node 1.
        assert cross_check(trace, 5) == [(1, 2)]

    def test_matched_pair_clean(self):
        trace = ActivityTrace()
        trace.record(
            ActivityRecord(1.0, node=1, kind=ActivityKind.RELAYED, tx_id=5, peer=2)
        )
        trace.record(
            ActivityRecord(2.0, node=2, kind=ActivityKind.DELIVERED, tx_id=5, peer=1)
        )
        assert cross_check(trace, 5) == []

    def test_censoring_relay_visible_as_missing_subtree(
        self, physical40, overlay_family40
    ):
        """A DROP_RELAY node produces no RELAYED records: the path
        reconstruction shows its successors fed by other predecessors."""

        overlays, _ranks = overlay_family40
        plan = FaultPlan(behaviors={overlays[0].entry_points[0]: Behavior.DROP_RELAY})
        config = HermesConfig(
            f=1, num_overlays=3, gossip_fallback_enabled=False, tracing_enabled=True
        )
        system = HermesSystem(
            physical40, config, fault_plan=plan, overlays=overlays, seed=71
        )
        system.start()
        tx = Transaction.create(origin=13, created_at=0.0)
        system.submit(13, tx)
        system.run(until_ms=6_000)
        censor = overlays[0].entry_points[0]
        relays_by_censor = [
            r
            for r in system.activity_trace.for_node(censor)
            if r.kind is ActivityKind.RELAYED
        ]
        assert relays_by_censor == []
