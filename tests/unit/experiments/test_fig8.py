"""Unit tests for the Fig. 8 sustained-population-load experiment module."""

import pytest

from repro.experiments import fig8_sustained
from repro.experiments.fig8_sustained import (
    KNEE_GOODPUT_RATIO,
    Fig8Config,
    Fig8Result,
)
from repro.population import PopulationResult


def point(protocol, offered, goodput, base_fee_max=1.0):
    return PopulationResult(
        protocol=protocol,
        offered_tps=offered,
        injected=int(offered * 60),
        delivered=int(goodput * 60),
        goodput_tps=goodput,
        mean_ms=40.0,
        p50_ms=30.0,
        p95_ms=90.0,
        p99_ms=150.0,
        latency_rank_error=0.01,
        evicted=0,
        expired=0,
        rejected=0,
        stats_expired=0,
        base_fee_final=base_fee_max,
        base_fee_max=base_fee_max,
        fee_p50=1.0,
        fee_p95=2.0,
        peak_active_sessions=10,
        mempool_peak=100,
        duration_ms=60_000.0,
        horizon_ms=65_000.0,
        latency_series=[],
        fee_series=[],
        base_fee_series=[],
        eviction_series=[],
    )


class TestConfig:
    def test_derived_configs_mirror_fields(self):
        config = Fig8Config(
            num_clients=1234, mempool_max_size=99, mempool_ttl_ms=5_000.0
        )
        pop = config.population_config(10.0)
        assert pop.num_clients == 1234
        assert pop.offered_tps == pytest.approx(10.0)
        policy = config.mempool_policy()
        assert policy.max_size == 99 and policy.ttl_ms == 5_000.0
        market = config.fee_market()
        assert market.base_fee == config.initial_base_fee

    def test_cell_params_grid_shape(self):
        config = Fig8Config(rates_tps=(2.0, 5.0), protocols=("hermes", "ingest"))
        params = fig8_sustained.cell_params(config)
        assert len(params) == 4
        assert {(p["protocol"], p["rate_tps"]) for p in params} == {
            ("hermes", 2.0),
            ("hermes", 5.0),
            ("ingest", 2.0),
            ("ingest", 5.0),
        }
        assert all("mempool_max_size" in p and "seed" in p for p in params)


class TestKneeAndEscalation:
    def test_knee_is_first_saturated_rate(self):
        result = Fig8Result(
            config=Fig8Config(),
            curves={
                "hermes": [
                    point("hermes", 5.0, 5.0),
                    point("hermes", 10.0, 10.0 * KNEE_GOODPUT_RATIO * 0.9),
                ]
            },
        )
        assert result.knee_tps("hermes") == 10.0
        assert result.knee_tps("unknown") is None

    def test_no_knee_when_goodput_keeps_up(self):
        result = Fig8Result(
            config=Fig8Config(),
            curves={"ingest": [point("ingest", 5.0, 5.0)]},
        )
        assert result.knee_tps("ingest") is None

    def test_fee_escalation_reads_top_rate(self):
        result = Fig8Result(
            config=Fig8Config(initial_base_fee=1.0),
            curves={
                "hermes": [
                    point("hermes", 5.0, 5.0, base_fee_max=1.0),
                    point("hermes", 40.0, 10.0, base_fee_max=3.5),
                ]
            },
        )
        assert result.fee_escalation("hermes") == pytest.approx(3.5)
        assert result.fee_escalation("unknown") is None


class TestRecordsFold:
    def test_from_records_sorts_and_skips_failures(self):
        config = Fig8Config(protocols=("ingest",))
        records = [
            {"status": "ok", "result": point("ingest", 20.0, 9.0).to_json()},
            {"status": "ok", "result": point("ingest", 5.0, 5.0).to_json()},
            {"status": "error"},
        ]
        result = fig8_sustained.from_records(config, records)
        assert [p.offered_tps for p in result.curves["ingest"]] == [5.0, 20.0]

    def test_format_result_mentions_knee_and_fees(self):
        config = Fig8Config(protocols=("hermes",))
        result = Fig8Result(
            config=config,
            curves={
                "hermes": [
                    point("hermes", 5.0, 5.0),
                    point("hermes", 40.0, 10.0, base_fee_max=2.0),
                ]
            },
        )
        text = fig8_sustained.format_result(result)
        assert "knee: 40.0 tx/s" in text
        assert "escalation" in text


class TestCellRoundTrip:
    def test_config_from_params_round_trips(self):
        config = Fig8Config(num_nodes=16, service_tps=10.0, seed=3)
        params = fig8_sustained.cell_params(config)[0]
        rebuilt = fig8_sustained._config_from_params(params)
        assert rebuilt.num_nodes == 16
        assert rebuilt.service_tps == 10.0
        assert rebuilt.seed == 3

    def test_run_cell_ingest_is_json(self):
        params = {
            "protocol": "ingest",
            "rate_tps": 40.0,
            "num_clients": 10_000,
            "duration_ms": 10_000.0,
            "drain_ms": 1_000.0,
            "service_tps": 10.0,
            "mempool_max_size": 100,
            "target_occupancy": 50,
            "seed": 0,
        }
        doc = fig8_sustained.run_cell(params)
        assert doc["protocol"] == "ingest"
        assert doc["injected"] > 0
        assert doc["mempool_peak"] <= 100
        rebuilt = PopulationResult.from_json(doc)
        assert rebuilt.goodput_tps < rebuilt.offered_tps  # overloaded server
