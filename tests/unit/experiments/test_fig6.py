"""Unit tests for the Fig. 6 saturation experiment module."""

import pytest

from repro.experiments import fig6_saturation
from repro.experiments.fig6_saturation import (
    KNEE_GOODPUT_RATIO,
    Fig6Config,
    Fig6Result,
)
from repro.load.driver import LoadResult


def point(protocol: str, offered: float, goodput: float, p95=100.0) -> LoadResult:
    return LoadResult(
        protocol=protocol,
        offered_tps=offered,
        injected=int(offered * 6),
        delivered=int(goodput * 6),
        goodput_tps=goodput,
        mean_ms=50.0,
        p50_ms=40.0,
        p95_ms=p95,
        drop_rate=0.0,
        capacity_drops=0,
        goodput_kb_per_min=goodput * 10,
        bandwidth_kb_per_min=offered * 10,
        max_queue_bytes=0.0,
        mempool_peak=1,
        mempool_mean=0.5,
        duration_ms=6_000.0,
        horizon_ms=8_000.0,
    )


class TestConfig:
    def test_capacity_config_mirrors_fields(self):
        config = Fig6Config(uplink_kb_per_s=10.0, queue_bytes=1_000)
        capacity = config.capacity_config()
        assert capacity.uplink_kb_per_s == 10.0
        assert capacity.queue_bytes == 1_000

    def test_cell_params_grid_shape(self):
        config = Fig6Config(rates_tps=(1.0, 2.0), protocols=("hermes", "lzero"))
        params = fig6_saturation.cell_params(config)
        assert len(params) == 4
        assert {(p["protocol"], p["rate_tps"]) for p in params} == {
            ("hermes", 1.0),
            ("hermes", 2.0),
            ("lzero", 1.0),
            ("lzero", 2.0),
        }
        # Every value a cell consumes is part of its addressable params.
        assert all("uplink_kb_per_s" in p and "seed" in p for p in params)


class TestKneeDetection:
    def test_knee_is_first_saturated_rate(self):
        result = Fig6Result(
            config=Fig6Config(),
            curves={
                "hermes": [
                    point("hermes", 5.0, 5.0),
                    point("hermes", 10.0, 10.0 * KNEE_GOODPUT_RATIO * 0.9),
                    point("hermes", 20.0, 9.0),
                ]
            },
        )
        assert result.knee_tps("hermes") == 10.0

    def test_no_knee_when_goodput_keeps_up(self):
        result = Fig6Result(
            config=Fig6Config(),
            curves={"lzero": [point("lzero", 5.0, 5.0), point("lzero", 10.0, 9.9)]},
        )
        assert result.knee_tps("lzero") is None

    def test_latency_inflation_ratio(self):
        result = Fig6Result(
            config=Fig6Config(),
            curves={
                "hermes": [
                    point("hermes", 5.0, 5.0, p95=100.0),
                    point("hermes", 20.0, 9.0, p95=450.0),
                ]
            },
        )
        assert result.latency_inflation("hermes") == pytest.approx(4.5)

    def test_latency_inflation_needs_two_measured_points(self):
        result = Fig6Result(
            config=Fig6Config(), curves={"hermes": [point("hermes", 5.0, 5.0)]}
        )
        assert result.latency_inflation("hermes") is None


class TestRecordsFold:
    def test_from_records_sorts_by_offered_rate(self):
        config = Fig6Config(protocols=("hermes",))
        records = [
            {"status": "ok", "result": point("hermes", 20.0, 9.0).to_json()},
            {"status": "ok", "result": point("hermes", 5.0, 5.0).to_json()},
            {"status": "error"},
        ]
        result = fig6_saturation.from_records(config, records)
        offered = [p.offered_tps for p in result.curves["hermes"]]
        assert offered == [5.0, 20.0]

    def test_format_result_mentions_knee(self):
        config = Fig6Config(protocols=("hermes",))
        result = Fig6Result(
            config=config,
            curves={
                "hermes": [
                    point("hermes", 5.0, 5.0, p95=100.0),
                    point("hermes", 20.0, 9.0, p95=450.0),
                ]
            },
        )
        text = fig6_saturation.format_result(result)
        assert "knee: 20.0 tx/s" in text
        assert "4.5x" in text


class TestTinyEndToEnd:
    def test_run_cell_is_json_and_saturates_under_tiny_links(self):
        params = {
            "protocol": "lzero",
            "rate_tps": 30.0,
            "pattern": "deterministic",
            "num_nodes": 16,
            "k": 2,
            "duration_ms": 1_500.0,
            "drain_ms": 500.0,
            "uplink_kb_per_s": 4.0,
            "downlink_kb_per_s": 16.0,
            "queue_bytes": 4_096,
            "seed": 0,
        }
        doc = fig6_saturation.run_cell(params)
        assert doc["protocol"] == "lzero"
        assert doc["injected"] == 45
        assert doc["capacity_drops"] > 0
        assert doc["goodput_tps"] < doc["offered_tps"]
        assert LoadResult.from_json(doc).protocol == "lzero"
