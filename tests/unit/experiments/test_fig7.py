"""Structural tests for the fig7 adversary grid (cells, folding, formatting)."""

from repro.experiments import fig7_adversary as fig7


def small_config(**overrides):
    defaults = dict(
        num_nodes=40,
        protocols=("hermes", "mercury"),
        strategies=("sandwich",),
        fractions=(0.10, 0.33),
        trials=2,
    )
    defaults.update(overrides)
    return fig7.Fig7Config(**defaults)


def _record(protocol, strategy, fraction, trial, won, **extra):
    result = {
        "protocol": protocol,
        "strategy": strategy,
        "fraction": fraction,
        "trial": trial,
        "attacker_won": won,
        "victim_censored": 0,
        "gross": 100.0 * won,
        "net": 98.0 * won - 2.0 * (1 - won),
        "gamma": 0.8,
        "inversion_rate": 0.1,
        "coverage": 1.0,
        "violations": 0,
    }
    result.update(extra)
    return {"status": "ok", "result": result}


class TestGrid:
    def test_cell_params_cover_the_full_grid(self):
        config = small_config()
        params = fig7.cell_params(config)
        assert len(params) == 2 * 1 * 2 * 2  # protocols × strategies × fractions × trials
        keys = {(p["protocol"], p["strategy"], p["fraction"], p["trial"]) for p in params}
        assert len(keys) == len(params)
        assert all(p["trials"] == config.trials for p in params)

    def test_trial_seeds_differ_across_strategies(self):
        seeds = {
            fig7._trial_seed(strategy, 0.10, 0)
            for strategy in ("sandwich", "priority-race", "censor-reorder")
        }
        assert len(seeds) == 3

    def test_trial_pairs_are_deterministic(self):
        config = small_config()
        env = fig7._environment(config)
        assert fig7._trial_pairs(config, env) == fig7._trial_pairs(config, env)


class TestFolding:
    def test_from_records_aggregates_per_cell(self):
        config = small_config()
        records = [
            _record("hermes", "sandwich", 0.10, 0, won=0),
            _record("hermes", "sandwich", 0.10, 1, won=1),
            _record("mercury", "sandwich", 0.10, 0, won=1, violations=4),
            _record("mercury", "sandwich", 0.10, 1, won=1),
            {"status": "error", "result": None},  # ignored
        ]
        result = fig7.from_records(config, records)
        hermes = result.cell("hermes", "sandwich", 0.10)
        assert hermes.success_rate == 0.5
        assert hermes.trials == 2
        assert hermes.mean_gross == 50.0
        mercury = result.cell("mercury", "sandwich", 0.10)
        assert mercury.success_rate == 1.0
        assert mercury.violations == 4

    def test_protocol_aggregates_and_ordering(self):
        config = small_config()
        records = [
            _record("hermes", "sandwich", f, t, won=0)
            for f in config.fractions
            for t in range(2)
        ] + [
            _record("mercury", "sandwich", f, t, won=1)
            for f in config.fractions
            for t in range(2)
        ]
        result = fig7.from_records(config, records)
        assert result.protocol_success_rate("hermes") == 0.0
        assert result.protocol_success_rate("mercury") == 1.0
        assert result.protocol_extracted_value("mercury") == 100.0
        assert result.resistance_ordering() == ["hermes", "mercury"]


class TestFormatting:
    def test_format_result_rows_and_missing_cells(self):
        config = small_config()
        records = [
            _record("hermes", "sandwich", 0.10, 0, won=0),
            _record("hermes", "sandwich", 0.33, 0, won=1),
        ]
        table = fig7.format_result(fig7.from_records(config, records))
        assert "Fig. 7" in table
        assert "hermes" in table
        # Mercury produced no records, so its row is dropped entirely.
        assert "mercury" not in table
        assert "10% mal" in table and "33% mal" in table
