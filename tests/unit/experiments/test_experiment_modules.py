"""Unit tests for the experiment harness and figure modules (tiny configs)."""

import pytest

from repro.experiments import build_environment, protocol_factories
from repro.experiments import (
    fig2_overlays,
    fig3a_latency,
    fig3b_bandwidth,
    fig4_roles,
    fig5a_frontrunning,
    fig5b_robustness,
    table1,
)


@pytest.fixture(scope="module")
def env():
    return build_environment(num_nodes=40, f=1, k=3, seed=1)


class TestHarness:
    def test_environment_cached(self, env):
        again = build_environment(num_nodes=40, f=1, k=3, seed=1)
        assert again is env

    def test_environment_contents(self, env):
        assert env.physical.num_nodes == 40
        assert len(env.overlays) == 3
        assert env.build_seconds > 0

    def test_factories_cover_all_protocols(self, env):
        factories = protocol_factories(env)
        for name in ("hermes", "lzero", "narwhal", "mercury", "gossip", "simple-tree"):
            system = factories[name]()
            assert system.physical is env.physical

    def test_hermes_config_overrides(self, env):
        config = env.hermes_config(gossip_fallback_enabled=False)
        assert config.num_overlays == 3
        assert not config.gossip_fallback_enabled

    def test_min_degree_is_part_of_the_cache_key(self):
        # Regression: min_degree changes the generated topology, so two calls
        # differing only in min_degree must not alias to one cached entry.
        sparse = build_environment(num_nodes=24, f=1, k=2, seed=5, min_degree=2)
        dense = build_environment(num_nodes=24, f=1, k=2, seed=5, min_degree=6)
        assert sparse is not dense
        degree_of = lambda env: min(
            len(env.physical.neighbors(n)) for n in env.physical.nodes()
        )
        assert degree_of(sparse) < degree_of(dense)
        # Same min_degree still hits the cache.
        assert build_environment(num_nodes=24, f=1, k=2, seed=5, min_degree=2) is sparse

    def test_clear_environment_cache(self):
        from repro.experiments.harness import clear_environment_cache

        first = build_environment(num_nodes=24, f=1, k=2, seed=6)
        assert build_environment(num_nodes=24, f=1, k=2, seed=6) is first
        clear_environment_cache()
        rebuilt = build_environment(num_nodes=24, f=1, k=2, seed=6)
        assert rebuilt is not first
        assert rebuilt.physical.num_nodes == first.physical.num_nodes


class TestFig2:
    def test_rows_and_shape(self):
        result = fig2_overlays.run(fig2_overlays.Fig2Config(num_nodes=40, seed=1))
        names = {row.structure for row in result.rows}
        assert names == {"robust-tree", "chordal-ring", "hypercube", "random"}
        tree = result.row("robust-tree")
        others = [row for row in result.rows if row.structure != "robust-tree"]
        # The paper's headline: robust trees trade load balance for latency.
        assert tree.avg_latency_ms <= min(o.avg_latency_ms for o in others)
        assert tree.load_stddev >= max(o.load_stddev for o in others)

    def test_format(self):
        result = fig2_overlays.run(fig2_overlays.Fig2Config(num_nodes=30, seed=1))
        text = fig2_overlays.format_result(result)
        assert "robust-tree" in text and "Fig. 2" in text


class TestFig3a:
    def test_runs_and_orders(self, env):
        result = fig3a_latency.run(
            fig3a_latency.Fig3aConfig(num_nodes=40, transactions=3, horizon_ms=6_000),
            env=env,
        )
        assert set(result.summaries) == {"hermes", "lzero", "narwhal", "mercury"}
        assert result.setup_overhead_ms["hermes"] > 0
        assert result.setup_overhead_ms["mercury"] == 0
        text = fig3a_latency.format_result(result)
        assert "Fig. 3a" in text


class TestFig3aSweep:
    def test_run_parallel_serial_and_resume(self, env, tmp_path):
        config = fig3a_latency.Fig3aConfig(
            num_nodes=40, f=1, k=3, transactions=3, horizon_ms=6_000, seed=1
        )
        result, report = fig3a_latency.run_parallel(
            config, jobs=1, results_dir=str(tmp_path)
        )
        assert report.executed == 4 and report.failed == 0
        assert set(result.summaries) == {"hermes", "lzero", "narwhal", "mercury"}
        assert all(s.count > 0 for s in result.summaries.values())

        again, again_report = fig3a_latency.run_parallel(
            config, jobs=1, results_dir=str(tmp_path)
        )
        assert again_report.executed == 0 and again_report.skipped == 4
        assert again.summaries == result.summaries
        assert again.setup_overhead_ms == result.setup_overhead_ms


class TestFig3b:
    def test_bandwidth_positive(self, env):
        result = fig3b_bandwidth.run(
            fig3b_bandwidth.Fig3bConfig(
                num_nodes=40, duration_ms=10_000, tx_interval_ms=2_000
            ),
            env=env,
        )
        assert all(v > 0 for v in result.kb_per_minute.values())
        assert result.hermes_with_per_tx_encoding > result.kb_per_minute["hermes"]
        assert "Fig. 3b" in fig3b_bandwidth.format_result(result)

    def test_lzero_most_frugal(self, env):
        result = fig3b_bandwidth.run(
            fig3b_bandwidth.Fig3bConfig(
                num_nodes=40, duration_ms=10_000, tx_interval_ms=2_000
            ),
            env=env,
        )
        assert result.ordering()[0] == "lzero"


class TestFig4:
    def test_entry_accounting(self, env):
        result = fig4_roles.run(fig4_roles.Fig4Config(num_nodes=40, k=3), env=env)
        assert result.entry_assignments == 3 * 2  # k * (f+1)
        assert result.rank_histogram[1] == 6
        assert sum(result.rank_histogram.values()) == 3 * 40

    def test_roles_rotate(self, env):
        result = fig4_roles.run(fig4_roles.Fig4Config(num_nodes=40, k=3), env=env)
        assert result.max_entry_repeats() <= 2
        assert result.fairness_coefficient() < 0.5
        assert "Fig. 4" in fig4_roles.format_result(result)


class TestFig5a:
    def test_tiny_sweep(self, env):
        config = fig5a_frontrunning.Fig5aConfig(
            num_nodes=40, fractions=(0.2,), trials=2, horizon_ms=2_500
        )
        result = fig5a_frontrunning.run(config, env=env)
        for name, by_fraction in result.success_rates.items():
            assert 0.0 <= by_fraction[0.2] <= 1.0
        assert "Fig. 5a" in fig5a_frontrunning.format_result(result)


class TestFig5b:
    def test_tiny_sweep(self, env):
        config = fig5b_robustness.Fig5bConfig(
            num_nodes=40, fractions=(0.2,), trials=2, horizon_ms=1_500
        )
        result = fig5b_robustness.run(config, env=env)
        for name, by_fraction in result.coverage.items():
            assert 0.0 < by_fraction[0.2] <= 1.0
        assert "Fig. 5b" in fig5b_robustness.format_result(result)


class TestTable1:
    def test_rows_present(self):
        config = table1.Table1Config(num_nodes=40, k=2, transactions=3)
        result = table1.run(config)
        approaches = {row.approach for row in result.rows}
        assert approaches == {"gossip", "reliable-broadcast", "simple-tree", "hermes"}
        text = table1.format_result(result)
        assert "Table I" in text

    def test_structural_properties(self):
        config = table1.Table1Config(num_nodes=40, k=2, transactions=3)
        result = table1.run(config)
        assert result.row("hermes").accountable
        assert not result.row("gossip").accountable
        # Simple tree has the worst load imbalance of the four.
        tree_cv = result.row("simple-tree").load_cv
        assert tree_cv >= max(
            result.row(a).load_cv for a in ("gossip", "hermes", "reliable-broadcast")
        )
