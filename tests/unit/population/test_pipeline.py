"""Unit tests for the simulator-free ingest pipeline."""

import pytest

from repro.mempool import MempoolPolicy
from repro.population import (
    ClientPopulation,
    FeeMarket,
    FeeMarketConfig,
    PopulationConfig,
    PopulationResult,
    run_ingest,
)


def population(offered_tps=40.0, seed=0, num_clients=5_000):
    return ClientPopulation(
        PopulationConfig.for_offered_rate(
            offered_tps,
            num_clients=num_clients,
            num_nodes=4,
            seed=seed,
            session_duration_ms=2_000.0,
        )
    )


class TestRunIngest:
    def test_light_load_serves_everything(self):
        result = run_ingest(
            population(offered_tps=10.0),
            duration_ms=10_000.0,
            service_tps=100.0,
            drain_ms=2_000.0,
        )
        assert result.protocol == "ingest"
        assert result.injected > 0
        assert result.delivered == result.injected
        assert result.evicted == result.rejected == result.expired == 0
        assert result.p50_ms is not None and result.p50_ms > 0
        assert result.p95_ms >= result.p50_ms

    def test_overload_respects_the_cap(self):
        result = run_ingest(
            population(offered_tps=100.0),
            duration_ms=20_000.0,
            service_tps=10.0,
            policy=MempoolPolicy(max_size=50),
            fee_market=FeeMarket(FeeMarketConfig()),
        )
        assert result.mempool_peak <= 50
        assert result.evicted + result.rejected > 0
        assert result.delivered < result.injected

    def test_fee_market_rises_under_backlog(self):
        result = run_ingest(
            population(offered_tps=100.0),
            duration_ms=20_000.0,
            service_tps=10.0,
            policy=MempoolPolicy(max_size=500),
            fee_market=FeeMarket(FeeMarketConfig()),
            target_occupancy=50,
        )
        assert result.base_fee_max > 1.0
        assert result.fee_p50 is not None and result.fee_p95 >= result.fee_p50
        assert result.base_fee_series[0] == [0.0, 1.0]

    def test_ttl_expires_stale_backlog(self):
        result = run_ingest(
            population(offered_tps=100.0),
            duration_ms=20_000.0,
            service_tps=5.0,
            policy=MempoolPolicy(ttl_ms=2_000.0),
        )
        assert result.expired > 0

    def test_deterministic_replay(self):
        kwargs = dict(
            duration_ms=8_000.0,
            service_tps=20.0,
            policy=MempoolPolicy(max_size=100),
            fee_market=FeeMarket(FeeMarketConfig(), seed=2),
        )
        first = run_ingest(population(seed=9), **kwargs)
        kwargs["fee_market"] = FeeMarket(FeeMarketConfig(), seed=2)
        second = run_ingest(population(seed=9), **kwargs)
        assert first == second

    def test_series_are_windowed_not_per_tx(self):
        result = run_ingest(
            population(offered_tps=50.0),
            duration_ms=30_000.0,
            service_tps=100.0,
            window_ms=10_000.0,
        )
        assert 1 <= len(result.latency_series) <= 5
        assert all("p50" in row for row in result.latency_series)

    def test_validation(self):
        with pytest.raises(Exception):
            run_ingest(population(), duration_ms=0.0, service_tps=10.0)
        with pytest.raises(Exception):
            run_ingest(population(), duration_ms=100.0, service_tps=0.0)
        with pytest.raises(ValueError):
            run_ingest(
                population(), duration_ms=100.0, service_tps=10.0, drain_ms=-1.0
            )


class TestResultRoundTrip:
    def test_json_round_trip(self):
        result = run_ingest(
            population(offered_tps=20.0),
            duration_ms=5_000.0,
            service_tps=50.0,
            fee_market=FeeMarket(),
        )
        doc = result.to_json()
        assert PopulationResult.from_json(doc) == result
        assert doc["protocol"] == "ingest"

    def test_delivery_ratio(self):
        result = run_ingest(
            population(offered_tps=20.0), duration_ms=5_000.0, service_tps=50.0
        )
        assert 0.0 < result.delivery_ratio <= 1.0
