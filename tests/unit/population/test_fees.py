"""Unit tests for the EIP-1559-style fee market."""

import pytest

from repro.population import FeeMarket, FeeMarketConfig


class TestConfigValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            FeeMarketConfig(initial_base_fee=0.0)
        with pytest.raises(ValueError):
            FeeMarketConfig(min_base_fee=0.0)
        with pytest.raises(ValueError):
            FeeMarketConfig(min_base_fee=2.0, initial_base_fee=1.0)
        with pytest.raises(ValueError):
            FeeMarketConfig(max_change=0.0)
        with pytest.raises(ValueError):
            FeeMarketConfig(max_change=1.0)
        with pytest.raises(ValueError):
            FeeMarketConfig(update_interval_ms=0.0)
        with pytest.raises(ValueError):
            FeeMarketConfig(bid_sigma=-0.1)


class TestController:
    def test_pressure_steps_are_clamped(self):
        market = FeeMarket(FeeMarketConfig(initial_base_fee=1.0, max_change=0.125))
        market.on_pressure(occupancy_ratio=10.0, now_ms=500.0)  # clamps to +1
        assert market.base_fee == pytest.approx(1.125)
        market.on_pressure(occupancy_ratio=0.0, now_ms=1000.0)  # full -step
        assert market.base_fee == pytest.approx(1.125 * 0.875)

    def test_on_target_holds_steady(self):
        market = FeeMarket(FeeMarketConfig())
        market.on_pressure(occupancy_ratio=1.0, now_ms=500.0)
        assert market.base_fee == 1.0

    def test_floor_is_enforced(self):
        market = FeeMarket(FeeMarketConfig(initial_base_fee=1.0, min_base_fee=0.9))
        for tick in range(1, 20):
            market.on_pressure(occupancy_ratio=0.0, now_ms=tick * 500.0)
        assert market.base_fee == pytest.approx(0.9)

    def test_sustained_pressure_compounds(self):
        market = FeeMarket(FeeMarketConfig(initial_base_fee=1.0, max_change=0.125))
        for tick in range(1, 11):
            market.on_pressure(occupancy_ratio=2.0, now_ms=tick * 500.0)
        assert market.base_fee == pytest.approx(1.125**10)

    def test_rejects_negative_ratio(self):
        with pytest.raises(ValueError):
            FeeMarket().on_pressure(occupancy_ratio=-0.1, now_ms=0.0)

    def test_history_and_digest(self):
        market = FeeMarket(FeeMarketConfig())
        market.on_pressure(2.0, 500.0)
        market.on_pressure(2.0, 1000.0)
        market.on_pressure(0.0, 1500.0)
        digest = market.fee_percentiles()
        assert digest["start"] == 1.0
        assert digest["max"] == pytest.approx(1.125**2)
        assert digest["final"] == market.base_fee
        assert len(market.history) == 4


class TestBids:
    def test_bids_are_deterministic_per_seed(self):
        a, b = FeeMarket(seed=5), FeeMarket(seed=5)
        assert [a.bid(2.0) for _ in range(10)] == [b.bid(2.0) for _ in range(10)]
        c = FeeMarket(seed=6)
        assert [a.bid(2.0) for _ in range(10)] != [c.bid(2.0) for _ in range(10)]

    def test_bid_scales_with_tier_and_base_fee(self):
        market = FeeMarket(FeeMarketConfig(bid_sigma=0.0))
        assert market.bid(bid_scale=4.0) == pytest.approx(4.0)
        market.on_pressure(2.0, 500.0)
        assert market.bid(bid_scale=4.0) == pytest.approx(4.0 * 1.125)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            FeeMarket().bid(bid_scale=0.0)

    def test_noise_is_lognormal_around_one(self):
        market = FeeMarket(FeeMarketConfig(bid_sigma=0.25), seed=11)
        bids = [market.bid() for _ in range(2000)]
        assert all(bid > 0 for bid in bids)
        mean = sum(bids) / len(bids)
        assert mean == pytest.approx(1.0, rel=0.15)
