"""Unit tests for the O(active-sessions) client population model."""

import pytest

from repro.population import ClientPopulation, PopulationConfig, WealthTier
from repro.population.clients import DEFAULT_TIERS


def config(**overrides):
    base = dict(
        num_clients=10_000,
        session_rate_per_s=5.0,
        session_duration_ms=2_000.0,
        session_tx_rate_tps=2.0,
        num_nodes=8,
        seed=3,
    )
    base.update(overrides)
    return PopulationConfig(**base)


class TestConfigValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            config(num_clients=0)
        with pytest.raises(ValueError):
            config(num_nodes=0)
        with pytest.raises(ValueError):
            config(session_rate_per_s=0.0)
        with pytest.raises(ValueError):
            config(zipf_s=-0.1)

    def test_tier_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            config(tiers=(WealthTier("all", 0.5, 1.0),))

    def test_tier_validation(self):
        with pytest.raises(ValueError):
            WealthTier("x", 0.0, 1.0)
        with pytest.raises(ValueError):
            WealthTier("x", 1.0, 0.0)

    def test_offered_rate_round_trip(self):
        cfg = PopulationConfig.for_offered_rate(
            20.0, num_clients=1000, num_nodes=4, seed=1
        )
        assert cfg.offered_tps == pytest.approx(20.0)
        with pytest.raises(ValueError):
            PopulationConfig.for_offered_rate(0.0, num_clients=10, num_nodes=2)


class TestIdentity:
    def test_tier_and_origin_are_stable(self):
        pop = ClientPopulation(config())
        for client in (0, 17, 9_999):
            assert pop.client_tier(client) == pop.client_tier(client)
            assert pop.client_origin(client) == pop.client_origin(client)
            assert 0 <= pop.client_origin(client) < 8

    def test_tier_shares_approximately_respected(self):
        pop = ClientPopulation(config(num_clients=5_000))
        counts = {tier.name: 0 for tier in DEFAULT_TIERS}
        for client in range(5_000):
            counts[pop.client_tier(client)] += 1
        assert counts["retail"] > counts["pro"] > counts["whale"] > 0
        assert counts["retail"] / 5_000 == pytest.approx(0.90, abs=0.03)

    def test_bid_scales_resolve(self):
        pop = ClientPopulation(config())
        assert pop.tier_bid_scale("whale") == 20.0
        with pytest.raises(KeyError):
            pop.tier_bid_scale("nonexistent")

    def test_permutation_is_a_bijection(self):
        pop = ClientPopulation(config(num_clients=101))
        images = {pop._rank_to_client(rank) for rank in range(101)}
        assert images == set(range(101))


class TestZipfDraw:
    def test_uniform_when_s_is_zero(self):
        pop = ClientPopulation(config(zipf_s=0.0, num_clients=10))
        assert pop._draw_rank(0.0) == 0
        assert pop._draw_rank(0.999) == 9

    def test_skew_concentrates_low_ranks(self):
        pop = ClientPopulation(config(zipf_s=1.1, num_clients=100_000))
        # The median draw of a heavily skewed population is a tiny rank.
        assert pop._draw_rank(0.5) < 1000
        assert pop._draw_rank(0.0) == 0
        assert pop._draw_rank(1.0) <= 99_999

    def test_s_equal_one_branch(self):
        pop = ClientPopulation(config(zipf_s=1.0, num_clients=1000))
        assert pop._draw_rank(0.0) == 0
        assert 0 <= pop._draw_rank(0.7) < 1000

    def test_single_client_population(self):
        pop = ClientPopulation(config(num_clients=1, zipf_s=1.1))
        assert pop._draw_rank(0.9) == 0


class TestEventStream:
    def test_events_are_time_ordered_and_in_range(self):
        pop = ClientPopulation(config())
        events = list(pop.events(5_000.0))
        assert events, "expected a non-empty stream at 20 tps over 5 s"
        times = [e.time_ms for e in events]
        assert times == sorted(times)
        assert all(0.0 <= t < 5_000.0 for t in times)
        assert all(0 <= e.client_id < 10_000 for e in events)
        assert all(0 <= e.origin < 8 for e in events)
        assert all(e.tier in {"retail", "pro", "whale"} for e in events)

    def test_replay_is_identical(self):
        pop = ClientPopulation(config())
        first = list(pop.events(4_000.0))
        second = list(pop.events(4_000.0))
        assert first == second
        # A fresh population from an equal config replays too.
        third = list(ClientPopulation(config()).events(4_000.0))
        assert first == third

    def test_seed_changes_the_stream(self):
        a = list(ClientPopulation(config(seed=1)).events(4_000.0))
        b = list(ClientPopulation(config(seed=2)).events(4_000.0))
        assert a != b

    def test_horizon_prefix_property(self):
        pop = ClientPopulation(config())
        short = list(pop.events(2_000.0))
        long = list(pop.events(4_000.0))
        assert long[: len(short)] == short

    def test_offered_rate_is_approximately_met(self):
        cfg = config()
        pop = ClientPopulation(cfg)
        horizon = 30_000.0
        events = list(pop.events(horizon))
        realized = len(events) / (horizon / 1000.0)
        assert realized == pytest.approx(cfg.offered_tps, rel=0.35)

    def test_peak_active_sessions_is_reported(self):
        pop = ClientPopulation(config())
        list(pop.events(5_000.0))
        assert pop.last_peak_active > 0

    def test_rejects_bad_horizon(self):
        pop = ClientPopulation(config())
        with pytest.raises(ValueError):
            list(pop.events(0.0))
