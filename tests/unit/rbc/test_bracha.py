"""Unit tests for Bracha reliable broadcast."""

import pytest

from repro.net.node import Network
from repro.net.simulator import Simulator
from repro.rbc.bracha import BrachaContext, BrachaNode


@pytest.fixture()
def rbc_setup(physical40):
    """7 members (f = 2) on the shared physical network."""

    simulator = Simulator()
    network = Network(simulator, physical40, seed=2)
    members = list(range(7))
    nodes = {i: BrachaNode(i, network, members, f=2) for i in members}
    return simulator, network, nodes


class Silent(BrachaNode):
    """A Byzantine member that never participates."""

    def on_message(self, sender, message):
        pass


class Equivocator(BrachaNode):
    """A Byzantine source that sends different payloads to different members."""

    def broadcast_two_faced(self, sequence):
        from repro.net.events import Message

        for index, member in enumerate(self.context.members):
            payload = "left" if index % 2 == 0 else "right"
            body = (self.node_id, sequence, payload)
            if member == self.node_id:
                continue
            self.send(member, Message(self.context.send_kind, body, 48))


class TestValidity:
    def test_all_correct_members_deliver(self, rbc_setup):
        simulator, _network, nodes = rbc_setup
        nodes[0].broadcast(0, "payload")
        simulator.run()
        for node in nodes.values():
            assert (0, 0, "payload") in node.delivered

    def test_delivery_exactly_once(self, rbc_setup):
        simulator, _network, nodes = rbc_setup
        nodes[0].broadcast(0, "payload")
        simulator.run()
        for node in nodes.values():
            assert len(node.delivered) == 1

    def test_multiple_slots_independent(self, rbc_setup):
        simulator, _network, nodes = rbc_setup
        nodes[0].broadcast(0, "a")
        nodes[3].broadcast(0, "b")
        nodes[0].broadcast(1, "c")
        simulator.run()
        for node in nodes.values():
            assert len(node.delivered) == 3


class TestFaultTolerance:
    def test_delivers_despite_f_silent_members(self, physical40):
        simulator = Simulator()
        network = Network(simulator, physical40, seed=2)
        members = list(range(7))
        nodes = {}
        for i in members:
            cls = Silent if i in (5, 6) else BrachaNode  # f = 2 silent
            nodes[i] = cls(i, network, members, f=2)
        nodes[0].broadcast(0, "x")
        simulator.run()
        for i in range(5):
            assert (0, 0, "x") in nodes[i].delivered

    def test_consistency_under_equivocation(self, physical40):
        """No two correct members deliver different payloads."""

        simulator = Simulator()
        network = Network(simulator, physical40, seed=2)
        members = list(range(7))
        nodes = {}
        for i in members:
            cls = Equivocator if i == 0 else BrachaNode
            nodes[i] = cls(i, network, members, f=2)
        nodes[0].broadcast_two_faced(0)
        simulator.run()
        payloads = {
            payload
            for i in range(1, 7)
            for (_s, _q, payload) in nodes[i].delivered
        }
        assert len(payloads) <= 1

    def test_totality(self, physical40):
        """If one correct member delivers, all correct members deliver."""

        simulator = Simulator()
        network = Network(simulator, physical40, seed=2)
        members = list(range(7))
        nodes = {}
        for i in members:
            cls = Equivocator if i == 0 else BrachaNode
            nodes[i] = cls(i, network, members, f=2)
        nodes[0].broadcast_two_faced(0)
        simulator.run()
        delivered_counts = [len(nodes[i].delivered) for i in range(1, 7)]
        assert len(set(delivered_counts)) == 1


class TestValidation:
    def test_owner_must_be_member(self, physical40):
        network = Network(Simulator(), physical40, seed=2)
        with pytest.raises(ValueError):
            BrachaNode(10, network, members=[0, 1, 2, 3], f=1)

    def test_membership_bound(self, physical40):
        network = Network(Simulator(), physical40, seed=2)
        with pytest.raises(ValueError):
            BrachaNode(0, network, members=[0, 1, 2], f=1)  # needs 4

    def test_non_source_send_ignored(self, rbc_setup):
        """A member relaying a forged SEND for another source is ignored."""

        from repro.net.events import Message

        simulator, _network, nodes = rbc_setup
        # Node 1 claims node 0 sent "fake".
        body = (0, 0, "fake")
        nodes[1].send(2, Message(nodes[1].context.send_kind, body, 48))
        simulator.run()
        assert not nodes[2].delivered

    def test_non_member_messages_ignored(self, rbc_setup, physical40):
        simulator, network, nodes = rbc_setup
        outsider = BrachaNode(20, network, members=[20, 21, 22, 23], f=1)
        from repro.net.events import Message

        outsider.send(0, Message(nodes[0].context.echo_kind, (0, 0, "x"), 48))
        simulator.run()
        assert not nodes[0].delivered

    def test_inject_enters_echo_phase(self, rbc_setup):
        simulator, _network, nodes = rbc_setup
        nodes[0].context.inject(99, 0, "external")  # source 99 is not a member
        for i in range(1, 7):
            nodes[i].context.inject(99, 0, "external")
        simulator.run()
        for node in nodes.values():
            assert (99, 0, "external") in node.delivered
