"""The determinism contract: observability must never change a seeded run.

Tracing, metrics, and profiling are strictly read-only — they draw no
randomness and schedule no events — so a seeded HERMES run must produce
byte-identical delivery records with observability on or off.
"""

from repro.core.config import HermesConfig
from repro.core.protocol import HermesSystem
from repro.experiments.harness import record_latency_metrics
from repro.mempool.transaction import Transaction
from repro.net.stats import NetworkStats, summarize_latencies
from repro.net.topology import generate_physical_network
from repro.obs import Observability


def run_seeded(obs: Observability | None) -> tuple[HermesSystem, list[Transaction]]:
    physical = generate_physical_network(20, min_degree=4, seed=7)
    config = HermesConfig(f=1, num_overlays=2, gossip_fallback_enabled=False)
    system = HermesSystem(
        physical, config, optimize_overlays=False, seed=11, obs=obs
    )
    system.start()
    txs = []
    for index, origin in enumerate((2, 9, 15)):
        # Fixed tx_ids (not Transaction.create's process-global counter):
        # digests feed the seeded run, so both runs must use identical ids.
        tx = Transaction(tx_id=9_000 + index, origin=origin, created_at=0.0)
        txs.append(tx)
        system.simulator.schedule_at(
            index * 40.0, lambda o=origin, t=tx: system.submit(o, t)
        )
    system.run(until_ms=5_000)
    return system, txs


class TestSeededRunsMatch:
    def test_tracing_on_vs_off_yields_identical_deliveries(self):
        plain, _ = run_seeded(obs=None)
        traced, _ = run_seeded(obs=Observability.enabled(profile=True))
        assert dict(traced.stats.deliveries) == dict(plain.stats.deliveries)
        assert dict(traced.stats.send_times) == dict(plain.stats.send_times)
        assert traced.simulator.events_processed == plain.simulator.events_processed
        assert traced.simulator.now == plain.simulator.now

    def test_traced_run_actually_recorded_something(self):
        obs = Observability.enabled(profile=True)
        system, _txs = run_seeded(obs=obs)
        assert len(obs.tracer) > 0
        sent = obs.metrics.find("net.messages.sent")
        assert sum(counter.value for counter in sent) > 0
        profile = system.simulator.profile()
        assert profile is not None
        assert profile.events == system.simulator.events_processed

    def test_manifest_histogram_matches_figure_script_summary(self):
        # The acceptance criterion for `--trace`: the manifest's
        # delivery.latency_ms numbers must equal the LatencySummary a figure
        # script would print for the same NetworkStats.
        obs = Observability.enabled()
        system, _txs = run_seeded(obs=obs)
        record_latency_metrics(obs, system.stats, protocol="hermes")
        latencies = system.stats.all_delivery_latencies()
        summary = summarize_latencies(latencies)
        manifest = obs.manifest()
        (histogram,) = [
            h
            for h in manifest["metrics"]["histograms"]
            if h["name"] == "delivery.latency_ms"
        ]
        assert histogram["labels"] == {"protocol": "hermes"}
        assert histogram["count"] == summary.count
        assert histogram["mean"] == summary.mean
        assert histogram["p5"] == summary.p5
        assert histogram["p50"] == summary.p50
        assert histogram["p95"] == summary.p95

    def test_empty_stats_records_an_empty_summary_not_an_error(self):
        obs = Observability.enabled()
        record_latency_metrics(obs, NetworkStats(), protocol="idle")
        counters = obs.metrics.find("delivery.count")
        assert [c.value for c in counters] == [0]
        (histogram,) = obs.metrics.find("delivery.latency_ms")
        assert histogram.count == 0
        assert histogram.snapshot()["count"] == 0
