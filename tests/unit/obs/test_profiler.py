"""Simulator profiling hooks: attribution, queue sampling, snapshots."""

import pytest

from repro.errors import SimulationError
from repro.net.simulator import Simulator
from repro.obs import SimulatorProfiler, callback_key


def test_callback_key_variants():
    def plain():
        pass

    class Thing:
        def method(self):
            pass

        def __call__(self):
            pass

    import functools

    assert callback_key(plain).endswith("plain")
    assert "Thing.method" in callback_key(Thing().method)
    assert "lambda" in callback_key(lambda: None)
    assert callback_key(functools.partial(plain)).endswith("plain")
    assert "Thing" in callback_key(Thing())


class TestSimulatorIntegration:
    def test_per_callback_attribution_and_profile_snapshot(self):
        simulator = Simulator()
        simulator.set_profiler(SimulatorProfiler(queue_sample_interval=1))

        def tick():
            pass

        def tock():
            pass

        for delay in (1.0, 2.0, 3.0):
            simulator.schedule(delay, tick)
        simulator.schedule(4.0, tock)
        simulator.run()

        profile = simulator.profile()
        assert profile.events == 4
        tick_stats = profile.callbacks[callback_key(tick)]
        assert tick_stats.calls == 3
        assert profile.callbacks[callback_key(tock)].calls == 1
        assert tick_stats.total_s >= 0.0
        assert tick_stats.max_s <= tick_stats.total_s
        assert profile.wall_s == pytest.approx(
            sum(stats.total_s for stats in profile.callbacks.values())
        )

    def test_queue_depth_sampling_interval(self):
        simulator = Simulator()
        simulator.set_profiler(SimulatorProfiler(queue_sample_interval=2))
        for delay in range(6):
            simulator.schedule(float(delay), lambda: None)
        simulator.run()
        profile = simulator.profile()
        # 6 events, sampled every 2nd -> depths after events 2, 4, 6.
        assert [s.depth for s in profile.queue_samples] == [4, 2, 0]
        assert [s.events_processed for s in profile.queue_samples] == [2, 4, 6]
        assert profile.max_queue_depth() == 4

    def test_hottest_ranks_by_total_wall_time(self):
        profiler = SimulatorProfiler()

        def a():
            pass

        def b():
            pass

        profiler.record(a, 0.5)
        profiler.record(b, 0.1)
        profiler.record(b, 0.1)
        ranked = profiler.snapshot().hottest(2)
        assert [key for key, _ in ranked] == [callback_key(a), callback_key(b)]
        assert ranked[0][1].total_s == 0.5

    def test_profile_is_none_without_a_profiler(self):
        assert Simulator().profile() is None

    def test_cannot_swap_profiler_mid_run(self):
        simulator = Simulator()
        simulator.schedule(
            0.0, lambda: simulator.set_profiler(SimulatorProfiler())
        )
        with pytest.raises(SimulationError):
            simulator.run()

    def test_to_json_is_serializable(self):
        import json

        simulator = Simulator()
        simulator.set_profiler(SimulatorProfiler(queue_sample_interval=1))
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        json.dumps(simulator.profile().to_json())

    def test_profiling_does_not_change_simulation_outcomes(self):
        def run(profiled: bool) -> list[tuple[float, int]]:
            simulator = Simulator()
            if profiled:
                simulator.set_profiler(SimulatorProfiler(queue_sample_interval=1))
            log: list[tuple[float, int]] = []
            for i, delay in enumerate((3.0, 1.0, 2.0, 1.0)):
                simulator.schedule(delay, lambda i=i: log.append((simulator.now, i)))
            simulator.run()
            return log

        assert run(profiled=False) == run(profiled=True)
