"""Metrics registry: instrument semantics and percentile agreement."""

import random

import pytest

from repro.net.stats import percentile, summarize_latencies
from repro.obs import MetricsRegistry


class TestInstruments:
    def test_counter_get_or_create_and_monotonicity(self):
        registry = MetricsRegistry()
        registry.counter("msgs", kind="echo").inc()
        registry.counter("msgs", kind="echo").inc(2)
        assert registry.counter("msgs", kind="echo").value == 3
        # A different label set is a different instrument.
        assert registry.counter("msgs", kind="ready").value == 0
        with pytest.raises(ValueError):
            registry.counter("msgs", kind="echo").inc(-1)

    def test_gauge_set_inc_dec_and_track_max(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4
        gauge.track_max(10)
        gauge.track_max(7)
        assert gauge.value == 10

    def test_type_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_empty_histogram_statistics_raise(self):
        histogram = MetricsRegistry().histogram("empty")
        with pytest.raises(ValueError):
            histogram.mean
        with pytest.raises(ValueError):
            histogram.percentile(50)
        assert histogram.snapshot() == {"name": "empty", "labels": {}, "count": 0}


class TestPercentileAgreement:
    def test_histogram_percentiles_match_net_stats_percentile(self):
        rng = random.Random(42)
        values = [rng.uniform(0, 500) for _ in range(257)]
        histogram = MetricsRegistry().histogram("lat")
        for value in values:
            histogram.observe(value)
        for pct in (0, 5, 37.5, 50, 95, 100):
            assert histogram.percentile(pct) == percentile(values, pct)

    def test_snapshot_matches_latency_summary(self):
        # The run-manifest invariant: a histogram snapshot and the figure
        # scripts' LatencySummary agree bit-for-bit on the same population.
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        histogram = MetricsRegistry().histogram("lat")
        for value in values:
            histogram.observe(value)
        summary = summarize_latencies(values)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == summary.count
        assert snapshot["mean"] == summary.mean
        assert snapshot["p5"] == summary.p5
        assert snapshot["p50"] == summary.p50
        assert snapshot["p95"] == summary.p95


class TestRegistrySnapshot:
    def test_snapshot_is_deterministically_ordered_and_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b", kind="z").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", protocol="hermes").observe(2.0)
        snapshot = registry.snapshot()
        assert [c["name"] for c in snapshot["counters"]] == ["a", "b"]
        assert snapshot["counters"][1]["labels"] == {"kind": "z"}
        assert snapshot["histograms"][0]["labels"] == {"protocol": "hermes"}
        json.dumps(snapshot)  # must be serializable as-is

    def test_find_returns_all_label_sets_of_a_name(self):
        registry = MetricsRegistry()
        registry.counter("msgs", kind="echo")
        registry.counter("msgs", kind="ready")
        registry.counter("other")
        assert len(registry.find("msgs")) == 2
        assert len(registry) == 3


class TestRenderText:
    def test_counter_gets_total_suffix_and_sanitized_name(self):
        registry = MetricsRegistry()
        registry.counter("net.messages.sent", kind="disseminate").inc(3)
        text = registry.render_text()
        assert "# TYPE net_messages_sent counter" in text
        assert 'net_messages_sent_total{kind="disseminate"} 3' in text

    def test_gauge_renders_plain(self):
        registry = MetricsRegistry()
        registry.gauge("mempool.depth").set(7.5)
        assert "mempool_depth 7.5" in registry.render_text()
        assert "# TYPE mempool_depth gauge" in registry.render_text()

    def test_histogram_renders_summary_with_exact_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat.ms", protocol="hermes")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        text = registry.render_text()
        assert "# TYPE lat_ms summary" in text
        assert 'lat_ms_count{protocol="hermes"} 3' in text
        assert 'lat_ms_sum{protocol="hermes"} 6' in text
        # Quantiles are exact (raw values retained), matching percentile().
        assert (
            f'lat_ms{{protocol="hermes",quantile="0.5"}} '
            f"{histogram.percentile(50):g}" in text
        )

    def test_empty_histogram_emits_count_only(self):
        registry = MetricsRegistry()
        registry.histogram("empty.hist")
        text = registry.render_text()
        assert "empty_hist_count 0" in text
        assert "empty_hist_sum" not in text
        assert "quantile" not in text

    def test_empty_registry_renders_empty_string(self):
        assert MetricsRegistry().render_text() == ""

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", tag='say "hi"\\now').inc()
        assert '{tag="say \\"hi\\"\\\\now"}' in registry.render_text()

    def test_output_ordering_matches_snapshot_iteration(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        text = registry.render_text()
        assert text.index("a_total") < text.index("b_total")
