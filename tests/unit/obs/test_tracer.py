"""Tracer: span nesting under simulated time, ring-buffer bounds, JSONL."""

import io
import json

from repro.net.simulator import Simulator
from repro.obs import NULL_SPAN, NullTracer, Tracer


class TestSpansUnderSimulatedTime:
    def test_span_times_come_from_the_simulation_clock(self):
        simulator = Simulator()
        tracer = Tracer()
        tracer.bind_clock(simulator)

        def work():
            with tracer.span("round", overlay=3):
                tracer.event("relay", node=7)

        simulator.schedule(250.0, work)
        simulator.run()
        (span,) = tracer.spans
        assert span.name == "round"
        assert span.start_ms == 250.0
        assert span.end_ms == 250.0
        assert span.duration_ms == 0.0
        assert span.attrs == {"overlay": 3}

    def test_nesting_assigns_parent_ids_and_attributes_events(self):
        tracer = Tracer()  # default clock: constant 0.0
        with tracer.span("outer") as outer:
            tracer.event("a")
            with tracer.span("inner") as inner:
                tracer.event("b")
            tracer.event("c")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        by_name = {e.name: e for e in tracer.events}
        assert by_name["a"].span_id == outer.span_id
        assert by_name["b"].span_id == inner.span_id
        assert by_name["c"].span_id == outer.span_id
        # Children complete before parents.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_span_crossing_scheduled_callbacks_measures_elapsed_sim_time(self):
        simulator = Simulator()
        tracer = Tracer()
        tracer.bind_clock(simulator)
        handle = {}
        simulator.schedule(10.0, lambda: handle.update(span=tracer.span("cross")))
        simulator.schedule(75.0, lambda: handle["span"].end())
        simulator.run()
        assert handle["span"].duration_ms == 65.0

    def test_parent_end_closes_dangling_children(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        tracer.span("inner")  # never explicitly ended
        outer.end()
        assert {s.name for s in tracer.spans} == {"outer", "inner"}
        assert all(s.end_ms is not None for s in tracer.spans)
        assert tracer.current_span is None

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.span("once")
        span.end()
        span.end()
        assert len(tracer.spans) == 1


class TestRingBuffer:
    def test_events_beyond_capacity_drop_oldest_and_are_counted(self):
        tracer = Tracer(max_events=3)
        for i in range(5):
            tracer.event("e", i=i)
        assert tracer.events_dropped == 2
        assert [e.attrs["i"] for e in tracer.events] == [2, 3, 4]

    def test_span_buffer_is_bounded_too(self):
        tracer = Tracer(max_spans=2)
        for i in range(4):
            tracer.span(f"s{i}").end()
        assert tracer.spans_dropped == 2
        assert [s.name for s in tracer.spans] == ["s2", "s3"]


class TestExport:
    def test_jsonl_records_are_valid_and_in_creation_order(self):
        simulator = Simulator()
        tracer = Tracer()
        tracer.bind_clock(simulator)

        def work():
            with tracer.span("s"):
                tracer.event("e", x=1)

        simulator.schedule(5.0, work)
        simulator.run()
        buffer = io.StringIO()
        count = tracer.export_jsonl(buffer)
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert count == len(lines) == 3
        header, *records = lines
        assert header["type"] == "header"
        assert header["v"] == 1
        assert header["schema"] == "repro.trace/1"
        assert header["events"] == header["spans"] == 1
        assert header["events_dropped"] == header["spans_dropped"] == 0
        assert [r["seq"] for r in records] == sorted(r["seq"] for r in records)
        kinds = {r["type"] for r in records}
        assert kinds == {"span", "event"}
        span = next(r for r in records if r["type"] == "span")
        event = next(r for r in records if r["type"] == "event")
        assert span["start_ms"] == span["end_ms"] == 5.0
        assert event["span_id"] == span["span_id"]
        assert event["attrs"] == {"x": 1}

    def test_clear_resets_everything(self):
        tracer = Tracer(max_events=1)
        tracer.event("a")
        tracer.event("b")
        tracer.span("s").end()
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.events_dropped == 0


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        with tracer.span("s", a=1) as span:
            tracer.event("e")
        assert span is NULL_SPAN
        assert span.set(x=2) is NULL_SPAN
        assert len(tracer) == 0
        assert tracer.records() == []


class TestDetachedSpans:
    def test_detached_span_never_joins_the_stack(self):
        tracer = Tracer()
        window = tracer.detached_span("chaos.partition", regions=("frankfurt",))
        with tracer.span("outer") as outer:
            event = tracer.event("inside")
            assert tracer.current_span is outer
        # The event attributes to the stack span, not the detached window.
        assert event.span_id == outer.span_id
        assert window.parent_id is None
        window.end()
        assert window in tracer.spans

    def test_span_event_attributes_to_the_detached_span(self):
        # Regression: tracer.event() inside a detached span attaches to the
        # ambient stack span; Span.event records the owning span id correctly.
        tracer = Tracer()
        window = tracer.detached_span("chaos.partition")
        with tracer.span("ambient") as ambient:
            owned = window.event("partition.open", regions=1)
            stacked = tracer.event("unrelated")
        assert owned.span_id == window.span_id
        assert owned.attrs == {"regions": 1}
        assert stacked.span_id == ambient.span_id
        window.end()

    def test_null_span_event_is_a_noop(self):
        tracer = NullTracer()
        span = tracer.span("s")
        assert span.event("e", x=1) is None
        assert len(tracer) == 0

    def test_ending_detached_span_leaves_stack_spans_open(self):
        simulator = Simulator()
        tracer = Tracer()
        tracer.bind_clock(simulator)
        window = tracer.detached_span("window")
        simulator.schedule(100.0, window.end)
        with tracer.span("outer") as outer:
            simulator.run()
            assert outer.end_ms is None  # unharmed by the detached end
        assert window.end_ms == 100.0
        assert outer.end_ms is not None

    def test_detached_spans_may_overlap_arbitrarily(self):
        simulator = Simulator()
        tracer = Tracer()
        tracer.bind_clock(simulator)
        a = tracer.detached_span("a")
        b = None

        def open_b():
            nonlocal b
            b = tracer.detached_span("b")

        simulator.schedule(10.0, open_b)
        simulator.schedule(20.0, a.end)  # a ends while b is still open
        simulator.run()
        b.end()
        assert (a.start_ms, a.end_ms) == (0.0, 20.0)
        assert (b.start_ms, b.end_ms) == (10.0, 20.0)


class TestListeners:
    def test_listener_sees_every_event_online(self):
        tracer = Tracer()
        seen = []
        tracer.add_listener(seen.append)
        first = tracer.event("one", x=1)
        second = tracer.event("two", x=2)
        assert seen == [first, second]

    def test_remove_listener_stops_delivery_and_tolerates_missing(self):
        tracer = Tracer()
        seen = []
        listener = seen.append
        tracer.add_listener(listener)
        tracer.event("before")
        tracer.remove_listener(listener)
        tracer.event("after")
        assert [e.name for e in seen] == ["before"]
        tracer.remove_listener(listener)  # already removed: ignored
