"""Manifests: JSON round-trip of build_manifest, run_manifest provenance."""

import json

from repro.net.simulator import Simulator
from repro.obs import Observability, build_manifest, run_manifest, write_manifest


def _observed_run() -> Observability:
    obs = Observability.enabled(profile=True)
    simulator = Simulator()
    obs.attach(simulator)
    simulator.schedule(5.0, lambda: obs.event("tick"))
    obs.metrics.counter("txs").inc(3)
    simulator.run()
    return obs


class TestBuildManifest:
    def test_manifest_round_trips_through_json(self, tmp_path):
        obs = _observed_run()
        path = tmp_path / "run.manifest.json"
        written = write_manifest(str(path), obs, meta={"figure": "3a", "seed": 7})
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == written
        assert loaded["schema"] == "repro.obs/1"
        assert loaded["meta"] == {"figure": "3a", "seed": 7}
        assert loaded["trace"]["events"] == 1
        assert loaded["trace"]["events_dropped"] == 0
        counters = {c["name"]: c for c in loaded["metrics"]["counters"]}
        assert counters["txs"]["value"] == 3

    def test_manifest_matches_build_manifest(self, tmp_path):
        obs = _observed_run()
        direct = build_manifest(obs, meta={"x": 1})
        written = write_manifest(str(tmp_path / "m.json"), obs, meta={"x": 1})
        # Both views of the same run agree except for the wall-clock profile.
        direct.pop("profile")
        written.pop("profile")
        assert direct == written


class TestRunManifest:
    def test_stamp_carries_provenance_and_extras(self):
        stamp = run_manifest(seed=13, num_nodes=200)
        assert stamp["seed"] == 13
        assert stamp["num_nodes"] == 200
        assert isinstance(stamp["python"], str) and stamp["python"].count(".") == 2
        assert isinstance(stamp["platform"], str) and stamp["platform"]
        # In this repo's checkout the git sha resolves; the field may be
        # None only outside a git working tree.
        assert stamp["git_sha"] is None or len(stamp["git_sha"]) == 40

    def test_stamp_is_json_serializable(self):
        stamp = run_manifest(tag="bench")
        assert json.loads(json.dumps(stamp)) == stamp
