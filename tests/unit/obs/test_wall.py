"""Wall-clock primitives: origin-anchored clocks, stopwatches, phase timers."""

from repro.obs.wall import PhaseTimer, Stopwatch, WallClock


class FakeClock:
    """A controllable monotonic source for deterministic timing tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = start

    def advance(self, seconds: float) -> None:
        self.t += seconds

    def __call__(self) -> float:
        return self.t


class TestWallClock:
    def test_now_starts_at_zero_and_advances(self):
        source = FakeClock(100.0)
        clock = WallClock(clock=source)
        assert clock.now() == 0.0
        source.advance(2.5)
        assert clock.now() == 2.5

    def test_child_clock_joins_parent_timebase(self):
        source = FakeClock(100.0)
        parent = WallClock(clock=source)
        source.advance(3.0)
        # A child constructed later from the parent's raw origin reads the
        # same timestamps — the cross-process contract the pool initializer
        # relies on.
        child = WallClock(origin=parent.origin, clock=source)
        assert child.now() == parent.now() == 3.0

    def test_now_is_clamped_non_negative(self):
        source = FakeClock(10.0)
        clock = WallClock(origin=20.0, clock=source)
        assert clock.now() == 0.0

    def test_raw_exposes_the_underlying_clock(self):
        source = FakeClock(42.0)
        assert WallClock(clock=source).raw() == 42.0


class TestStopwatch:
    def test_laps_are_deltas_between_calls(self):
        source = FakeClock()
        watch = Stopwatch(clock=source)
        source.advance(1.0)
        assert watch.lap() == 1.0
        source.advance(0.25)
        assert watch.lap() == 0.25

    def test_backward_clock_clamps_to_zero(self):
        source = FakeClock(5.0)
        watch = Stopwatch(clock=source)
        source.t = 4.0
        assert watch.lap() == 0.0


class TestPhaseTimer:
    def test_phases_accumulate_and_total(self):
        source = FakeClock()
        timer = PhaseTimer(clock=source)
        with timer.phase("a"):
            source.advance(1.0)
        with timer.phase("b"):
            source.advance(2.0)
        with timer.phase("a"):
            source.advance(0.5)
        assert timer.durations["a"] == 1.5
        assert timer.durations["b"] == 2.0
        assert timer.total() == 3.5

    def test_phase_records_even_when_body_raises(self):
        source = FakeClock()
        timer = PhaseTimer(clock=source)
        try:
            with timer.phase("boom"):
                source.advance(1.0)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timer.durations["boom"] == 1.0

    def test_add_merges_external_measurements(self):
        timer = PhaseTimer()
        timer.add("spawn", 0.4)
        timer.add("spawn", 0.1)
        assert abs(timer.durations["spawn"] - 0.5) < 1e-12
