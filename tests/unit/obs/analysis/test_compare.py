"""Bench records, committed baselines and the regression verdict."""

import pytest

from repro.errors import TraceReadError
from repro.obs.analysis import (
    Baseline,
    BaselineMetric,
    bench_record,
    compare,
    load_baseline,
    load_bench_record,
    update_baseline,
    write_baseline,
    write_bench_record,
)


class TestBenchRecord:
    def test_record_round_trips_with_manifest_stamp(self, tmp_path):
        record = bench_record(
            "demo", {"latency_ms": 12.5, "count": 3}, meta={"note": "x"}, seed=7
        )
        assert record["schema"] == "repro.bench/1"
        assert record["manifest"]["seed"] == 7
        assert "python" in record["manifest"]
        path = tmp_path / "BENCH_demo.json"
        write_bench_record(path, record)
        assert load_bench_record(path) == record

    def test_non_numeric_metric_is_rejected(self):
        with pytest.raises(TraceReadError, match="not numeric"):
            bench_record("demo", {"mode": "fast"})

    def test_foreign_schema_is_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "something/2"}')
        with pytest.raises(TraceReadError, match="not a repro.bench/1"):
            load_bench_record(path)


class TestGateSemantics:
    BASE = Baseline(
        name="demo",
        metrics={
            "latency_ms": BaselineMetric(value=100.0, tolerance=0.10, direction="lower"),
            "goodput": BaselineMetric(value=50.0, tolerance=0.10, direction="higher"),
            "drops": BaselineMetric(value=0.0, tolerance=0.50, direction="lower"),
            "wall_s": BaselineMetric(value=3.0, tolerance=0.0, direction="info"),
        },
    )

    def _record(self, **metrics):
        return {"schema": "repro.bench/1", "name": "demo", "metrics": metrics}

    def test_within_tolerance_passes(self):
        result = compare(
            self._record(latency_ms=109.9, goodput=45.1, drops=0.0, wall_s=99.0),
            self.BASE,
        )
        assert result.ok

    def test_lower_direction_flags_increase_beyond_tolerance(self):
        result = compare(
            self._record(latency_ms=111.0, goodput=50.0, drops=0.0, wall_s=3.0),
            self.BASE,
        )
        assert [c.metric for c in result.regressions] == ["latency_ms"]

    def test_higher_direction_flags_decrease_beyond_tolerance(self):
        result = compare(
            self._record(latency_ms=100.0, goodput=44.9, drops=0.0, wall_s=3.0),
            self.BASE,
        )
        assert [c.metric for c in result.regressions] == ["goodput"]

    def test_zero_lower_baseline_means_must_stay_zero(self):
        result = compare(
            self._record(latency_ms=100.0, goodput=50.0, drops=0.001, wall_s=3.0),
            self.BASE,
        )
        (regression,) = result.regressions
        assert regression.metric == "drops"
        assert regression.note == "must stay zero"

    def test_info_metric_never_gates(self):
        result = compare(
            self._record(latency_ms=100.0, goodput=50.0, drops=0.0, wall_s=1e9),
            self.BASE,
        )
        assert result.ok

    def test_missing_gated_metric_is_a_regression(self):
        result = compare(self._record(goodput=50.0, drops=0.0, wall_s=3.0), self.BASE)
        (regression,) = result.regressions
        assert regression.metric == "latency_ms"
        assert regression.current is None

    def test_new_record_metric_is_reported_ungated(self):
        result = compare(
            self._record(
                latency_ms=100.0, goodput=50.0, drops=0.0, wall_s=3.0, extra=1.0
            ),
            self.BASE,
        )
        assert result.ok
        extra = next(c for c in result.comparisons if c.metric == "extra")
        assert extra.baseline is None and not extra.regressed


class TestBaselineFiles:
    def test_baseline_round_trips(self, tmp_path):
        path = tmp_path / "demo.json"
        write_baseline(path, TestGateSemantics.BASE)
        loaded = load_baseline(path)
        assert loaded.metrics == TestGateSemantics.BASE.metrics

    def test_unknown_direction_is_rejected(self):
        with pytest.raises(TraceReadError, match="unknown baseline direction"):
            BaselineMetric(value=1.0, tolerance=0.0, direction="sideways")

    def test_update_refreshes_values_only(self):
        record = {
            "schema": "repro.bench/1",
            "name": "demo",
            "metrics": {"latency_ms": 120.0, "brand_new": 9.0},
        }
        updated = update_baseline(TestGateSemantics.BASE, record)
        assert updated.metrics["latency_ms"].value == 120.0
        assert updated.metrics["latency_ms"].tolerance == 0.10
        assert updated.metrics["latency_ms"].direction == "lower"
        # Untouched metric keeps its old value; new metrics are not adopted.
        assert updated.metrics["goodput"].value == 50.0
        assert "brand_new" not in updated.metrics
