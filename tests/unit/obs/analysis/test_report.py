"""Run-report rendering: sections appear, HTML is self-contained."""

import json

from repro.obs.analysis import (
    Baseline,
    BaselineMetric,
    build_trees,
    compare,
    critical_paths,
    read_trace,
    render_html,
    render_report,
)


def _trace():
    records = [
        {
            "type": "header",
            "v": 1,
            "schema": "repro.trace/1",
            "events": 0,
            "spans": 0,
            "events_dropped": 0,
            "spans_dropped": 0,
        },
        {
            "type": "event",
            "seq": 0,
            "time_ms": 0.0,
            "name": "tx.dispatch",
            "span_id": None,
            "attrs": {"tx_id": 1, "origin": 0, "overlay_id": 2},
        },
        {
            "type": "event",
            "seq": 1,
            "time_ms": 7.0,
            "name": "tx.deliver",
            "span_id": None,
            "attrs": {"tx_id": 1, "node": 1, "sender": 0},
        },
    ]
    return read_trace([json.dumps(r) for r in records])


def test_report_contains_all_requested_sections():
    trace = _trace()
    trees = build_trees(trace)
    paths = critical_paths(trees, trace)
    chaos = {
        "scenario": "partition_snap",
        "protocol": "hermes",
        "seed": 3,
        "num_nodes": 20,
        "f": 1,
        "passed": False,
        "fault_log": [{"at_ms": 100.0, "kind": "partition", "summary": "split"}],
        "invariants": {
            "delivery": {"violations": [{"at_ms": 240.0, "detail": "tx 4 missing"}]}
        },
    }
    baseline = Baseline(
        name="demo", metrics={"x": BaselineMetric(value=1.0, tolerance=0.0)}
    )
    bench = [
        compare({"schema": "repro.bench/1", "name": "demo", "metrics": {"x": 2.0}}, baseline)
    ]
    adversary = {
        "protocol": "mercury",
        "num_nodes": 40,
        "fraction": 0.2,
        "trials": [
            {
                "strategy": "sandwich",
                "attacker_won": True,
                "victim_censored": False,
                "gross": 100.0,
                "net": 98.0,
                "gamma": 0.5,
                "inversion_rate": 0.1,
                "violations": 3,
            },
            {
                "strategy": "sandwich",
                "attacker_won": False,
                "victim_censored": True,
                "gross": 0.0,
                "net": -2.0,
                "gamma": 0.7,
                "inversion_rate": 0.3,
                "violations": 0,
            },
        ],
    }
    markdown = render_report(
        title="Tiny run",
        manifest={"git_sha": "abc123", "python": "3.12"},
        trace=trace,
        trees=trees,
        paths=paths,
        chaos=chaos,
        adversary=adversary,
        bench=bench,
    )
    assert "# Tiny run" in markdown
    assert "## Manifest" in markdown and "`abc123`" in markdown
    assert "## Dissemination trees" in markdown
    assert "## Overlay usage" in markdown
    assert "## Critical-path latency attribution" in markdown
    assert "## Fault & violation timeline" in markdown
    assert "partition: split" in markdown
    assert "delivery: tx 4 missing" in markdown
    assert "**FAILED**" in markdown
    assert "## Adversary zoo" in markdown
    assert "`mercury`, N=40, 20% malicious" in markdown
    # 2 sandwich trials: 50% success, 50% censored, means over both.
    assert "| sandwich | 2 | 50% | 50% | 50.0 | +48.0 | 0.60 | 0.200 | 3 |" in markdown
    assert "## Benchmark comparison" in markdown
    assert "**REGRESSED**" in markdown


def test_profile_section_from_live_snapshot():
    from repro.obs.profiler import SimulatorProfiler

    profiler = SimulatorProfiler(queue_sample_interval=1, clock=lambda: 0.0)
    profiler.record(lambda: None, 0.25)
    profiler.after_event(1.0, depth=12, events_processed=1)
    text = render_report(profile=profiler.snapshot())
    assert "## Simulator profile" in text
    assert "max queue depth 12" in text
    assert "<lambda>" in text  # hottest-callbacks table row


def test_profile_section_from_manifest_dict():
    # The manifest's JSON shape (profile.to_json()) renders identically.
    profile = {
        "events": 100,
        "wall_s": 2.0,
        "callbacks": {
            "Network.send": {"calls": 60, "total_s": 1.5, "max_s": 0.1},
            "Node.deliver": {"calls": 40, "total_s": 0.5, "max_s": 0.05},
        },
        "queue_samples": [{"time_ms": 1.0, "depth": 7, "events_processed": 50}],
    }
    text = render_report(profile=profile)
    assert "max queue depth 7" in text
    assert "`Network.send`" in text
    # Hottest first: Network.send (1.5s) before Node.deliver (0.5s).
    assert text.index("Network.send") < text.index("Node.deliver")


def test_adversary_section_without_trials():
    markdown = render_report(title="t", adversary={"protocol": "hermes", "trials": []})
    assert "## Adversary zoo" in markdown
    assert "*(no trials recorded)*" in markdown


def test_html_wrapper_escapes_and_embeds_the_markdown():
    html_text = render_html("# Hello <world>", title="A & B")
    assert html_text.startswith("<!doctype html>")
    assert "&lt;world&gt;" in html_text
    assert "A &amp; B" in html_text


def test_empty_report_is_still_valid_markdown():
    markdown = render_report(title="Nothing")
    assert markdown == "# Nothing\n"
