"""Bench history: ledger round-trips, trajectories, direction-aware flags."""

import json

import pytest

from repro.errors import TraceReadError
from repro.obs.analysis import bench_record
from repro.obs.analysis.baseline import Baseline, BaselineMetric
from repro.obs.analysis.history import (
    append_history,
    build_history_report,
    load_history,
    render_history_report,
    sparkline,
    trajectories,
)


def _record(name: str, metrics: dict, sha: str = "abc123") -> dict:
    doc = bench_record(name, metrics)
    doc["manifest"]["git_sha"] = sha
    return doc


class TestSparkline:
    def test_scales_to_the_ramp(self):
        assert sparkline([0.0, 0.5, 1.0]) == "▁▅█"

    def test_constant_series_is_mid_ramp(self):
        assert sparkline([3.0, 3.0, 3.0]) == "▄▄▄"

    def test_empty_is_empty(self):
        assert sparkline([]) == ""


class TestLedger:
    def test_append_and_load_round_trip(self, tmp_path):
        ledger = tmp_path / "history"
        append_history(ledger, _record("bench_a", {"m": 1.0}))
        append_history(ledger, _record("bench_a", {"m": 2.0}))
        append_history(ledger, _record("bench_b", {"x": 5.0}))
        history = load_history(ledger)
        assert sorted(history) == ["bench_a", "bench_b"]
        assert [r["metrics"]["m"] for r in history["bench_a"]] == [1.0, 2.0]

    def test_ledger_lines_are_one_line_json(self, tmp_path):
        ledger = tmp_path / "history"
        path = append_history(ledger, _record("bench_a", {"m": 1.0}))
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "bench_a"

    def test_missing_directory_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "nope") == {}

    def test_torn_tail_is_dropped(self, tmp_path):
        ledger = tmp_path / "history"
        path = append_history(ledger, _record("bench_a", {"m": 1.0}))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"name": "bench_a", "metr')  # interrupted append
        history = load_history(ledger)
        assert len(history["bench_a"]) == 1

    def test_malformed_middle_line_raises(self, tmp_path):
        ledger = tmp_path / "history"
        path = append_history(ledger, _record("bench_a", {"m": 1.0}))
        with path.open("a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(
                json.dumps(_record("bench_a", {"m": 2.0}), sort_keys=True) + "\n"
            )
        with pytest.raises(TraceReadError):
            load_history(ledger)

    def test_foreign_document_rejected_on_append(self, tmp_path):
        with pytest.raises(TraceReadError):
            append_history(tmp_path, {"schema": "other/1", "name": "x"})


class TestTrajectories:
    def test_values_and_shas_in_run_order(self):
        series = [
            _record("b", {"lat": 10.0}, sha="sha-one"),
            _record("b", {"lat": 12.0}, sha="sha-two"),
        ]
        (trajectory,) = trajectories(series)
        assert trajectory.values == [10.0, 12.0]
        assert trajectory.shas == ["sha-one", "sha-two"]
        assert trajectory.direction == "info"
        assert trajectory.step_delta == 2.0

    def test_direction_and_tolerance_come_from_baseline(self):
        baseline = Baseline(
            name="b",
            metrics={"lat": BaselineMetric(value=10.0, tolerance=0.1, direction="lower")},
        )
        (trajectory,) = trajectories([_record("b", {"lat": 10.0})], baseline=baseline)
        assert trajectory.direction == "lower"
        assert trajectory.tolerance == 0.1

    def test_step_anomaly_is_direction_aware(self):
        baseline = Baseline(
            name="b",
            metrics={"lat": BaselineMetric(value=10.0, tolerance=0.1, direction="lower")},
        )
        worse = trajectories(
            [_record("b", {"lat": 10.0}), _record("b", {"lat": 12.0})],
            baseline=baseline,
        )[0]
        assert worse.step_anomaly  # lower-is-better moved up 20% > 10% tol
        better = trajectories(
            [_record("b", {"lat": 12.0}), _record("b", {"lat": 10.0})],
            baseline=baseline,
        )[0]
        assert not better.step_anomaly  # moving the right way never flags

    def test_within_tolerance_step_does_not_flag(self):
        baseline = Baseline(
            name="b",
            metrics={"lat": BaselineMetric(value=10.0, tolerance=0.5, direction="lower")},
        )
        trajectory = trajectories(
            [_record("b", {"lat": 10.0}), _record("b", {"lat": 12.0})],
            baseline=baseline,
        )[0]
        assert not trajectory.step_anomaly

    def test_info_metrics_never_flag(self):
        trajectory = trajectories(
            [_record("b", {"wall": 1.0}), _record("b", {"wall": 100.0})]
        )[0]
        assert not trajectory.step_anomaly
        assert not trajectory.anomalous

    def test_baseline_regression_marks_anomalous(self):
        baseline = Baseline(
            name="b",
            metrics={
                "tput": BaselineMetric(value=100.0, tolerance=0.1, direction="higher")
            },
        )
        (trajectory,) = trajectories([_record("b", {"tput": 50.0})], baseline=baseline)
        assert trajectory.baseline_verdict is not None
        assert trajectory.baseline_verdict.regressed
        assert trajectory.anomalous


class TestHistoryReport:
    def test_report_folds_ledger_with_baselines(self, tmp_path):
        ledger = tmp_path / "history"
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        baseline = Baseline(
            name="bench_a",
            metrics={"lat": BaselineMetric(value=10.0, tolerance=0.1, direction="lower")},
        )
        (baselines / "bench_a.json").write_text(
            json.dumps(baseline.to_json()), encoding="utf-8"
        )
        append_history(ledger, _record("bench_a", {"lat": 10.0}))
        append_history(ledger, _record("bench_a", {"lat": 30.0}))
        report = build_history_report(load_history(ledger), baselines_dir=baselines)
        assert not report.ok
        assert [t.metric for t in report.anomalies] == ["lat"]
        text = render_history_report(report)
        assert "REGRESSION" in text
        assert "`▁█`" in text  # the sparkline of [10, 30]

    def test_clean_history_renders_no_anomalies(self, tmp_path):
        ledger = tmp_path / "history"
        append_history(ledger, _record("bench_a", {"lat": 10.0}))
        report = build_history_report(load_history(ledger))
        assert report.ok
        assert "No direction-aware anomalies." in render_history_report(report)

    def test_empty_ledger_renders_placeholder(self):
        text = render_history_report(build_history_report({}))
        assert "ledger is empty" in text
