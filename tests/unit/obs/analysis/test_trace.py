"""Trace reading: header versioning, integrity, tree reconstruction."""

import io
import json

import pytest

from repro.errors import TraceReadError
from repro.obs import Tracer
from repro.obs.analysis import build_trees, read_trace, stream_latencies


def _lines(*records: dict) -> list[str]:
    return [json.dumps(r) for r in records]


def _header(**overrides) -> dict:
    header = {
        "type": "header",
        "v": 1,
        "schema": "repro.trace/1",
        "events": 0,
        "spans": 0,
        "events_dropped": 0,
        "spans_dropped": 0,
    }
    header.update(overrides)
    return header


def _event(seq, time_ms, name, span_id=None, **attrs) -> dict:
    return {
        "type": "event",
        "seq": seq,
        "time_ms": time_ms,
        "name": name,
        "span_id": span_id,
        "attrs": attrs,
    }


class TestVersioning:
    def test_round_trips_a_real_tracer_export(self):
        tracer = Tracer()
        with tracer.span("fig3a.protocol", protocol="hermes"):
            tracer.event("tx.submit", tx_id=0, origin=3)
        buffer = io.StringIO()
        tracer.export_jsonl(buffer)
        buffer.seek(0)
        trace = read_trace(buffer)
        assert trace.header.v == 1
        assert not trace.header.lossy
        assert trace.validate() == []
        (event,) = trace.events_named("tx.submit")
        assert trace.protocol_of(event) == "hermes"

    def test_missing_header_is_rejected(self):
        with pytest.raises(TraceReadError, match="first line must be"):
            read_trace(_lines(_event(0, 0.0, "x")))

    def test_unknown_version_is_rejected_naming_the_supported_one(self):
        with pytest.raises(TraceReadError, match=r"v=99.*understands\s+v=1"):
            read_trace(_lines(_header(v=99)))

    def test_empty_input_is_rejected(self):
        with pytest.raises(TraceReadError, match="missing header"):
            read_trace([])

    def test_malformed_json_is_rejected_with_line_number(self):
        with pytest.raises(TraceReadError, match="line 2"):
            read_trace(_lines(_header()) + ["{not json"])

    def test_unknown_record_type_is_rejected(self):
        with pytest.raises(TraceReadError, match="unknown record type 'bogus'"):
            read_trace(_lines(_header(), {"type": "bogus"}))

    def test_lossy_header_suppresses_dangling_reference_problems(self):
        strict = read_trace(_lines(_header(), _event(0, 0.0, "e", span_id=42)))
        assert strict.validate()  # span 42 was never exported
        lossy = read_trace(
            _lines(_header(spans_dropped=1), _event(0, 0.0, "e", span_id=42))
        )
        assert lossy.validate() == []


class TestTreeReconstruction:
    def _delivery_trace(self):
        # origin 0 -> 1 -> 2, plus 0 -> 3; a duplicate arrival at 2 later.
        return read_trace(
            _lines(
                _header(),
                _event(0, 0.0, "tx.submit", tx_id=7, origin=0),
                _event(1, 1.0, "tx.dispatch", tx_id=7, origin=0, overlay_id=4),
                _event(2, 10.0, "tx.deliver", tx_id=7, node=1, sender=0),
                _event(3, 12.0, "tx.deliver", tx_id=7, node=3, sender=0),
                _event(4, 20.0, "tx.deliver", tx_id=7, node=2, sender=1),
                _event(5, 25.0, "tx.deliver", tx_id=7, node=2, sender=3),
            )
        )

    def test_tree_edges_follow_first_delivery(self):
        (tree,) = build_trees(self._delivery_trace())
        assert tree.origin == 0
        assert tree.overlay_id == 4
        assert tree.node_count == 4
        assert tree.orphans == []
        assert tree.parent_of(2) == 1  # the 25.0ms arrival from 3 was a dup
        assert tree.path_to(2) == [0, 1, 2]
        assert tree.max_depth() == 2
        assert tree.last_delivery().node == 2

    def test_delivery_from_unreachable_sender_is_an_orphan(self):
        trace = read_trace(
            _lines(
                _header(),
                _event(0, 0.0, "tx.dispatch", tx_id=1, origin=0),
                _event(1, 5.0, "tx.deliver", tx_id=1, node=2, sender=9),
            )
        )
        (tree,) = build_trees(trace)
        assert tree.deliveries == {}
        assert len(tree.orphans) == 1
        assert tree.orphans[0].sender == 9

    def test_trees_are_keyed_by_protocol_and_tx_id(self):
        # Two protocols reuse tx_id 0; the events sit in differently
        # labelled spans, so two distinct trees come back.
        records = [_header(spans=2, events=2)]
        for span_id, protocol in ((1, "hermes"), (2, "lzero")):
            records.append(
                {
                    "type": "span",
                    "seq": span_id,
                    "span_id": span_id,
                    "parent_id": None,
                    "name": "fig3a.protocol",
                    "start_ms": 0.0,
                    "end_ms": 100.0,
                    "attrs": {"protocol": protocol},
                }
            )
            records.append(
                _event(10 + span_id, 1.0, "tx.dispatch", span_id=span_id, tx_id=0, origin=span_id)
            )
        trees = build_trees(read_trace(_lines(*records)))
        assert [(t.protocol, t.tx_id, t.origin) for t in trees] == [
            ("hermes", 0, 1),
            ("lzero", 0, 2),
        ]


class TestStreamLatencies:
    def _span(self, span_id, protocol=None):
        attrs = {"protocol": protocol} if protocol else {}
        return {
            "type": "span",
            "seq": span_id,
            "span_id": span_id,
            "parent_id": None,
            "name": "fig.protocol",
            "start_ms": 0.0,
            "end_ms": 1000.0,
            "attrs": attrs,
        }

    def test_folds_dispatch_deliver_pairs_per_protocol(self):
        records = [_header(), self._span(1, "hermes"), self._span(2, "lzero")]
        for span_id in (1, 2):
            records.append(
                _event(10 * span_id, 0.0, "tx.dispatch", span_id=span_id, tx_id=0)
            )
            for node, t in ((1, 5.0), (2, 9.0)):
                records.append(
                    _event(
                        10 * span_id + node,
                        t * span_id,  # lzero latencies are doubled
                        "tx.deliver",
                        span_id=span_id,
                        tx_id=0,
                        node=node,
                        sender=0,
                    )
                )
        result = stream_latencies(_lines(*records))
        assert result.deliveries == 4 and result.skipped == 0
        assert result.sketches["hermes"].count == 2
        assert result.sketches["hermes"].max == 9.0
        assert result.sketches["lzero"].max == 18.0
        assert result.sketches["hermes"].rank_error() == 0.0

    def test_matches_a_real_tracer_export(self):
        tracer = Tracer()
        with tracer.span("fig.protocol", protocol="hermes"):
            for tx_id in range(20):
                tracer.event("tx.dispatch", tx_id=tx_id, origin=0)
                tracer.event("tx.deliver", tx_id=tx_id, node=1, sender=0)
        buffer = io.StringIO()
        tracer.export_jsonl(buffer)
        buffer.seek(0)
        result = stream_latencies(buffer)
        assert result.deliveries == 20
        assert result.skipped == 0
        assert result.sketches["hermes"].count == 20

    def test_delivery_without_dispatch_is_skipped_not_fatal(self):
        result = stream_latencies(
            _lines(
                _header(),
                _event(0, 5.0, "tx.deliver", tx_id=7, node=1, sender=0),
            )
        )
        assert result.deliveries == 0 and result.skipped == 1

    def test_inflight_cap_evicts_oldest_and_accounts_for_it(self):
        records = [_header()]
        for tx_id in range(6):
            records.append(_event(tx_id, float(tx_id), "tx.dispatch", tx_id=tx_id))
        for tx_id in range(6):
            records.append(
                _event(10 + tx_id, 100.0, "tx.deliver", tx_id=tx_id, node=1, sender=0)
            )
        result = stream_latencies(_lines(*records), max_inflight=2)
        # Dispatches 0-3 were evicted; their deliveries are also unmatched.
        assert result.deliveries == 2
        assert result.skipped == 4 + 4
        assert result.sketches[None].count == 2

    def test_same_validation_as_read_trace(self):
        with pytest.raises(TraceReadError, match="missing header"):
            stream_latencies([])
        with pytest.raises(TraceReadError, match="line 2"):
            stream_latencies(_lines(_header()) + ["{not json"])
        with pytest.raises(TraceReadError, match="unknown record type"):
            stream_latencies(_lines(_header(), {"type": "bogus"}))
        with pytest.raises(TraceReadError, match="malformed event"):
            stream_latencies(_lines(_header(), _event(0, 0.0, "tx.dispatch")))
