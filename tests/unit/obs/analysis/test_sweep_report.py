"""Sweep overhead attribution: phase totals, utilization, Amdahl bound."""

import pytest

from repro.obs.analysis.sweep_report import (
    analysis_to_json,
    analyze_timeline,
    render_sweep_report,
)
from repro.runner import SWEEPTRACE_SCHEMA, SweepTimeline


def _timeline() -> SweepTimeline:
    """Two workers, four runs with hand-picked phase durations.

    Geometry (seconds on the shared timebase): workers ready at t=0.5 after
    0.4s spawn + 0.1s env build; each run spans submit=0 → stored, with
    1.0s execute and small fixed overheads.
    """

    header = {
        "schema": SWEEPTRACE_SCHEMA,
        "v": 1,
        "kind": "header",
        "jobs": 2,
        "cells": 4,
        "resumed": 0,
    }
    workers = [
        {
            "kind": "worker",
            "worker": pid,
            "t_spawned": 0.4,
            "t_ready": 0.5,
            "phases": {"spawn": 0.4, "env_build": 0.1},
        }
        for pid in (101, 102)
    ]
    runs = []
    for i in range(4):
        worker = 101 if i % 2 == 0 else 102
        t_start = 0.5 + (i // 2) * 1.1
        runs.append(
            {
                "kind": "run",
                "spec_hash": f"h{i}",
                "task": "selftest.echo",
                "status": "ok",
                "tags": [],
                "worker": worker,
                "attempt": 1,
                "t_submit": 0.0,
                "t_start": t_start,
                "t_end": t_start + 1.05,
                "t_stored": t_start + 1.1,
                "phases": {
                    "enqueue_wait": t_start,
                    "deserialize": 0.01,
                    "execute": 1.0,
                    "serialize": 0.04,
                    "store_write": 0.05,
                },
            }
        )
    summary = {
        "kind": "summary",
        "wall_s": 2.7,
        "executed": 4,
        "skipped": 0,
        "failed": 0,
        "cells": 4,
        "jobs": 2,
    }
    return SweepTimeline(header=header, runs=runs, workers=workers, summary=summary)


class TestAnalyzeTimeline:
    def test_phase_totals_sum_measured_durations(self):
        analysis = analyze_timeline(_timeline())
        assert analysis.executed == 4
        assert analysis.phase_totals["execute"] == pytest.approx(4.0)
        assert analysis.phase_totals["deserialize"] == pytest.approx(0.04)
        assert analysis.phase_totals["spawn"] == pytest.approx(0.8)
        assert analysis.phase_totals["env_build"] == pytest.approx(0.2)

    def test_attribution_covers_at_least_ninety_percent(self):
        # The acceptance bar for the telemetry layer: named phases account
        # for >= 90% of measured wall time.
        analysis = analyze_timeline(_timeline())
        assert analysis.attributed_fraction >= 0.90

    def test_worker_accounting(self):
        analysis = analyze_timeline(_timeline())
        assert [w.worker for w in analysis.workers] == [101, 102]
        for usage in analysis.workers:
            assert usage.runs == 2
            assert usage.busy_s == pytest.approx(2.1)  # 2 × (0.01 + 1.0 + 0.04)
            # Busy 2.1s of a 2.2s post-ready window.
            assert usage.utilization(2.7) == pytest.approx(2.1 / 2.2)

    def test_amdahl_bound_formula(self):
        analysis = analyze_timeline(_timeline())
        work = 4.0
        per_run = 0.04 + 0.16 + 0.2  # deserialize + serialize + store_write
        per_worker = 0.5  # spawn + env_build, mean per worker
        expected = work / (per_worker + (work + per_run) / 2)
        assert analysis.achievable_speedup() == pytest.approx(expected)
        # More workers amortize nothing per-worker, so the bound saturates.
        assert analysis.achievable_speedup(8) > analysis.achievable_speedup(2)

    def test_crash_records_are_tagged_but_not_attributed(self):
        timeline = _timeline()
        timeline.runs.append(
            {
                "kind": "run",
                "spec_hash": "hx",
                "status": "crash",
                "tags": ["crash", "retry"],
                "worker": 0,
                "phases": {},
            }
        )
        analysis = analyze_timeline(timeline)
        assert analysis.executed == 4  # crash records are not completed runs
        assert analysis.tag_counts == {"crash": 1, "retry": 1}


class TestRenderSweepReport:
    def test_report_contains_all_sections(self):
        text = render_sweep_report(_timeline())
        assert "# Sweep overhead attribution" in text
        assert "## Phase attribution" in text
        assert "## Workers" in text
        assert "## Achievable speedup (Amdahl bound)" in text
        assert "Attribution coverage" in text
        assert "enqueue-wait" in text

    def test_report_accepts_precomputed_analysis(self):
        analysis = analyze_timeline(_timeline())
        assert render_sweep_report(analysis) == render_sweep_report(_timeline())

    def test_gantt_bars_render_for_each_worker(self):
        text = render_sweep_report(_timeline())
        # One activity strip per worker row, busy segments visible.
        assert text.count("█") >= 2

    def test_sub_unity_bound_gets_the_diagnosis_note(self):
        timeline = _timeline()
        for run in timeline.runs:
            run["phases"]["execute"] = 0.001  # tiny work → pool cannot win
        text = render_sweep_report(timeline)
        assert "cannot beat" in text


class TestAnalysisToJson:
    def test_json_mirror_is_complete_and_serializable(self):
        import json

        doc = analysis_to_json(analyze_timeline(_timeline()))
        json.dumps(doc)
        assert doc["jobs"] == 2
        assert doc["executed"] == 4
        assert doc["attributed_fraction"] >= 0.90
        assert len(doc["workers"]) == 2
        assert doc["achievable_speedup"] > 0
