"""Critical-path attribution: the exact-sum identity and hop matching."""

import json

from repro.obs.analysis import aggregate, build_trees, critical_paths, read_trace


def _lines(*records: dict) -> list[str]:
    return [json.dumps(r) for r in records]


def _header() -> dict:
    return {
        "type": "header",
        "v": 1,
        "schema": "repro.trace/1",
        "events": 0,
        "spans": 0,
        "events_dropped": 0,
        "spans_dropped": 0,
    }


def _event(seq, time_ms, name, **attrs) -> dict:
    return {
        "type": "event",
        "seq": seq,
        "time_ms": time_ms,
        "name": name,
        "span_id": None,
        "attrs": attrs,
    }


def _send(seq, time_ms, src, dst, tx_id, queue, ser, link, proc):
    delay = queue + ser + link + proc
    return _event(
        seq,
        time_ms,
        "net.send",
        src=src,
        dst=dst,
        tx_id=tx_id,
        queue_ms=queue,
        serialization_ms=ser,
        link_ms=link,
        proc_ms=proc,
        delay_ms=delay,
        deliver_ms=time_ms + delay,
    )


class TestAttribution:
    def test_components_sum_exactly_to_end_to_end(self):
        # 0 dispatches at 1.0; holds 2ms, sends to 1 (arrives 10.0);
        # 1 holds 3ms, sends to 2 (arrives 20.5).
        trace = read_trace(
            _lines(
                _header(),
                _event(0, 0.0, "tx.submit", tx_id=5, origin=0),
                _event(1, 1.0, "tx.dispatch", tx_id=5, origin=0),
                _send(2, 3.0, 0, 1, 5, queue=1.0, ser=0.5, link=5.0, proc=0.5),
                _event(3, 10.0, "tx.deliver", tx_id=5, node=1, sender=0),
                _send(4, 13.0, 1, 2, 5, queue=0.0, ser=1.5, link=5.0, proc=1.0),
                _event(5, 20.5, "tx.deliver", tx_id=5, node=2, sender=1),
            )
        )
        trees = build_trees(trace)
        (path,) = critical_paths(trees, trace)
        assert path.path == [0, 1, 2]
        assert path.trs_wait_ms == 1.0  # submit 0.0 -> dispatch 1.0
        assert path.e2e_ms == 19.5  # 20.5 - dispatch 1.0
        sums = path.component_sums()
        assert abs(sum(sums.values()) - path.e2e_ms) < 1e-9
        assert sums["hold"] == 2.0 + 3.0
        assert sums["queue"] == 1.0
        assert sums["serialization"] == 2.0
        assert sums["link"] == 10.0
        assert sums["proc"] == 1.5
        assert sums["other"] == 0.0
        assert path.matched_fraction == 1.0

    def test_unmatched_hop_lands_entirely_in_other(self):
        # No net.send record exists (e.g. a multi-tx gossip frame).
        trace = read_trace(
            _lines(
                _header(),
                _event(0, 0.0, "tx.dispatch", tx_id=1, origin=0),
                _event(1, 8.0, "tx.deliver", tx_id=1, node=1, sender=0),
            )
        )
        trees = build_trees(trace)
        (path,) = critical_paths(trees, trace)
        (hop,) = path.hops
        assert not hop.matched
        assert hop.other_ms == 8.0
        assert abs(sum(path.component_sums().values()) - path.e2e_ms) < 1e-9
        assert path.matched_fraction == 0.0

    def test_aggregate_groups_by_protocol(self):
        trace = read_trace(
            _lines(
                _header(),
                _event(0, 0.0, "tx.dispatch", tx_id=1, origin=0),
                _event(1, 4.0, "tx.deliver", tx_id=1, node=1, sender=0),
                _event(2, 0.0, "tx.dispatch", tx_id=2, origin=5),
                _event(3, 6.0, "tx.deliver", tx_id=2, node=6, sender=5),
            )
        )
        paths = critical_paths(build_trees(trace), trace)
        (breakdown,) = aggregate(paths)
        assert breakdown.tx_count == 2
        assert breakdown.hop_count == 2
        assert breakdown.e2e_ms == 10.0
        assert breakdown.mean_e2e_ms == 5.0
        shares = breakdown.component_shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
