"""Shard attribution in trace analytics (ISSUE satellite).

Sharded runs stamp every trace event with a ``shard`` tag (see
``repro.obs.TaggedObservability``); the analytics must carry it through
dissemination trees and critical paths and render a shard column in reports.
Unsharded traces carry no tags, and their reports must render exactly as
before — the zero-shard path is pinned by asserting the header row verbatim.
"""

import json

from repro.obs.analysis import (
    aggregate,
    build_trees,
    critical_paths,
    read_trace,
    render_report,
)


def _header():
    return {
        "type": "header",
        "v": 1,
        "schema": "repro.trace/1",
        "events": 0,
        "spans": 0,
        "events_dropped": 0,
        "spans_dropped": 0,
    }


def _tx_events(tx_id, start_seq, *, shard=None, node=1):
    extra = {} if shard is None else {"shard": shard}
    return [
        {
            "type": "event",
            "seq": start_seq,
            "time_ms": 0.0,
            "name": "tx.dispatch",
            "span_id": None,
            "attrs": {"tx_id": tx_id, "origin": 0, **extra},
        },
        {
            "type": "event",
            "seq": start_seq + 1,
            "time_ms": 5.0,
            "name": "tx.deliver",
            "span_id": None,
            "attrs": {"tx_id": tx_id, "node": node, "sender": 0, **extra},
        },
    ]


def _trace(records):
    return read_trace([json.dumps(r) for r in records])


class TestShardAttribution:
    def test_trees_and_paths_carry_the_shard_tag(self):
        trace = _trace(
            [_header()] + _tx_events(1, 0, shard=0) + _tx_events(2, 2, shard=1)
        )
        trees = build_trees(trace)
        assert {tree.tx_id: tree.shard for tree in trees} == {1: 0, 2: 1}
        paths = critical_paths(trees, trace)
        assert {path.tx_id: path.shard for path in paths} == {1: 0, 2: 1}

    def test_aggregate_groups_by_protocol_and_shard(self):
        trace = _trace(
            [_header()] + _tx_events(1, 0, shard=0) + _tx_events(2, 2, shard=1)
        )
        trees = build_trees(trace)
        breakdowns = aggregate(critical_paths(trees, trace))
        assert [(b.protocol, b.shard, b.tx_count) for b in breakdowns] == [
            (None, 0, 1),
            (None, 1, 1),
        ]

    def test_sharded_report_gains_shard_column(self):
        trace = _trace(
            [_header()] + _tx_events(1, 0, shard=0) + _tx_events(2, 2, shard=1)
        )
        trees = build_trees(trace)
        markdown = render_report(
            trees=trees, paths=critical_paths(trees, trace)
        )
        assert "| protocol | shard | trees |" in markdown
        assert "| protocol | shard | txs |" in markdown

    def test_unsharded_report_renders_unchanged(self):
        trace = _trace([_header()] + _tx_events(1, 0))
        trees = build_trees(trace)
        assert all(tree.shard is None for tree in trees)
        markdown = render_report(
            trees=trees, paths=critical_paths(trees, trace)
        )
        # The exact pre-sharding header rows: no shard column anywhere.
        assert (
            "| protocol | trees | mean nodes/tree | max depth | orphan deliveries |"
            in markdown
        )
        assert "| protocol | txs | mean hops |" in markdown
        assert "shard" not in markdown
