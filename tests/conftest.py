"""Shared fixtures.

Expensive objects (physical networks, overlay families, crypto groups) are
session-scoped: the suite builds them once and every test reuses them
read-only.  Tests that mutate state build their own small instances.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.group import toy_group
from repro.net.topology import PhysicalNetwork, generate_physical_network
from repro.overlay.annealing import AnnealingConfig
from repro.overlay.base import TransportSpace
from repro.overlay.robust_tree import build_overlay_family


@pytest.fixture(scope="session")
def group():
    """The small-but-real Schnorr group used by crypto tests."""

    return toy_group()


@pytest.fixture(scope="session")
def physical40() -> PhysicalNetwork:
    """A 40-node physical network shared by read-only tests."""

    return generate_physical_network(40, min_degree=4, seed=7)


@pytest.fixture(scope="session")
def physical80() -> PhysicalNetwork:
    """An 80-node physical network for the protocol-level tests."""

    return generate_physical_network(80, min_degree=4, seed=11)


@pytest.fixture(scope="session")
def space40(physical40):
    return TransportSpace(physical40)


# A light annealing schedule keeping overlay-family fixtures fast.
FAST_ANNEALING = AnnealingConfig(
    initial_temperature=10.0, min_temperature=2.0, cooling_rate=0.7,
    moves_per_temperature=2,
)


@pytest.fixture(scope="session")
def overlay_family40(physical40):
    """Three optimized overlays (f=1) over the 40-node network."""

    overlays, ranks = build_overlay_family(
        physical40, f=1, k=3, annealing_config=FAST_ANNEALING, seed=5
    )
    return overlays, ranks


@pytest.fixture(scope="session")
def overlay_family80(physical80):
    """Four optimized overlays (f=1) over the 80-node network."""

    overlays, ranks = build_overlay_family(
        physical80, f=1, k=4, annealing_config=FAST_ANNEALING, seed=5
    )
    return overlays, ranks


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(1234)
