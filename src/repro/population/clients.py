"""A client population: millions of users in O(active-sessions) memory.

The load layer's :mod:`repro.load.arrival` answers *when* transactions
arrive; this module answers *who sends them*.  A :class:`ClientPopulation`
models ``num_clients`` (millions are fine) without ever materializing a
per-client table:

* **Sessions, not clients, are the unit of state.**  Clients go online as a
  Poisson process of session arrivals, stay for an exponentially distributed
  session, and emit transactions at a per-session Poisson rate while online.
  The generator holds one heap entry per *active* session — churn bounds the
  working set at roughly ``session_rate × mean duration``, independent of
  population size.
* **Identity is computed, never stored.**  A session's client is drawn from a
  Zipf-skewed activity distribution by inverting an analytic power-law CDF
  (O(1) per draw — no cumulative-weight table over 10⁶ clients), then mapped
  through a seed-derived affine permutation so "rank 0 is the most active
  client" doesn't mean "client id 0".  Wealth tier and home node follow from
  deterministic hashes of the client id.
* **Replayable by construction.**  Like ``load.arrival``, the whole event
  stream is a pure function of ``(seed, params)``: two populations built with
  equal configs yield identical submission sequences, pinned by property
  tests.

>>> from repro.population import ClientPopulation, PopulationConfig
>>> pop = ClientPopulation(PopulationConfig(
...     num_clients=1_000_000, session_rate_per_s=2.0,
...     session_duration_ms=4_000.0, session_tx_rate_tps=1.0,
...     num_nodes=8, seed=7))
>>> events = list(pop.events(horizon_ms=10_000.0))
>>> all(0 <= e.client_id < 1_000_000 for e in events)
True
>>> [e.time_ms for e in events] == sorted(e.time_ms for e in events)
True
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Iterator

from ..utils.rng import derive_rng

__all__ = ["ClientPopulation", "PopulationConfig", "Submission", "WealthTier"]


@dataclass(frozen=True, slots=True)
class WealthTier:
    """One stratum of the client population's fee-bidding power.

    ``share`` is the fraction of clients in the tier; ``bid_scale`` is the
    multiple of the base fee a member bids on average (the fee market adds
    per-transaction noise on top).
    """

    name: str
    share: float
    bid_scale: float

    def __post_init__(self) -> None:
        if not 0.0 < self.share <= 1.0:
            raise ValueError(f"share must be in (0, 1], got {self.share}")
        if self.bid_scale <= 0:
            raise ValueError(f"bid_scale must be positive, got {self.bid_scale}")


#: Retail pays the going rate, professionals bid a multiple, whales pay
#: whatever it takes — the 90/9/1 stratification fee-market studies assume.
DEFAULT_TIERS: tuple[WealthTier, ...] = (
    WealthTier("retail", 0.90, 1.0),
    WealthTier("pro", 0.09, 4.0),
    WealthTier("whale", 0.01, 20.0),
)


@dataclass(frozen=True, slots=True)
class Submission:
    """One client-initiated transaction submission."""

    time_ms: float
    client_id: int
    origin: int  # node the client is attached to
    tier: str  # wealth-tier name, resolved at draw time


@dataclass(frozen=True, slots=True)
class PopulationConfig:
    """Everything a :class:`ClientPopulation` needs, and nothing mutable.

    ``session_rate_per_s`` is the rate at which *any* client opens a session;
    the long-run offered load is ``session_rate_per_s × session_duration_ms /
    1000 × session_tx_rate_tps`` transactions per second (see
    :meth:`for_offered_rate`).  ``zipf_s`` skews which client each session
    belongs to (0 = uniform; 1.0+ = heavy head).
    """

    num_clients: int
    session_rate_per_s: float
    session_duration_ms: float
    session_tx_rate_tps: float
    num_nodes: int
    seed: int = 0
    zipf_s: float = 1.1
    tiers: tuple[WealthTier, ...] = field(default=DEFAULT_TIERS)

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {self.num_clients}")
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.session_rate_per_s <= 0:
            raise ValueError(
                f"session_rate_per_s must be positive, got {self.session_rate_per_s}"
            )
        if self.session_duration_ms <= 0:
            raise ValueError(
                f"session_duration_ms must be positive, got {self.session_duration_ms}"
            )
        if self.session_tx_rate_tps <= 0:
            raise ValueError(
                f"session_tx_rate_tps must be positive, got {self.session_tx_rate_tps}"
            )
        if self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {self.zipf_s}")
        total_share = sum(tier.share for tier in self.tiers)
        if not self.tiers or abs(total_share - 1.0) > 1e-9:
            raise ValueError(
                f"tier shares must sum to 1, got {total_share} over {len(self.tiers)}"
            )

    @property
    def offered_tps(self) -> float:
        """Long-run expected transactions per second."""

        return (
            self.session_rate_per_s
            * (self.session_duration_ms / 1000.0)
            * self.session_tx_rate_tps
        )

    @classmethod
    def for_offered_rate(
        cls,
        offered_tps: float,
        *,
        num_clients: int,
        num_nodes: int,
        seed: int = 0,
        session_duration_ms: float = 8_000.0,
        session_tx_rate_tps: float = 1.0,
        zipf_s: float = 1.1,
        tiers: tuple[WealthTier, ...] = DEFAULT_TIERS,
    ) -> "PopulationConfig":
        """A config whose long-run offered load is *offered_tps*."""

        if offered_tps <= 0:
            raise ValueError(f"offered_tps must be positive, got {offered_tps}")
        session_rate = offered_tps / (
            (session_duration_ms / 1000.0) * session_tx_rate_tps
        )
        return cls(
            num_clients=num_clients,
            session_rate_per_s=session_rate,
            session_duration_ms=session_duration_ms,
            session_tx_rate_tps=session_tx_rate_tps,
            num_nodes=num_nodes,
            seed=seed,
            zipf_s=zipf_s,
            tiers=tiers,
        )


def _coprime_step(modulus: int, candidate: int) -> int:
    """The first integer >= *candidate* coprime to *modulus* (for the id
    permutation; always terminates — gcd(m, m+1) == 1)."""

    step = max(2, candidate)
    while math.gcd(step, modulus) != 1:
        step += 1
    return step


class ClientPopulation:
    """Deterministic, replayable submission stream for a huge client base.

    Memory is O(active sessions): the only per-session state is a heap entry
    ``(next event time, sequence, session)``.  Nothing is ever stored per
    client.
    """

    def __init__(self, config: PopulationConfig) -> None:
        self.config = config
        m = config.num_clients
        rng = derive_rng(config.seed, "population", "permutation")
        # Affine permutation rank -> client id: decorrelates activity rank
        # from id without a table.  step is coprime to m, so the map is a
        # bijection on [0, m).
        self._perm_step = _coprime_step(m, rng.randrange(1, max(2, m)))
        self._perm_offset = rng.randrange(m)
        # Tier thresholds over a deterministic hash of the client id, so a
        # client's tier is a stable property, not a per-draw sample.
        bounds: list[float] = []
        acc = 0.0
        for tier in config.tiers[:-1]:
            acc += tier.share
            bounds.append(acc)
        self._tier_bounds = bounds
        self._tier_names = [tier.name for tier in config.tiers]
        self._tier_scales = {tier.name: tier.bid_scale for tier in config.tiers}
        # Peak concurrent sessions seen by the last events() iteration —
        # write-only telemetry, not consumed by the stream itself.
        self.last_peak_active = 0

    # -- identity ---------------------------------------------------------

    def _rank_to_client(self, rank: int) -> int:
        return (self._perm_offset + rank * self._perm_step) % self.config.num_clients

    def _draw_rank(self, u: float) -> int:
        """Invert the truncated power-law CDF: O(1), no weight table.

        Approximates Zipf(s) over ranks 1..M by the continuous density
        ``x^-s`` on [1, M+1); exact for s=0 (uniform) and the standard
        continuous approximation otherwise.
        """

        m = self.config.num_clients
        s = self.config.zipf_s
        if m == 1:
            return 0
        if s == 0.0:
            return min(m - 1, int(u * m))
        top = float(m + 1)
        if abs(s - 1.0) < 1e-12:
            x = top**u  # CDF(x) = ln(x) / ln(top)
        else:
            one_minus = 1.0 - s
            x = (u * (top**one_minus - 1.0) + 1.0) ** (1.0 / one_minus)
        rank = int(x) - 1
        return min(max(rank, 0), m - 1)

    def client_tier(self, client_id: int) -> str:
        """The stable wealth tier of *client_id* (seed-derived hash)."""

        rng = derive_rng(self.config.seed, "population", "tier", client_id)
        u = rng.random()
        for bound, name in zip(self._tier_bounds, self._tier_names):
            if u < bound:
                return name
        return self._tier_names[-1]

    def tier_bid_scale(self, tier: str) -> float:
        return self._tier_scales[tier]

    def client_origin(self, client_id: int) -> int:
        """The node *client_id* submits through (sticky, seed-derived)."""

        rng = derive_rng(self.config.seed, "population", "origin", client_id)
        return rng.randrange(self.config.num_nodes)

    # -- the event stream -------------------------------------------------

    def events(self, horizon_ms: float) -> Iterator[Submission]:
        """Yield :class:`Submission`\\ s in time order up to *horizon_ms*.

        Pure function of ``(config, horizon_ms)``; iterating twice gives the
        same stream.  The heap holds one entry per active session plus one
        for the next session arrival — that's the whole working set.
        """

        if horizon_ms <= 0:
            raise ValueError(f"horizon_ms must be positive, got {horizon_ms}")
        cfg = self.config
        arrival_rng = derive_rng(cfg.seed, "population", "sessions")
        session_gap_ms = 1000.0 / cfg.session_rate_per_s
        tx_gap_ms = 1000.0 / cfg.session_tx_rate_tps

        # Heap entries: (time_ms, sequence, kind, payload)
        #   kind 0 = next session arrival (payload: session index)
        #   kind 1 = next tx of an active session
        #            (payload: (client, origin, tier, session end, session rng))
        sequence = 0
        heap: list = []
        first = arrival_rng.expovariate(1.0) * session_gap_ms
        heapq.heappush(heap, (first, sequence, 0, 0))
        active = 0
        peak = 0

        while heap:
            time_ms, _, kind, payload = heapq.heappop(heap)
            if time_ms >= horizon_ms:
                break
            if kind == 0:
                session_index = payload
                # Schedule the following session arrival first (keeps the
                # arrival chain independent of per-session draws).
                sequence += 1
                gap = arrival_rng.expovariate(1.0) * session_gap_ms
                heapq.heappush(heap, (time_ms + gap, sequence, 0, session_index + 1))
                # Spin up this session: identity and lifetime.
                session_rng = derive_rng(cfg.seed, "population", "s", session_index)
                rank = self._draw_rank(session_rng.random())
                client = self._rank_to_client(rank)
                origin = self.client_origin(client)
                tier = self.client_tier(client)
                duration = session_rng.expovariate(1.0) * cfg.session_duration_ms
                end_ms = time_ms + duration
                first_tx = time_ms + session_rng.expovariate(1.0) * tx_gap_ms
                if first_tx < end_ms:
                    active += 1
                    peak = max(peak, active)
                    sequence += 1
                    heapq.heappush(
                        heap,
                        (first_tx, sequence, 1, (client, origin, tier, end_ms, session_rng)),
                    )
            else:
                client, origin, tier, end_ms, session_rng = payload
                yield Submission(
                    time_ms=time_ms, client_id=client, origin=origin, tier=tier
                )
                next_tx = time_ms + session_rng.expovariate(1.0) * tx_gap_ms
                if next_tx < end_ms:
                    sequence += 1
                    heapq.heappush(
                        heap, (next_tx, sequence, 1, (client, origin, tier, end_ms, session_rng))
                    )
                else:
                    active -= 1
        self.last_peak_active = peak
