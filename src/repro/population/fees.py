"""The fee market: a dynamic base fee plus tiered priority bids.

Fee-based priority bidding is the lever real front-runners pull (F3B frames
per-transaction protection exactly against adversaries who pay to jump the
queue), so sustained-load experiments price transactions instead of treating
them as free:

* a **base fee** adjusts on a fixed cadence in response to mempool pressure,
  EIP-1559 style: occupancy above the target raises it (at most
  ``max_change`` per update), below lowers it, clamped to a floor;
* each client **bids** a multiple of the base fee set by its wealth tier
  (see :data:`~repro.population.clients.DEFAULT_TIERS`) with per-transaction
  lognormal noise, drawn from the market's own seed-derived stream so
  pricing never perturbs the simulation's random trajectories.

>>> from repro.population import FeeMarket, FeeMarketConfig
>>> market = FeeMarket(FeeMarketConfig(initial_base_fee=1.0), seed=3)
>>> market.base_fee
1.0
>>> market.on_pressure(occupancy_ratio=2.0, now_ms=500.0)  # pool over target
>>> market.base_fee
1.125
>>> market.bid(bid_scale=4.0) > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.rng import derive_rng

__all__ = ["FeeMarket", "FeeMarketConfig"]


@dataclass(frozen=True, slots=True)
class FeeMarketConfig:
    """Base-fee controller parameters.

    ``target_occupancy`` is the mempool-fullness ratio (occupancy ÷ target
    depth) the controller steers toward; ``max_change`` bounds the per-update
    multiplicative step (0.125 = EIP-1559's 12.5%).
    """

    initial_base_fee: float = 1.0
    min_base_fee: float = 0.125
    max_change: float = 0.125
    update_interval_ms: float = 500.0
    bid_sigma: float = 0.25

    def __post_init__(self) -> None:
        if self.initial_base_fee <= 0:
            raise ValueError(
                f"initial_base_fee must be positive, got {self.initial_base_fee}"
            )
        if not 0 < self.min_base_fee <= self.initial_base_fee:
            raise ValueError(
                "min_base_fee must be in (0, initial_base_fee], got "
                f"{self.min_base_fee}"
            )
        if not 0 < self.max_change < 1:
            raise ValueError(f"max_change must be in (0, 1), got {self.max_change}")
        if self.update_interval_ms <= 0:
            raise ValueError(
                f"update_interval_ms must be positive, got {self.update_interval_ms}"
            )
        if self.bid_sigma < 0:
            raise ValueError(f"bid_sigma must be >= 0, got {self.bid_sigma}")


class FeeMarket:
    """Mutable market state: the current base fee and the bid stream."""

    def __init__(self, config: FeeMarketConfig | None = None, *, seed: int = 0) -> None:
        self.config = config or FeeMarketConfig()
        self.base_fee = self.config.initial_base_fee
        self.last_update_ms = 0.0
        self._rng = derive_rng(seed, "population", "fees")
        # (time_ms, base_fee) after each update — O(updates), bounded by
        # duration / update_interval, for trajectory reporting.
        self.history: list[tuple[float, float]] = [(0.0, self.base_fee)]

    def on_pressure(self, occupancy_ratio: float, now_ms: float) -> None:
        """One controller update: *occupancy_ratio* is occupancy ÷ target.

        1.0 holds the fee steady; 2.0 (or anything above) applies the full
        ``+max_change`` step; 0.0 applies the full ``-max_change`` step.
        """

        if occupancy_ratio < 0:
            raise ValueError(
                f"occupancy_ratio must be >= 0, got {occupancy_ratio}"
            )
        cfg = self.config
        pressure = max(-1.0, min(1.0, occupancy_ratio - 1.0))
        fee = self.base_fee * (1.0 + cfg.max_change * pressure)
        self.base_fee = max(cfg.min_base_fee, fee)
        self.last_update_ms = now_ms
        self.history.append((now_ms, self.base_fee))

    def bid(self, bid_scale: float = 1.0) -> float:
        """One priority bid: base fee × tier scale × lognormal noise."""

        if bid_scale <= 0:
            raise ValueError(f"bid_scale must be positive, got {bid_scale}")
        noise = (
            self._rng.lognormvariate(0.0, self.config.bid_sigma)
            if self.config.bid_sigma > 0
            else 1.0
        )
        return self.base_fee * bid_scale * noise

    def fee_percentiles(self) -> dict[str, float]:
        """Base-fee trajectory digest (start / min / max / final)."""

        fees = [fee for _, fee in self.history]
        return {
            "start": fees[0],
            "min": min(fees),
            "max": max(fees),
            "final": fees[-1],
        }
