"""Million-client workload modeling: who sends, what they bid, what survives.

The load layer (:mod:`repro.load`) injects open-loop arrival schedules; this
package puts *people* behind those arrivals and an *economy* around them:

* :class:`ClientPopulation` — millions of clients in O(active-sessions)
  memory, Zipf-skewed activity, session churn, deterministic replay from
  ``(seed, params)``;
* :class:`FeeMarket` — per-transaction priority bids from wealth tiers over
  an EIP-1559-style dynamic base fee responding to mempool pressure;
* :class:`PopulationDriver` — sustained-load runs of any protocol system
  with streaming (constant-memory) telemetry and bounded mempools;
* :func:`run_ingest` — the simulator-free arrival/admission/service pipeline
  used for 10⁶-transaction memory benchmarks and the Fig. 8 ``ingest``
  reference curve.

Streaming sketches live in :mod:`repro.net.sketch`; mempool admission
control in :class:`repro.mempool.MempoolPolicy`.  See ``docs/population.md``.
"""

from .clients import ClientPopulation, PopulationConfig, Submission, WealthTier
from .driver import PopulationDriver, PopulationResult
from .fees import FeeMarket, FeeMarketConfig
from .pipeline import run_ingest

__all__ = [
    "ClientPopulation",
    "FeeMarket",
    "FeeMarketConfig",
    "PopulationConfig",
    "PopulationDriver",
    "PopulationResult",
    "Submission",
    "WealthTier",
    "run_ingest",
]
