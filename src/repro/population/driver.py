"""Drive a protocol system under a client population with a fee market.

:class:`PopulationDriver` is the sustained-load counterpart of
:class:`repro.load.driver.LoadDriver`, rebuilt so nothing grows with the
transaction count:

* **Self-scheduling injection** — the population's event stream is pulled one
  submission at a time; each injection schedules the next.  The simulator's
  pending-event count stays O(1) for the workload instead of O(total
  transactions) (LoadDriver schedules its whole arrival list up front, which
  alone is ~200 MB at 10⁶ transactions).
* **Streaming stats** — ``network.stats`` is replaced with a
  :class:`~repro.net.stats.StreamingNetworkStats` before the run, folding
  every delivery into constant-size sketches (installed pre-``start()``;
  recording is observation-only, so the simulated trajectory is unchanged).
* **Bounded mempools** — every node's mempool gets the run's
  :class:`~repro.mempool.MempoolPolicy`; drops are aggregated across nodes
  and mirrored into ``repro.obs`` counters (``mempool.evicted`` /
  ``mempool.expired`` / ``mempool.rejected``).
* **Fee market ticks** — on the market's update cadence the driver reads the
  designated proposer's mempool occupancy, updates the base fee, and every
  subsequent bid prices against the new fee.  Per-transaction bids flow into
  the :class:`~repro.net.sketch.WindowedQuantiles` fee trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..mempool.mempool import MempoolPolicy
from ..mempool.transaction import Transaction
from ..net.sketch import WindowedQuantiles
from ..net.stats import StreamingNetworkStats
from ..utils.validation import require_positive
from .clients import ClientPopulation
from .fees import FeeMarket

__all__ = ["PopulationDriver", "PopulationResult"]


@dataclass(frozen=True, slots=True)
class PopulationResult:
    """One protocol's measurements under one sustained population load.

    Latency statistics are ``None`` (not NaN) when nothing was delivered so
    results stay canonical-JSON-serializable for the content-addressed
    result store; trajectory fields are windowed series, O(duration /
    window), never O(transactions).
    """

    protocol: str
    offered_tps: float
    injected: int
    delivered: int
    goodput_tps: float
    mean_ms: float | None
    p50_ms: float | None
    p95_ms: float | None
    p99_ms: float | None
    latency_rank_error: float
    evicted: int
    expired: int
    rejected: int
    stats_expired: int
    base_fee_final: float
    base_fee_max: float
    fee_p50: float | None
    fee_p95: float | None
    peak_active_sessions: int
    mempool_peak: int
    duration_ms: float
    horizon_ms: float
    # [{start_ms, count, p50, p95}, ...] per telemetry window
    latency_series: list
    fee_series: list
    base_fee_series: list
    eviction_series: list

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.injected if self.injected else 0.0

    def to_json(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "PopulationResult":
        return cls(**{name: doc[name] for name in cls.__slots__})


class PopulationDriver:
    """Runs one protocol system under one :class:`ClientPopulation`.

    The system must expose the shared lifecycle (``start`` / ``submit`` /
    ``run`` / ``stats`` / ``nodes`` / ``simulator`` / ``network``).
    """

    def __init__(
        self,
        system,
        population: ClientPopulation,
        *,
        protocol: str = "",
        fee_market: FeeMarket | None = None,
        policy: MempoolPolicy | None = None,
        delivery_fraction: float = 0.99,
        sketch_capacity: int = 512,
        window_ms: float = 10_000.0,
        stats_ttl_ms: float = 120_000.0,
        target_occupancy: int = 2_000,
    ) -> None:
        require_positive(window_ms, "window_ms")
        require_positive(stats_ttl_ms, "stats_ttl_ms")
        require_positive(target_occupancy, "target_occupancy")
        self.system = system
        self.population = population
        self.protocol = protocol or type(system).__name__
        self.fee_market = fee_market
        self.policy = policy
        self.delivery_fraction = delivery_fraction
        self.sketch_capacity = sketch_capacity
        self.window_ms = window_ms
        self.stats_ttl_ms = stats_ttl_ms
        self.target_occupancy = target_occupancy
        self.injected = 0
        self.mempool_peak = 0
        self.fee_windows = WindowedQuantiles(window_ms, capacity=128)
        self.eviction_counts = {"evicted": 0, "expired": 0, "rejected": 0}
        self._eviction_series: list[dict] = []
        self._last_eviction_snapshot = dict(self.eviction_counts)

    # -- wiring ------------------------------------------------------------

    def _install_streaming_stats(self) -> StreamingNetworkStats:
        stats = StreamingNetworkStats(
            node_count=len(self.system.nodes),
            delivery_fraction=self.delivery_fraction,
            sketch_capacity=self.sketch_capacity,
            window_ms=self.window_ms,
        )
        self.system.network.stats = stats
        return stats

    def _install_policies(self) -> None:
        if self.policy is None:
            return

        def on_drop(reason: str, tx: Transaction) -> None:
            self.eviction_counts[reason] += 1
            obs = self.system.network.obs
            if obs is not None:
                obs.metrics.counter(f"mempool.{reason}").inc()

        for node in self.system.nodes.values():
            mempool = getattr(node, "mempool", None)
            if mempool is not None:
                mempool.install_policy(self.policy, on_drop)

    def _proposer_mempool(self):
        """The designated proposer's mempool (lowest node id), if any."""

        nodes = self.system.nodes
        for node_id in sorted(nodes):
            mempool = getattr(nodes[node_id], "mempool", None)
            if mempool is not None:
                return mempool
        return None

    # -- injection ---------------------------------------------------------

    def _schedule_stream(self, horizon_ms: float) -> None:
        """Pull-one/schedule-next injection: O(1) pending events."""

        system = self.system
        events = self.population.events(horizon_ms)

        def inject_next(submission) -> None:
            fee = 0.0
            if self.fee_market is not None:
                fee = self.fee_market.bid(
                    self.population.tier_bid_scale(submission.tier)
                )
                self.fee_windows.observe(submission.time_ms, fee)
            tx = Transaction.create(
                origin=submission.origin,
                created_at=system.simulator.now,
                fee=fee,
            )
            system.submit(submission.origin, tx)
            self.injected += 1
            advance()

        def advance() -> None:
            submission = next(events, None)
            if submission is not None:
                simulator = system.simulator
                simulator.schedule_call(
                    submission.time_ms - simulator.now, inject_next, submission
                )

        advance()

    # -- telemetry ---------------------------------------------------------

    def _telemetry_tick(self, now_ms: float, stats: StreamingNetworkStats) -> None:
        proposer = self._proposer_mempool()
        occupancy = len(proposer) if proposer is not None else 0
        self.mempool_peak = max(self.mempool_peak, occupancy)
        if self.policy is not None:
            for node in self.system.nodes.values():
                mempool = getattr(node, "mempool", None)
                if mempool is not None:
                    mempool.expire(now_ms)
        if self.fee_market is not None:
            self.fee_market.on_pressure(occupancy / self.target_occupancy, now_ms)
        stats.expire(now_ms, self.stats_ttl_ms)
        snapshot = dict(self.eviction_counts)
        delta = {
            reason: snapshot[reason] - self._last_eviction_snapshot[reason]
            for reason in snapshot
        }
        self._last_eviction_snapshot = snapshot
        self._eviction_series.append({"start_ms": now_ms, **delta})
        obs = self.system.network.obs
        if obs is not None:
            obs.metrics.gauge("population.mempool.occupancy").set(occupancy)
            obs.metrics.gauge("population.mempool.peak").track_max(occupancy)
            if self.fee_market is not None:
                obs.metrics.gauge("population.base_fee").set(self.fee_market.base_fee)

    def _schedule_telemetry(self, horizon_ms: float, stats: StreamingNetworkStats) -> None:
        simulator = self.system.simulator
        interval = (
            self.fee_market.config.update_interval_ms
            if self.fee_market is not None
            else self.window_ms
        )

        def tick() -> None:
            self._telemetry_tick(simulator.now, stats)
            if simulator.now + interval <= horizon_ms:
                simulator.schedule(interval, tick)

        simulator.schedule(interval, tick)

    # -- the run -----------------------------------------------------------

    def run(self, duration_ms: float, drain_ms: float = 0.0) -> PopulationResult:
        """Inject for *duration_ms*, let the system drain *drain_ms* more."""

        require_positive(duration_ms, "duration_ms")
        if drain_ms < 0:
            raise ValueError(f"drain_ms must be >= 0, got {drain_ms}")
        system = self.system
        horizon_ms = duration_ms + drain_ms
        stats = self._install_streaming_stats()
        system.start()
        self._install_policies()
        self._schedule_stream(duration_ms)
        self._schedule_telemetry(horizon_ms, stats)
        system.run(until_ms=horizon_ms)
        return self._summarize(stats, duration_ms, horizon_ms)

    def _summarize(
        self,
        stats: StreamingNetworkStats,
        duration_ms: float,
        horizon_ms: float,
    ) -> PopulationResult:
        duration_s = duration_ms / 1000.0
        sketch = stats.latency_sketch
        market = self.fee_market
        fee_sketch = self.fee_windows.merged() if market is not None else None
        base_series = market.history if market is not None else []
        fee_digest = (
            market.fee_percentiles()
            if market is not None
            else {"final": 0.0, "max": 0.0}
        )
        return PopulationResult(
            protocol=self.protocol,
            offered_tps=self.injected / duration_s,
            injected=self.injected,
            delivered=stats.delivered_items,
            goodput_tps=stats.delivered_items / duration_s,
            mean_ms=sketch.mean if sketch.count else None,
            p50_ms=stats.percentile_ms(50),
            p95_ms=stats.percentile_ms(95),
            p99_ms=stats.percentile_ms(99),
            latency_rank_error=sketch.rank_error(),
            evicted=self.eviction_counts["evicted"],
            expired=self.eviction_counts["expired"],
            rejected=self.eviction_counts["rejected"],
            stats_expired=stats.expired_items,
            base_fee_final=fee_digest["final"],
            base_fee_max=fee_digest["max"],
            fee_p50=(
                fee_sketch.percentile(50)
                if fee_sketch is not None and fee_sketch.count
                else None
            ),
            fee_p95=(
                fee_sketch.percentile(95)
                if fee_sketch is not None and fee_sketch.count
                else None
            ),
            peak_active_sessions=self.population.last_peak_active,
            mempool_peak=self.mempool_peak,
            duration_ms=duration_ms,
            horizon_ms=horizon_ms,
            latency_series=stats.latency_windows.series((50.0, 95.0)),
            fee_series=self.fee_windows.series((50.0, 95.0)),
            base_fee_series=[list(pair) for pair in base_series],
            eviction_series=self._eviction_series,
        )
