"""``python -m repro population`` — sustained population load from the shell.

Examples::

    python -m repro population                            # default Fig. 8 sweep
    python -m repro population --rate 5 --rate 20         # custom rates
    python -m repro population --protocol hermes --protocol ingest
    python -m repro population --clients 1000000 --duration 120000
    python -m repro population --mempool-cap 2000 --ttl 60000
    python -m repro population --jobs 4 --results-dir results/fig8  # resumable
    python -m repro population --json                     # canonical JSON
"""

from __future__ import annotations

import argparse
import json
import sys

from ..errors import ReproError

__all__ = ["main"]

_PROTOCOL_CHOICES = ["hermes", "lzero", "narwhal", "mercury", "ingest"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro population",
        description=(
            "Sweep sustained client-population load (fee market, bounded "
            "mempools, streaming telemetry) across protocols and report "
            "goodput knees, fee trajectories and tail latency "
            "(see docs/population.md)."
        ),
    )
    parser.add_argument(
        "--rate",
        action="append",
        type=float,
        dest="rates",
        metavar="TPS",
        help="offered rate in tx/s (repeatable; default: the fig8 sweep)",
    )
    parser.add_argument(
        "--protocol",
        action="append",
        choices=_PROTOCOL_CHOICES,
        dest="protocols",
        help="protocol to sweep (repeatable; default: all four + ingest)",
    )
    parser.add_argument("--num-nodes", type=int, default=24)
    parser.add_argument("--f", type=int, default=1, help="per-overlay fault bound")
    parser.add_argument("--k", type=int, default=3, help="number of overlays")
    parser.add_argument(
        "--clients", type=int, default=1_000_000,
        help="client-population size (default 1,000,000)",
    )
    parser.add_argument(
        "--zipf", type=float, default=1.1, metavar="S",
        help="Zipf skew of client activity (0 = uniform; default 1.1)",
    )
    parser.add_argument(
        "--duration", type=float, default=60_000.0, metavar="MS",
        help="injection window in simulated ms (default 60000)",
    )
    parser.add_argument(
        "--base-fee", type=float, default=1.0, metavar="FEE",
        help="initial base fee (default 1.0)",
    )
    parser.add_argument(
        "--mempool-cap", type=int, default=2_000, metavar="TXS",
        help="per-node mempool size cap (default 2000)",
    )
    parser.add_argument(
        "--ttl", type=float, default=60_000.0, metavar="MS",
        help="mempool TTL in simulated ms (default 60000)",
    )
    parser.add_argument(
        "--service-tps", type=float, default=25.0, metavar="TPS",
        help="service rate of the simulator-free ingest protocol (default 25)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1 = serial)"
    )
    parser.add_argument(
        "--results-dir",
        help="content-addressed result store; re-invoking resumes the sweep",
    )
    parser.add_argument(
        "--no-resume",
        dest="resume",
        action="store_false",
        help="re-execute cells even when the store already has their records",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the result as canonical JSON instead of tables",
    )
    return parser


def _sweep_config(args: argparse.Namespace):
    from ..experiments.fig8_sustained import (
        DEFAULT_PROTOCOLS,
        DEFAULT_RATES,
        Fig8Config,
    )

    return Fig8Config(
        num_nodes=args.num_nodes,
        f=args.f,
        k=args.k,
        rates_tps=tuple(args.rates) if args.rates else DEFAULT_RATES,
        protocols=tuple(args.protocols) if args.protocols else DEFAULT_PROTOCOLS,
        duration_ms=args.duration,
        num_clients=args.clients,
        zipf_s=args.zipf,
        initial_base_fee=args.base_fee,
        mempool_max_size=args.mempool_cap,
        mempool_ttl_ms=args.ttl,
        service_tps=args.service_tps,
        seed=args.seed,
    )


def main(argv: list[str] | None = None) -> int:
    from ..experiments import fig8_sustained

    args = build_parser().parse_args(argv)
    config = _sweep_config(args)
    try:
        result, report = fig8_sustained.run_parallel(
            config,
            jobs=args.jobs,
            results_dir=args.results_dir,
            resume=args.resume,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        doc = {
            "config": {
                "num_nodes": config.num_nodes,
                "num_clients": config.num_clients,
                "rates_tps": list(config.rates_tps),
                "duration_ms": config.duration_ms,
                "mempool_max_size": config.mempool_max_size,
                "seed": config.seed,
            },
            "curves": {
                protocol: [point.to_json() for point in curve]
                for protocol, curve in result.curves.items()
            },
            "knees_tps": {
                protocol: result.knee_tps(protocol) for protocol in result.curves
            },
        }
        print(json.dumps(doc, sort_keys=True))
    else:
        print(fig8_sustained.format_result(result))
        print(
            f"\nsweep: {report.executed} executed, {report.skipped} resumed, "
            f"{report.failed} failed"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
