"""A simulator-free ingest pipeline: population → fee market → one mempool.

The full protocol systems simulate every wire transmission, which makes a
10⁶-transaction run a question of hours.  For workload-layer questions —
does admission control hold the pool bounded, where is the service knee,
what does the fee trajectory do under sustained pressure — the network is
irrelevant: what matters is arrivals, bids, admission, eviction and service.
:func:`run_ingest` runs exactly that loop against one policy-governed
:class:`~repro.mempool.Mempool` drained by a single fee-priority server, at
hundreds of thousands of events per second and in constant memory (the pool
is bounded by the policy, the telemetry by the sketches).

This is the path the memory-growth benchmark gates
(``benchmarks/test_population_throughput.py``) and the ``ingest``
pseudo-protocol of Fig. 8.
"""

from __future__ import annotations

from ..mempool.mempool import Mempool, MempoolPolicy
from ..mempool.transaction import Transaction
from ..net.sketch import QuantileSketch, WindowedQuantiles
from ..utils.validation import require_positive
from .clients import ClientPopulation
from .driver import PopulationResult
from .fees import FeeMarket

__all__ = ["run_ingest"]


def run_ingest(
    population: ClientPopulation,
    *,
    duration_ms: float,
    service_tps: float,
    policy: MempoolPolicy | None = None,
    fee_market: FeeMarket | None = None,
    drain_ms: float = 0.0,
    window_ms: float = 10_000.0,
    target_occupancy: int = 2_000,
    sketch_capacity: int = 512,
) -> PopulationResult:
    """Run the ingest pipeline and summarize it as a :class:`PopulationResult`.

    The server drains the pool in fee-priority order at *service_tps*;
    queueing latency (service completion − arrival) is the reported latency.
    With no *policy* a default (unbounded) one is installed — ``pop_next``
    needs the service indexes either way.
    """

    require_positive(duration_ms, "duration_ms")
    require_positive(service_tps, "service_tps")
    require_positive(target_occupancy, "target_occupancy")
    if drain_ms < 0:
        raise ValueError(f"drain_ms must be >= 0, got {drain_ms}")

    horizon_ms = duration_ms + drain_ms
    service_gap_ms = 1000.0 / service_tps
    mempool = Mempool(owner=0)
    drops = {"evicted": 0, "expired": 0, "rejected": 0}

    def on_drop(reason: str, tx: Transaction) -> None:
        drops[reason] += 1

    mempool.install_policy(policy or MempoolPolicy(), on_drop)

    latency_sketch = QuantileSketch(sketch_capacity)
    latency_windows = WindowedQuantiles(window_ms, capacity=128)
    fee_windows = WindowedQuantiles(window_ms, capacity=128)
    eviction_series: list[dict] = []
    last_snapshot = dict(drops)
    last_window = 0

    injected = 0
    served = 0
    server_free_at = 0.0
    mempool_peak = 0

    update_interval = (
        fee_market.config.update_interval_ms if fee_market is not None else None
    )

    def drain_until(t: float) -> None:
        """Serve backlog while the server would finish by *t*."""

        nonlocal served, server_free_at
        while len(mempool) and server_free_at <= t:
            popped = mempool.pop_next(priority=True)
            if popped is None:
                break
            tx, arrival = popped
            start = server_free_at if server_free_at > arrival else arrival
            done = start + service_gap_ms
            latency_sketch.observe(done - arrival)
            latency_windows.observe(done, done - arrival)
            server_free_at = done
            served += 1

    def tick_market(t: float) -> None:
        if fee_market is None:
            return
        while fee_market.last_update_ms + update_interval <= t:
            boundary = fee_market.last_update_ms + update_interval
            fee_market.on_pressure(len(mempool) / target_occupancy, boundary)

    def roll_windows(t: float) -> None:
        nonlocal last_window, last_snapshot
        window = int(t // window_ms)
        if window > last_window:
            snapshot = dict(drops)
            eviction_series.append(
                {
                    "start_ms": last_window * window_ms,
                    **{r: snapshot[r] - last_snapshot[r] for r in snapshot},
                }
            )
            last_snapshot = snapshot
            last_window = window

    for submission in population.events(duration_ms):
        t = submission.time_ms
        drain_until(t)
        tick_market(t)
        roll_windows(t)
        fee = 0.0
        if fee_market is not None:
            fee = fee_market.bid(population.tier_bid_scale(submission.tier))
            fee_windows.observe(t, fee)
        tx = Transaction.create(origin=submission.origin, created_at=t, fee=fee)
        mempool.add(tx, t)
        injected += 1
        if len(mempool) > mempool_peak:
            mempool_peak = len(mempool)

    drain_until(horizon_ms)
    tick_market(horizon_ms)
    roll_windows(horizon_ms)
    if policy is not None and policy.ttl_ms is not None:
        mempool.expire(horizon_ms)

    duration_s = duration_ms / 1000.0
    fee_sketch = fee_windows.merged() if fee_market is not None else None
    fee_digest = (
        fee_market.fee_percentiles()
        if fee_market is not None
        else {"final": 0.0, "max": 0.0}
    )
    return PopulationResult(
        protocol="ingest",
        offered_tps=injected / duration_s,
        injected=injected,
        delivered=served,
        goodput_tps=served / duration_s,
        mean_ms=latency_sketch.mean if latency_sketch.count else None,
        p50_ms=latency_sketch.percentile(50) if latency_sketch.count else None,
        p95_ms=latency_sketch.percentile(95) if latency_sketch.count else None,
        p99_ms=latency_sketch.percentile(99) if latency_sketch.count else None,
        latency_rank_error=latency_sketch.rank_error(),
        evicted=drops["evicted"],
        expired=drops["expired"],
        rejected=drops["rejected"],
        stats_expired=0,
        base_fee_final=fee_digest["final"],
        base_fee_max=fee_digest["max"],
        fee_p50=(
            fee_sketch.percentile(50)
            if fee_sketch is not None and fee_sketch.count
            else None
        ),
        fee_p95=(
            fee_sketch.percentile(95)
            if fee_sketch is not None and fee_sketch.count
            else None
        ),
        peak_active_sessions=population.last_peak_active,
        mempool_peak=mempool_peak,
        duration_ms=duration_ms,
        horizon_ms=horizon_ms,
        latency_series=latency_windows.series((50.0, 95.0)),
        fee_series=fee_windows.series((50.0, 95.0)),
        base_fee_series=(
            [list(pair) for pair in fee_market.history]
            if fee_market is not None
            else []
        ),
        eviction_series=eviction_series,
    )
