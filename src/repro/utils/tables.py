"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper reports; this module
renders them as aligned monospace tables so the output is readable both in a
terminal and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned text table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+-----
    1 | 2.50
    """

    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")

    cells = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    separator = "-+-".join("-" * w for w in widths)
    body = [" | ".join(row[i].ljust(widths[i]) for i in range(len(headers))) for row in cells]
    lines = [header_line.rstrip(), separator] + [line.rstrip() for line in body]
    if title is not None:
        lines.insert(0, title)
    return "\n".join(lines)
