"""Deterministic random-number-generator plumbing.

Every stochastic component of the simulation (latency sampling, link loss,
annealing moves, adversary behaviour) draws from its own ``random.Random``
instance derived from a single experiment seed.  Deriving instead of sharing
means adding a new consumer never perturbs the random streams of existing ones,
which keeps experiments reproducible across library versions.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_rng", "fork_rng"]


def derive_rng(seed: int, *labels: str | int) -> random.Random:
    """Return a ``random.Random`` deterministically derived from *seed* and *labels*.

    The labels namespace the stream, e.g. ``derive_rng(42, "latency")`` and
    ``derive_rng(42, "annealing", 3)`` are independent generators.
    """

    hasher = hashlib.sha256()
    hasher.update(str(seed).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return random.Random(int.from_bytes(hasher.digest()[:8], "big"))


def fork_rng(rng: random.Random) -> random.Random:
    """Return a new generator seeded from *rng* without disturbing callers
    that share *rng* beyond consuming one draw."""

    return random.Random(rng.getrandbits(64))
