"""Small shared utilities: deterministic RNG helpers, validation, text tables."""

from .rng import derive_rng, fork_rng
from .tables import format_table
from .validation import require, require_positive, require_probability

__all__ = [
    "derive_rng",
    "fork_rng",
    "format_table",
    "require",
    "require_positive",
    "require_probability",
]
