"""Argument-validation helpers shared across the library."""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["require", "require_positive", "require_probability"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with *message* unless *condition* holds."""

    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> None:
    """Raise unless *value* is strictly positive."""

    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def require_probability(value: float, name: str) -> None:
    """Raise unless *value* lies in the closed interval [0, 1]."""

    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
