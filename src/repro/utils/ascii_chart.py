"""Terminal bar charts for experiment reports.

The paper's figures are plots; the benchmark harness is text-only, so the
report modules render distributions as proportional ASCII bars — enough to
see the shape of Fig. 4's role histogram or a latency profile at a glance.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["bar_chart"]

_BAR = "█"


def bar_chart(
    data: Mapping[object, float],
    width: int = 40,
    title: str | None = None,
) -> str:
    """Render *data* (label → value) as horizontal proportional bars.

    >>> print(bar_chart({"a": 2, "b": 4}, width=4))
    a |██   2.00
    b |████ 4.00
    """

    if not data:
        raise ValueError("nothing to chart")
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    labels = [str(label) for label in data]
    label_width = max(len(label) for label in labels)
    peak = max(data.values())
    lines = []
    if title is not None:
        lines.append(title)
    for label, value in data.items():
        if value < 0:
            raise ValueError("bar charts need non-negative values")
        filled = round(width * value / peak) if peak > 0 else 0
        bar = _BAR * filled + " " * (width - filled)
        lines.append(f"{str(label).ljust(label_width)} |{bar} {value:.2f}")
    return "\n".join(lines)
