"""Chordal-ring comparison overlay (Fig. 2).

A circulant graph ``C_n(1, 2, …, m)`` — every node linked to its ``m`` nearest
ring neighbours on both sides — is ``2m``-vertex-connected, so choosing
``m = ceil((f+1)/2)`` yields the ``f+1``-connected chordal ring the paper
compares against.
"""

from __future__ import annotations

import math

import networkx as nx

from ..errors import TopologyError

__all__ = ["build_chordal_ring"]


def build_chordal_ring(
    node_ids: list[int], f: int, long_chords: bool = True
) -> nx.Graph:
    """Build an ``f+1``-connected chordal ring over *node_ids* (ring order =
    list order).

    With ``long_chords`` (the usual chordal-ring construction) each node also
    links to the node ``≈√n`` positions ahead, which shrinks the diameter from
    ``n/2`` to ``O(√n)`` hops while keeping the circulant structure; without
    it the graph is the bare circulant ``C_n(1..m)``.
    """

    n = len(node_ids)
    if n < f + 2:
        raise TopologyError(f"{n} nodes cannot form an f+1={f + 1}-connected ring")
    m = max(1, math.ceil((f + 1) / 2))
    if 2 * m >= n:
        raise TopologyError(f"chord reach {m} too large for {n} nodes")

    offsets = list(range(1, m + 1))
    if long_chords:
        long_offset = max(m + 1, math.isqrt(n))
        if 2 * long_offset < n:
            offsets.append(long_offset)

    graph = nx.Graph()
    graph.add_nodes_from(node_ids)
    for i in range(n):
        for offset in offsets:
            graph.add_edge(node_ids[i], node_ids[(i + offset) % n])
    return graph
