"""Hypercube comparison overlay (Fig. 2).

Nodes are placed on the corners of a ``d``-dimensional hypercube with
``d = ceil(log2 n)``; when ``n`` is not a power of two the result is an
*incomplete hypercube* (edges to missing corners are skipped), the standard
construction the paper cites via Ramanathan et al. and You et al.
"""

from __future__ import annotations

import math

import networkx as nx

from ..errors import TopologyError

__all__ = ["build_hypercube"]


def build_hypercube(node_ids: list[int]) -> nx.Graph:
    """Build an (incomplete) hypercube over *node_ids* (corner = list index)."""

    n = len(node_ids)
    if n < 2:
        raise TopologyError("a hypercube needs at least 2 nodes")
    dimensions = max(1, math.ceil(math.log2(n)))

    graph = nx.Graph()
    graph.add_nodes_from(node_ids)
    for index in range(n):
        for bit in range(dimensions):
            partner = index ^ (1 << bit)
            if partner < n:
                graph.add_edge(node_ids[index], node_ids[partner])
    return graph
