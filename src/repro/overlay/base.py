"""The overlay abstraction: a layered, directed dissemination structure.

An :class:`Overlay` is a DAG whose nodes carry a *depth* (0 for the ``f+1``
entry points) and whose edges always point from shallower to strictly deeper
nodes.  Messages enter at the entry points and flow along successor edges;
accountability checks (§VI-C) ask "is this sender one of my predecessors?",
which is a dictionary lookup here.

Robustness invariant (§IV): every non-entry node has at least ``f+1``
predecessors (bounded by the size of the shallower population), so up to ``f``
faulty neighbours cannot cut a correct node off.

The :class:`OverlaySpace` strategy decides which node pairs may be joined by
an overlay edge and at what latency:

* :class:`TransportSpace` — any pair (blockchain P2P runs over the internet;
  this is the mode the paper's evaluation uses, where Narwhal and L∅ get a
  "connected topology");
* :class:`PhysicalSpace` — only links of the physical graph ``G``;
* :class:`RegionMeanSpace` — any pair, at the *expected* regional latency.
  An O(1)-per-query space for paper-scale construction (``N = 10,000``),
  where per-pair sampling would materialize millions of cached draws.

Besides the two mandatory queries (``are_connected``, ``latency``), a space
may override the bulk hooks construction hot loops call — ``average_latency``,
``layer_latency_fn``, ``nearest_parents`` — whose defaults reproduce the
historical scalar behaviour byte-for-byte.  See docs/performance.md.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from ..errors import OverlayConnectivityError, TopologyError
from ..net.topology import PhysicalNetwork
from ..types import Region

__all__ = [
    "Overlay",
    "OverlaySpace",
    "TransportSpace",
    "PhysicalSpace",
    "RegionMeanSpace",
]

# How many peers to sample when estimating a node's "latency to its
# neighbours" for entry-point selection (keeps selection O(n · sample)).
LATENCY_SAMPLE_SIZE = 24


class OverlaySpace:
    """Which overlay edges are allowed, and how expensive they are."""

    # True when are_connected(u, v) holds for every distinct pair.  Complete
    # spaces let construction skip O(candidates × layer) connectivity scans.
    complete: bool = False

    def are_connected(self, u: int, v: int) -> bool:
        raise NotImplementedError

    def latency(self, u: int, v: int) -> float:
        raise NotImplementedError

    # -- bulk hooks (defaults = the historical scalar code paths) --------

    def average_latency(
        self, node: int, peers: Sequence[int], rng: random.Random
    ) -> float:
        """Mean latency from *node* to a deterministic sample of *peers*.

        Byte-identical to the original entry-point-selection estimate
        (including its rng.sample draw); subclasses with closed-form means
        may skip the sampling entirely.
        """

        others = [p for p in peers if p != node and self.are_connected(node, p)]
        if not others:
            return float("inf")
        if len(others) > LATENCY_SAMPLE_SIZE:
            others = rng.sample(others, LATENCY_SAMPLE_SIZE)
        return sum(self.latency(node, p) for p in others) / len(others)

    def layer_latency_fn(self, layer: Sequence[int]) -> Callable[[int], float]:
        """A function mapping a node to its mean latency toward *layer*.

        Called once per layer; the returned callable runs once per candidate.
        The default is the exact historical per-candidate sum.
        """

        size = len(layer)

        def mean_latency(node: int) -> float:
            return sum(self.latency(node, p) for p in layer) / size

        return mean_latency

    def nearest_parents(
        self, node: int, parents: Sequence[int], cap: int
    ) -> list[int]:
        """The *cap* lowest-latency members of *parents* for *node*.

        Default: full deterministic sort, byte-identical to the historical
        inline ``sorted(...)[:cap]``.
        """

        return sorted(parents, key=lambda p: (self.latency(p, node), p))[:cap]


class TransportSpace(OverlaySpace):
    """All pairs connectable; latency comes from the transport model."""

    complete = True

    def __init__(self, physical: PhysicalNetwork) -> None:
        self._physical = physical

    def are_connected(self, u: int, v: int) -> bool:
        return u != v

    def latency(self, u: int, v: int) -> float:
        return self._physical.transport_latency(u, v)


class PhysicalSpace(OverlaySpace):
    """Only physical links of ``G`` may become overlay edges."""

    def __init__(self, physical: PhysicalNetwork) -> None:
        self._physical = physical

    def are_connected(self, u: int, v: int) -> bool:
        return self._physical.has_edge(u, v)

    def latency(self, u: int, v: int) -> float:
        return self._physical.latency(u, v)


class RegionMeanSpace(OverlaySpace):
    """All pairs connectable, at the expected latency of their region pair.

    A deliberate paper-scale approximation of :class:`TransportSpace`:
    ``latency(u, v)`` is the latency model's analytic mean for the two
    regions (O(1), no per-pair draws to cache), which makes robust-tree
    construction over ``N = 10,000`` nodes linear-ish instead of quadratic.
    Two deviations from the per-pair space, both documented in
    docs/performance.md:

    * construction optimizes against region-level expectations, not the
      per-pair draws the simulator uses (the simulator itself is unchanged);
    * :meth:`nearest_parents` breaks the resulting massive latency ties by
      rotating deterministically on the child's node id, so same-region
      children spread across the layer instead of piling onto the
      lexicographically smallest parents.

    All methods are deterministic and draw no randomness.
    """

    complete = True

    def __init__(self, physical: PhysicalNetwork) -> None:
        self._physical = physical
        self._regions = physical.regions
        model = physical.latency_model
        # Region enum members keyed by identity; expectations precomputed for
        # every ordered pair (81 entries) so latency() is two dict hits.
        self._expected: dict[tuple[object, object], float] = {}
        regions = sorted({r for r in physical.regions.values()}, key=lambda r: r.value)
        for a in regions:
            for b in regions:
                self._expected[(a, b)] = model.expected(a, b)
        # Memos for the current construction layer / population: the hot
        # loops call these once per child with the same sequence object, so
        # holding a strong reference and comparing identity is safe and O(1).
        self._layer_ref: Sequence[int] | None = None
        self._layer_groups: list[tuple[Region, list[int]]] = []
        self._peers_ref: Sequence[int] | None = None
        self._peers_histogram: list[tuple[Region, int]] = []
        self._peers_set: set[int] = set()

    def are_connected(self, u: int, v: int) -> bool:
        return u != v

    def latency(self, u: int, v: int) -> float:
        if u == v:
            return 0.0
        return self._expected[(self._regions[u], self._regions[v])]

    def average_latency(
        self, node: int, peers: Sequence[int], rng: random.Random
    ) -> float:
        """Exact population mean toward *peers* via a region histogram.

        O(regions) per call after one O(peers) histogram, memoized on the
        peers sequence object (entry-point selection queries every node
        against the same population list).  Uses the full population rather
        than a 24-peer sample — it *is* the expectation the sample estimates.
        Draws nothing from *rng* (kept for interface compatibility).
        """

        if self._peers_ref is not peers:
            counts: dict[Region, int] = {}
            for peer in peers:
                region = self._regions[peer]
                counts[region] = counts.get(region, 0) + 1
            self._peers_histogram = sorted(
                counts.items(), key=lambda item: item[0].value
            )
            self._peers_set = set(peers)
            self._peers_ref = peers
        my_region = self._regions[node]
        total = 0.0
        count = 0
        for region, num in self._peers_histogram:
            total += num * self._expected[(my_region, region)]
            count += num
        if node in self._peers_set:
            # The population averaged over is "peers other than the node":
            # drop its own (self-latency) contribution from the mean.
            total -= self._expected[(my_region, my_region)]
            count -= 1
        return total / count if count else float("inf")

    def layer_latency_fn(self, layer: Sequence[int]) -> Callable[[int], float]:
        """O(1)-per-candidate layer mean from a per-region histogram.

        Assumes the queried node is not itself a layer member (construction
        evaluates candidates from ``remaining``, which is disjoint from the
        previous layer) — a member's own zero self-latency is not special-
        cased the way the default per-pair sum would handle it.
        """

        size = len(layer)
        counts: dict[Region, int] = {}
        for member in layer:
            region = self._regions[member]
            counts[region] = counts.get(region, 0) + 1
        pairs = sorted(counts.items(), key=lambda item: item[0].value)
        expected = self._expected
        regions = self._regions
        memo: dict[Region, float] = {}

        def mean_latency(node: int) -> float:
            mine = regions[node]
            cached = memo.get(mine)
            if cached is None:
                cached = (
                    sum(num * expected[(mine, other)] for other, num in pairs) / size
                )
                memo[mine] = cached
            return cached

        return mean_latency

    def nearest_parents(
        self, node: int, parents: Sequence[int], cap: int
    ) -> list[int]:
        """The *cap* nearest parents, with deterministic tie rotation.

        Parents are grouped by region, groups ordered by expected latency
        from the child's region (ties by region name, then id); within a
        group the start offset rotates by ``node`` so equal-latency load
        spreads across the layer.  This is a paper-scale deviation from the
        exact per-pair sort — see the class docstring.
        """

        if self._layer_ref is not parents:
            by_region: dict[Region, list[int]] = {}
            for member in parents:
                by_region.setdefault(self._regions[member], []).append(member)
            self._layer_groups = [
                (region, sorted(members))
                for region, members in sorted(
                    by_region.items(), key=lambda item: item[0].value
                )
            ]
            self._layer_ref = parents
        my_region = self._regions[node]
        ordered_groups = sorted(
            self._layer_groups,
            key=lambda item: (self._expected[(my_region, item[0])], item[0].value),
        )
        picked: list[int] = []
        for _region, members in ordered_groups:
            width = len(members)
            start = node % width
            for i in range(width):
                member = members[(start + i) % width]
                if member != node:
                    picked.append(member)
                    if len(picked) == cap:
                        return picked
        return picked


@dataclass
class Overlay:
    """A directed, layered dissemination overlay.

    Invariants (checked by :meth:`validate`):

    * entry points have depth 0 and no predecessors;
    * every edge goes from a shallower node to a strictly deeper one;
    * every non-entry node has ``min(f+1, shallower population)`` predecessors.
    """

    overlay_id: int
    f: int
    entry_points: tuple[int, ...]
    depth_of: dict[int, int]
    successors: dict[int, list[int]] = field(default_factory=dict)
    predecessors: dict[int, list[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, overlay_id: int, f: int, entry_points: Sequence[int]) -> "Overlay":
        entries = tuple(entry_points)
        if len(set(entries)) != len(entries):
            raise TopologyError("entry points must be distinct")
        return cls(
            overlay_id=overlay_id,
            f=f,
            entry_points=entries,
            depth_of={e: 0 for e in entries},
            successors={e: [] for e in entries},
            predecessors={e: [] for e in entries},
        )

    def add_node(self, node: int, depth: int) -> None:
        if node in self.depth_of:
            raise TopologyError(f"node {node} already in overlay")
        if depth < 1:
            raise TopologyError("only entry points may sit at depth 0")
        self.depth_of[node] = depth
        self.successors[node] = []
        self.predecessors[node] = []

    def add_edge(self, parent: int, child: int) -> None:
        """Add the directed edge parent → child (parent must be shallower)."""

        if parent not in self.depth_of or child not in self.depth_of:
            raise TopologyError("both endpoints must be overlay members")
        if self.depth_of[parent] >= self.depth_of[child]:
            raise TopologyError(
                f"edge {parent}->{child} does not point to a deeper layer"
            )
        if child in self.successors[parent]:
            return
        self.successors[parent].append(child)
        self.predecessors[child].append(parent)

    def remove_edge(self, parent: int, child: int) -> None:
        try:
            self.successors[parent].remove(child)
            self.predecessors[child].remove(parent)
        except (KeyError, ValueError):
            raise TopologyError(f"edge {parent}->{child} not in overlay") from None

    def copy(self) -> "Overlay":
        """Deep-enough copy for annealing moves (shares no mutable state)."""

        return Overlay(
            overlay_id=self.overlay_id,
            f=self.f,
            entry_points=self.entry_points,
            depth_of=dict(self.depth_of),
            successors={k: list(v) for k, v in self.successors.items()},
            predecessors={k: list(v) for k, v in self.predecessors.items()},
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def nodes(self) -> list[int]:
        return sorted(self.depth_of)

    @property
    def num_nodes(self) -> int:
        return len(self.depth_of)

    @property
    def num_edges(self) -> int:
        return sum(len(children) for children in self.successors.values())

    def edges(self) -> Iterator[tuple[int, int]]:
        for parent, children in self.successors.items():
            for child in children:
                yield parent, child

    def max_depth(self) -> int:
        return max(self.depth_of.values(), default=0)

    def layers(self) -> dict[int, list[int]]:
        """Depth → sorted nodes at that depth."""

        result: dict[int, list[int]] = {}
        for node, depth in self.depth_of.items():
            result.setdefault(depth, []).append(node)
        for nodes in result.values():
            nodes.sort()
        return dict(sorted(result.items()))

    def is_entry(self, node: int) -> bool:
        return node in self.entry_points

    def is_leaf(self, node: int) -> bool:
        return not self.successors.get(node)

    def contains(self, node: int) -> bool:
        return node in self.depth_of

    def valid_senders(self, node: int) -> frozenset[int]:
        """The only peers a correct node accepts this overlay's traffic from."""

        return frozenset(self.predecessors.get(node, ()))

    def shallower_counts(self) -> dict[int, int]:
        """Map depth → number of nodes strictly shallower than that depth."""

        layer_sizes: dict[int, int] = {}
        for depth in self.depth_of.values():
            layer_sizes[depth] = layer_sizes.get(depth, 0) + 1
        counts: dict[int, int] = {}
        running = 0
        for depth in sorted(layer_sizes):
            counts[depth] = running
            running += layer_sizes[depth]
        return counts

    def required_predecessors(
        self, node: int, shallower_counts: dict[int, int] | None = None
    ) -> int:
        """How many predecessors the robustness invariant demands of *node*.

        Pass a precomputed :meth:`shallower_counts` map when calling in a loop
        — the per-call recount is O(n) otherwise.
        """

        if self.is_entry(node):
            return 0
        if shallower_counts is not None:
            shallower = shallower_counts[self.depth_of[node]]
        else:
            shallower = sum(
                1 for d in self.depth_of.values() if d < self.depth_of[node]
            )
        return min(self.f + 1, shallower)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def reachable(self, failed: Iterable[int] = ()) -> set[int]:
        """Nodes reachable from non-failed entry points avoiding *failed*."""

        blocked = set(failed)
        frontier = [e for e in self.entry_points if e not in blocked]
        seen = set(frontier)
        while frontier:
            node = frontier.pop()
            for child in self.successors.get(node, ()):
                if child not in seen and child not in blocked:
                    seen.add(child)
                    frontier.append(child)
        return seen

    def arrival_times(self, space: OverlaySpace) -> dict[int, float]:
        """Earliest arrival time at each node, entry points at t = 0.

        Processes nodes in depth order (edges only deepen), so each node's
        time is ``min over predecessors`` of their time plus the link latency.
        Unreachable nodes get ``math.inf``.
        """

        times: dict[int, float] = {n: math.inf for n in self.depth_of}
        for entry in self.entry_points:
            times[entry] = 0.0
        ordered = sorted(self.depth_of, key=lambda n: self.depth_of[n])
        for node in ordered:
            if times[node] == math.inf:
                continue
            for child in self.successors.get(node, ()):
                candidate = times[node] + space.latency(node, child)
                if candidate < times[child]:
                    times[child] = candidate
        return times

    def forwarding_load(self) -> dict[int, int]:
        """Messages each node forwards per dissemination (= out-degree)."""

        return {node: len(children) for node, children in self.successors.items()}

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, expected_nodes: Iterable[int] | None = None) -> None:
        """Raise :class:`OverlayConnectivityError` on any broken invariant."""

        if len(self.entry_points) != self.f + 1:
            raise OverlayConnectivityError(
                f"overlay {self.overlay_id} has {len(self.entry_points)} entry "
                f"points, expected f+1 = {self.f + 1}"
            )
        if expected_nodes is not None:
            missing = set(expected_nodes) - set(self.depth_of)
            if missing:
                raise OverlayConnectivityError(
                    f"overlay {self.overlay_id} misses nodes {sorted(missing)[:5]}..."
                    if len(missing) > 5
                    else f"overlay {self.overlay_id} misses nodes {sorted(missing)}"
                )
        for entry in self.entry_points:
            if self.depth_of.get(entry) != 0:
                raise OverlayConnectivityError(f"entry point {entry} not at depth 0")
            if self.predecessors.get(entry):
                raise OverlayConnectivityError(f"entry point {entry} has predecessors")
        for parent, child in self.edges():
            if self.depth_of[parent] >= self.depth_of[child]:
                raise OverlayConnectivityError(
                    f"edge {parent}->{child} violates depth ordering"
                )
        counts = self.shallower_counts()
        for node in self.depth_of:
            needed = self.required_predecessors(node, counts)
            if len(self.predecessors.get(node, ())) < needed:
                raise OverlayConnectivityError(
                    f"node {node} has {len(self.predecessors.get(node, ()))} "
                    f"predecessors, needs {needed}"
                )
        unreached = set(self.depth_of) - self.reachable()
        if unreached:
            raise OverlayConnectivityError(
                f"nodes not reachable from entry points: {sorted(unreached)[:5]}"
            )

    def tolerates_local_faults(self) -> bool:
        """True when no single set of ``f`` faulty predecessors can isolate a node.

        With >= f+1 predecessors each and f+1 entry points this holds by
        counting; provided as an explicit check for tests and audits.
        """

        try:
            self.validate()
        except OverlayConnectivityError:
            return False
        return True
