"""Random ``f+1``-connected comparison overlay (Fig. 2).

Each node draws ``f+1`` random neighbours; extra edges are then added until
the whole graph is ``f+1``-vertex-connected ("a random overlay ensuring at
least f+1 links per node", Fig. 2 caption).
"""

from __future__ import annotations

import networkx as nx

from ..errors import TopologyError
from ..utils.rng import derive_rng

__all__ = ["build_random_connected_overlay"]

_MAX_REPAIR_ROUNDS = 200


def build_random_connected_overlay(
    node_ids: list[int], f: int, seed: int = 0
) -> nx.Graph:
    """Random graph over *node_ids* with min degree and connectivity f+1."""

    n = len(node_ids)
    if n < f + 2:
        raise TopologyError(f"{n} nodes cannot be f+1={f + 1}-connected")

    rng = derive_rng(seed, "random-overlay")
    graph = nx.Graph()
    graph.add_nodes_from(node_ids)

    for node in node_ids:
        while graph.degree[node] < f + 1:
            peer = rng.choice(node_ids)
            if peer != node:
                graph.add_edge(node, peer)

    for _ in range(_MAX_REPAIR_ROUNDS):
        if nx.node_connectivity(graph) >= f + 1:
            return graph
        u, v = rng.sample(node_ids, 2)
        graph.add_edge(u, v)
    raise TopologyError("failed to reach f+1 connectivity after repair rounds")
