"""Simulated annealing over overlays — Algorithms 2 and 3 of the paper.

:func:`generate_neighbor` (Alg. 3) proposes a mutated overlay:

1. randomly add or remove one forward edge;
2. repair the ``f+1``-connectivity invariants (successors for non-leaves,
   predecessors for non-entries), adding lowest-latency repair edges;
3. rebalance roles: an overloaded near-root node with spare successors hands
   one child over to a higher-accumulated-rank parent.

:func:`anneal` (Alg. 2) runs the Metropolis acceptance loop over those
proposals.  One deliberate deviation: the paper's Alg. 3 step 4 discards any
non-improving neighbour, which silently degenerates the annealing into greedy
descent.  We return the proposal unconditionally and let Alg. 2's temperature
schedule decide — i.e., actual simulated annealing.  Setting
``GenerateNeighborConfig.greedy_filter=True`` restores the literal pseudocode.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..utils.validation import require, require_positive
from .base import Overlay, OverlaySpace
from .objective import ObjectiveConfig, evaluate_overlay
from .rank import RankTracker

__all__ = ["AnnealingConfig", "GenerateNeighborConfig", "anneal", "generate_neighbor"]


@dataclass(frozen=True, slots=True)
class AnnealingConfig:
    """Cooling schedule for Algorithm 2."""

    initial_temperature: float = 50.0
    min_temperature: float = 0.5
    cooling_rate: float = 0.95
    moves_per_temperature: int = 4

    def __post_init__(self) -> None:
        require_positive(self.initial_temperature, "initial_temperature")
        require_positive(self.min_temperature, "min_temperature")
        require(
            0.0 < self.cooling_rate < 1.0,
            f"cooling_rate must be in (0, 1), got {self.cooling_rate}",
        )
        require(
            self.moves_per_temperature >= 1,
            "moves_per_temperature must be at least 1",
        )


@dataclass(frozen=True, slots=True)
class GenerateNeighborConfig:
    """Behaviour of Algorithm 3."""

    remove_probability: float = 0.5
    greedy_filter: bool = False
    # Out-degree above which a near-root node is considered overloaded.
    overload_slack: int = 1


def _forward_pairs_sample(
    overlay: Overlay, rng: random.Random, attempts: int = 32
) -> tuple[int, int] | None:
    """Sample a non-edge (parent, child) pair with parent strictly shallower."""

    nodes = overlay.nodes()
    if len(nodes) < 2:
        return None
    for _ in range(attempts):
        u, v = rng.sample(nodes, 2)
        if overlay.depth_of[u] > overlay.depth_of[v]:
            u, v = v, u
        if overlay.depth_of[u] >= overlay.depth_of[v]:
            continue
        if v not in overlay.successors[u]:
            return u, v
    return None


def _removable_edges(overlay: Overlay) -> list[tuple[int, int]]:
    """Edges whose removal keeps every invariant satisfiable locally.

    An edge (p, c) is removable when c retains more than its required
    predecessor count and p retains f+1 successors (or becomes a leaf evenly —
    we conservatively require p to keep f+1 children or have had exactly the
    edge set of a leaf-to-be, which we disallow to keep repair cheap).
    """

    counts = overlay.shallower_counts()
    removable = []
    for parent, child in overlay.edges():
        if len(overlay.predecessors[child]) <= overlay.required_predecessors(
            child, counts
        ):
            continue
        if len(overlay.successors[parent]) <= overlay.f + 1:
            continue
        removable.append((parent, child))
    return removable


def _repair_connectivity(
    overlay: Overlay, space: OverlaySpace, rng: random.Random
) -> None:
    """Alg. 3 step 2: restore f+1 successors / required predecessors."""

    layers = overlay.layers()
    depths = sorted(layers)
    counts = overlay.shallower_counts()
    all_nodes = overlay.nodes()
    # Successor repair for non-leaf nodes (all but the deepest layer).
    for depth in depths[:-1]:
        needy = [
            n
            for n in layers[depth]
            if not overlay.is_leaf(n) and len(overlay.successors[n]) < overlay.f + 1
        ]
        if not needy:
            continue
        deeper_nodes = [n for n in all_nodes if overlay.depth_of[n] > depth]
        for node in needy:
            existing = set(overlay.successors[node])
            candidates = [
                c
                for c in deeper_nodes
                if c not in existing and space.are_connected(node, c)
            ]
            candidates.sort(key=lambda c: (space.latency(node, c), c))
            while len(overlay.successors[node]) < overlay.f + 1 and candidates:
                overlay.add_edge(node, candidates.pop(0))
    # Predecessor repair for every non-entry node.
    for node in all_nodes:
        needed = overlay.required_predecessors(node, counts)
        if len(overlay.predecessors[node]) >= needed:
            continue
        existing = set(overlay.predecessors[node])
        candidates = [
            p
            for p in all_nodes
            if overlay.depth_of[p] < overlay.depth_of[node]
            and p not in existing
            and space.are_connected(p, node)
        ]
        candidates.sort(key=lambda p: (space.latency(p, node), p))
        while len(overlay.predecessors[node]) < needed and candidates:
            overlay.add_edge(candidates.pop(0), node)


def _rebalance_roles(
    overlay: Overlay,
    space: OverlaySpace,
    ranks: RankTracker,
    rng: random.Random,
    config: GenerateNeighborConfig,
) -> None:
    """Alg. 3 step 3: shift load from low-rank near-root nodes to high-rank ones."""

    if overlay.max_depth() == 0:
        return
    shallow_cutoff = max(1, overlay.max_depth() // 3)
    overloaded = [
        n
        for n in overlay.nodes()
        if overlay.depth_of[n] <= shallow_cutoff
        and len(overlay.successors[n]) > overlay.f + 1 + config.overload_slack
    ]
    if not overloaded:
        return
    node = rng.choice(overloaded)
    child = rng.choice(overlay.successors[node])
    replacements = [
        p
        for p in overlay.nodes()
        if p not in (node, child)
        and overlay.depth_of[p] < overlay.depth_of[child]
        and ranks.rank(p) > ranks.rank(node)
        and p not in overlay.predecessors[child]
        and space.are_connected(p, child)
    ]
    if not replacements:
        return
    replacements.sort(key=lambda p: (-ranks.rank(p), space.latency(p, child), p))
    overlay.remove_edge(node, child)
    overlay.add_edge(replacements[0], child)


def generate_neighbor(
    overlay: Overlay,
    space: OverlaySpace,
    ranks: RankTracker,
    rng: random.Random,
    config: GenerateNeighborConfig | None = None,
    objective_config: ObjectiveConfig | None = None,
) -> Overlay:
    """Algorithm 3: propose a neighbouring overlay configuration."""

    if config is None:
        config = GenerateNeighborConfig()
    neighbor = overlay.copy()

    # Step 1: random edge add/remove.
    removable = _removable_edges(neighbor)
    if rng.random() < config.remove_probability and removable:
        parent, child = rng.choice(removable)
        neighbor.remove_edge(parent, child)
    else:
        pair = _forward_pairs_sample(neighbor, rng)
        if pair is not None and space.are_connected(*pair):
            neighbor.add_edge(*pair)

    # Step 2: restore f+1-connectivity.
    _repair_connectivity(neighbor, space, rng)

    # Step 3: rank-penalty rebalancing.
    _rebalance_roles(neighbor, space, ranks, rng, config)

    # Step 4 (literal pseudocode only): discard non-improving proposals.
    if config.greedy_filter:
        new_value = evaluate_overlay(neighbor, space, ranks, objective_config).total
        old_value = evaluate_overlay(overlay, space, ranks, objective_config).total
        if new_value >= old_value:
            return overlay
    return neighbor


def anneal(
    overlay: Overlay,
    space: OverlaySpace,
    ranks: RankTracker,
    config: AnnealingConfig | None = None,
    neighbor_config: GenerateNeighborConfig | None = None,
    objective_config: ObjectiveConfig | None = None,
    rng: random.Random | None = None,
) -> Overlay:
    """Algorithm 2: Metropolis annealing from *overlay* to an optimized one."""

    if config is None:
        config = AnnealingConfig()
    if rng is None:
        rng = random.Random(0)

    current = overlay
    current_value = evaluate_overlay(current, space, ranks, objective_config).total
    best = current
    best_value = current_value

    temperature = config.initial_temperature
    while temperature > config.min_temperature:
        for _ in range(config.moves_per_temperature):
            candidate = generate_neighbor(
                current, space, ranks, rng, neighbor_config, objective_config
            )
            candidate_value = evaluate_overlay(
                candidate, space, ranks, objective_config
            ).total
            delta = candidate_value - current_value
            if delta < 0 or math.exp(-delta / temperature) > rng.random():
                current, current_value = candidate, candidate_value
                if candidate_value < best_value:
                    best, best_value = candidate, candidate_value
        temperature *= config.cooling_rate
    return best
