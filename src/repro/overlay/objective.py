"""The overlay objective function — Equation (1) of the paper.

::

    objective = num_edges + avg_latency + connectivity_penalty
              + path_penalty + rank_penalty

* ``num_edges`` — |E| of the overlay, scaled; fewer links means less bandwidth.
* ``avg_latency`` — sum of entry-point-to-node dissemination latencies divided
  by ``n`` (unreachable nodes are charged via ``path_penalty`` instead).
* ``connectivity_penalty`` — non-leaf nodes with fewer than ``f+1`` successors
  and non-entry nodes with fewer than the required predecessors.
* ``path_penalty`` — nodes unreachable from the entry points.
* ``rank_penalty`` — low-accumulated-rank nodes (already favoured in earlier
  overlays) sitting near the root of this one.

Each term carries a weight in :class:`ObjectiveConfig`; the defaults keep the
terms in comparable magnitude for the network sizes of the evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import Overlay, OverlaySpace
from .rank import RankTracker

__all__ = ["ObjectiveConfig", "ObjectiveValue", "evaluate_overlay"]


@dataclass(frozen=True, slots=True)
class ObjectiveConfig:
    """Term weights for Eq. (1).

    ``priority_nodes`` implements §VIII-D's role-aware optimization: "if
    specific roles are attributed to a subset of the nodes, e.g. validator
    nodes, then HERMES could be further optimized to minimize the transaction
    dissemination latency for these nodes."  Their arrival latency is charged
    an extra ``priority_weight``-scaled term, pulling them toward the root.
    """

    edge_weight: float = 0.05
    latency_weight: float = 1.0
    connectivity_weight: float = 500.0
    path_weight: float = 1000.0
    rank_weight: float = 5.0
    priority_nodes: frozenset[int] = frozenset()
    priority_weight: float = 3.0


@dataclass(frozen=True, slots=True)
class ObjectiveValue:
    """The evaluated terms; ``total`` is what annealing minimizes."""

    num_edges: float
    avg_latency: float
    connectivity_penalty: float
    path_penalty: float
    rank_penalty: float
    priority_penalty: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.num_edges
            + self.avg_latency
            + self.connectivity_penalty
            + self.path_penalty
            + self.rank_penalty
            + self.priority_penalty
        )


def _rank_penalty(overlay: Overlay, ranks: RankTracker) -> float:
    """Penalize low-rank (historically favoured) nodes near the root.

    Each node contributes ``(max_rank - rank) / (1 + depth)`` — large when a
    low-rank node sits shallow — normalized by the node count so the term does
    not scale with n.
    """

    max_rank = ranks.max_rank()
    if max_rank == 0:
        return 0.0
    total = 0.0
    for node, depth in overlay.depth_of.items():
        shortfall = (max_rank - ranks.rank(node)) / max_rank
        total += shortfall / (1.0 + depth)
    return total / max(overlay.num_nodes, 1)


def evaluate_overlay(
    overlay: Overlay,
    space: OverlaySpace,
    ranks: RankTracker,
    config: ObjectiveConfig | None = None,
) -> ObjectiveValue:
    """Compute Eq. (1) for *overlay*."""

    if config is None:
        config = ObjectiveConfig()

    arrivals = overlay.arrival_times(space)
    reachable_latencies = [t for t in arrivals.values() if not math.isinf(t)]
    unreachable = overlay.num_nodes - len(reachable_latencies)
    avg_latency = (
        sum(reachable_latencies) / overlay.num_nodes if overlay.num_nodes else 0.0
    )

    connectivity_violations = 0
    for node in overlay.depth_of:
        if not overlay.is_leaf(node):
            if len(overlay.successors.get(node, ())) < overlay.f + 1:
                connectivity_violations += 1
        needed = overlay.required_predecessors(node)
        if len(overlay.predecessors.get(node, ())) < needed:
            connectivity_violations += 1

    priority_penalty = 0.0
    if config.priority_nodes:
        priority_latencies = [
            arrivals[node]
            for node in config.priority_nodes
            if node in arrivals and not math.isinf(arrivals[node])
        ]
        if priority_latencies:
            priority_penalty = config.priority_weight * (
                sum(priority_latencies) / len(priority_latencies)
            )

    return ObjectiveValue(
        num_edges=config.edge_weight * overlay.num_edges,
        avg_latency=config.latency_weight * avg_latency,
        connectivity_penalty=config.connectivity_weight * connectivity_violations,
        path_penalty=config.path_weight * unreachable,
        rank_penalty=config.rank_weight * _rank_penalty(overlay, ranks),
        priority_penalty=priority_penalty,
    )
