"""Overlay structures and their optimization (paper §V).

The package provides:

* :class:`~repro.overlay.base.Overlay` — the layered, directed dissemination
  structure every protocol component consumes (entry points, predecessor /
  successor maps, depth labels);
* :mod:`~repro.overlay.robust_tree` — Algorithm 1 (robust-tree construction);
* :mod:`~repro.overlay.objective` — the objective function of Eq. (1);
* :mod:`~repro.overlay.annealing` — Algorithms 2 and 3 (simulated annealing
  with rank-penalty role balancing);
* comparison structures for Fig. 2 (:mod:`chordal_ring`, :mod:`hypercube`,
  :mod:`random_graph`);
* :mod:`~repro.overlay.encoding` — Algorithm 5 (compact signed tree encoding);
* :mod:`~repro.overlay.paths` — vertex-disjoint path discovery used by senders
  to reach the ``f+1`` entry points.
"""

from .annealing import AnnealingConfig, GenerateNeighborConfig, anneal, generate_neighbor
from .base import Overlay, OverlaySpace, PhysicalSpace, TransportSpace
from .chordal_ring import build_chordal_ring
from .encoding import EncodedOverlay, OverlayCertificate, decode_overlay, encode_overlay
from .hypercube import build_hypercube
from .objective import ObjectiveConfig, ObjectiveValue, evaluate_overlay
from .paths import find_disjoint_paths
from .random_graph import build_random_connected_overlay
from .rank import RankTracker
from .robust_tree import build_overlay_family, build_robust_tree

__all__ = [
    "AnnealingConfig",
    "EncodedOverlay",
    "GenerateNeighborConfig",
    "ObjectiveConfig",
    "ObjectiveValue",
    "Overlay",
    "OverlayCertificate",
    "OverlaySpace",
    "PhysicalSpace",
    "RankTracker",
    "TransportSpace",
    "anneal",
    "build_chordal_ring",
    "build_hypercube",
    "build_overlay_family",
    "build_random_connected_overlay",
    "build_robust_tree",
    "decode_overlay",
    "encode_overlay",
    "evaluate_overlay",
    "find_disjoint_paths",
    "generate_neighbor",
]
