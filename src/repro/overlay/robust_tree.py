"""Robust-tree construction — Algorithm 1 of the paper.

Construction proceeds in three stages:

1. **Entry points** — ``f+1`` roots at depth 0, chosen for role balance
   (accumulated rank, see :mod:`repro.overlay.rank`) with latency as the
   tiebreaker.
2. **Layered growth** — layer ``d`` admits up to ``2^d (f+1)`` nodes that are
   connected (in the overlay space) to *all* nodes of layer ``d-1``; each new
   node is wired to every node of the previous layer, which is what makes the
   structure *robust*: ``f`` faulty parents cannot cut a child off.
3. **Missing nodes** — nodes that never matched the doubling pattern (possible
   when building over the sparse physical graph) are attached with ``f+1``
   lowest-latency edges to existing members.

The resulting tree deliberately over-provisions edges; call sites then run
:func:`prune_to_minimal` and/or :func:`repro.overlay.annealing.anneal` to trim
it to a low-latency ``f+1``-connected subset, per §V-B.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import TopologyError
from ..net.topology import PhysicalNetwork
from ..utils.rng import derive_rng
from .annealing import AnnealingConfig, anneal
from .base import Overlay, OverlaySpace, TransportSpace
from .objective import ObjectiveConfig
from .rank import RankTracker

__all__ = [
    "RobustTreeConfig",
    "build_robust_tree",
    "prune_to_minimal",
    "build_overlay_family",
]

# Back-compat alias; the constant now lives next to the default
# OverlaySpace.average_latency implementation it parameterizes.
from .base import LATENCY_SAMPLE_SIZE as _LATENCY_SAMPLE_SIZE  # noqa: E402


@dataclass(frozen=True, slots=True)
class RobustTreeConfig:
    """Knobs for Algorithm 1.

    ``branching_base`` is the layer growth factor (the paper doubles);
    ``layer_connect_count`` optionally caps how many previous-layer parents a
    new node is wired to (``None`` = all of them, the paper's construction —
    quadratic in layer width, prune afterwards).
    """

    branching_base: int = 2
    layer_connect_count: int | None = None

    def __post_init__(self) -> None:
        if self.branching_base < 2:
            raise TopologyError("branching_base must be at least 2")
        if self.layer_connect_count is not None and self.layer_connect_count < 1:
            raise TopologyError("layer_connect_count must be positive when set")


def _average_latency_to_peers(
    node: int, peers: list[int], space: OverlaySpace, rng: random.Random
) -> float:
    """Mean latency from *node* to a deterministic sample of *peers*.

    Delegates to :meth:`OverlaySpace.average_latency`, whose default is this
    function's historical body (spaces with closed-form means override it).
    """

    return space.average_latency(node, peers, rng)


def build_robust_tree(
    node_ids: list[int],
    space: OverlaySpace,
    f: int,
    overlay_id: int,
    ranks: RankTracker,
    config: RobustTreeConfig | None = None,
    seed: int = 0,
) -> Overlay:
    """Run Algorithm 1 once, producing one (unpruned) robust tree.

    Updates *ranks* with each node's depth (lines 22–24) so subsequent calls
    balance roles across the family.
    """

    if config is None:
        config = RobustTreeConfig()
    if len(node_ids) < f + 1:
        raise TopologyError(f"{len(node_ids)} nodes cannot host f+1={f + 1} entry points")

    rng = derive_rng(seed, "robust-tree", overlay_id)
    all_nodes = sorted(node_ids)

    # --- Stage 1: entry points (lines 3–6) ----------------------------
    latency_cache: dict[int, float] = {}

    def latency_key(node: int) -> float:
        if node not in latency_cache:
            latency_cache[node] = _average_latency_to_peers(node, all_nodes, space, rng)
        return latency_cache[node]

    # The first entry is the least-favoured node overall; the other f come
    # from its neighbourhood so the entry set shares common neighbours —
    # without that, no node can satisfy "connected to all nodes of the
    # previous rank" over a sparse physical graph.  (In transport space the
    # neighbourhood is everyone, so this reduces to plain rank selection.)
    first = ranks.select_for_near_root(all_nodes, 1, latency_key)[0]
    if space.complete:
        nearby = [n for n in all_nodes if n != first]
    else:
        nearby = [n for n in all_nodes if n != first and space.are_connected(first, n)]
    pool = nearby if len(nearby) >= f else [n for n in all_nodes if n != first]
    entries = [first] + ranks.select_for_near_root(pool, f, latency_key)
    overlay = Overlay.empty(overlay_id, f, entries)
    remaining = [n for n in all_nodes if n not in set(entries)]

    # --- Stage 2: layered growth (lines 8–15) --------------------------
    depth = 1
    previous_layer = list(entries)
    while remaining:
        capacity = (config.branching_base**depth) * (f + 1)
        if space.complete:
            # Every pair is connectable: the scan below would accept all of
            # remaining, at O(|remaining| × |layer|) are_connected calls.
            candidates = remaining
        else:
            candidates = [
                n
                for n in remaining
                if all(space.are_connected(n, parent) for parent in previous_layer)
            ]
        if not candidates:
            break

        # One layer-mean function per layer; the default closure reproduces
        # the historical per-candidate sum exactly, closed-form spaces make
        # it O(1) per candidate (see OverlaySpace.layer_latency_fn).
        layer_latency = space.layer_latency_fn(previous_layer)

        selected = ranks.select_for_near_root(candidates, capacity, layer_latency)
        for node in selected:
            overlay.add_node(node, depth)
            parents = previous_layer
            if (
                config.layer_connect_count is not None
                and len(parents) > config.layer_connect_count
            ):
                parents = space.nearest_parents(
                    node, previous_layer, max(config.layer_connect_count, f + 1)
                )
            for parent in parents:
                overlay.add_edge(parent, node)
        chosen = set(selected)
        remaining = [n for n in remaining if n not in chosen]
        previous_layer = selected
        depth += 1

    # --- Stage 3: missing nodes (lines 17–21) ---------------------------
    if remaining:
        _attach_missing_nodes(overlay, space, remaining, all_nodes, f)

    # --- Rank update (lines 22–24) --------------------------------------
    ranks.absorb_overlay(overlay.depth_of)
    return overlay


def _attach_missing_nodes(
    overlay: Overlay,
    space: OverlaySpace,
    remaining: list[int],
    all_nodes: list[int],
    f: int,
) -> None:
    """Attach every remaining node with ``f+1`` strictly shallower parents.

    A greedy "attach when f+1 neighbours joined" pass deadlocks on sparse
    physical graphs (clusters of pending nodes whose neighbours are all
    pending).  Instead we compute a depth fixpoint: a pending node's depth is
    one more than the ``(f+1)``-th smallest depth among its neighbours —
    which is exactly the smallest depth at which ``f+1`` strictly shallower
    parents exist.  On an ``f+1``-connected graph the fixpoint assigns every
    node a finite depth.
    """

    import math

    depth: dict[int, float] = {n: math.inf for n in remaining}
    for member, member_depth in overlay.depth_of.items():
        depth[member] = member_depth

    neighbours = {
        node: [m for m in all_nodes if m != node and space.are_connected(node, m)]
        for node in remaining
    }
    changed = True
    while changed:
        changed = False
        for node in remaining:
            finite = sorted(depth[m] for m in neighbours[node] if depth[m] < depth[node])
            if len(finite) < f + 1:
                continue
            candidate = finite[f] + 1
            if candidate < depth[node]:
                depth[node] = candidate
                changed = True
    stuck = [n for n in remaining if math.isinf(depth[n])]
    if stuck:
        raise TopologyError(
            f"nodes {stuck[:5]} cannot reach f+1 = {f + 1} shallower neighbours; "
            "the physical graph is too sparse"
        )

    for node in sorted(remaining, key=lambda n: (depth[n], n)):
        parents = [m for m in neighbours[node] if depth[m] < depth[node]]
        parents.sort(key=lambda m: (space.latency(m, node), m))
        overlay.add_node(node, int(depth[node]))
        for parent in parents[: f + 1]:
            overlay.add_edge(parent, node)


def prune_to_minimal(overlay: Overlay, space: OverlaySpace) -> Overlay:
    """Trim each node's predecessors to its ``f+1`` lowest-latency parents.

    This is the deterministic bulk of the "excess links pruned" step of §V-B;
    simulated annealing then fine-tunes the remainder.  Reachability is
    preserved because every surviving predecessor is strictly shallower.
    """

    pruned = overlay.copy()
    for node in pruned.nodes():
        needed = pruned.required_predecessors(node)
        preds = pruned.predecessors.get(node, [])
        if len(preds) <= max(needed, pruned.f + 1):
            continue
        keep = sorted(preds, key=lambda p: (space.latency(p, node), p))[
            : max(needed, pruned.f + 1)
        ]
        for parent in list(preds):
            if parent not in keep:
                pruned.remove_edge(parent, node)
    return pruned


def build_overlay_family(
    physical: PhysicalNetwork,
    f: int,
    k: int,
    space: OverlaySpace | None = None,
    tree_config: RobustTreeConfig | None = None,
    annealing_config: AnnealingConfig | None = None,
    objective_config: ObjectiveConfig | None = None,
    optimize: bool = True,
    rank_balancing: bool = True,
    seed: int = 0,
) -> tuple[list[Overlay], RankTracker]:
    """Build and optimize the ``k`` robust-tree overlays HERMES uses.

    Returns the overlays (validated) and the final rank tracker (whose
    snapshot is what Fig. 4 plots).  ``rank_balancing=False`` disables the
    accumulated-rank rotation between overlays (an ablation: every overlay is
    then built as if it were the first, so roles concentrate).
    """

    if k < 1:
        raise TopologyError(f"need at least one overlay, got k={k}")
    if space is None:
        space = TransportSpace(physical)
    ranks = RankTracker(physical.nodes())
    overlays: list[Overlay] = []
    for overlay_id in range(k):
        build_ranks = ranks if rank_balancing else RankTracker(physical.nodes())
        tree = build_robust_tree(
            physical.nodes(), space, f, overlay_id, build_ranks, tree_config, seed=seed
        )
        if not rank_balancing:
            # Keep the global tracker informed for Fig. 4 accounting even
            # though construction ignored it.
            ranks.absorb_overlay(tree.depth_of)
        if optimize:
            tree = prune_to_minimal(tree, space)
            tree = anneal(
                tree,
                space,
                build_ranks,
                config=annealing_config,
                objective_config=objective_config,
                rng=derive_rng(seed, "anneal", overlay_id),
            )
        tree.validate(expected_nodes=physical.nodes())
        overlays.append(tree)
    return overlays, ranks
