"""Vertex-disjoint path discovery.

Senders forward each message to the selected overlay's ``f+1`` entry points
through ``f+1`` vertex-disjoint paths (§IV, dissemination step 1), so that
``f`` faulty intermediaries cannot block the hand-off.  We find the paths with
a max-flow formulation over the physical graph: a virtual super-sink attached
to all targets, node capacities 1 (except source/targets).
"""

from __future__ import annotations

import networkx as nx

from ..errors import TopologyError

__all__ = ["find_disjoint_paths"]


def find_disjoint_paths(
    graph: nx.Graph,
    source: int,
    targets: list[int],
    count: int,
) -> list[list[int]]:
    """Return up to *count* internally vertex-disjoint paths from *source*,
    collectively covering as many *targets* as possible (one path per target).

    Each returned path ends at a distinct target.  A target adjacent to (or
    equal to) the source yields the trivial path.  Raises
    :class:`TopologyError` when fewer than *count* disjoint paths exist.
    """

    if count < 1:
        raise TopologyError(f"count must be positive, got {count}")
    unique_targets = list(dict.fromkeys(targets))
    if len(unique_targets) < count:
        raise TopologyError(
            f"need {count} distinct targets, got {len(unique_targets)}"
        )
    if source in unique_targets:
        # A sender that *is* an entry point keeps its own copy; route the
        # remaining paths to the other targets.
        unique_targets = [t for t in unique_targets if t != source]
        rest = find_disjoint_paths(graph, source, unique_targets, count - 1) if count > 1 else []
        return [[source]] + rest

    sink = object()  # hashable sentinel never colliding with node ids
    augmented = nx.Graph(graph)
    augmented.add_node(sink)
    for target in unique_targets:
        augmented.add_edge(target, sink)

    try:
        raw_paths = list(nx.node_disjoint_paths(augmented, source, sink))
    except nx.NetworkXNoPath:
        raise TopologyError(f"no path from {source} to any target") from None

    paths = [path[:-1] for path in raw_paths]  # strip the virtual sink
    if len(paths) < count:
        raise TopologyError(
            f"only {len(paths)} vertex-disjoint paths from {source} to "
            f"{unique_targets} (need {count})"
        )
    # Prefer short paths; keep at most one per target (guaranteed disjoint).
    paths.sort(key=len)
    return paths[:count]
