"""Accumulated-rank bookkeeping for role balancing across overlays (§V-B).

After each overlay is built, every node's accumulated rank grows by its depth
in that overlay (Alg. 1, lines 22–24).  A node that has mostly sat near the
leaves therefore carries a *high* accumulated rank, and §V-B designates such
nodes as "preferable candidates for near-root positions" in the next overlay.

Note on the paper's wording: Algorithm 1 says entry points are chosen among
nodes "with lowest accumulated rank", which — combined with the +depth update —
would keep the same nodes near the root forever, contradicting §V-B and the
balanced role distribution of Fig. 4.  We follow the prose and the figure:
near-root positions go to the nodes with the *highest* accumulated rank (the
previously least-favoured ones).  This is equivalent to reading Alg. 1's rank
update as "+distance from the leaves".
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

__all__ = ["RankTracker"]


class RankTracker:
    """Tracks each node's accumulated rank across constructed overlays."""

    def __init__(self, node_ids: Iterable[int] = ()) -> None:
        self._ranks: dict[int, int] = {n: 0 for n in node_ids}

    def rank(self, node: int) -> int:
        return self._ranks.get(node, 0)

    def add_depth(self, node: int, depth: int) -> None:
        """Record that *node* sat at *depth* in the overlay just built."""

        if depth < 0:
            raise ValueError(f"depth must be non-negative, got {depth}")
        self._ranks[node] = self._ranks.get(node, 0) + depth

    def absorb_overlay(self, depth_of: dict[int, int]) -> None:
        """Apply Alg. 1 lines 22–24 for a whole overlay at once."""

        for node, depth in depth_of.items():
            self.add_depth(node, depth)

    def max_rank(self) -> int:
        return max(self._ranks.values(), default=0)

    def snapshot(self) -> dict[int, int]:
        return dict(self._ranks)

    def select_for_near_root(
        self,
        candidates: Sequence[int],
        count: int,
        latency_key: Callable[[int], float],
    ) -> list[int]:
        """Pick *count* candidates for a near-root role.

        Preference order: highest accumulated rank (least favoured so far),
        then lowest latency, then node id for determinism.
        """

        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        ordered = sorted(
            candidates, key=lambda n: (-self.rank(n), latency_key(n), n)
        )
        return ordered[:count]

    def forget(self, node: int) -> None:
        """Drop a departed node (permissionless churn)."""

        self._ranks.pop(node, None)
