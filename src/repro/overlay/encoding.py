"""Robust Tree Encoding — Algorithm 5 of the paper.

Every node must know, for each of the ``k`` overlays, its predecessors,
successors and the entry points, and must be able to check that the overlay
description it holds is the one a ``2f+1`` quorum of the committee signed.
This module provides:

* a compact, deterministic binary encoding of an :class:`Overlay` (varint
  based; byte-identical across processes, so signatures transfer);
* :class:`OverlayCertificate` — the encoded overlay together with the
  committee's combined threshold signature over its hash;
* :func:`certify_overlays` — the committee-side flow of Algorithm 5 (each
  member encodes, partially signs; the source combines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..crypto.backend import CryptoBackend
from ..errors import TopologyError
from .base import Overlay

__all__ = [
    "EncodedOverlay",
    "OverlayCertificate",
    "encode_overlay",
    "decode_overlay",
    "certify_overlays",
]

_MAGIC = 0x48  # 'H' for HERMES
_VERSION = 1


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"varints are unsigned, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise TopologyError("truncated overlay encoding")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise TopologyError("varint overflow in overlay encoding")


@dataclass(frozen=True, slots=True)
class EncodedOverlay:
    """The deterministic wire form of one overlay."""

    overlay_id: int
    data: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.data)


def encode_overlay(overlay: Overlay) -> EncodedOverlay:
    """Serialize *overlay* into the compact canonical byte form."""

    out = bytearray([_MAGIC, _VERSION])
    _write_varint(out, overlay.overlay_id)
    _write_varint(out, overlay.f)
    _write_varint(out, len(overlay.entry_points))
    for entry in overlay.entry_points:
        _write_varint(out, entry)

    nodes = overlay.nodes()
    _write_varint(out, len(nodes))
    for node in nodes:
        _write_varint(out, node)
        _write_varint(out, overlay.depth_of[node])

    for node in nodes:
        children = sorted(overlay.successors.get(node, ()))
        _write_varint(out, len(children))
        previous = 0
        for child in children:
            _write_varint(out, child - previous)  # delta encoding
            previous = child
    return EncodedOverlay(overlay_id=overlay.overlay_id, data=bytes(out))


def decode_overlay(encoded: EncodedOverlay | bytes) -> Overlay:
    """Reconstruct the :class:`Overlay` from its canonical byte form."""

    data = encoded.data if isinstance(encoded, EncodedOverlay) else encoded
    if len(data) < 2 or data[0] != _MAGIC or data[1] != _VERSION:
        raise TopologyError("not a HERMES overlay encoding")
    offset = 2
    overlay_id, offset = _read_varint(data, offset)
    f, offset = _read_varint(data, offset)
    entry_count, offset = _read_varint(data, offset)
    entries = []
    for _ in range(entry_count):
        entry, offset = _read_varint(data, offset)
        entries.append(entry)

    node_count, offset = _read_varint(data, offset)
    depths: dict[int, int] = {}
    order: list[int] = []
    for _ in range(node_count):
        node, offset = _read_varint(data, offset)
        depth, offset = _read_varint(data, offset)
        depths[node] = depth
        order.append(node)

    overlay = Overlay.empty(overlay_id, f, entries)
    for node in order:
        if node not in overlay.depth_of:
            overlay.add_node(node, depths[node])

    for node in order:
        child_count, offset = _read_varint(data, offset)
        previous = 0
        for _ in range(child_count):
            delta, offset = _read_varint(data, offset)
            child = previous + delta
            previous = child
            overlay.add_edge(node, child)
    if offset != len(data):
        raise TopologyError("trailing bytes in overlay encoding")
    return overlay


@dataclass(frozen=True, slots=True)
class OverlayCertificate:
    """An encoded overlay plus the committee's combined threshold signature."""

    encoded: EncodedOverlay
    signature: object

    @property
    def size_bytes(self) -> int:
        from ..crypto.backend import THRESHOLD_SIG_SIZE_BYTES

        return self.encoded.size_bytes + THRESHOLD_SIG_SIZE_BYTES

    def verify(self, backend: CryptoBackend) -> bool:
        """Check the committee's combined signature over the encoding's hash."""

        digest = backend.hash(self.encoded.data)
        return backend.verify_combined(digest, self.signature)


def certify_overlays(
    overlays: Sequence[Overlay],
    backend: CryptoBackend,
    committee: Sequence[int],
) -> list[OverlayCertificate]:
    """Algorithm 5: each committee member encodes and partially signs every
    overlay; the combined threshold signatures form the certificates."""

    certificates = []
    for overlay in overlays:
        encoded = encode_overlay(overlay)
        digest = backend.hash(encoded.data)
        partials = [backend.partial_sign(member, digest) for member in committee]
        signature = backend.combine(digest, partials)
        certificates.append(OverlayCertificate(encoded=encoded, signature=signature))
    return certificates
