"""Bracha reliable broadcast (Information & Computation, 1987).

For ``n >= 3f + 1`` participants the protocol guarantees, despite ``f``
Byzantine members:

* **Validity** — a payload broadcast by a correct source is delivered by all
  correct members;
* **Consistency** — no two correct members deliver different payloads for the
  same ``(source, sequence)`` slot;
* **Totality** — if one correct member delivers, all correct members do.

Message flow per slot: the source SENDs its payload; members ECHO the first
payload they see; on ``2f+1`` matching ECHOs *or* ``f+1`` matching READYs a
member sends READY; on ``2f+1`` matching READYs it delivers.

:class:`BrachaContext` is an embeddable component — protocol nodes own one and
feed it messages — so the TRS committee can run RBC inside HERMES nodes, while
:class:`BrachaNode` is a standalone actor for direct testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from ..net.events import Message
from ..net.node import Network, ProtocolNode

__all__ = ["BrachaContext", "BrachaNode"]

# Payload sizes for bandwidth accounting: a slot id plus a 32-byte digest.
_RBC_PAYLOAD_BYTES = 48


@dataclass
class _SlotState:
    """Per-(source, sequence) protocol state at one member."""

    payload: Hashable | None = None
    echoed: bool = False
    readied: bool = False
    delivered: bool = False
    echoes: dict[Hashable, set[int]] = field(default_factory=dict)
    readies: dict[Hashable, set[int]] = field(default_factory=dict)
    # First local activity on the slot, for the rbc.round_ms metric.
    opened_ms: float | None = None


class BrachaContext:
    """Bracha RBC among a fixed member set, embedded in a protocol node.

    Parameters
    ----------
    node:
        The owning protocol node (used for sending and identity).
    members:
        The ``3f+1`` participants (must include the owner).
    f:
        Fault bound.
    on_deliver:
        Callback ``(source, sequence, payload)`` invoked exactly once per slot.
    kind_prefix:
        Namespace for the message kinds, so several RBC contexts can coexist
        on one node.
    """

    def __init__(
        self,
        node: ProtocolNode,
        members: Sequence[int],
        f: int,
        on_deliver: Callable[[int, int, Hashable], None],
        kind_prefix: str = "rbc",
    ) -> None:
        if node.node_id not in members:
            raise ValueError("the owning node must be a committee member")
        if len(members) < 3 * f + 1:
            raise ValueError(
                f"{len(members)} members cannot tolerate f={f} (need 3f+1)"
            )
        self._node = node
        self.members = tuple(sorted(set(members)))
        self.f = f
        self._on_deliver = on_deliver
        self._prefix = kind_prefix
        self._slots: dict[tuple[int, int], _SlotState] = {}

    # -- message kinds --------------------------------------------------

    @property
    def send_kind(self) -> str:
        return f"{self._prefix}-send"

    @property
    def echo_kind(self) -> str:
        return f"{self._prefix}-echo"

    @property
    def ready_kind(self) -> str:
        return f"{self._prefix}-ready"

    def handles(self, kind: str) -> bool:
        return kind in (self.send_kind, self.echo_kind, self.ready_kind)

    # -- protocol -------------------------------------------------------

    def broadcast(self, sequence: int, payload: Hashable) -> None:
        """Act as source for slot ``(self, sequence)``."""

        body = (self._node.node_id, sequence, payload)
        message = Message(self.send_kind, body, _RBC_PAYLOAD_BYTES)
        for member in self.members:
            if member == self._node.node_id:
                self._on_send(self._node.node_id, body)
            else:
                self._node.send(member, message)

    def inject(self, source: int, sequence: int, payload: Hashable) -> None:
        """Enter the echo phase for an externally received payload.

        The TRS flow (Alg. 4) starts with a *non-member* source sending
        ``(i, H(m))`` to every committee member; each member then treats that
        request as the SEND of slot ``(source, i)`` and echoes it.
        """

        state = self._slot(source, sequence)
        if state.echoed:
            return
        state.payload = payload
        state.echoed = True
        self._multicast(self.echo_kind, (source, sequence, payload))

    def handle(self, sender: int, message: Message) -> bool:
        """Process an RBC message; returns False when the kind is foreign."""

        if sender not in self.members:
            return message.kind in (self.send_kind, self.echo_kind, self.ready_kind)
        if message.kind == self.send_kind:
            self._on_send(sender, message.payload)
        elif message.kind == self.echo_kind:
            self._on_echo(sender, message.payload)
        elif message.kind == self.ready_kind:
            self._on_ready(sender, message.payload)
        else:
            return False
        return True

    # -- internals ------------------------------------------------------

    def _slot(self, source: int, sequence: int) -> _SlotState:
        state = self._slots.get((source, sequence))
        if state is None:
            state = _SlotState(opened_ms=self._node.now)
            self._slots[(source, sequence)] = state
        return state

    def _multicast(self, kind: str, body: object) -> None:
        message = Message(kind, body, _RBC_PAYLOAD_BYTES)
        for member in self.members:
            if member == self._node.node_id:
                # Loopback: handle our own echo/ready immediately.
                if kind == self.echo_kind:
                    self._on_echo(self._node.node_id, body)
                else:
                    self._on_ready(self._node.node_id, body)
            else:
                self._node.send(member, message)

    def _on_send(self, sender: int, body: object) -> None:
        source, sequence, payload = body
        if sender != source:
            return  # only the source may originate SEND for its slot
        state = self._slot(source, sequence)
        if state.echoed:
            return
        state.payload = payload
        state.echoed = True
        self._multicast(self.echo_kind, (source, sequence, payload))

    def _on_echo(self, sender: int, body: object) -> None:
        source, sequence, payload = body
        state = self._slot(source, sequence)
        supporters = state.echoes.setdefault(payload, set())
        supporters.add(sender)
        if len(supporters) >= 2 * self.f + 1:
            self._maybe_ready(source, sequence, payload, state)

    def _on_ready(self, sender: int, body: object) -> None:
        source, sequence, payload = body
        state = self._slot(source, sequence)
        supporters = state.readies.setdefault(payload, set())
        supporters.add(sender)
        if len(supporters) >= self.f + 1:
            self._maybe_ready(source, sequence, payload, state)
        if len(supporters) >= 2 * self.f + 1 and not state.delivered:
            state.delivered = True
            obs = getattr(self._node.network, "obs", None)
            if obs is not None and state.opened_ms is not None:
                # Local view of the round: first slot activity → delivery.
                obs.metrics.histogram("rbc.round_ms", context=self._prefix).observe(
                    self._node.now - state.opened_ms
                )
            self._on_deliver(source, sequence, payload)

    def _maybe_ready(
        self, source: int, sequence: int, payload: Hashable, state: _SlotState
    ) -> None:
        if state.readied:
            return
        state.readied = True
        # Echo amplification: a member that never saw the SEND still echoes
        # once the payload is attested, preserving totality.
        if not state.echoed:
            state.echoed = True
            state.payload = payload
            self._multicast(self.echo_kind, (source, sequence, payload))
        self._multicast(self.ready_kind, (source, sequence, payload))


class BrachaNode(ProtocolNode):
    """A standalone RBC participant, for tests and the RBC micro-benchmarks."""

    def __init__(
        self, node_id: int, network: Network, members: Sequence[int], f: int
    ) -> None:
        super().__init__(node_id, network)
        self.delivered: list[tuple[int, int, Hashable]] = []
        self.context = BrachaContext(
            self, members, f, on_deliver=self._record_delivery
        )

    def _record_delivery(self, source: int, sequence: int, payload: Hashable) -> None:
        self.delivered.append((source, sequence, payload))

    def broadcast(self, sequence: int, payload: Hashable) -> None:
        self.context.broadcast(sequence, payload)

    def on_message(self, sender: int, message: Message) -> None:
        self.context.handle(sender, message)
