"""Bracha's asynchronous Byzantine reliable broadcast.

Used by the TRS committee (§VI-A) to agree on the ``(i, H(m))`` binding before
any member contributes a partial signature, ensuring no committee member can
be tricked into signing a different binding than its peers.
"""

from .bracha import BrachaContext, BrachaNode

__all__ = ["BrachaContext", "BrachaNode"]
