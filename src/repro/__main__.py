"""``python -m repro`` — run the full paper-reproduction report.

Delegates to :mod:`repro.experiments.report`; see ``--help`` for options.
"""

from .experiments.report import main

if __name__ == "__main__":
    main()
