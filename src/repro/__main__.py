"""``python -m repro`` — CLI entry point.

``python -m repro [report options]`` runs the full paper-reproduction
report (see :mod:`repro.experiments.report`); ``python -m repro sweep ...``
runs ad-hoc parameter sweeps through :mod:`repro.runner` (see
``python -m repro sweep --help`` and ``docs/runner.md``); ``python -m repro
chaos ...`` runs fault-injection campaigns with online invariant checking
(see ``python -m repro chaos --help`` and ``docs/chaos.md``); ``python -m
repro load ...`` sweeps offered load under finite link capacity (see
``python -m repro load --help`` and ``docs/load.md``); ``python -m repro
adversary ...`` runs attack strategies from the zoo against one protocol
(see ``python -m repro adversary --help`` and ``docs/adversary.md``); ``python -m
repro population ...`` sweeps sustained client-population load with a fee
market and bounded mempools (see ``python -m repro population --help`` and
``docs/population.md``); ``python -m repro shard ...`` runs sharded
multi-proposer deployments and the cross-shard partition drill (see
``python -m repro shard --help`` and ``docs/sharding.md``);
``python -m repro analyze / report / bench-gate`` run the trace analytics,
run-report and
regression-gate front ends (see :mod:`repro.obs.analysis` and
``docs/observability.md``); ``python -m repro analyze-sweep`` attributes a
sweep's wall time from a ``repro.sweeptrace/1`` timeline and ``python -m
repro bench history`` folds bench records into cross-run trajectories (see
``docs/observability.md``, "Measuring a sweep").
"""

import sys


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        from .runner.cli import main as sweep_main

        return sweep_main(argv[1:])
    if argv and argv[0] == "chaos":
        from .chaos.cli import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "load":
        from .load.cli import main as load_main

        return load_main(argv[1:])
    if argv and argv[0] == "adversary":
        from .adversary.cli import main as adversary_main

        return adversary_main(argv[1:])
    if argv and argv[0] == "population":
        from .population.cli import main as population_main

        return population_main(argv[1:])
    if argv and argv[0] == "shard":
        from .sharding.cli import main as shard_main

        return shard_main(argv[1:])
    if argv and argv[0] == "analyze":
        from .obs.analysis.cli import analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "report":
        from .obs.analysis.cli import report_main

        return report_main(argv[1:])
    if argv and argv[0] == "bench-gate":
        from .obs.analysis.cli import bench_gate_main

        return bench_gate_main(argv[1:])
    if argv and argv[0] == "analyze-sweep":
        from .obs.analysis.cli import analyze_sweep_main

        return analyze_sweep_main(argv[1:])
    if argv and argv[0] == "bench":
        if len(argv) < 2 or argv[1] != "history":
            print("usage: python -m repro bench history [RECORD ...]", file=sys.stderr)
            return 2
        from .obs.analysis.cli import bench_history_main

        return bench_history_main(argv[2:])
    from .experiments.report import main as report_main

    report_main(argv)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
