"""Machine-readable run manifests.

A manifest is the single JSON document that summarizes one observed run:
experiment metadata, the full metrics snapshot, trace-buffer accounting, and
(when profiling was on) the wall-clock profile.  Figure scripts emit one next
to the JSONL trace (``--trace out.jsonl`` → ``out.manifest.json``) so a
plotted number can always be traced back to the raw measurements that
produced it.

Schema (version ``repro.obs/1``)::

    {
      "schema": "repro.obs/1",
      "meta": {...},                    # caller-provided, e.g. figure + config
      "metrics": {"counters": [...], "gauges": [...], "histograms": [...]},
      "trace": {"events": n, "spans": n,
                "events_dropped": n, "spans_dropped": n},
      "profile": {...} | null           # SimulatorProfile.to_json()
    }

Everything except ``profile`` is deterministic for a fixed seed.
"""

from __future__ import annotations

import json
import platform
import subprocess
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from . import Observability

__all__ = ["MANIFEST_SCHEMA", "build_manifest", "run_manifest", "write_manifest"]

MANIFEST_SCHEMA = "repro.obs/1"


def _git_sha() -> str | None:
    """The checkout's HEAD commit, or None outside a git working tree."""

    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return None
    sha = result.stdout.strip()
    return sha if result.returncode == 0 and sha else None


def run_manifest(**extra: Any) -> dict[str, Any]:
    """Provenance stamp for benchmark records and run reports.

    Answers "*what* produced this number": the git commit, interpreter and
    platform, plus any caller-supplied run parameters (seed, N, ...).  Unlike
    :func:`build_manifest` this needs no live :class:`Observability` bundle,
    so BENCH_*.json emitters can stamp their records without instrumenting
    the measured run.
    """

    manifest: dict[str, Any] = {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    manifest.update(extra)
    return manifest


def build_manifest(
    obs: "Observability", meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Assemble the JSON-ready manifest for one observed run."""

    tracer = obs.tracer
    profile = obs.profiler.snapshot() if obs.profiler is not None else None
    return {
        "schema": MANIFEST_SCHEMA,
        "meta": dict(meta or {}),
        "metrics": obs.metrics.snapshot(),
        "trace": {
            "events": len(tracer.events),
            "spans": len(tracer.spans),
            "events_dropped": tracer.events_dropped,
            "spans_dropped": tracer.spans_dropped,
        },
        "profile": profile.to_json() if profile is not None else None,
    }


def write_manifest(
    path: str, obs: "Observability", meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Write the manifest to *path* and return it."""

    manifest = build_manifest(obs, meta=meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest
