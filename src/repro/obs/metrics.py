"""Counters, gauges and histograms that protocols register against.

A :class:`MetricsRegistry` hands out instruments keyed by ``(name, labels)``
— repeated calls with the same key return the same instrument, so call sites
never need to pre-register anything:

    registry.counter("net.messages.sent", kind="disseminate").inc()
    registry.histogram("hermes.trs.latency_ms").observe(12.5)

Histogram percentiles delegate to :func:`repro.net.stats.percentile`, so a
metrics snapshot and a :class:`~repro.net.stats.LatencySummary` computed from
the same values agree exactly — the run-manifest invariant the experiment
harness relies on.

:meth:`MetricsRegistry.snapshot` returns a deterministic (sorted) JSON-ready
dict; it contains no wall-clock data, so a seeded run snapshots identically
every time.  :meth:`MetricsRegistry.render_text` renders the same state in
Prometheus text-exposition style for eyeballing and scrape-shaped tooling.

Empty-histogram semantics are pinned: :attr:`Histogram.mean` and
:meth:`Histogram.percentile` raise :class:`ValueError` on a histogram with no
observations (there is no meaningful number to return, and silently emitting
``0.0`` or ``nan`` would poison downstream summaries); guard with
:attr:`Histogram.count` first.  :meth:`Histogram.snapshot` on an empty
histogram is non-raising and reports ``count: 0`` with no moment fields.
"""

from __future__ import annotations

import re
from typing import Any, Iterator

from ..net.stats import percentile

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (amount={amount})")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def track_max(self, value: float) -> None:
        """Keep the high-water mark of an observed quantity."""

        if value > self.value:
            self.value = value

    def snapshot(self) -> dict[str, Any]:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Histogram:
    """A distribution of observed values with exact percentiles.

    Values are retained verbatim (simulation workloads are bounded), so
    :meth:`percentile` is exact and matches
    :func:`repro.net.stats.percentile` on the same population.
    """

    __slots__ = ("name", "labels", "values")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean; raises :class:`ValueError` on an empty histogram."""

        if not self.values:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self.sum / len(self.values)

    def percentile(self, pct: float) -> float:
        """Exact linear-interpolation percentile (see ``repro.net.stats``).

        Raises :class:`ValueError` on an empty histogram, matching
        :attr:`mean` — callers check :attr:`count` before asking for moments.
        """

        return percentile(self.values, pct)

    def snapshot(self) -> dict[str, Any]:
        base: dict[str, Any] = {
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
        }
        if self.values:
            base.update(
                sum=self.sum,
                mean=self.mean,
                min=min(self.values),
                max=max(self.values),
                p5=self.percentile(5),
                p50=self.percentile(50),
                p95=self.percentile(95),
            )
        return base


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry of instruments keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelKey], Instrument] = {}

    def _get(self, cls: type, name: str, labels: dict[str, Any]) -> Instrument:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1])
            self._instruments[key] = instrument
        elif type(instrument) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)  # type: ignore[return-value]

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)  # type: ignore[return-value]

    # -- reading ---------------------------------------------------------

    def __iter__(self) -> Iterator[Instrument]:
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def __len__(self) -> int:
        return len(self._instruments)

    def find(self, name: str) -> list[Instrument]:
        """Every instrument registered under *name*, across all label sets."""

        return [inst for (n, _), inst in sorted(self._instruments.items()) if n == name]

    def snapshot(self) -> dict[str, list[dict[str, Any]]]:
        """Deterministic JSON-ready view of every instrument."""

        out: dict[str, list[dict[str, Any]]] = {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for instrument in self:
            if isinstance(instrument, Counter):
                out["counters"].append(instrument.snapshot())
            elif isinstance(instrument, Gauge):
                out["gauges"].append(instrument.snapshot())
            else:
                out["histograms"].append(instrument.snapshot())
        return out

    def render_text(self) -> str:
        """Prometheus text-exposition view of every instrument.

        Same deterministic ordering as :meth:`snapshot`.  Dotted metric names
        are sanitized to ``snake_case`` (``net.messages.sent`` →
        ``net_messages_sent``), counters get the conventional ``_total``
        suffix, and histograms render summary-style: ``_count``, ``_sum`` and
        exact ``{quantile="..."}`` sample lines (this registry keeps raw
        values, so the quantiles are exact rather than bucketed).  Empty
        histograms emit only ``_count 0`` — no made-up moments.

        >>> registry = MetricsRegistry()
        >>> registry.counter("net.messages.sent", kind="disseminate").inc(3)
        >>> print(registry.render_text().rstrip())
        # TYPE net_messages_sent counter
        net_messages_sent_total{kind="disseminate"} 3
        """

        lines: list[str] = []
        typed: set[str] = set()

        def exposition_name(raw: str) -> str:
            name = re.sub(r"[^a-zA-Z0-9_:]", "_", raw)
            if not name or not (name[0].isalpha() or name[0] in "_:"):
                name = "_" + name
            return name

        def escape(value: str) -> str:
            return (
                value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
            )

        def label_text(labels: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
            pairs = labels + extra
            if not pairs:
                return ""
            body = ",".join(f'{k}="{escape(str(v))}"' for k, v in pairs)
            return "{" + body + "}"

        def type_line(name: str, kind: str) -> None:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for instrument in self:
            name = exposition_name(instrument.name)
            if isinstance(instrument, Counter):
                type_line(name, "counter")
                lines.append(
                    f"{name}_total{label_text(instrument.labels)} {instrument.value:g}"
                )
            elif isinstance(instrument, Gauge):
                type_line(name, "gauge")
                lines.append(
                    f"{name}{label_text(instrument.labels)} {instrument.value:g}"
                )
            else:
                type_line(name, "summary")
                labels = instrument.labels
                lines.append(f"{name}_count{label_text(labels)} {instrument.count}")
                if instrument.count:
                    lines.append(
                        f"{name}_sum{label_text(labels)} {instrument.sum:g}"
                    )
                    for pct in (5.0, 50.0, 95.0):
                        quantile = (("quantile", f"{pct / 100:g}"),)
                        lines.append(
                            f"{name}{label_text(labels, quantile)} "
                            f"{instrument.percentile(pct):g}"
                        )
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        self._instruments.clear()
