"""Structured observability for the simulation stack.

Three concerns, one facade:

* :class:`~repro.obs.tracer.Tracer` — hierarchical, simulation-clock-aware
  spans plus a bounded structured-event ring buffer, exported as JSON Lines;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms that protocol layers register against (messages by type, overlay
  hops, RBC round durations, TRS latencies, mempool depth);
* :class:`~repro.obs.profiler.SimulatorProfiler` — wall-clock attribution of
  ``Simulator.run`` per callback, plus event-queue depth sampling.

The :class:`Observability` facade bundles all three.  Every component in the
stack takes ``obs=None`` by default and skips all instrumentation when it is
absent, so un-observed runs pay nothing and reproduce seed results
byte-for-byte.  Trace and metrics content is derived from the simulation
clock only, so even the *observed* artifacts are deterministic for a fixed
seed; the profiler (wall-clock) output is segregated into the manifest's
``profile`` section.

Typical use::

    from repro.obs import Observability

    obs = Observability.enabled(profile=True)
    system = HermesSystem(physical, config, obs=obs, seed=7)
    system.start(); system.submit(origin, tx); system.run(until_ms=5000)
    obs.write_trace("run.jsonl")
    obs.write_manifest("run.manifest.json", meta={"experiment": "adhoc"})

See ``docs/observability.md`` for the full concept guide and JSONL schema.
"""

from __future__ import annotations

from typing import Any

from .manifest import MANIFEST_SCHEMA, build_manifest, run_manifest, write_manifest
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import (
    CallbackStats,
    QueueSample,
    SimulatorProfile,
    SimulatorProfiler,
    callback_key,
)
from .tracer import NULL_SPAN, NullTracer, Span, TraceEvent, Tracer

__all__ = [
    "Observability",
    "TaggedObservability",
    "Tracer",
    "NullTracer",
    "Span",
    "TraceEvent",
    "NULL_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SimulatorProfiler",
    "SimulatorProfile",
    "CallbackStats",
    "QueueSample",
    "callback_key",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "run_manifest",
    "write_manifest",
]


class Observability:
    """Bundle of tracer + metrics registry + optional profiler.

    Construct with :meth:`enabled` and pass as the ``obs`` keyword accepted by
    :class:`~repro.net.node.Network`, :class:`~repro.core.HermesSystem`, the
    baseline systems and :func:`~repro.experiments.harness.protocol_factories`.
    The owning system calls :meth:`attach` to bind the simulation clock and
    install the profiler; user code normally never needs to.
    """

    __slots__ = ("tracer", "metrics", "profiler")

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        profiler: SimulatorProfiler | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler

    @classmethod
    def enabled(
        cls,
        max_trace_events: int = 65_536,
        profile: bool = False,
        queue_sample_interval: int = 256,
    ) -> "Observability":
        """A fully armed observability bundle (profiling opt-in)."""

        return cls(
            tracer=Tracer(max_events=max_trace_events),
            metrics=MetricsRegistry(),
            profiler=(
                SimulatorProfiler(queue_sample_interval=queue_sample_interval)
                if profile
                else None
            ),
        )

    # -- wiring -----------------------------------------------------------

    def bind_clock(self, clock: object) -> None:
        """Bind the tracer to a simulator (or any callable/``now`` object)."""

        self.tracer.bind_clock(clock)

    def attach(self, simulator: Any) -> None:
        """Bind the clock and, if profiling is on, install the profiler."""

        self.bind_clock(simulator)
        if self.profiler is not None and hasattr(simulator, "set_profiler"):
            simulator.set_profiler(self.profiler)

    # -- convenience passthroughs -----------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: Any) -> TraceEvent | None:
        return self.tracer.event(name, **attrs)

    # -- export -----------------------------------------------------------

    def write_trace(self, path: str) -> int:
        """Export the JSONL trace; returns the record count."""

        return self.tracer.export_jsonl(path)

    def manifest(self, meta: dict[str, Any] | None = None) -> dict[str, Any]:
        return build_manifest(self, meta=meta)

    def write_manifest(
        self, path: str, meta: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        return write_manifest(path, self, meta=meta)


class TaggedObservability(Observability):
    """A view over an existing bundle that stamps fixed attributes on output.

    The view shares the base bundle's tracer, metrics registry and profiler —
    nothing is duplicated, and everything lands in the same trace — but every
    span and event emitted *through the view* carries the constructor's tags
    in addition to the caller's attributes (caller attributes win on
    collision).  :class:`~repro.sharding.ShardedSystem` hands each per-shard
    system a ``TaggedObservability(obs, shard=i)`` so ``tx.submit`` /
    ``tx.deliver`` / ``net.send`` events are attributable per shard without
    any per-callsite changes; the trace analyzers
    (:mod:`repro.obs.analysis`) pick the ``shard`` attribute up into
    dissemination trees and report tables.

    Tagging is read-only instrumentation like the rest of the layer: it adds
    no randomness and schedules nothing, so tagged and untagged runs replay
    identically.
    """

    __slots__ = ("tags",)

    def __init__(self, base: Observability, **tags: Any) -> None:
        super().__init__(
            tracer=base.tracer, metrics=base.metrics, profiler=base.profiler
        )
        self.tags = tags

    def span(self, name: str, **attrs: Any) -> Span:
        return self.tracer.span(name, **{**self.tags, **attrs})

    def event(self, name: str, **attrs: Any) -> TraceEvent | None:
        return self.tracer.event(name, **{**self.tags, **attrs})
