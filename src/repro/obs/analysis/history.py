"""Cross-run bench trajectories (``python -m repro bench history``).

The bench gate (:mod:`~repro.obs.analysis.compare`) answers "did *this* run
regress against the committed baseline?" — a single pairwise verdict.  This
module adds the time axis: an append-only **ledger** under
``benchmarks/history/`` holds one JSONL file per benchmark
(``<name>.jsonl``), each line a full ``repro.bench/1`` record in ledger
order.  Folding the ledger (plus any freshly produced ``BENCH_*.json``
records) yields per-metric **trajectories** — value series with git-sha
provenance, unicode sparklines, and direction-aware verdicts:

* the **latest** entry of every trajectory is judged against the committed
  baseline via :func:`~repro.obs.analysis.compare.compare` (the same logic
  as the gate — one source of truth for tolerances and directions);
* a direction-aware **step anomaly** flags the latest entry moving against
  its metric's direction by more than the baseline tolerance relative to the
  *previous* entry — a slow regression that stays inside the absolute
  baseline band still shows up as a bad step.

``--check`` turns the flags into an exit code for CI; ``--append`` commits
the new records to the ledger after reporting (append last, so a crashing
analysis never half-writes history).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from ...errors import TraceReadError
from .baseline import BENCH_SCHEMA, Baseline, load_baseline
from .compare import MetricComparison, compare

__all__ = [
    "Trajectory",
    "HistoryReport",
    "append_history",
    "load_history",
    "trajectories",
    "build_history_report",
    "render_history_report",
    "sparkline",
]

#: Eight-level unicode sparkline ramp.
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Iterable[float]) -> str:
    """``[1, 2, 3]`` → ``"▁▄█"`` — a fixed-height value strip.

    A constant series renders mid-ramp (``▄``), an empty one as ``""``.

    >>> sparkline([0.0, 0.5, 1.0])
    '▁▅█'
    >>> sparkline([2.0, 2.0])
    '▄▄'
    """

    series = [float(v) for v in values]
    if not series:
        return ""
    lo, hi = min(series), max(series)
    if hi == lo:
        return _SPARK_CHARS[3] * len(series)
    top = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[round((v - lo) / (hi - lo) * top)] for v in series
    )


# ----------------------------------------------------------------------
# the ledger
# ----------------------------------------------------------------------


def _validate_record(record: Mapping[str, Any], where: str) -> None:
    if not isinstance(record, Mapping) or record.get("schema") != BENCH_SCHEMA:
        raise TraceReadError(f"{where}: not a {BENCH_SCHEMA} record")
    if not isinstance(record.get("name"), str):
        raise TraceReadError(f"{where}: missing record 'name'")
    if not isinstance(record.get("metrics"), Mapping):
        raise TraceReadError(f"{where}: 'metrics' must be an object")


def append_history(ledger_dir: str | Path, record: Mapping[str, Any]) -> Path:
    """Append one ``repro.bench/1`` record to its per-benchmark ledger file.

    Returns the ledger path written.  One line per run, canonical one-line
    JSON, append-only — the file is the benchmark's full trajectory in run
    order and diffs cleanly in review.
    """

    _validate_record(record, str(ledger_dir))
    ledger_dir = Path(ledger_dir)
    ledger_dir.mkdir(parents=True, exist_ok=True)
    path = ledger_dir / f"{record['name']}.jsonl"
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
    return path


def load_history(
    ledger_dir: str | Path, name: str | None = None
) -> dict[str, list[dict[str, Any]]]:
    """Read the ledger: benchmark name → records in append (run) order.

    A missing directory is an empty history, not an error — the first
    ``--append`` creates it.  A torn final line (interrupted append) is
    dropped; anything else malformed raises :class:`TraceReadError`.
    """

    ledger_dir = Path(ledger_dir)
    history: dict[str, list[dict[str, Any]]] = {}
    if not ledger_dir.is_dir():
        return history
    paths = (
        [ledger_dir / f"{name}.jsonl"]
        if name is not None
        else sorted(ledger_dir.glob("*.jsonl"))
    )
    for path in paths:
        if not path.exists():
            continue
        lines = path.read_text(encoding="utf-8").splitlines()
        records: list[dict[str, Any]] = []
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):  # torn tail from an interrupted append
                    break
                raise TraceReadError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            _validate_record(doc, f"{path}:{lineno}")
            records.append(doc)
        history[path.stem] = records
    return history


# ----------------------------------------------------------------------
# trajectories and verdicts
# ----------------------------------------------------------------------


@dataclass
class Trajectory:
    """One metric's value series across the ledger, oldest first."""

    bench: str
    metric: str
    values: list[float]
    shas: list[str | None]
    direction: str = "info"
    tolerance: float = 0.0
    baseline_verdict: MetricComparison | None = None

    @property
    def latest(self) -> float:
        return self.values[-1]

    @property
    def step_delta(self) -> float | None:
        """Latest minus previous value (None with fewer than two entries)."""

        if len(self.values) < 2:
            return None
        return self.values[-1] - self.values[-2]

    @property
    def step_anomaly(self) -> bool:
        """Did the latest entry move *against* its direction beyond tolerance?

        Relative to the previous ledger entry, not the baseline — this is the
        creep detector.  ``info`` metrics never flag; a zero previous value
        flags any move against the direction (nothing to be relative to).
        """

        delta = self.step_delta
        if delta is None or self.direction == "info":
            return False
        previous = self.values[-2]
        if self.direction == "lower":
            bad = delta > 0
        else:  # higher
            bad = delta < 0
        if not bad:
            return False
        if previous == 0:
            return True
        return abs(delta) / abs(previous) > self.tolerance

    @property
    def anomalous(self) -> bool:
        """Baseline regression or a direction-aware step anomaly."""

        baseline_bad = (
            self.baseline_verdict is not None and self.baseline_verdict.regressed
        )
        return baseline_bad or self.step_anomaly

    def spark(self) -> str:
        return sparkline(self.values)


def trajectories(
    records: Iterable[Mapping[str, Any]],
    *,
    baseline: Baseline | None = None,
) -> list[Trajectory]:
    """Fold one benchmark's record series into per-metric trajectories.

    Tolerances and directions come from *baseline* (the committed file stays
    the single source of truth); metrics absent from the baseline are
    ``info``.  The newest record is additionally judged against the baseline
    with the gate's own :func:`compare`.
    """

    series = list(records)
    if not series:
        return []
    bench = str(series[-1].get("name", "?"))
    verdicts: dict[str, MetricComparison] = {}
    if baseline is not None:
        verdicts = {
            c.metric: c for c in compare(series[-1], baseline).comparisons
        }

    names: list[str] = []
    for record in series:
        for key in record.get("metrics", {}):
            if key not in names:
                names.append(key)

    out: list[Trajectory] = []
    for metric in sorted(names):
        values: list[float] = []
        shas: list[str | None] = []
        for record in series:
            metrics = record.get("metrics", {})
            if metric not in metrics:
                continue
            values.append(float(metrics[metric]))
            sha = record.get("manifest", {}).get("git_sha")
            shas.append(str(sha)[:12] if sha else None)
        spec = baseline.metrics.get(metric) if baseline is not None else None
        out.append(
            Trajectory(
                bench=bench,
                metric=metric,
                values=values,
                shas=shas,
                direction=spec.direction if spec is not None else "info",
                tolerance=spec.tolerance if spec is not None else 0.0,
                baseline_verdict=verdicts.get(metric),
            )
        )
    return out


@dataclass
class HistoryReport:
    """All trajectories plus their flags, ready to render or gate on."""

    trajectories: list[Trajectory] = field(default_factory=list)

    @property
    def anomalies(self) -> list[Trajectory]:
        return [t for t in self.trajectories if t.anomalous]

    @property
    def ok(self) -> bool:
        return not self.anomalies


def build_history_report(
    history: Mapping[str, Iterable[Mapping[str, Any]]],
    *,
    baselines_dir: str | Path | None = None,
) -> HistoryReport:
    """Fold a full ledger (name → records) into one :class:`HistoryReport`."""

    report = HistoryReport()
    baselines_dir = Path(baselines_dir) if baselines_dir is not None else None
    for name in sorted(history):
        baseline = None
        if baselines_dir is not None:
            baseline_path = baselines_dir / f"{name}.json"
            if baseline_path.exists():
                baseline = load_baseline(baseline_path)
        report.trajectories.extend(trajectories(history[name], baseline=baseline))
    return report


def render_history_report(
    report: HistoryReport, *, title: str = "Bench history"
) -> str:
    """The markdown trajectory table with sparklines and flags."""

    lines = [f"# {title}", ""]
    if not report.trajectories:
        lines.append("*No history: the ledger is empty.*")
        return "\n".join(lines) + "\n"

    lines.append(
        "| benchmark | metric | dir | runs | trend | latest | Δ last | flag |"
    )
    lines.append("| --- | --- | --- | --- | --- | --- | --- | --- |")
    for t in report.trajectories:
        delta = t.step_delta
        if delta is None:
            delta_text = "-"
        else:
            delta_text = f"{delta:+g}"
        if t.baseline_verdict is not None and t.baseline_verdict.regressed:
            flag = "REGRESSION"
        elif t.step_anomaly:
            flag = "anomaly"
        else:
            flag = ""
        lines.append(
            f"| {t.bench} | {t.metric} | {t.direction} | {len(t.values)} "
            f"| `{t.spark()}` | {t.latest:g} | {delta_text} | {flag} |"
        )
    lines.append("")

    for t in report.anomalies:
        if t.baseline_verdict is not None and t.baseline_verdict.regressed:
            lines.append(
                f"* **{t.bench}.{t.metric}** regresses the committed baseline: "
                f"current {t.latest:g} vs expected "
                f"{t.baseline_verdict.baseline:g} "
                f"(tol {t.tolerance:.0%}, {t.direction}) — "
                f"{t.baseline_verdict.note}."
            )
        else:
            prev = t.values[-2]
            lines.append(
                f"* **{t.bench}.{t.metric}** moved against its direction "
                f"({t.direction}): {prev:g} → {t.latest:g} "
                f"at {t.shas[-1] or 'unknown sha'} "
                f"(step beyond the {t.tolerance:.0%} tolerance)."
            )
    if report.anomalies:
        lines.append("")
    else:
        lines.append("No direction-aware anomalies.")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
