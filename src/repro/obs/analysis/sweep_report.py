"""Overhead attribution for sweep timelines (``python -m repro analyze-sweep``).

Turns a ``repro.sweeptrace/1`` worker-lifecycle timeline (see
:mod:`repro.runner.telemetry`) into numbers a perf PR can act on:

* **per-phase totals** — where the wall time of every run went
  (enqueue-wait / spawn / env-build / deserialize / execute / serialize /
  store-write), with the residual between a run's measured span and its
  attributed phases reported honestly as ``other`` (IPC latency, pool
  bookkeeping);
* **per-worker accounting** — spawn + env-build cost, runs served, busy
  seconds, utilization, and a Gantt-style activity bar over the sweep's wall
  clock;
* an **achievable-speedup bound** à la Amdahl: with measured work ``W``
  (execute), per-run overhead ``O_r`` (deserialize + serialize +
  store-write) and per-worker one-time overhead ``O_w`` (spawn + env-build),
  perfect scheduling over ``j`` workers cannot beat
  ``W / (O_w + (W + O_r) / j)`` — which turns a mystery number like
  "speedup 0.382" into a decomposed, explained one.

The module only *reads* timelines; producing them is the executor's job
(``run_sweep(..., telemetry=...)`` or ``python -m repro sweep --timeline``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ...runner.telemetry import (
    RUN_PHASES,
    WORKER_PHASES,
    SweepTimeline,
    read_timeline,
)

__all__ = [
    "SweepAnalysis",
    "WorkerUsage",
    "analysis_to_json",
    "analyze_timeline",
    "render_sweep_report",
]

#: Width of the Gantt-style activity bars, in character buckets.
_GANTT_BUCKETS = 48


@dataclass
class WorkerUsage:
    """One pool worker's lifecycle totals."""

    worker: int
    spawn_s: float = 0.0
    env_build_s: float = 0.0
    t_spawned: float = 0.0
    t_ready: float = 0.0
    runs: int = 0
    busy_s: float = 0.0
    intervals: list[tuple[float, float]] = field(default_factory=list)

    def utilization(self, wall_s: float) -> float:
        """Busy fraction of the worker's post-ready lifetime."""

        window = max(wall_s - self.t_ready, 1e-9)
        return min(1.0, self.busy_s / window)


@dataclass
class SweepAnalysis:
    """Everything the attribution report needs, computed once."""

    jobs: int
    cells: int
    executed: int
    resumed: int
    failed: int
    wall_s: float
    phase_totals: dict[str, float]
    other_s: float
    span_total_s: float
    workers: list[WorkerUsage]
    tag_counts: dict[str, int]
    runs: list[dict[str, Any]]

    @property
    def attributed_s(self) -> float:
        """Wall time attributed to *named* phases (run + worker one-time)."""

        return sum(self.phase_totals.values())

    @property
    def attributed_fraction(self) -> float:
        """Share of measured wall time landing in a named phase.

        The denominator is every second the timeline accounts for: the sum of
        run spans (submit → stored) plus the per-worker one-time costs; the
        numerator drops only the ``other`` residual.  The acceptance bar for
        the telemetry layer is ≥ 0.90.
        """

        total = self.span_total_s + sum(
            w.spawn_s + w.env_build_s for w in self.workers
        )
        if total <= 0:
            return 1.0
        return min(1.0, self.attributed_s / total)

    @property
    def work_s(self) -> float:
        """Pure task work: the ``execute`` total."""

        return self.phase_totals.get("execute", 0.0)

    def per_run_overhead_s(self) -> float:
        """Mean parallelizable per-run overhead (deserialize+serialize+store)."""

        if not self.executed:
            return 0.0
        total = sum(
            self.phase_totals.get(name, 0.0)
            for name in ("deserialize", "serialize", "store_write")
        )
        return total / self.executed

    def per_worker_overhead_s(self) -> float:
        """Mean one-time worker cost (spawn + env_build)."""

        if not self.workers:
            return 0.0
        return sum(w.spawn_s + w.env_build_s for w in self.workers) / len(self.workers)

    def achievable_speedup(self, jobs: int | None = None) -> float:
        """Amdahl-style bound: best speedup the measured overheads allow.

        ``W / (O_w + (W + O_r) / j)`` with ``W`` the execute total, ``O_r``
        the summed per-run overheads and ``O_w`` the mean per-worker one-time
        cost.  A bound below 1.0 *is* the diagnosis: at this grid size the
        pool cannot win no matter how it schedules.
        """

        j = self.jobs if jobs is None else jobs
        work = self.work_s
        if work <= 0 or j < 1:
            return 0.0
        per_run = sum(
            self.phase_totals.get(name, 0.0)
            for name in ("deserialize", "serialize", "store_write")
        )
        ideal_parallel = self.per_worker_overhead_s() + (work + per_run) / j
        if ideal_parallel <= 0:
            return 0.0
        return work / ideal_parallel

    def serial_fraction(self) -> float:
        """Amdahl serial fraction: overhead share of total attributed time."""

        total = self.attributed_s
        if total <= 0:
            return 0.0
        return max(0.0, 1.0 - self.work_s / total)


def analyze_timeline(timeline: SweepTimeline) -> SweepAnalysis:
    """Fold a parsed timeline into a :class:`SweepAnalysis`."""

    phase_totals: dict[str, float] = {name: 0.0 for name in RUN_PHASES}
    span_total = 0.0
    tag_counts: dict[str, int] = {}
    workers: dict[int, WorkerUsage] = {}

    for doc in timeline.workers:
        phases = doc.get("phases", {})
        usage = WorkerUsage(
            worker=int(doc.get("worker", 0)),
            spawn_s=float(phases.get("spawn", 0.0)),
            env_build_s=float(phases.get("env_build", 0.0)),
            t_spawned=float(doc.get("t_spawned", 0.0)),
            t_ready=float(doc.get("t_ready", 0.0)),
        )
        workers[usage.worker] = usage

    completed = timeline.completed_runs()
    for run in completed:
        phases = run.get("phases", {})
        for name in RUN_PHASES:
            phase_totals[name] += float(phases.get(name, 0.0))
        span_total += max(
            0.0, float(run.get("t_stored", 0.0)) - float(run.get("t_submit", 0.0))
        )
        worker_id = int(run.get("worker", 0))
        usage = workers.setdefault(worker_id, WorkerUsage(worker=worker_id))
        usage.runs += 1
        busy = sum(
            float(phases.get(name, 0.0))
            for name in ("deserialize", "execute", "serialize")
        )
        usage.busy_s += busy
        usage.intervals.append(
            (float(run.get("t_start", 0.0)), float(run.get("t_end", 0.0)))
        )
    for run in timeline.runs:
        for tag in run.get("tags", ()):
            tag_counts[tag] = tag_counts.get(tag, 0) + 1

    for usage in workers.values():
        phase_totals.setdefault("spawn", 0.0)
        phase_totals.setdefault("env_build", 0.0)
        phase_totals["spawn"] += usage.spawn_s
        phase_totals["env_build"] += usage.env_build_s

    summary = timeline.summary or {}
    attributed_runs = sum(
        sum(float(run.get("phases", {}).get(name, 0.0)) for name in RUN_PHASES)
        for run in completed
    )
    return SweepAnalysis(
        jobs=timeline.jobs,
        cells=timeline.cells,
        executed=len(completed),
        resumed=len(timeline.resumed),
        failed=int(summary.get("failed", sum(1 for r in completed if r.get("status") != "ok"))),
        wall_s=timeline.wall_seconds(),
        phase_totals=phase_totals,
        other_s=max(0.0, span_total - attributed_runs),
        span_total_s=span_total,
        workers=sorted(workers.values(), key=lambda w: w.worker),
        tag_counts=tag_counts,
        runs=list(timeline.runs),
    )


def _gantt_bar(usage: WorkerUsage, wall_s: float) -> str:
    """A ``_GANTT_BUCKETS``-wide activity strip: ▒ warm-up, █ busy, · idle."""

    if wall_s <= 0:
        return ""
    width = _GANTT_BUCKETS
    bar = ["·"] * width

    def bucket(t: float) -> int:
        return min(width - 1, max(0, int(t / wall_s * width)))

    if usage.t_ready > usage.t_spawned or usage.spawn_s > 0:
        start = bucket(max(0.0, usage.t_spawned - usage.spawn_s))
        for i in range(start, bucket(usage.t_ready) + 1):
            bar[i] = "▒"
    for t_start, t_end in usage.intervals:
        for i in range(bucket(t_start), bucket(t_end) + 1):
            bar[i] = "█"
    return "".join(bar)


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join([" --- "] * len(headers)) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def render_sweep_report(
    source: SweepAnalysis | SweepTimeline | str,
    *,
    title: str = "Sweep overhead attribution",
) -> str:
    """Compose the markdown attribution report for *source*.

    *source* may be a timeline path, a parsed :class:`SweepTimeline`, or an
    already-computed :class:`SweepAnalysis`.
    """

    if isinstance(source, str):
        source = read_timeline(source)
    analysis = (
        source if isinstance(source, SweepAnalysis) else analyze_timeline(source)
    )

    lines = [f"# {title}", ""]
    lines.append(
        f"{analysis.cells} cells, jobs={analysis.jobs}: "
        f"{analysis.executed} executed, {analysis.resumed} resumed, "
        f"{analysis.failed} failed in {analysis.wall_s:.2f}s wall "
        f"({analysis.executed / analysis.wall_s:.2f} runs/s)"
        if analysis.wall_s > 0
        else f"{analysis.cells} cells, jobs={analysis.jobs}"
    )
    lines.append("")

    # -- phase attribution ------------------------------------------------
    lines.append("## Phase attribution")
    lines.append("")
    total_attr = analysis.attributed_s
    denominator = max(total_attr + analysis.other_s, 1e-12)
    order = ("enqueue_wait", "spawn", "env_build") + RUN_PHASES[1:]
    rows = []
    for name in order:
        value = analysis.phase_totals.get(name, 0.0)
        if name in WORKER_PHASES:
            count = len(analysis.workers) or 1
            unit = "worker"
        else:
            count = analysis.executed or 1
            unit = "run"
        rows.append(
            [
                name.replace("_", "-"),
                f"{value:.3f}",
                f"{value / denominator * 100:.1f}",
                f"{value / count * 1000:.2f}",
                unit,
            ]
        )
    rows.append(
        [
            "other (unattributed)",
            f"{analysis.other_s:.3f}",
            f"{analysis.other_s / denominator * 100:.1f}",
            "-",
            "-",
        ]
    )
    lines += _table(["phase", "total (s)", "share %", "mean (ms)", "per"], rows)
    lines.append("")
    lines.append(
        f"Attribution coverage: **{analysis.attributed_fraction * 100:.1f}%** of "
        "measured wall time lands in a named phase "
        "(the remainder is pool IPC and bookkeeping, reported as `other`)."
    )
    lines.append("")

    # -- workers ----------------------------------------------------------
    if analysis.workers:
        lines.append("## Workers")
        lines.append("")
        rows = []
        for usage in analysis.workers:
            rows.append(
                [
                    str(usage.worker),
                    f"{usage.spawn_s:.3f}",
                    f"{usage.env_build_s:.3f}",
                    str(usage.runs),
                    f"{usage.busy_s:.3f}",
                    f"{usage.utilization(analysis.wall_s) * 100:.0f}",
                    f"`{_gantt_bar(usage, analysis.wall_s)}`"
                    if analysis.wall_s > 0
                    else "",
                ]
            )
        lines += _table(
            ["worker", "spawn (s)", "env build (s)", "runs", "busy (s)", "util %", "activity"],
            rows,
        )
        lines.append("")

    # -- failure tags ------------------------------------------------------
    if analysis.tag_counts:
        lines.append("## Tagged records")
        lines.append("")
        lines += _table(
            ["tag", "records"],
            [
                [tag, str(count)]
                for tag, count in sorted(analysis.tag_counts.items())
            ],
        )
        lines.append("")

    # -- the verdict -------------------------------------------------------
    lines.append("## Achievable speedup (Amdahl bound)")
    lines.append("")
    work = analysis.work_s
    o_r = analysis.per_run_overhead_s() * max(analysis.executed, 1)
    o_w = analysis.per_worker_overhead_s()
    lines.append(
        f"Measured work `W` = {work:.3f}s (execute); per-run overhead "
        f"`O_r` = {o_r:.3f}s total (deserialize + serialize + store-write); "
        f"per-worker one-time `O_w` = {o_w:.3f}s (spawn + env-build).  "
        f"Serial fraction: {analysis.serial_fraction() * 100:.1f}%."
    )
    lines.append("")
    rows = []
    for jobs in sorted({1, 2, 4, 8, analysis.jobs}):
        if jobs < 1:
            continue
        bound = analysis.achievable_speedup(jobs)
        marker = " ← this sweep" if jobs == analysis.jobs else ""
        rows.append([str(jobs), f"{bound:.2f}×{marker}"])
    lines += _table(["jobs", "bound W / (O_w + (W + O_r)/j)"], rows)
    lines.append("")
    bound_here = analysis.achievable_speedup()
    if bound_here < 1.0 and analysis.jobs > 1:
        lines.append(
            f"*The bound at jobs={analysis.jobs} is {bound_here:.2f}× — below 1.0: "
            "with these per-worker and per-run overheads the pool cannot beat "
            "serial at this grid size regardless of scheduling.  Amortize "
            "`O_w` (warm workers, batched cells) before adding workers.*"
        )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def analysis_to_json(analysis: SweepAnalysis) -> dict[str, Any]:
    """A machine-readable mirror of the markdown report."""

    return {
        "jobs": analysis.jobs,
        "cells": analysis.cells,
        "executed": analysis.executed,
        "resumed": analysis.resumed,
        "failed": analysis.failed,
        "wall_s": analysis.wall_s,
        "phase_totals_s": {k: v for k, v in sorted(analysis.phase_totals.items())},
        "other_s": analysis.other_s,
        "attributed_fraction": analysis.attributed_fraction,
        "serial_fraction": analysis.serial_fraction(),
        "achievable_speedup": analysis.achievable_speedup(),
        "tag_counts": dict(sorted(analysis.tag_counts.items())),
        "workers": [
            {
                "worker": w.worker,
                "spawn_s": w.spawn_s,
                "env_build_s": w.env_build_s,
                "runs": w.runs,
                "busy_s": w.busy_s,
                "utilization": w.utilization(analysis.wall_s),
            }
            for w in analysis.workers
        ],
    }
