"""Command-line front ends for trace analytics and the bench gate.

* ``python -m repro analyze <trace.jsonl>`` — reconstruct dissemination
  trees, attribute critical paths, print (or ``--json``-dump) the result;
  ``--strict`` exits non-zero on any orphan delivery or integrity problem.
* ``python -m repro report`` — compose a markdown (or ``--html``) run report
  from any combination of ``--trace``, ``--chaos``, ``--manifest`` (whose
  profile section becomes the hottest-callbacks table) and bench records.
* ``python -m repro bench-gate <BENCH_*.json ...>`` — judge records against
  the committed baselines in ``benchmarks/baselines/``; exits 1 on
  regression (the CI gate), ``--update`` refreshes baseline values in place.
* ``python -m repro analyze-sweep <timeline.jsonl>`` — overhead-attribution
  report from a ``repro.sweeptrace/1`` worker-lifecycle timeline (see
  ``python -m repro sweep --timeline``).
* ``python -m repro bench history [BENCH_*.json ...]`` — fold fresh records
  and the append-only ``benchmarks/history/`` ledger into per-metric
  trajectories with direction-aware anomaly flags; ``--check`` exits 1 on a
  flag, ``--append`` commits the records to the ledger.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from ...errors import TraceReadError
from .baseline import load_baseline, load_bench_record, update_baseline, write_baseline
from .compare import ComparisonResult, compare
from .critical_path import COMPONENTS, critical_paths
from .report import render_html, render_report
from .trace import read_trace, build_trees

__all__ = [
    "analyze_main",
    "report_main",
    "bench_gate_main",
    "analyze_sweep_main",
    "bench_history_main",
]


def _print(text: str) -> None:
    print(text)


# ----------------------------------------------------------------------
# analyze
# ----------------------------------------------------------------------


def analyze_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Reconstruct dissemination trees and attribute critical "
        "paths from a JSONL trace.",
    )
    parser.add_argument("trace", help="path to a repro.trace/1 JSONL file")
    parser.add_argument(
        "--protocol", help="only analyze transactions of this protocol"
    )
    parser.add_argument(
        "--tx", type=int, help="only analyze this transaction id"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on orphan deliveries or trace integrity problems",
    )
    args = parser.parse_args(argv)

    try:
        trace = read_trace(args.trace)
    except (TraceReadError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    problems = trace.validate()
    trees = build_trees(trace)
    if args.protocol is not None:
        trees = [t for t in trees if t.protocol == args.protocol]
    if args.tx is not None:
        trees = [t for t in trees if t.tx_id == args.tx]
    paths = critical_paths(trees, trace)
    orphans = sum(len(t.orphans) for t in trees)

    if args.json:
        doc: dict[str, Any] = {
            "trace": {
                "events": len(trace.events),
                "spans": len(trace.spans),
                "lossy": trace.header.lossy,
                "problems": problems,
            },
            "trees": [
                {
                    "protocol": t.protocol,
                    "tx_id": t.tx_id,
                    "origin": t.origin,
                    "overlay_id": t.overlay_id,
                    "submit_ms": t.submit_ms,
                    "dispatch_ms": t.dispatch_ms,
                    "nodes": t.node_count,
                    "max_depth": t.max_depth(),
                    "orphans": len(t.orphans),
                    "edges": {
                        str(parent): children
                        for parent, children in sorted(t.children.items())
                    },
                }
                for t in trees
            ],
            "critical_paths": [
                {
                    "protocol": p.protocol,
                    "tx_id": p.tx_id,
                    "path": p.path,
                    "e2e_ms": p.e2e_ms,
                    "trs_wait_ms": p.trs_wait_ms,
                    "matched_fraction": p.matched_fraction,
                    "components_ms": p.component_sums(),
                }
                for p in paths
            ],
        }
        _print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        _print(
            f"{args.trace}: {len(trace.events)} events, {len(trace.spans)} spans"
            + (" (lossy)" if trace.header.lossy else "")
        )
        for problem in problems:
            _print(f"  integrity: {problem}")
        _print(
            f"{len(trees)} tree(s), {len(paths)} critical path(s), "
            f"{orphans} orphan delivery(ies)"
        )
        for p in paths:
            sums = p.component_sums()
            parts = "  ".join(
                f"{name}={sums[name]:.3f}" for name in COMPONENTS if sums[name]
            )
            _print(
                f"  [{p.protocol or '?'}] tx {p.tx_id}: "
                f"{' -> '.join(map(str, p.path))}  "
                f"e2e={p.e2e_ms:.3f}ms  ({parts})"
            )
    if args.strict and (orphans or problems):
        return 1
    return 0


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------


def report_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Render a self-contained markdown/HTML run report.",
    )
    parser.add_argument("--trace", help="JSONL trace to analyze")
    parser.add_argument("--chaos", help="ChaosReport JSON file")
    parser.add_argument(
        "--manifest",
        help="repro.manifest/1 JSON file; its profile section (hottest "
        "callbacks, queue depth) and meta become report sections",
    )
    parser.add_argument(
        "--bench",
        nargs="*",
        default=[],
        metavar="RECORD",
        help="repro.bench/1 record(s) to compare against --baselines",
    )
    parser.add_argument(
        "--baselines",
        default="benchmarks/baselines",
        help="directory of committed baselines (default: benchmarks/baselines)",
    )
    parser.add_argument("--title", default="Run report")
    parser.add_argument("-o", "--output", help="write to file instead of stdout")
    parser.add_argument("--html", action="store_true", help="emit HTML")
    args = parser.parse_args(argv)

    trace = trees = paths = chaos = profile = None
    manifest: dict[str, Any] = {}
    bench_results: list[ComparisonResult] = []
    try:
        if args.trace:
            trace = read_trace(args.trace)
            trees = build_trees(trace)
            paths = critical_paths(trees, trace)
        if args.chaos:
            chaos = json.loads(Path(args.chaos).read_text(encoding="utf-8"))
        if args.manifest:
            doc = json.loads(Path(args.manifest).read_text(encoding="utf-8"))
            profile = doc.get("profile")
            meta = doc.get("meta")
            if isinstance(meta, dict):
                manifest.update(meta)
        for record_path in args.bench:
            record = load_bench_record(record_path)
            manifest.update(record.get("manifest", {}))
            baseline_path = Path(args.baselines) / f"{record['name']}.json"
            if baseline_path.exists():
                bench_results.append(compare(record, load_baseline(baseline_path)))
    except (TraceReadError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    markdown = render_report(
        title=args.title,
        manifest=manifest or None,
        trace=trace,
        trees=trees,
        paths=paths,
        chaos=chaos,
        bench=bench_results if bench_results else None,
        profile=profile,
    )
    text = render_html(markdown, title=args.title) if args.html else markdown
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        _print(f"wrote {args.output}")
    else:
        _print(text.rstrip())
    return 0


# ----------------------------------------------------------------------
# bench-gate
# ----------------------------------------------------------------------


def bench_gate_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench-gate",
        description="Compare bench records against committed baselines; "
        "exit 1 on regression.",
    )
    parser.add_argument(
        "records", nargs="+", metavar="RECORD", help="repro.bench/1 JSON file(s)"
    )
    parser.add_argument(
        "--baselines",
        default="benchmarks/baselines",
        help="directory of committed baselines (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="refresh baseline values from the records (tolerances and "
        "directions are kept) instead of gating",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (the CI override)",
    )
    args = parser.parse_args(argv)

    baselines_dir = Path(args.baselines)
    failed = False
    for record_path in args.records:
        try:
            record = load_bench_record(record_path)
        except TraceReadError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"error: {record_path}: {exc}", file=sys.stderr)
            return 2
        baseline_path = baselines_dir / f"{record['name']}.json"
        if not baseline_path.exists():
            _print(f"{record['name']}: no baseline at {baseline_path} — skipped")
            continue
        try:
            baseline = load_baseline(baseline_path)
        except TraceReadError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.update:
            write_baseline(baseline_path, update_baseline(baseline, record))
            _print(f"{record['name']}: refreshed {baseline_path}")
            continue
        result = compare(record, baseline)
        _print(result.summary())
        for c in result.regressions:
            current = "missing" if c.current is None else f"{c.current:g}"
            _print(
                f"  REGRESSION {c.metric}: current={current} "
                f"baseline={c.baseline:g} tol={c.tolerance:.0%} "
                f"[{c.direction}] — {c.note}"
            )
        failed = failed or not result.ok
    if failed and not args.warn_only:
        return 1
    if failed:
        _print("regressions present, but --warn-only given; exiting 0")
    return 0


# ----------------------------------------------------------------------
# analyze-sweep
# ----------------------------------------------------------------------


def analyze_sweep_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze-sweep",
        description="Attribute a sweep's wall time to worker-lifecycle "
        "phases from a repro.sweeptrace/1 timeline.",
    )
    parser.add_argument(
        "timeline", help="JSONL timeline from `python -m repro sweep --timeline`"
    )
    parser.add_argument("--title", default="Sweep overhead attribution")
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument("-o", "--output", help="write to file instead of stdout")
    args = parser.parse_args(argv)

    from ...runner.telemetry import read_timeline
    from .sweep_report import analysis_to_json, analyze_timeline, render_sweep_report

    try:
        timeline = read_timeline(args.timeline)
    except (TraceReadError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    analysis = analyze_timeline(timeline)
    if args.json:
        text = json.dumps(analysis_to_json(analysis), indent=2, sort_keys=True)
    else:
        text = render_sweep_report(analysis, title=args.title)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        _print(f"wrote {args.output}")
    else:
        _print(text.rstrip())
    return 0


# ----------------------------------------------------------------------
# bench history
# ----------------------------------------------------------------------


def bench_history_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench history",
        description="Fold bench records and the append-only ledger into "
        "per-metric trajectories with direction-aware anomaly flags.",
    )
    parser.add_argument(
        "records",
        nargs="*",
        metavar="RECORD",
        help="fresh repro.bench/1 record(s) to fold in as the latest runs",
    )
    parser.add_argument(
        "--ledger",
        default="benchmarks/history",
        help="append-only ledger directory (default: benchmarks/history)",
    )
    parser.add_argument(
        "--baselines",
        default="benchmarks/baselines",
        help="directory of committed baselines (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="append the given records to the ledger after reporting",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on any direction-aware anomaly (the CI hook)",
    )
    parser.add_argument("--title", default="Bench history")
    parser.add_argument("-o", "--output", help="write to file instead of stdout")
    args = parser.parse_args(argv)

    from .history import (
        append_history,
        build_history_report,
        load_history,
        render_history_report,
    )

    try:
        history = load_history(args.ledger)
        fresh = [load_bench_record(path) for path in args.records]
    except (TraceReadError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for record in fresh:
        history.setdefault(record["name"], []).append(record)

    report = build_history_report(history, baselines_dir=args.baselines)
    text = render_history_report(report, title=args.title)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        _print(f"wrote {args.output}")
    else:
        _print(text.rstrip())

    if args.append:
        for record in fresh:
            path = append_history(args.ledger, record)
            _print(f"appended {record['name']} -> {path}")

    if args.check and not report.ok:
        flagged = ", ".join(f"{t.bench}.{t.metric}" for t in report.anomalies)
        print(f"anomalies: {flagged}", file=sys.stderr)
        return 1
    return 0
