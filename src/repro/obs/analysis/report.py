"""Self-contained run reports from traces, chaos reports and bench records.

:func:`render_report` composes a single markdown document:

* run manifest (git sha, python, platform, whatever the record was stamped
  with);
* per-protocol dissemination-tree statistics (trees, coverage, depth,
  orphans);
* per-protocol critical-path latency breakdown (hold / queue / serialization
  / link / proc / other, plus TRS wait);
* overlay-usage histogram (which of the ``k`` overlays the TRS selected);
* simulator profile (hottest callbacks by wall time, max queue depth) from a
  :class:`~repro.obs.profiler.SimulatorProfile` snapshot or a manifest's
  ``profile`` section;
* fault / invariant-violation timeline from a chaos campaign;
* adversary-zoo outcome summary (attack success, extracted value and
  order-fairness per strategy, from ``AdversaryTrialResult.as_record()``
  rows).

:func:`render_html` wraps the same content in a dependency-free HTML shell
(the markdown is readable as-is inside ``<pre>`` — no renderer required),
so a report can be attached to a CI run and opened in a browser.
"""

from __future__ import annotations

import html
from collections import Counter
from typing import Any, Iterable, Mapping

from .compare import ComparisonResult
from .critical_path import COMPONENTS, CriticalPath, ProtocolBreakdown, aggregate
from .trace import DisseminationTree, Trace

__all__ = ["render_report", "render_html"]


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join([" --- "] * len(headers)) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _ms(value: float) -> str:
    return f"{value:.3f}"


def _tree_section(trees: list[DisseminationTree]) -> list[str]:
    lines = ["## Dissemination trees", ""]
    # A shard column appears only for sharded runs (any tree carrying a shard
    # tag); unsharded reports render exactly as before.
    sharded = any(tree.shard is not None for tree in trees)
    groups: dict[tuple[str | None, int | None], list[DisseminationTree]] = {}
    for tree in trees:
        groups.setdefault((tree.protocol, tree.shard), []).append(tree)
    rows = []
    for key in sorted(groups, key=lambda k: (str(k[0]), k[1] is not None, k[1] or 0)):
        protocol, shard = key
        group = groups[key]
        total_orphans = sum(len(t.orphans) for t in group)
        depths = [t.max_depth() for t in group]
        nodes = [t.node_count for t in group]
        row = [
            str(protocol or "?"),
            str(len(group)),
            f"{sum(nodes) / len(group):.1f}",
            str(max(depths) if depths else 0),
            str(total_orphans),
        ]
        if sharded:
            row.insert(1, "-" if shard is None else str(shard))
        rows.append(row)
    headers = ["protocol", "trees", "mean nodes/tree", "max depth", "orphan deliveries"]
    if sharded:
        headers.insert(1, "shard")
    lines += _table(headers, rows)
    lines.append("")
    return lines


def _critical_path_section(paths: list[CriticalPath]) -> list[str]:
    lines = ["## Critical-path latency attribution", ""]
    breakdowns: list[ProtocolBreakdown] = aggregate(paths)
    sharded = any(b.shard is not None for b in breakdowns)
    headers = ["protocol", "txs", "mean hops", "mean e2e (ms)", "trs wait (ms)"] + [
        f"{name} %" for name in COMPONENTS
    ]
    if sharded:
        headers.insert(1, "shard")
    rows = []
    for b in breakdowns:
        shares = b.component_shares()
        row = [
            str(b.protocol or "?"),
            str(b.tx_count),
            f"{b.mean_hops:.1f}",
            _ms(b.mean_e2e_ms),
            _ms(b.trs_wait_ms / b.tx_count if b.tx_count else 0.0),
        ] + [f"{shares[name] * 100:.1f}" for name in COMPONENTS]
        if sharded:
            row.insert(1, "-" if b.shard is None else str(b.shard))
        rows.append(row)
    lines += _table(headers, rows)
    unmatched = sum(
        len(p.hops) - sum(1 for h in p.hops if h.matched) for p in paths
    )
    if unmatched:
        lines.append("")
        lines.append(
            f"*{unmatched} hop(s) had no matching `net.send` record "
            "(multi-transaction frames or dropped events); their full delta "
            "is attributed to `other`.*"
        )
    lines.append("")
    return lines


def _overlay_section(trees: list[DisseminationTree]) -> list[str]:
    usage: Counter[tuple[str | None, int]] = Counter()
    for tree in trees:
        if tree.overlay_id is not None:
            usage[(tree.protocol, tree.overlay_id)] += 1
    if not usage:
        return []
    lines = ["## Overlay usage", ""]
    rows = []
    peak = max(usage.values())
    for (protocol, overlay_id), count in sorted(usage.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])):
        bar = "█" * max(1, round(count / peak * 20))
        rows.append([str(protocol or "?"), str(overlay_id), str(count), bar])
    lines += _table(["protocol", "overlay", "txs", ""], rows)
    lines.append("")
    return lines


def _chaos_section(chaos: Mapping[str, Any]) -> list[str]:
    lines = [
        "## Fault & violation timeline",
        "",
        f"Scenario `{chaos.get('scenario', '?')}` against "
        f"`{chaos.get('protocol', '?')}` "
        f"(seed {chaos.get('seed', '?')}, N={chaos.get('num_nodes', '?')}, "
        f"f={chaos.get('f', '?')}) — "
        + ("**passed**" if chaos.get("passed") else "**FAILED**"),
        "",
    ]
    timeline: list[tuple[float, str, str]] = []
    for entry in chaos.get("fault_log", ()):
        timeline.append(
            (
                float(entry.get("at_ms", 0.0)),
                "fault",
                f"{entry.get('kind', '?')}: {entry.get('summary', '')}",
            )
        )
    for name, doc in chaos.get("invariants", {}).items():
        for violation in doc.get("violations", ()):
            timeline.append(
                (
                    float(violation.get("at_ms", 0.0)),
                    "violation",
                    f"{name}: {violation.get('detail', violation)}",
                )
            )
    if timeline:
        rows = [
            [_ms(at_ms), kind, str(text)]
            for at_ms, kind, text in sorted(timeline, key=lambda t: (t[0], t[1]))
        ]
        lines += _table(["t (ms)", "type", "what"], rows)
    else:
        lines.append("*(no faults injected, no violations detected)*")
    lines.append("")
    return lines


def _adversary_section(adversary: Mapping[str, Any]) -> list[str]:
    """Summarize adversary-zoo trials grouped by strategy.

    ``adversary`` carries optional context keys (``protocol``, ``num_nodes``,
    ``fraction``, ``seed``) plus ``trials``: an iterable of flat trial
    records as produced by ``AdversaryTrialResult.as_record()``.
    """

    context = []
    if "protocol" in adversary:
        context.append(f"`{adversary['protocol']}`")
    if "num_nodes" in adversary:
        context.append(f"N={adversary['num_nodes']}")
    if "fraction" in adversary:
        context.append(f"{float(adversary['fraction']):.0%} malicious")
    if "seed" in adversary:
        context.append(f"seed {adversary['seed']}")
    lines = ["## Adversary zoo", ""]
    if context:
        lines.append("Target: " + ", ".join(context))
        lines.append("")
    by_strategy: dict[str, list[Mapping[str, Any]]] = {}
    for record in adversary.get("trials", ()):
        by_strategy.setdefault(str(record.get("strategy", "?")), []).append(record)
    if not by_strategy:
        lines.append("*(no trials recorded)*")
        lines.append("")
        return lines
    rows = []
    for strategy in sorted(by_strategy):
        group = by_strategy[strategy]
        count = len(group)

        def mean(key: str) -> float:
            return sum(float(r.get(key, 0.0)) for r in group) / count

        rows.append(
            [
                strategy,
                str(count),
                f"{sum(bool(r.get('attacker_won')) for r in group) / count:.0%}",
                f"{sum(bool(r.get('victim_censored')) for r in group) / count:.0%}",
                f"{mean('gross'):.1f}",
                f"{mean('net'):+.1f}",
                f"{mean('gamma'):.2f}",
                f"{mean('inversion_rate'):.3f}",
                str(sum(int(r.get("violations", 0)) for r in group)),
            ]
        )
    lines += _table(
        [
            "strategy",
            "trials",
            "success",
            "censored",
            "mean gross",
            "mean net",
            "mean γ",
            "mean inversions",
            "evidence",
        ],
        rows,
    )
    lines.append("")
    return lines


def _profile_section(profile: Any) -> list[str]:
    """Hottest callbacks and queue pressure from a simulator profile.

    Accepts a live :class:`~repro.obs.profiler.SimulatorProfile` or its
    ``to_json()`` dict (as stored in a manifest's ``profile`` section).
    """

    if isinstance(profile, Mapping):
        events = int(profile.get("events", 0))
        wall_s = float(profile.get("wall_s", 0.0))
        callbacks = [
            (key, stats.get("calls", 0), stats.get("total_s", 0.0), stats.get("max_s", 0.0))
            for key, stats in profile.get("callbacks", {}).items()
        ]
        max_depth = max(
            (int(s.get("depth", 0)) for s in profile.get("queue_samples", ())),
            default=0,
        )
        samples = len(profile.get("queue_samples", ()))
    else:
        events = profile.events
        wall_s = profile.wall_s
        callbacks = [
            (key, stats.calls, stats.total_s, stats.max_s)
            for key, stats in profile.callbacks.items()
        ]
        max_depth = profile.max_queue_depth()
        samples = len(profile.queue_samples)

    lines = ["## Simulator profile", ""]
    lines.append(
        f"{events} events in {wall_s:.3f}s wall"
        + (f" ({events / wall_s:,.0f} events/s)" if wall_s > 0 else "")
        + f"; max queue depth {max_depth}"
        + (f" over {samples} sample(s)" if samples else "")
        + "."
    )
    lines.append("")
    hottest = sorted(callbacks, key=lambda c: (-c[2], c[0]))[:10]
    if hottest:
        rows = []
        for key, calls, total_s, max_s in hottest:
            share = total_s / wall_s * 100 if wall_s > 0 else 0.0
            rows.append(
                [
                    f"`{key}`",
                    str(calls),
                    f"{total_s:.4f}",
                    f"{share:.1f}",
                    f"{max_s * 1e3:.3f}",
                ]
            )
        lines += _table(
            ["callback", "calls", "total (s)", "share %", "max (ms)"], rows
        )
    else:
        lines.append("*(no callbacks recorded)*")
    lines.append("")
    return lines


def _bench_section(results: Iterable[ComparisonResult]) -> list[str]:
    lines = ["## Benchmark comparison", ""]
    for result in results:
        lines.append(f"### {result.name} — {'OK' if result.ok else 'REGRESSED'}")
        lines.append("")
        rows = []
        for c in result.comparisons:
            rel = c.relative_delta
            rows.append(
                [
                    c.metric,
                    "-" if c.baseline is None else f"{c.baseline:g}",
                    "-" if c.current is None else f"{c.current:g}",
                    "-" if rel is None else f"{rel:+.1%}",
                    c.direction,
                    "**REGRESSED**" if c.regressed else "ok",
                ]
            )
        lines += _table(
            ["metric", "baseline", "current", "Δ rel", "direction", "verdict"], rows
        )
        lines.append("")
    return lines


def render_report(
    *,
    title: str = "Run report",
    manifest: Mapping[str, Any] | None = None,
    trace: Trace | None = None,
    trees: list[DisseminationTree] | None = None,
    paths: list[CriticalPath] | None = None,
    chaos: Mapping[str, Any] | None = None,
    adversary: Mapping[str, Any] | None = None,
    bench: Iterable[ComparisonResult] | None = None,
    profile: Any | None = None,
) -> str:
    """Compose a markdown run report from whichever inputs are available."""

    lines: list[str] = [f"# {title}", ""]
    if manifest:
        lines.append("## Manifest")
        lines.append("")
        lines += _table(
            ["key", "value"],
            [[str(k), f"`{manifest[k]}`"] for k in sorted(manifest)],
        )
        lines.append("")
    if trace is not None:
        problems = trace.validate()
        lines.append(
            f"Trace: {len(trace.events)} events, {len(trace.spans)} spans"
            + (
                f" (lossy: {trace.header.events_dropped} events / "
                f"{trace.header.spans_dropped} spans dropped)"
                if trace.header.lossy
                else ""
            )
            + (f" — **{len(problems)} integrity problem(s)**" if problems else "")
        )
        lines.append("")
        for problem in problems:
            lines.append(f"- {problem}")
        if problems:
            lines.append("")
    if trees:
        lines += _tree_section(trees)
        lines += _overlay_section(trees)
    if paths:
        lines += _critical_path_section(paths)
    if profile is not None:
        lines += _profile_section(profile)
    if chaos is not None:
        lines += _chaos_section(chaos)
    if adversary is not None:
        lines += _adversary_section(adversary)
    if bench is not None:
        lines += _bench_section(bench)
    return "\n".join(lines).rstrip() + "\n"


def render_html(markdown: str, *, title: str = "Run report") -> str:
    """Wrap *markdown* in a minimal self-contained HTML page."""

    return (
        "<!doctype html>\n"
        "<html><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title>"
        "<style>body{font:14px/1.5 -apple-system,sans-serif;max-width:60rem;"
        "margin:2rem auto;padding:0 1rem}pre{white-space:pre-wrap;"
        "background:#f6f8fa;padding:1rem;border-radius:6px}</style>"
        "</head><body>\n"
        f"<pre>{html.escape(markdown)}</pre>\n"
        "</body></html>\n"
    )
