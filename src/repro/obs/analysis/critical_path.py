"""Hop-by-hop latency attribution along the critical dissemination path.

For each transaction the *critical path* is the slowest root-to-leaf relay
chain in its dissemination tree — the chain that determines the tail latency
the paper's figures plot.  This module walks that chain and attributes every
millisecond of it to a cause:

``hold``
    Time the relaying node sat on the transaction before scheduling the
    transmission (protocol logic: Bracha echo thresholds, batching timers,
    gossip rounds, push-queue drain delays).
``queue``
    Time the frame waited for link capacity (egress admission and busy-link
    queueing from :class:`repro.net.node.Network`).
``serialization``
    Transmission time of the bytes onto the link (plus any service-time
    residual the capacity model charges).
``link``
    Pure propagation: base latency × region factor × jitter.
``proc``
    Fixed per-message processing delay at the receiver.
``other``
    Residual for hops the tracer could not match to a ``net.send`` record
    (e.g. multi-transaction gossip frames, or lossy traces); the whole hop
    delta lands here so the identity below still holds.

The decomposition is exact by construction: summing all components over all
hops telescopes to ``last_arrival − dispatch``, the end-to-end latency the
network statistics report.  ``trs_wait`` (submit → dispatch, the time HERMES
spends acquiring the threshold-random seed before the first byte moves) is
reported separately since the paper's latency clock starts at dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .trace import DisseminationTree, ReadEvent, Trace

__all__ = [
    "Hop",
    "CriticalPath",
    "ProtocolBreakdown",
    "COMPONENTS",
    "critical_path",
    "critical_paths",
    "aggregate",
]

COMPONENTS = ("hold", "queue", "serialization", "link", "proc", "other")

# deliver_ms from a net.send record and the tx.deliver timestamp are the same
# float computed once by the simulator, but keep a tolerance for robustness.
_MATCH_TOLERANCE_MS = 1e-9


@dataclass(frozen=True, slots=True)
class Hop:
    """One edge of the critical path, fully attributed."""

    src: int
    dst: int
    depart_ms: float | None  # when the frame left src (None if unmatched)
    arrive_ms: float
    hold_ms: float
    queue_ms: float
    serialization_ms: float
    link_ms: float
    proc_ms: float
    other_ms: float
    matched: bool

    @property
    def total_ms(self) -> float:
        return (
            self.hold_ms
            + self.queue_ms
            + self.serialization_ms
            + self.link_ms
            + self.proc_ms
            + self.other_ms
        )


@dataclass
class CriticalPath:
    """The slowest root-to-leaf chain of one transaction's tree."""

    tx_id: int
    protocol: str | None
    path: list[int]
    hops: list[Hop]
    dispatch_ms: float
    end_ms: float
    trs_wait_ms: float  # submit -> dispatch (protocol overhead before byte 0)
    shard: int | None = None  # shard tag of the owning tree (sharded runs only)

    @property
    def e2e_ms(self) -> float:
        """End-to-end latency: dispatch to the slowest node's first delivery."""

        return self.end_ms - self.dispatch_ms

    def component_sums(self) -> dict[str, float]:
        sums = dict.fromkeys(COMPONENTS, 0.0)
        for hop in self.hops:
            sums["hold"] += hop.hold_ms
            sums["queue"] += hop.queue_ms
            sums["serialization"] += hop.serialization_ms
            sums["link"] += hop.link_ms
            sums["proc"] += hop.proc_ms
            sums["other"] += hop.other_ms
        return sums

    @property
    def matched_fraction(self) -> float:
        if not self.hops:
            return 1.0
        return sum(1 for hop in self.hops if hop.matched) / len(self.hops)


class _SendIndex:
    """``net.send`` records indexed by (src, dst, tx_id) for hop matching."""

    def __init__(self, events: Iterable[ReadEvent]) -> None:
        self._by_edge: dict[tuple[int, int, int], list[ReadEvent]] = {}
        for event in events:
            if event.name != "net.send":
                continue
            tx_id = event.attrs.get("tx_id")
            if tx_id is None:
                continue
            key = (int(event.attrs["src"]), int(event.attrs["dst"]), int(tx_id))
            self._by_edge.setdefault(key, []).append(event)

    def match(self, src: int, dst: int, tx_id: int, arrive_ms: float) -> ReadEvent | None:
        """The send whose computed arrival coincides with *arrive_ms*."""

        candidates = self._by_edge.get((src, dst, tx_id))
        if not candidates:
            return None
        best = min(
            candidates, key=lambda e: abs(float(e.attrs["deliver_ms"]) - arrive_ms)
        )
        if abs(float(best.attrs["deliver_ms"]) - arrive_ms) <= _MATCH_TOLERANCE_MS:
            return best
        return None


def critical_path(
    tree: DisseminationTree, trace: Trace, _index: _SendIndex | None = None
) -> CriticalPath | None:
    """Attribute the slowest root-to-leaf path of *tree*.

    Returns None for trees with no reconstructed delivery (single-node runs,
    or all deliveries orphaned).
    """

    target = tree.last_delivery()
    if target is None or tree.origin is None:
        return None
    index = _index if _index is not None else _SendIndex(trace.events)
    dispatch_ms = tree.dispatch_ms if tree.dispatch_ms is not None else tree.submit_ms
    if dispatch_ms is None:
        dispatch_ms = 0.0
    submit_ms = tree.submit_ms if tree.submit_ms is not None else dispatch_ms

    path = tree.path_to(target.node)
    hops: list[Hop] = []
    prev_arrival = dispatch_ms
    for src, dst in zip(path, path[1:]):
        delivery = tree.deliveries[dst]
        arrive_ms = delivery.time_ms
        send = index.match(src, dst, tree.tx_id, arrive_ms)
        if send is not None:
            attrs = send.attrs
            hold_ms = send.time_ms - prev_arrival
            queue_ms = float(attrs.get("queue_ms", 0.0))
            serialization_ms = float(attrs.get("serialization_ms", 0.0))
            link_ms = float(attrs.get("link_ms", 0.0))
            proc_ms = float(attrs.get("proc_ms", 0.0))
            # Close the telescoping identity exactly: anything the send
            # record's components do not cover (float dust, model quirks)
            # lands in `other`.
            other_ms = (arrive_ms - prev_arrival) - (
                hold_ms + queue_ms + serialization_ms + link_ms + proc_ms
            )
            hops.append(
                Hop(
                    src=src,
                    dst=dst,
                    depart_ms=send.time_ms,
                    arrive_ms=arrive_ms,
                    hold_ms=hold_ms,
                    queue_ms=queue_ms,
                    serialization_ms=serialization_ms,
                    link_ms=link_ms,
                    proc_ms=proc_ms,
                    other_ms=other_ms,
                    matched=True,
                )
            )
        else:
            hops.append(
                Hop(
                    src=src,
                    dst=dst,
                    depart_ms=None,
                    arrive_ms=arrive_ms,
                    hold_ms=0.0,
                    queue_ms=0.0,
                    serialization_ms=0.0,
                    link_ms=0.0,
                    proc_ms=0.0,
                    other_ms=arrive_ms - prev_arrival,
                    matched=False,
                )
            )
        prev_arrival = arrive_ms

    return CriticalPath(
        tx_id=tree.tx_id,
        protocol=tree.protocol,
        path=path,
        hops=hops,
        dispatch_ms=dispatch_ms,
        end_ms=target.time_ms,
        trs_wait_ms=dispatch_ms - submit_ms,
        shard=tree.shard,
    )


def critical_paths(
    trees: Iterable[DisseminationTree], trace: Trace
) -> list[CriticalPath]:
    """Critical paths for every tree that has at least one delivery."""

    index = _SendIndex(trace.events)
    paths = []
    for tree in trees:
        result = critical_path(tree, trace, _index=index)
        if result is not None:
            paths.append(result)
    return paths


@dataclass
class ProtocolBreakdown:
    """Critical-path attribution aggregated over one protocol's transactions."""

    protocol: str | None
    shard: int | None = None
    tx_count: int = 0
    hop_count: int = 0
    e2e_ms: float = 0.0
    trs_wait_ms: float = 0.0
    components: dict[str, float] = field(
        default_factory=lambda: dict.fromkeys(COMPONENTS, 0.0)
    )
    matched_hops: int = 0

    @property
    def mean_e2e_ms(self) -> float:
        return self.e2e_ms / self.tx_count if self.tx_count else 0.0

    @property
    def mean_hops(self) -> float:
        return self.hop_count / self.tx_count if self.tx_count else 0.0

    def component_shares(self) -> dict[str, float]:
        """Each component's fraction of total critical-path time."""

        total = sum(self.components.values())
        if total <= 0.0:
            return dict.fromkeys(COMPONENTS, 0.0)
        return {name: value / total for name, value in self.components.items()}


def aggregate(paths: Iterable[CriticalPath]) -> list[ProtocolBreakdown]:
    """Per-(protocol, shard) totals across many transactions' critical paths.

    Unsharded traces carry no shard tags, so every path falls in the single
    ``shard=None`` group per protocol and the output is identical to the
    pre-sharding aggregation.
    """

    groups: dict[tuple[str | None, int | None], ProtocolBreakdown] = {}
    for path in paths:
        key = (path.protocol, path.shard)
        breakdown = groups.get(key)
        if breakdown is None:
            breakdown = groups[key] = ProtocolBreakdown(
                protocol=path.protocol, shard=path.shard
            )
        breakdown.tx_count += 1
        breakdown.hop_count += len(path.hops)
        breakdown.e2e_ms += path.e2e_ms
        breakdown.trs_wait_ms += path.trs_wait_ms
        breakdown.matched_hops += sum(1 for hop in path.hops if hop.matched)
        for name, value in path.component_sums().items():
            breakdown.components[name] += value
    return [
        groups[key]
        for key in sorted(groups, key=lambda k: (str(k[0]), k[1] is not None, k[1] or 0))
    ]
