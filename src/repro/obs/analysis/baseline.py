"""Canonical bench-record schema and committed regression baselines.

Benchmarks and sweep aggregates used to emit ad-hoc JSON documents; this
module gives them one shape so they can be diffed across runs and gated in
CI:

* a **bench record** (``repro.bench/1``): name, a flat ``metrics`` mapping of
  numeric observations, the :func:`repro.obs.manifest.run_manifest` stamp
  (git sha, python, platform, seed, N, ...), and free-form ``meta``;
* a **baseline** (``repro.bench-baseline/1``): committed under
  ``benchmarks/baselines/``, holding per-metric expected value, relative
  tolerance and direction.  The committed baseline — not the incoming record
  — is the source of truth for tolerances and directions; refreshing a
  baseline (``--update``) rewrites values only.

Directions:

``lower``
    Lower is better; a regression is the current value exceeding
    ``value * (1 + tolerance)``.
``higher``
    Higher is better; a regression is falling below
    ``value * (1 - tolerance)``.
``info``
    Tracked for the report but never gates (wall-clock curiosities,
    machine-dependent rates).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ...errors import TraceReadError
from ..manifest import run_manifest

__all__ = [
    "BENCH_SCHEMA",
    "BASELINE_SCHEMA",
    "DIRECTIONS",
    "BaselineMetric",
    "Baseline",
    "bench_record",
    "load_bench_record",
    "write_bench_record",
    "load_baseline",
    "write_baseline",
    "update_baseline",
]

BENCH_SCHEMA = "repro.bench/1"
BASELINE_SCHEMA = "repro.bench-baseline/1"
DIRECTIONS = ("lower", "higher", "info")


def bench_record(
    name: str,
    metrics: Mapping[str, float],
    *,
    meta: Mapping[str, Any] | None = None,
    **manifest_extra: Any,
) -> dict[str, Any]:
    """Build a ``repro.bench/1`` record, stamped with the run manifest.

    ``metrics`` must be flat name → number; non-numeric observations belong
    in ``meta``.  Extra keyword arguments (seed, num_nodes, ...) go into the
    manifest stamp.
    """

    clean: dict[str, float] = {}
    for key, value in metrics.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TraceReadError(
                f"bench record {name!r}: metric {key!r} is not numeric "
                f"({type(value).__name__}); put non-numeric data in meta"
            )
        clean[key] = float(value)
    return {
        "schema": BENCH_SCHEMA,
        "name": name,
        "metrics": clean,
        "manifest": run_manifest(**manifest_extra),
        "meta": dict(meta) if meta else {},
    }


def load_bench_record(path: str | Path) -> dict[str, Any]:
    """Load and validate a ``repro.bench/1`` record."""

    path = Path(path)
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TraceReadError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(record, dict) or record.get("schema") != BENCH_SCHEMA:
        raise TraceReadError(
            f"{path}: not a {BENCH_SCHEMA} record "
            f"(schema={record.get('schema')!r} if it is a dict at all)"
        )
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        raise TraceReadError(f"{path}: 'metrics' must be an object")
    for key, value in metrics.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TraceReadError(f"{path}: metric {key!r} is not numeric")
    if not isinstance(record.get("name"), str):
        raise TraceReadError(f"{path}: missing record 'name'")
    return record


def write_bench_record(path: str | Path, record: Mapping[str, Any]) -> None:
    Path(path).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@dataclass(frozen=True, slots=True)
class BaselineMetric:
    """Expectation for one metric: value, relative tolerance, direction."""

    value: float
    tolerance: float
    direction: str = "lower"

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise TraceReadError(
                f"unknown baseline direction {self.direction!r}; "
                f"expected one of {DIRECTIONS}"
            )
        if self.tolerance < 0:
            raise TraceReadError("baseline tolerance must be >= 0")


@dataclass
class Baseline:
    """A committed set of metric expectations for one benchmark."""

    name: str
    metrics: dict[str, BaselineMetric]

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": BASELINE_SCHEMA,
            "name": self.name,
            "metrics": {
                key: {
                    "value": metric.value,
                    "tolerance": metric.tolerance,
                    "direction": metric.direction,
                }
                for key, metric in sorted(self.metrics.items())
            },
        }


def load_baseline(path: str | Path) -> Baseline:
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TraceReadError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise TraceReadError(
            f"{path}: not a {BASELINE_SCHEMA} document "
            f"(schema={doc.get('schema')!r} if it is a dict at all)"
        )
    metrics: dict[str, BaselineMetric] = {}
    raw = doc.get("metrics")
    if not isinstance(raw, dict):
        raise TraceReadError(f"{path}: 'metrics' must be an object")
    for key, spec in raw.items():
        try:
            metrics[key] = BaselineMetric(
                value=float(spec["value"]),
                tolerance=float(spec.get("tolerance", 0.0)),
                direction=str(spec.get("direction", "lower")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceReadError(f"{path}: malformed metric {key!r}: {exc}") from exc
    if not isinstance(doc.get("name"), str):
        raise TraceReadError(f"{path}: missing baseline 'name'")
    return Baseline(name=doc["name"], metrics=metrics)


def write_baseline(path: str | Path, baseline: Baseline) -> None:
    Path(path).write_text(
        json.dumps(baseline.to_json(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def update_baseline(baseline: Baseline, record: Mapping[str, Any]) -> Baseline:
    """Refresh *baseline*'s values from *record*, keeping tolerance/direction.

    Metrics absent from the record keep their old value; metrics new in the
    record are *not* added (adding a gated metric is a deliberate edit to the
    committed file, not a side effect of refreshing).
    """

    metrics = dict(baseline.metrics)
    record_metrics = record.get("metrics", {})
    for key, metric in baseline.metrics.items():
        if key in record_metrics:
            metrics[key] = BaselineMetric(
                value=float(record_metrics[key]),
                tolerance=metric.tolerance,
                direction=metric.direction,
            )
    return Baseline(name=baseline.name, metrics=metrics)
