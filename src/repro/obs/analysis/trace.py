"""Versioned trace reading and dissemination-tree reconstruction.

The simulator emits JSON Lines traces (see :mod:`repro.obs.tracer`): a header
line stating the format version, then spans and events in creation order.
This module turns such a file back into structure:

* :func:`read_trace` — parse + validate (header version, span parent/child
  integrity, event ownership);
* :func:`build_trees` — reconstruct, per transaction, the actual
  dissemination tree: who relayed to whom, on which overlay, at what
  simulated time.  The parent edges come from the ``tx.deliver`` events every
  protocol emits on first delivery (``sender`` = the immediate predecessor),
  the root from ``tx.dispatch`` (the paper's latency reference point — the
  first transmission of the payload itself).

Traces may interleave several protocols (the figure scripts run all four
against one tracer); each run is wrapped in a span carrying a ``protocol``
attribute, so events are attributed to a protocol by walking their owning
span chain.  Transaction ids restart per protocol run, hence trees are keyed
``(protocol, tx_id)``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, TextIO

from ...errors import TraceReadError
from ..tracer import TRACE_SCHEMA, TRACE_VERSION

__all__ = [
    "TraceHeader",
    "ReadSpan",
    "ReadEvent",
    "Trace",
    "Delivery",
    "DisseminationTree",
    "StreamedLatencies",
    "read_trace",
    "build_trees",
    "stream_latencies",
]


@dataclass(frozen=True, slots=True)
class TraceHeader:
    """The first line of a v1 trace file."""

    v: int
    schema: str
    events: int
    spans: int
    events_dropped: int
    spans_dropped: int

    @property
    def lossy(self) -> bool:
        """True when the ring buffers evicted records before export."""

        return self.events_dropped > 0 or self.spans_dropped > 0


@dataclass(frozen=True, slots=True)
class ReadSpan:
    """One ``{"type": "span"}`` record."""

    seq: int
    span_id: int
    parent_id: int | None
    name: str
    start_ms: float
    end_ms: float | None
    attrs: dict[str, Any]


@dataclass(frozen=True, slots=True)
class ReadEvent:
    """One ``{"type": "event"}`` record."""

    seq: int
    time_ms: float
    name: str
    span_id: int | None
    attrs: dict[str, Any]


class Trace:
    """A parsed trace: header, events and spans, with owner resolution."""

    def __init__(
        self, header: TraceHeader, events: list[ReadEvent], spans: list[ReadSpan]
    ) -> None:
        self.header = header
        self.events = events
        self.spans = spans
        self._span_index: dict[int, ReadSpan] = {s.span_id: s for s in spans}

    def span(self, span_id: int) -> ReadSpan | None:
        return self._span_index.get(span_id)

    def events_named(self, *names: str) -> list[ReadEvent]:
        wanted = set(names)
        return [e for e in self.events if e.name in wanted]

    def protocol_of(self, event: ReadEvent) -> str | None:
        """The ``protocol`` attribute of the nearest enclosing span, if any."""

        span_id = event.span_id
        seen: set[int] = set()
        while span_id is not None and span_id not in seen:
            seen.add(span_id)
            span = self._span_index.get(span_id)
            if span is None:
                return None
            protocol = span.attrs.get("protocol")
            if protocol is not None:
                return str(protocol)
            span_id = span.parent_id
        return None

    def validate(self) -> list[str]:
        """Structural problems: dangling span parents, orphan event owners.

        A lossy trace (ring buffers overflowed) legitimately references
        evicted records, so dangling references are only reported when the
        header says nothing was dropped.
        """

        problems: list[str] = []
        if self.header.lossy:
            return problems
        for span in self.spans:
            if span.parent_id is not None and span.parent_id not in self._span_index:
                problems.append(
                    f"span {span.span_id} ({span.name!r}) references missing "
                    f"parent {span.parent_id}"
                )
            if span.end_ms is not None and span.end_ms < span.start_ms:
                problems.append(
                    f"span {span.span_id} ({span.name!r}) ends before it starts"
                )
        for event in self.events:
            if event.span_id is not None and event.span_id not in self._span_index:
                problems.append(
                    f"event seq={event.seq} ({event.name!r}) references missing "
                    f"span {event.span_id}"
                )
        return problems


def _parse_header(record: dict[str, Any]) -> TraceHeader:
    if record.get("type") != "header":
        raise TraceReadError(
            "not a repro trace file: first line must be the "
            f'{{"type": "header"}} record, got type={record.get("type")!r} '
            "(traces from before the versioned format need re-exporting)"
        )
    version = record.get("v")
    if version != TRACE_VERSION:
        raise TraceReadError(
            f"unsupported trace version v={version!r} "
            f"(schema {record.get('schema')!r}); this reader understands "
            f"v={TRACE_VERSION} ({TRACE_SCHEMA})"
        )
    return TraceHeader(
        v=int(version),
        schema=str(record.get("schema", TRACE_SCHEMA)),
        events=int(record.get("events", 0)),
        spans=int(record.get("spans", 0)),
        events_dropped=int(record.get("events_dropped", 0)),
        spans_dropped=int(record.get("spans_dropped", 0)),
    )


def read_trace(source: str | TextIO | Iterable[str]) -> Trace:
    """Parse a JSONL trace file (path, file object, or iterable of lines).

    Raises :class:`~repro.errors.TraceReadError` on a missing/foreign header,
    an unsupported ``"v"``, malformed JSON, or an unknown record type.
    """

    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_trace(handle)

    header: TraceHeader | None = None
    events: list[ReadEvent] = []
    spans: list[ReadSpan] = []
    for number, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceReadError(f"line {number} is not valid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise TraceReadError(f"line {number} is not a JSON object")
        if header is None:
            header = _parse_header(record)
            continue
        kind = record.get("type")
        try:
            if kind == "event":
                events.append(
                    ReadEvent(
                        seq=int(record["seq"]),
                        time_ms=float(record["time_ms"]),
                        name=str(record["name"]),
                        span_id=record["span_id"],
                        attrs=dict(record.get("attrs") or {}),
                    )
                )
            elif kind == "span":
                end_ms = record["end_ms"]
                spans.append(
                    ReadSpan(
                        seq=int(record["seq"]),
                        span_id=int(record["span_id"]),
                        parent_id=record["parent_id"],
                        name=str(record["name"]),
                        start_ms=float(record["start_ms"]),
                        end_ms=float(end_ms) if end_ms is not None else None,
                        attrs=dict(record.get("attrs") or {}),
                    )
                )
            else:
                raise TraceReadError(
                    f"line {number}: unknown record type {kind!r} "
                    f"(v{TRACE_VERSION} defines 'span' and 'event')"
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceReadError(f"line {number}: malformed {kind} record: {exc}") from exc
    if header is None:
        raise TraceReadError("empty input: not a repro trace file (missing header)")
    return Trace(header, events, spans)


# ----------------------------------------------------------------------
# Dissemination trees
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Delivery:
    """One node's first delivery of a transaction (a ``tx.deliver`` event)."""

    node: int
    sender: int
    time_ms: float
    seq: int
    overlay_id: int | None = None
    hops: int | None = None
    via: str | None = None


@dataclass
class DisseminationTree:
    """Who relayed a transaction to whom, reconstructed from the trace.

    The root is the origin; an edge ``parent -> node`` means *node*'s first
    copy arrived from *parent*.  ``orphans`` collects deliveries whose sender
    is not itself reachable from the origin — impossible in a complete trace
    (a node must hold a transaction before forwarding it), so any orphan
    indicates an incomplete (lossy) trace or an instrumentation gap.
    """

    tx_id: int
    protocol: str | None
    origin: int | None = None
    shard: int | None = None
    submit_ms: float | None = None
    dispatch_ms: float | None = None
    overlay_id: int | None = None
    deliveries: dict[int, Delivery] = field(default_factory=dict)
    children: dict[int, list[int]] = field(default_factory=dict)
    orphans: list[Delivery] = field(default_factory=list)

    @property
    def node_count(self) -> int:
        """Nodes holding the transaction (origin + reconstructed deliveries)."""

        return len(self.deliveries) + (1 if self.origin is not None else 0)

    def parent_of(self, node: int) -> int | None:
        delivery = self.deliveries.get(node)
        return delivery.sender if delivery is not None else None

    def path_to(self, node: int) -> list[int]:
        """Relay path origin → ... → *node* (inclusive)."""

        path = [node]
        seen = {node}
        while True:
            parent = self.parent_of(path[-1])
            if parent is None or parent in seen:
                break
            path.append(parent)
            seen.add(parent)
        path.reverse()
        return path

    def depth_of(self, node: int) -> int:
        return len(self.path_to(node)) - 1

    def max_depth(self) -> int:
        return max((self.depth_of(n) for n in self.deliveries), default=0)

    def last_delivery(self) -> Delivery | None:
        """The slowest delivery — the endpoint of the critical path."""

        return max(
            self.deliveries.values(), key=lambda d: (d.time_ms, d.seq), default=None
        )


def build_trees(trace: Trace) -> list[DisseminationTree]:
    """Reconstruct every transaction's dissemination tree from *trace*.

    Returns trees ordered by (protocol, tx_id).  Orphan deliveries (sender
    not reachable from the origin) are kept on the tree's ``orphans`` list
    rather than silently dropped, so callers can assert completeness.
    """

    trees: dict[tuple[str | None, int], DisseminationTree] = {}

    def tree_for(event: ReadEvent) -> DisseminationTree:
        key = (trace.protocol_of(event), int(event.attrs["tx_id"]))
        tree = trees.get(key)
        if tree is None:
            tree = trees[key] = DisseminationTree(tx_id=key[1], protocol=key[0])
        if tree.shard is None and event.attrs.get("shard") is not None:
            # Sharded runs stamp every event with its shard tag (see
            # TaggedObservability); unsharded traces never carry the key.
            tree.shard = int(event.attrs["shard"])
        return tree

    deliveries: dict[tuple[str | None, int], list[ReadEvent]] = {}
    for event in trace.events:
        if event.name == "tx.submit":
            tree = tree_for(event)
            if tree.submit_ms is None:
                tree.submit_ms = event.time_ms
                tree.origin = int(event.attrs["origin"])
        elif event.name == "tx.dispatch":
            tree = tree_for(event)
            if tree.dispatch_ms is None:
                tree.dispatch_ms = event.time_ms
                tree.origin = int(event.attrs["origin"])
                if event.attrs.get("overlay_id") is not None:
                    tree.overlay_id = int(event.attrs["overlay_id"])
        elif event.name == "tx.deliver":
            key = (trace.protocol_of(event), int(event.attrs["tx_id"]))
            deliveries.setdefault(key, []).append(event)

    for key, events in deliveries.items():
        tree = trees.get(key)
        if tree is None:
            tree = trees[key] = DisseminationTree(tx_id=key[1], protocol=key[0])
        if tree.shard is None:
            for event in events:
                if event.attrs.get("shard") is not None:
                    tree.shard = int(event.attrs["shard"])
                    break
        reachable: set[int] = set()
        if tree.origin is not None:
            reachable.add(tree.origin)
        # Creation order is time order; a sender must already hold the
        # transaction, so one forward pass reconstructs the whole tree.
        for event in sorted(events, key=lambda e: e.seq):
            attrs = event.attrs
            delivery = Delivery(
                node=int(attrs["node"]),
                sender=int(attrs["sender"]),
                time_ms=event.time_ms,
                seq=event.seq,
                overlay_id=attrs.get("overlay_id"),
                hops=attrs.get("hops"),
                via=attrs.get("via"),
            )
            if delivery.node in tree.deliveries or delivery.node == tree.origin:
                continue  # first delivery wins; later events are duplicates
            if delivery.sender not in reachable:
                tree.orphans.append(delivery)
                continue
            tree.deliveries[delivery.node] = delivery
            tree.children.setdefault(delivery.sender, []).append(delivery.node)
            reachable.add(delivery.node)

    return [trees[key] for key in sorted(trees, key=lambda k: (str(k[0]), k[1]))]


# ----------------------------------------------------------------------
# Streaming latency fold (constant memory per metric)
# ----------------------------------------------------------------------


@dataclass
class StreamedLatencies:
    """Per-protocol delivery-latency sketches folded from a trace stream.

    ``sketches`` maps protocol name (or None) to a
    :class:`~repro.net.sketch.QuantileSketch` over every ``tx.deliver``
    latency (delivery time − that transaction's ``tx.dispatch`` time).
    ``skipped`` counts deliveries that could not be attributed — their
    dispatch was never seen, or was evicted from the bounded in-flight map —
    so truncation is always visible, never silent.
    """

    sketches: dict[str | None, "QuantileSketch"] = field(default_factory=dict)
    deliveries: int = 0
    skipped: int = 0
    events: int = 0


def stream_latencies(
    source: str | TextIO | Iterable[str],
    *,
    sketch_capacity: int = 512,
    max_inflight: int = 100_000,
) -> StreamedLatencies:
    """Fold a trace's delivery latencies without materializing the trace.

    :func:`read_trace` + :func:`build_trees` hold every event and every
    delivery in memory — fine for figure-sized traces, impossible for a
    sustained 10⁶-transaction run.  This fold reads the JSONL line by line
    and keeps only: the span table (O(runs), for protocol attribution), one
    quantile sketch per protocol, and an in-flight ``tx_id → dispatch time``
    map bounded at *max_inflight* entries (oldest evicted first; affected
    deliveries are counted in ``skipped``).

    Same validation as :func:`read_trace` for the header and record shapes.
    """

    from ...net.sketch import QuantileSketch

    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return stream_latencies(
                handle,
                sketch_capacity=sketch_capacity,
                max_inflight=max_inflight,
            )

    header: TraceHeader | None = None
    # span_id -> (parent_id, protocol attr or None)
    spans: dict[int, tuple[int | None, str | None]] = {}
    # (protocol, tx_id) -> dispatch time, insertion-ordered for FIFO eviction.
    inflight: dict[tuple[str | None, int], float] = {}
    result = StreamedLatencies()

    def protocol_of(span_id: int | None) -> str | None:
        seen: set[int] = set()
        while span_id is not None and span_id not in seen:
            seen.add(span_id)
            entry = spans.get(span_id)
            if entry is None:
                return None
            parent_id, protocol = entry
            if protocol is not None:
                return protocol
            span_id = parent_id
        return None

    for number, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceReadError(f"line {number} is not valid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise TraceReadError(f"line {number} is not a JSON object")
        if header is None:
            header = _parse_header(record)
            continue
        kind = record.get("type")
        if kind == "span":
            attrs = record.get("attrs") or {}
            protocol = attrs.get("protocol")
            spans[int(record["span_id"])] = (
                record.get("parent_id"),
                str(protocol) if protocol is not None else None,
            )
            continue
        if kind != "event":
            raise TraceReadError(
                f"line {number}: unknown record type {kind!r} "
                f"(v{TRACE_VERSION} defines 'span' and 'event')"
            )
        name = record.get("name")
        if name not in ("tx.dispatch", "tx.deliver"):
            continue
        result.events += 1
        attrs = record.get("attrs") or {}
        try:
            tx_id = int(attrs["tx_id"])
            time_ms = float(record["time_ms"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceReadError(f"line {number}: malformed event record: {exc}") from exc
        key = (protocol_of(record.get("span_id")), tx_id)
        if name == "tx.dispatch":
            if key not in inflight:
                if len(inflight) >= max_inflight:
                    # FIFO eviction: dicts iterate in insertion order.
                    oldest = next(iter(inflight))
                    del inflight[oldest]
                    result.skipped += 1
                inflight[key] = time_ms
        else:  # tx.deliver
            dispatch_ms = inflight.get(key)
            if dispatch_ms is None:
                result.skipped += 1
                continue
            sketch = result.sketches.get(key[0])
            if sketch is None:
                sketch = result.sketches[key[0]] = QuantileSketch(sketch_capacity)
            sketch.observe(max(0.0, time_ms - dispatch_ms))
            result.deliveries += 1
    if header is None:
        raise TraceReadError("empty input: not a repro trace file (missing header)")
    return result
