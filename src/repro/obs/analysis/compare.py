"""Cross-run bench diffing and the regression verdict.

:func:`compare` judges one ``repro.bench/1`` record against its committed
:class:`~repro.obs.analysis.baseline.Baseline`:

* every **gated** baseline metric (direction ``lower``/``higher``) must be
  present in the record and within its relative tolerance of the expected
  value — missing or out-of-band is a regression;
* ``info`` metrics and metrics only the record has are reported but never
  fail the gate (new metrics become gated by editing the committed file);
* a zero-valued ``lower`` baseline means "this must stay zero": any positive
  current value regresses regardless of relative tolerance (there is nothing
  to be relative to).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from .baseline import Baseline, BaselineMetric

__all__ = ["MetricComparison", "ComparisonResult", "compare", "compare_many"]


@dataclass(frozen=True, slots=True)
class MetricComparison:
    """One metric's verdict against the baseline."""

    metric: str
    baseline: float | None  # None: metric exists only in the record
    current: float | None  # None: metric missing from the record
    tolerance: float
    direction: str
    regressed: bool
    note: str

    @property
    def delta(self) -> float | None:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def relative_delta(self) -> float | None:
        delta = self.delta
        if delta is None or self.baseline == 0:
            return None
        return delta / abs(self.baseline)  # type: ignore[arg-type]


@dataclass
class ComparisonResult:
    """All metric verdicts for one benchmark."""

    name: str
    comparisons: list[MetricComparison]

    @property
    def regressions(self) -> list[MetricComparison]:
        return [c for c in self.comparisons if c.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        gated = sum(1 for c in self.comparisons if c.direction != "info")
        verdict = "OK" if self.ok else f"{len(self.regressions)} regression(s)"
        return f"{self.name}: {verdict} ({gated} gated metric(s) checked)"


def _judge(metric: str, spec: BaselineMetric, current: float | None) -> MetricComparison:
    if current is None:
        regressed = spec.direction != "info"
        note = "metric missing from record" + ("" if regressed else " (info)")
        return MetricComparison(
            metric=metric,
            baseline=spec.value,
            current=None,
            tolerance=spec.tolerance,
            direction=spec.direction,
            regressed=regressed,
            note=note,
        )
    if spec.direction == "info":
        regressed, note = False, "informational"
    elif spec.direction == "lower":
        if spec.value == 0.0:
            regressed = current > 0.0
            note = "must stay zero" if regressed else "within tolerance"
        else:
            limit = spec.value * (1.0 + spec.tolerance)
            regressed = current > limit
            note = (
                f"exceeds {spec.value:g} by more than {spec.tolerance:.0%}"
                if regressed
                else "within tolerance"
            )
    else:  # higher
        limit = spec.value * (1.0 - spec.tolerance)
        regressed = current < limit
        note = (
            f"below {spec.value:g} by more than {spec.tolerance:.0%}"
            if regressed
            else "within tolerance"
        )
    return MetricComparison(
        metric=metric,
        baseline=spec.value,
        current=current,
        tolerance=spec.tolerance,
        direction=spec.direction,
        regressed=regressed,
        note=note,
    )


def compare(record: Mapping[str, Any], baseline: Baseline) -> ComparisonResult:
    """Judge one bench record against its committed baseline."""

    record_metrics: Mapping[str, float] = record.get("metrics", {})
    comparisons = [
        _judge(metric, spec, record_metrics.get(metric))
        for metric, spec in sorted(baseline.metrics.items())
    ]
    for metric in sorted(set(record_metrics) - set(baseline.metrics)):
        comparisons.append(
            MetricComparison(
                metric=metric,
                baseline=None,
                current=float(record_metrics[metric]),
                tolerance=0.0,
                direction="info",
                regressed=False,
                note="not in baseline (ungated)",
            )
        )
    return ComparisonResult(name=str(record.get("name", baseline.name)), comparisons=comparisons)


def compare_many(
    pairs: Iterable[tuple[Mapping[str, Any], Baseline]]
) -> list[ComparisonResult]:
    return [compare(record, baseline) for record, baseline in pairs]
