"""Trace analytics and run reports (``repro.obs.analysis``).

Post-hoc analysis over the simulator's observability output:

* :mod:`~repro.obs.analysis.trace` — versioned JSONL trace reading and
  per-transaction dissemination-tree reconstruction;
* :mod:`~repro.obs.analysis.critical_path` — hop-by-hop latency attribution
  along each transaction's slowest root-to-leaf path;
* :mod:`~repro.obs.analysis.baseline` / :mod:`~repro.obs.analysis.compare` —
  canonical bench-record schema, committed baselines, cross-run regression
  verdicts;
* :mod:`~repro.obs.analysis.report` — self-contained markdown/HTML run
  reports;
* :mod:`~repro.obs.analysis.sweep_report` — overhead attribution for
  ``repro.sweeptrace/1`` sweep timelines (phase totals, per-worker Gantt,
  Amdahl achievable-speedup bound);
* :mod:`~repro.obs.analysis.history` — append-only bench ledger and
  cross-run per-metric trajectories with direction-aware anomaly flags;
* :mod:`~repro.obs.analysis.cli` — ``python -m repro analyze | report |
  bench-gate | analyze-sweep | bench history``.
"""

from .baseline import (
    BASELINE_SCHEMA,
    BENCH_SCHEMA,
    Baseline,
    BaselineMetric,
    bench_record,
    load_baseline,
    load_bench_record,
    update_baseline,
    write_baseline,
    write_bench_record,
)
from .compare import ComparisonResult, MetricComparison, compare, compare_many
from .critical_path import (
    COMPONENTS,
    CriticalPath,
    Hop,
    ProtocolBreakdown,
    aggregate,
    critical_path,
    critical_paths,
)
from .history import (
    HistoryReport,
    Trajectory,
    append_history,
    build_history_report,
    load_history,
    render_history_report,
    sparkline,
    trajectories,
)
from .report import render_html, render_report
from .sweep_report import (
    SweepAnalysis,
    analyze_timeline,
    render_sweep_report,
)
from .trace import (
    Delivery,
    DisseminationTree,
    ReadEvent,
    ReadSpan,
    StreamedLatencies,
    Trace,
    TraceHeader,
    build_trees,
    read_trace,
    stream_latencies,
)

__all__ = [
    "BASELINE_SCHEMA",
    "BENCH_SCHEMA",
    "COMPONENTS",
    "Baseline",
    "BaselineMetric",
    "ComparisonResult",
    "CriticalPath",
    "HistoryReport",
    "SweepAnalysis",
    "Trajectory",
    "Delivery",
    "DisseminationTree",
    "Hop",
    "MetricComparison",
    "ProtocolBreakdown",
    "ReadEvent",
    "ReadSpan",
    "StreamedLatencies",
    "Trace",
    "TraceHeader",
    "aggregate",
    "analyze_timeline",
    "append_history",
    "bench_record",
    "build_history_report",
    "build_trees",
    "compare",
    "compare_many",
    "critical_path",
    "critical_paths",
    "load_baseline",
    "load_bench_record",
    "load_history",
    "read_trace",
    "render_history_report",
    "render_html",
    "render_report",
    "render_sweep_report",
    "sparkline",
    "stream_latencies",
    "trajectories",
    "update_baseline",
    "write_baseline",
    "write_bench_record",
]
