"""Wall-clock profiling hooks for the discrete-event simulator.

Where the tracer answers *what happened in simulated time*, the profiler
answers *where the real CPU time went*: per-callback wall-time attribution
(keyed by the callback's qualified name) and periodic event-queue depth
samples.  Attach one via :meth:`repro.net.simulator.Simulator.set_profiler`
(or ``Observability.enabled(profile=True)``) and read the result with
``simulator.profile()``.

Profiling never influences the simulation itself — it only reads the clock —
so seeded runs remain deterministic with profiling on or off.  The numbers it
reports are wall-clock and therefore machine-dependent; they belong in the
run manifest's ``profile`` section, never in the deterministic trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["CallbackStats", "QueueSample", "SimulatorProfile", "SimulatorProfiler", "callback_key"]


def callback_key(callback: Callable[[], None]) -> str:
    """A stable, human-readable attribution key for a scheduled callback.

    Bound methods and functions report their ``__qualname__`` (lambdas keep
    the enclosing scope, e.g. ``Network.send.<locals>.<lambda>``); callable
    objects fall back to their type's name.
    """

    qualname = getattr(callback, "__qualname__", None)
    if qualname is not None:
        return qualname
    func = getattr(callback, "func", None)  # functools.partial
    if func is not None:
        return callback_key(func)
    return type(callback).__qualname__


@dataclass(slots=True)
class CallbackStats:
    """Accumulated wall time of one callback attribution key."""

    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def to_json(self) -> dict[str, Any]:
        return {"calls": self.calls, "total_s": self.total_s, "max_s": self.max_s}


@dataclass(frozen=True, slots=True)
class QueueSample:
    """One event-queue depth sample."""

    time_ms: float  # simulation clock at the sample
    depth: int  # pending events after the sampled event ran
    events_processed: int  # simulator-lifetime event count at the sample

    def to_json(self) -> dict[str, Any]:
        return {
            "time_ms": self.time_ms,
            "depth": self.depth,
            "events_processed": self.events_processed,
        }


@dataclass(slots=True)
class SimulatorProfile:
    """An immutable snapshot of a profiler, as returned by ``simulator.profile()``."""

    events: int
    wall_s: float
    callbacks: dict[str, CallbackStats]
    queue_samples: list[QueueSample] = field(default_factory=list)

    def hottest(self, n: int = 10) -> list[tuple[str, CallbackStats]]:
        """The *n* attribution keys with the largest total wall time."""

        ranked = sorted(
            self.callbacks.items(), key=lambda item: (-item[1].total_s, item[0])
        )
        return ranked[:n]

    def max_queue_depth(self) -> int:
        return max((sample.depth for sample in self.queue_samples), default=0)

    def to_json(self) -> dict[str, Any]:
        return {
            "events": self.events,
            "wall_s": self.wall_s,
            "callbacks": {
                key: stats.to_json() for key, stats in sorted(self.callbacks.items())
            },
            "queue_samples": [sample.to_json() for sample in self.queue_samples],
        }


class SimulatorProfiler:
    """Collects per-callback wall time and queue-depth samples.

    Parameters
    ----------
    queue_sample_interval:
        Sample the queue depth every this many processed events (1 = every
        event).  Sampling is cheap but samples accumulate; the default keeps
        a million-event run to ~4k samples.
    clock:
        The wall-clock source; overridable for tests.
    """

    def __init__(
        self,
        queue_sample_interval: int = 256,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if queue_sample_interval < 1:
            raise ValueError(f"interval must be >= 1, got {queue_sample_interval}")
        self.clock = clock
        self.queue_sample_interval = queue_sample_interval
        self._callbacks: dict[str, CallbackStats] = {}
        self._samples: list[QueueSample] = []
        self._events = 0
        self._wall_s = 0.0
        self._since_sample = 0

    # -- hooks called by Simulator.run ------------------------------------

    def record(self, callback: Callable[[], None], elapsed_s: float) -> None:
        """Attribute *elapsed_s* of wall time to *callback*."""

        stats = self._callbacks.setdefault(callback_key(callback), CallbackStats())
        stats.calls += 1
        stats.total_s += elapsed_s
        if elapsed_s > stats.max_s:
            stats.max_s = elapsed_s
        self._events += 1
        self._wall_s += elapsed_s

    def after_event(self, time_ms: float, depth: int, events_processed: int) -> None:
        """Called after each event; samples the queue on the configured cadence."""

        self._since_sample += 1
        if self._since_sample >= self.queue_sample_interval:
            self._since_sample = 0
            self._samples.append(QueueSample(time_ms, depth, events_processed))

    # -- reading ----------------------------------------------------------

    def snapshot(self) -> SimulatorProfile:
        return SimulatorProfile(
            events=self._events,
            wall_s=self._wall_s,
            callbacks={
                key: CallbackStats(stats.calls, stats.total_s, stats.max_s)
                for key, stats in self._callbacks.items()
            },
            queue_samples=list(self._samples),
        )

    def clear(self) -> None:
        self._callbacks.clear()
        self._samples.clear()
        self._events = 0
        self._wall_s = 0.0
        self._since_sample = 0
