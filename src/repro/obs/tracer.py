"""Hierarchical, simulation-clock-aware tracing.

A :class:`Tracer` records two kinds of telemetry:

* **Spans** — named intervals of simulated time with parent/child nesting
  (``with tracer.span("hermes.disseminate", tx_id=7): ...``).  Spans may also
  be ended explicitly with :meth:`Span.end` when the interval crosses
  scheduled callbacks.
* **Events** — instantaneous structured records (``tracer.event("net.drop",
  src=3, dst=9)``) attributed to the currently open span, if any.

Both are held in bounded ring buffers (oldest records are dropped once the
buffer fills; the drop counts are reported in the run manifest), and both are
stamped with the *simulation* clock, never the wall clock, so a seeded run
produces a byte-for-byte identical trace every time.  Wall-clock attribution
lives in :mod:`repro.obs.profiler` instead.

Export is JSON Lines: a version header first, then one record per line in
creation order — simulation time is monotonic during a run, so creation order
is time order for events; spans are ordered by their start:

* ``{"type": "header", "v": 1, "schema": "repro.trace/1", "events": n,
  "spans": n, "events_dropped": n, "spans_dropped": n}``
* ``{"type": "span", "seq": 3, "span_id": 1, "parent_id": null,
  "name": ..., "start_ms": ..., "end_ms": ..., "attrs": {...}}``
* ``{"type": "event", "seq": 4, "time_ms": ..., "name": ...,
  "span_id": 1, "attrs": {...}}``

The header is what lets :mod:`repro.obs.analysis.trace` reject trace files
written by a future incompatible format instead of mis-parsing them.

The clock is bound late (:meth:`Tracer.bind_clock`) because the tracer is
usually constructed before the simulator it observes.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, TextIO

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "TRACE_SCHEMA",
    "TRACE_VERSION",
]

#: Schema tag written into the JSONL header line.
TRACE_SCHEMA = "repro.trace/1"
#: Format version written into the JSONL header line (``"v"``).
TRACE_VERSION = 1

#: Default capacity of the event ring buffer.
DEFAULT_MAX_EVENTS = 65_536
#: Default capacity of the completed-span ring buffer.
DEFAULT_MAX_SPANS = 16_384


class TraceEvent:
    """One instantaneous structured record."""

    __slots__ = ("seq", "time_ms", "name", "span_id", "attrs")

    def __init__(
        self,
        seq: int,
        time_ms: float,
        name: str,
        span_id: int | None,
        attrs: dict[str, Any],
    ) -> None:
        self.seq = seq
        self.time_ms = time_ms
        self.name = name
        self.span_id = span_id
        self.attrs = attrs

    def to_json(self) -> dict[str, Any]:
        return {
            "type": "event",
            "seq": self.seq,
            "time_ms": self.time_ms,
            "name": self.name,
            "span_id": self.span_id,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.name!r}, t={self.time_ms}, attrs={self.attrs})"


class Span:
    """A named interval of simulated time; use as a context manager or call
    :meth:`end` explicitly when the interval crosses scheduled callbacks."""

    __slots__ = ("seq", "span_id", "parent_id", "name", "start_ms", "end_ms", "attrs", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        seq: int,
        span_id: int,
        parent_id: int | None,
        name: str,
        start_ms: float,
        attrs: dict[str, Any],
    ) -> None:
        self.seq = seq
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ms = start_ms
        self.end_ms: float | None = None
        self.attrs = attrs
        self._tracer = tracer

    @property
    def duration_ms(self) -> float | None:
        """Simulated duration, or None while the span is still open."""

        if self.end_ms is None:
            return None
        return self.end_ms - self.start_ms

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on an open span."""

        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> "TraceEvent":
        """Record an event owned by *this* span.

        ``Tracer.event`` attributes to the innermost *stack* span — which is
        wrong for work done inside a :meth:`Tracer.detached_span` (detached
        spans never join the stack, so their events would silently attach to
        whatever ambient span happened to be open).  Recording through the
        span itself pins the owning ``span_id`` explicitly.
        """

        return self._tracer.record_event(name, self.span_id, attrs)

    def end(self) -> None:
        """Close the span at the current simulation time (idempotent)."""

        if self.end_ms is None:
            self._tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end()

    def to_json(self) -> dict[str, Any]:
        return {
            "type": "span",
            "seq": self.seq,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"start={self.start_ms}, end={self.end_ms})"
        )


class _NullSpan:
    """The span returned by a disabled tracer: every operation is a no-op."""

    __slots__ = ()
    span_id = None
    parent_id = None
    name = ""
    start_ms = 0.0
    end_ms = 0.0
    attrs: dict[str, Any] = {}
    duration_ms = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


#: Shared no-op span instance (what ``NullTracer.span`` returns).
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans and events against a late-bound simulation clock."""

    enabled: bool = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        max_events: int = DEFAULT_MAX_EVENTS,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._events: deque[TraceEvent] = deque(maxlen=max_events)
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._stack: list[Span] = []
        self._next_span_id = 1
        self._next_seq = 0
        self.events_dropped = 0
        self.spans_dropped = 0
        self._listeners: list[Callable[[TraceEvent], None]] = []

    # -- clock ----------------------------------------------------------

    def bind_clock(self, clock: object) -> None:
        """Point the tracer at a time source.

        Accepts either a zero-argument callable returning milliseconds or any
        object with a ``now`` attribute (e.g. a
        :class:`~repro.net.simulator.Simulator`).
        """

        if callable(clock):
            self._clock = clock  # type: ignore[assignment]
        elif hasattr(clock, "now"):
            self._clock = lambda: clock.now  # type: ignore[union-attr]
        else:
            raise TypeError(f"cannot use {clock!r} as a trace clock")

    def now(self) -> float:
        """Current time on the bound clock (milliseconds)."""

        return self._clock()

    # -- recording -------------------------------------------------------

    @property
    def current_span(self) -> Span | None:
        """The innermost open span, if any."""

        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a child span of the current span at the current sim time."""

        parent = self.current_span
        span = Span(
            tracer=self,
            seq=self._take_seq(),
            span_id=self._next_span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_ms=self._clock(),
            attrs=dict(attrs),
        )
        self._next_span_id += 1
        self._stack.append(span)
        return span

    def detached_span(self, name: str, **attrs: Any) -> Span:
        """Open a span that does NOT join the nesting stack.

        Detached spans are for intervals that overlap arbitrarily instead of
        nesting — chaos fault windows (a partition may outlive a latency
        spike that started inside it), connection lifetimes, and the like.
        They never become the parent of stack spans, and ending one leaves
        the stack untouched.
        """

        span = Span(
            tracer=self,
            seq=self._take_seq(),
            span_id=self._next_span_id,
            parent_id=None,
            name=name,
            start_ms=self._clock(),
            attrs=dict(attrs),
        )
        self._next_span_id += 1
        return span

    def _finish(self, span: Span) -> None:
        span.end_ms = self._clock()
        if span in self._stack:
            # Close any children left open (exception unwinding, explicit
            # end()); detached spans never sit on the stack and skip this.
            while self._stack[-1] is not span:
                dangling = self._stack.pop()
                if dangling.end_ms is None:
                    dangling.end_ms = span.end_ms
                    self._store_span(dangling)
            self._stack.pop()
        self._store_span(span)

    def _store_span(self, span: Span) -> None:
        if self._spans.maxlen is not None and len(self._spans) == self._spans.maxlen:
            self.spans_dropped += 1
        self._spans.append(span)

    def event(self, name: str, **attrs: Any) -> TraceEvent:
        """Record one structured event, owned by the innermost stack span.

        Inside a :meth:`detached_span`, record through :meth:`Span.event`
        instead — detached spans are invisible to the stack, so this method
        would attribute the event to the wrong owner.
        """

        current = self.current_span
        return self.record_event(
            name, current.span_id if current is not None else None, attrs
        )

    def record_event(
        self, name: str, span_id: int | None, attrs: dict[str, Any]
    ) -> TraceEvent:
        """Record one event with an explicit owning span id (see
        :meth:`Span.event`)."""

        event = TraceEvent(
            seq=self._take_seq(),
            time_ms=self._clock(),
            name=name,
            span_id=span_id,
            attrs=attrs,
        )
        if self._events.maxlen is not None and len(self._events) == self._events.maxlen:
            self.events_dropped += 1
        self._events.append(event)
        for listener in self._listeners:
            listener(event)
        return event

    # -- listeners --------------------------------------------------------

    def add_listener(self, listener: Callable[[TraceEvent], None]) -> None:
        """Call *listener* on every recorded event (online consumers, e.g.
        the chaos invariant monitors).  Listeners must not record events or
        spans themselves — that would recurse."""

        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[TraceEvent], None]) -> None:
        """Detach a previously added listener (missing listeners are ignored)."""

        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    # -- reading / export -------------------------------------------------

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    @property
    def spans(self) -> list[Span]:
        """Completed spans, in completion order."""

        return list(self._spans)

    def records(self) -> list[dict[str, Any]]:
        """All retained records as JSON-ready dicts, in creation order."""

        merged = [e.to_json() for e in self._events] + [s.to_json() for s in self._spans]
        merged.sort(key=lambda record: record["seq"])
        return merged

    def header(self) -> dict[str, Any]:
        """The JSONL header record: format version plus buffer accounting."""

        return {
            "type": "header",
            "v": TRACE_VERSION,
            "schema": TRACE_SCHEMA,
            "events": len(self._events),
            "spans": len(self._spans),
            "events_dropped": self.events_dropped,
            "spans_dropped": self.spans_dropped,
        }

    def export_jsonl(self, destination: str | TextIO) -> int:
        """Write the trace as JSON Lines (header line first); returns the
        number of lines written, header included."""

        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                return self.export_jsonl(handle)
        records = self.records()
        destination.write(json.dumps(self.header(), sort_keys=True) + "\n")
        for record in records:
            destination.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records) + 1

    def clear(self) -> None:
        """Drop all retained records (used between experiment repetitions)."""

        self._events.clear()
        self._spans.clear()
        self._stack.clear()
        self.events_dropped = 0
        self.spans_dropped = 0

    def __len__(self) -> int:
        return len(self._events) + len(self._spans)


class NullTracer(Tracer):
    """A tracer that records nothing — safe to leave in hot paths."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_events=0, max_spans=0)

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        return NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:  # type: ignore[override]
        return None

    def record_event(self, name, span_id, attrs) -> None:  # type: ignore[override]
        return None
