"""Wall-clock spans and phase timers for the runner's telemetry.

The tracer (:mod:`repro.obs.tracer`) measures *simulated* time; the profiler
(:mod:`repro.obs.profiler`) attributes wall time to simulator callbacks.  This
module is the third leg: lightweight wall-clock instruments for code that
lives *outside* the simulation — the sweep executor, its worker processes,
and anything else whose cost is real seconds rather than simulated
milliseconds.

Three pieces:

* :class:`WallClock` — a monotonic clock with a fixed origin, reporting
  offsets in seconds.  On Linux ``time.monotonic`` is ``CLOCK_MONOTONIC``,
  which is system-wide, so offsets taken against the *same origin value* are
  comparable across processes on one machine — the property the sweep
  timeline uses to relate parent-side submit times to worker-side start
  times.
* :class:`Stopwatch` — successive ``lap()`` deltas for straight-line phase
  measurement (deserialize → execute → serialize).
* :class:`PhaseTimer` — accumulates named phase durations via the
  ``with timer.phase("store_write"):`` context manager; re-entering a name
  adds to its total.

Everything here only *reads* clocks.  None of it touches simulation state,
RNG streams or id counters, so instrumented runs produce byte-identical
results to uninstrumented ones (pinned by
``tests/integration/test_sweep_telemetry.py``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["WallClock", "Stopwatch", "PhaseTimer"]


class WallClock:
    """Monotonic wall clock reporting offsets from a fixed origin.

    ``WallClock()`` anchors the origin at construction; ``WallClock(origin=x)``
    adopts an existing origin (a raw ``time.monotonic()`` value), which is how
    worker processes join the parent's timebase: the parent sends its origin
    over the spawn boundary and every process reports offsets against it.
    """

    __slots__ = ("_clock", "origin")

    def __init__(
        self,
        origin: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self.origin = clock() if origin is None else origin

    def now(self) -> float:
        """Seconds since the origin (clamped at 0 against cross-process skew)."""

        return max(0.0, self._clock() - self.origin)

    def raw(self) -> float:
        """The underlying clock value (for handing the origin to a child)."""

        return self._clock()


class Stopwatch:
    """Successive lap timing: each :meth:`lap` returns seconds since the last.

    >>> watch = Stopwatch(clock=iter([1.0, 1.5, 4.0]).__next__)
    >>> watch.lap()
    0.5
    >>> watch.lap()
    2.5
    """

    __slots__ = ("_clock", "_last")

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._last = clock()

    def lap(self) -> float:
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        return max(0.0, elapsed)


class PhaseTimer:
    """Accumulates wall time into named phases.

    >>> ticks = iter([0.0, 1.0, 1.0, 1.25]).__next__
    >>> timer = PhaseTimer(clock=ticks)
    >>> with timer.phase("execute"):
    ...     pass
    >>> with timer.phase("store_write"):
    ...     pass
    >>> timer.durations == {"execute": 1.0, "store_write": 0.25}
    True
    """

    __slots__ = ("_clock", "durations")

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.durations: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        started = self._clock()
        try:
            yield
        finally:
            elapsed = max(0.0, self._clock() - started)
            self.durations[name] = self.durations.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into a phase."""

        self.durations[name] = self.durations.get(name, 0.0) + max(0.0, seconds)

    def total(self) -> float:
        return sum(self.durations.values())
