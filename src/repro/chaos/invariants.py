"""Online protocol invariant checking for chaos campaigns.

The :class:`InvariantSuite` watches a running system through the network's
``on_send`` / ``on_receive`` taps plus periodic audit events on the simulator,
and checks four invariants while the scenario unfolds:

``sequence-uniqueness``
    No two distinct transactions ever travel under the same ``(origin,
    sequence)`` claim — the no-duplicate-delivery-per-sequence-number
    guarantee the TRS provides in HERMES.
``accountability``
    Every observed deviation is attributed to the deviating node and no
    honest node is ever accused.  The suite contributes its own evidence:
    the global auditor accuses ``RELAY_OMISSION`` when a node provably
    received an item it owed its successors (witnessed *pre-loss* at the
    sender side, so packet loss can never frame anyone) yet forwarded it to
    none of them, or sat on legitimate receipts without delivering (crash).
    ``SEQUENCE_GAP`` entries are tallied separately as *suspicions*: a
    partitioned run can starve an honest origin's audit window, so gaps
    never count as accusations here.
``delivery-liveness``
    Every workload transaction reaches ``min_coverage`` of the eligible
    (never-deviant) nodes within the scenario's deadline — the gossip
    fallback is what makes this hold under fault densities beyond ``f``.
``overlay-connectivity``
    While at most ``f`` nodes are crashed/censoring, every overlay still
    reaches all of its non-faulty members (probed periodically).  Beyond
    ``f`` the probe degrades to an informational reachability metric.

Why witnessing *sends* is sound: honest relays forward synchronously inside
the delivery callback, and ``on_send`` fires before loss is sampled.  So by
the time any later audit event runs, an honest node's forwards are already on
record — a node with a duty receipt and zero matching sends chose not to
forward.  The per-protocol :class:`DutyAdapter` decides what constitutes a
duty receipt (HERMES: an overlay-legitimate envelope; L∅: the partner-gossip
copy that first delivered the transaction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..core.accountability import (
    AUDITOR_REPORTER,
    Violation,
    ViolationKind,
    ViolationLog,
)
from ..net.events import Message
from ..net.faults import Behavior, TimelineFaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..overlay.base import Overlay

__all__ = [
    "InvariantViolation",
    "InvariantResult",
    "DutyAdapter",
    "HermesDutyAdapter",
    "LZeroDutyAdapter",
    "NullDutyAdapter",
    "InvariantSuite",
    "adapter_for",
]


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    """One failed invariant check."""

    invariant: str
    time_ms: float
    detail: str
    node: int | None = None
    item: int | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "time_ms": self.time_ms,
            "detail": self.detail,
            "node": self.node,
            "item": self.item,
        }


class InvariantResult:
    """Accumulated outcome of one invariant across the run."""

    def __init__(self, name: str, applicable: bool = True) -> None:
        self.name = name
        self.applicable = applicable
        self.checks = 0
        self.violations: list[InvariantViolation] = []

    @property
    def status(self) -> str:
        if not self.applicable:
            return "n/a"
        return "fail" if self.violations else "pass"

    def to_json(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "checks": self.checks,
            "violations": [v.to_json() for v in self.violations],
        }


# ----------------------------------------------------------------------
# Duty adapters
# ----------------------------------------------------------------------


class DutyAdapter:
    """Protocol-specific answers to "who owed what to whom"."""

    name = "null"
    #: Whether the relay-accountability and sequence invariants apply at all.
    accountable = False

    def sent_tx_ids(self, message: Message) -> tuple[int, ...]:
        """Transaction ids whose *forwarding duty* this send discharges."""

        return ()

    def duty_receipt(
        self, src: int, dst: int, message: Message
    ) -> tuple[int, Any] | None:
        """``(tx_id, duty_key)`` when this arrival creates a forwarding duty
        candidate at *dst*, else None.  Only protocol-legitimate receipts of
        workload transactions qualify — forged or misaddressed traffic never
        creates duties (that is what keeps honest nodes unaccusable)."""

        return None

    def duty_targets(self, dst: int, duty_key: Any) -> Sequence[int]:
        return ()

    def has_censorship_duty(
        self,
        dst: int,
        receipts: Sequence[tuple[float, int, Any]],
        delivery_ms: float | None,
    ) -> bool:
        """Did *dst* owe a forward, given its receipts and delivery time?"""

        return False

    def is_excluded(self, dst: int, src: int) -> bool:
        """Whether *dst* legitimately refuses traffic from *src*."""

        return False

    def sequence_claim(self, message: Message) -> tuple[tuple[int, int], int] | None:
        """``((origin, sequence), tx_id)`` asserted by this send, if any."""

        return None

    def overlays(self) -> "list[Overlay] | None":
        """The certified overlay family, when connectivity probes apply."""

        return None


class HermesDutyAdapter(DutyAdapter):
    """HERMES duties: forward overlay-legitimate envelopes to successors."""

    name = "hermes"
    accountable = True

    def __init__(self, system, workload_ids: Iterable[int]) -> None:
        from ..core.dissemination import DISSEMINATE_KIND

        self._kind = DISSEMINATE_KIND
        self._system = system
        self._workload = frozenset(workload_ids)
        self._overlays = {o.overlay_id: o for o in system.overlays}

    def sent_tx_ids(self, message: Message) -> tuple[int, ...]:
        if message.kind != self._kind:
            return ()
        tx_id = message.payload.tx.tx_id
        return (tx_id,) if tx_id in self._workload else ()

    def duty_receipt(
        self, src: int, dst: int, message: Message
    ) -> tuple[int, Any] | None:
        if message.kind != self._kind:
            return None
        envelope = message.payload
        if envelope.tx.tx_id not in self._workload:
            return None
        overlay = self._overlays.get(envelope.overlay_id)
        if overlay is None or not overlay.contains(dst):
            return None
        # Mirror the §VI-C predecessor-legitimacy check: entry points accept
        # only from the origin; everyone else only from overlay predecessors.
        if overlay.is_entry(dst):
            if src != envelope.origin:
                return None
        elif src not in overlay.valid_senders(dst):
            return None
        if not overlay.successors.get(dst):
            return None  # leaves owe nothing
        return envelope.tx.tx_id, envelope.overlay_id

    def duty_targets(self, dst: int, duty_key: Any) -> Sequence[int]:
        overlay = self._overlays.get(duty_key)
        if overlay is None:
            return ()
        return tuple(overlay.successors.get(dst, ()))

    def has_censorship_duty(
        self,
        dst: int,
        receipts: Sequence[tuple[float, int, Any]],
        delivery_ms: float | None,
    ) -> bool:
        # Delivered the transaction and holds a legitimate overlay copy: an
        # honest relay forwards that copy synchronously on arrival.
        return delivery_ms is not None and bool(receipts)

    def is_excluded(self, dst: int, src: int) -> bool:
        return self._system.nodes[dst].monitor.is_excluded(src)

    def sequence_claim(self, message: Message) -> tuple[tuple[int, int], int] | None:
        if message.kind != self._kind:
            return None
        envelope = message.payload
        return (envelope.origin, envelope.sequence), envelope.tx.tx_id

    def overlays(self) -> "list[Overlay] | None":
        return list(self._system.overlays)


class LZeroDutyAdapter(DutyAdapter):
    """L∅ duties: forward a transaction to every partner on first delivery."""

    name = "lzero"
    accountable = True

    def __init__(self, system, workload_ids: Iterable[int]) -> None:
        from ..baselines.lzero import LZERO_TX_KIND, LZERO_TXS_KIND

        self._tx_kind = LZERO_TX_KIND
        self._txs_kind = LZERO_TXS_KIND
        self._system = system
        self._workload = frozenset(workload_ids)

    def sent_tx_ids(self, message: Message) -> tuple[int, ...]:
        if message.kind != self._tx_kind:
            return ()
        tx_id = message.payload[0].tx_id
        return (tx_id,) if tx_id in self._workload else ()

    def duty_receipt(
        self, src: int, dst: int, message: Message
    ) -> tuple[int, Any] | None:
        # Track both kinds of arrival: partner gossip ("tx") creates the
        # forwarding duty, reconciliation pushes ("txs") only deliver — they
        # are recorded so has_censorship_duty can tell the two apart when a
        # delivery time matches.
        if message.kind == self._tx_kind:
            tx_id = message.payload[0].tx_id
            if tx_id in self._workload:
                return tx_id, "tx"
        elif message.kind == self._txs_kind:
            for tx in message.payload:
                if tx.tx_id in self._workload:
                    return tx.tx_id, "txs"
        return None

    def duty_targets(self, dst: int, duty_key: Any) -> Sequence[int]:
        if duty_key != "tx":
            return ()
        return tuple(self._system.partners_of(dst))

    def has_censorship_duty(
        self,
        dst: int,
        receipts: Sequence[tuple[float, int, Any]],
        delivery_ms: float | None,
    ) -> bool:
        # An honest L∅ node forwards exactly when an ``lzero-tx`` arrival is
        # the one that first delivered the transaction.  Require the delivery
        # instant to match a "tx" receipt and no other-kind receipt, so a
        # same-instant reconciliation push can never frame an honest node.
        if delivery_ms is None:
            return False
        tx_at_delivery = any(
            t == delivery_ms and key == "tx" for t, _, key in receipts
        )
        other_at_delivery = any(
            t == delivery_ms and key != "tx" for t, _, key in receipts
        )
        return tx_at_delivery and not other_at_delivery


class NullDutyAdapter(DutyAdapter):
    """Protocols without relay accountability (Narwhal, Mercury, gossip)."""

    def __init__(self, system, workload_ids: Iterable[int]) -> None:
        self._system = system


_ADAPTERS = {
    "hermes": HermesDutyAdapter,
    "lzero": LZeroDutyAdapter,
}


def adapter_for(protocol: str, system, workload_ids: Iterable[int]) -> DutyAdapter:
    """The duty adapter for *protocol* (a null adapter when none exists)."""

    cls = _ADAPTERS.get(protocol, NullDutyAdapter)
    return cls(system, workload_ids)


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------


class InvariantSuite:
    """Attaches to one system and checks the four chaos invariants online."""

    def __init__(
        self,
        system,
        plan: TimelineFaultPlan,
        adapter: DutyAdapter,
        violation_log: ViolationLog,
        eligible_nodes: Sequence[int],
        min_coverage: float = 1.0,
        audit_period_ms: float = 500.0,
        probe_period_ms: float = 1_000.0,
        f: int = 1,
    ) -> None:
        self._system = system
        self._plan = plan
        self._adapter = adapter
        self._log = violation_log
        self._eligible = tuple(sorted(eligible_nodes))
        self._min_coverage = min_coverage
        self._audit_period_ms = audit_period_ms
        self._probe_period_ms = probe_period_ms
        self._f = f
        self._obs = getattr(system, "obs", None)

        # Evidence gathered by the taps.
        self._sent: dict[tuple[int, int], set[int]] = {}
        self._receipts: dict[tuple[int, int], list[tuple[float, int, Any]]] = {}
        self._sequence_claims: dict[tuple[int, int], int] = {}
        self._accused: set[tuple[int, int, str]] = set()
        self._expected_detections: set[int] = set()

        self.results = {
            "sequence-uniqueness": InvariantResult(
                "sequence-uniqueness", applicable=adapter.accountable
            ),
            "accountability": InvariantResult(
                "accountability", applicable=adapter.accountable
            ),
            "delivery-liveness": InvariantResult("delivery-liveness"),
            "overlay-connectivity": InvariantResult(
                "overlay-connectivity", applicable=adapter.overlays() is not None
            ),
        }
        #: Informational reachability timeline for probes beyond the f bound.
        self.reachability: list[dict[str, Any]] = []
        #: Per-transaction coverage measured at each liveness deadline.
        self.liveness_coverage: dict[int, float] = {}

    # -- attachment ------------------------------------------------------

    def attach(self, horizon_ms: float) -> None:
        """Install the network taps and schedule the periodic audits."""

        network = self._system.network
        network.on_send = self._on_send
        network.on_receive = self._on_receive
        simulator = self._system.simulator
        t = self._audit_period_ms
        while t < horizon_ms:
            simulator.schedule_at(t, self._audit_omissions)
            t += self._audit_period_ms
        if self._adapter.overlays() is not None:
            t = self._probe_period_ms / 2
            while t < horizon_ms:
                simulator.schedule_at(t, self._probe_connectivity)
                t += self._probe_period_ms

    def expect_detection(self, node: int) -> None:
        """Register a deviation (e.g. a forgery injection) that *must* end up
        attributed to *node* by the end of the run."""

        self._expected_detections.add(node)

    def schedule_liveness_check(self, tx_id: int, deadline_ms: float) -> None:
        self._system.simulator.schedule_at(
            deadline_ms, lambda: self._check_liveness(tx_id)
        )

    # -- taps ------------------------------------------------------------

    def _on_send(self, src: int, dst: int, message: Message, time_ms: float) -> None:
        adapter = self._adapter
        for tx_id in adapter.sent_tx_ids(message):
            self._sent.setdefault((src, tx_id), set()).add(dst)
        claim = adapter.sequence_claim(message)
        if claim is not None:
            key, tx_id = claim
            result = self.results["sequence-uniqueness"]
            known = self._sequence_claims.setdefault(key, tx_id)
            result.checks += 1
            if known != tx_id:
                result.violations.append(
                    InvariantViolation(
                        invariant="sequence-uniqueness",
                        time_ms=time_ms,
                        detail=(
                            f"sequence {key[1]} of origin {key[0]} claimed by "
                            f"tx {known} and tx {tx_id}"
                        ),
                        node=src,
                        item=tx_id,
                    )
                )

    def _on_receive(self, src: int, dst: int, message: Message, time_ms: float) -> None:
        receipt = self._adapter.duty_receipt(src, dst, message)
        if receipt is not None:
            tx_id, duty_key = receipt
            self._receipts.setdefault((dst, tx_id), []).append(
                (time_ms, src, duty_key)
            )

    # -- periodic audits -------------------------------------------------

    def _audit_omissions(self) -> None:
        """Accuse relays that provably sat on a forwarding duty.

        Only evidence strictly older than *now* is audited: an honest relay's
        forwards happen inside the delivery callback that created the duty,
        so by any later audit event they are on record.
        """

        if not self._adapter.accountable:
            return
        now = self._system.simulator.now
        adapter = self._adapter
        deliveries = self._system.network.stats.deliveries
        result = self.results["accountability"]
        for (dst, tx_id), receipts in self._receipts.items():
            past = [
                r
                for r in receipts
                if r[0] < now and not adapter.is_excluded(dst, r[1])
            ]
            if not past:
                continue
            delivery_ms = deliveries.get(tx_id, {}).get(dst)
            result.checks += 1
            if delivery_ms is None:
                # Legitimate receipts but no delivery: the node was down when
                # they arrived (honest nodes deliver synchronously).
                self._accuse(dst, tx_id, now, "unresponsive")
                continue
            duty_receipts = [r for r in past if adapter.duty_targets(dst, r[2])]
            if not adapter.has_censorship_duty(dst, duty_receipts, delivery_ms):
                continue
            owed: set[int] = set()
            for _, _, duty_key in duty_receipts:
                owed.update(adapter.duty_targets(dst, duty_key))
            if owed and not (self._sent.get((dst, tx_id), set()) & owed):
                self._accuse(dst, tx_id, now, "silent censorship")

    def _accuse(self, node: int, tx_id: int, now: float, rule: str) -> None:
        if (node, tx_id, rule) in self._accused:
            return
        self._accused.add((node, tx_id, rule))
        behavior = self._plan.behavior_at(node, now).value
        self._log.record(
            Violation(
                kind=ViolationKind.RELAY_OMISSION,
                accused=node,
                reporter=AUDITOR_REPORTER,
                time_ms=now,
                detail=f"{rule}: tx {tx_id} (behavior at audit: {behavior})",
            )
        )
        if self._obs is not None:
            self._obs.event(
                "chaos.accuse", node=node, tx_id=tx_id, rule=rule, behavior=behavior
            )

    def _probe_connectivity(self) -> None:
        overlays = self._adapter.overlays()
        if not overlays:
            return
        now = self._system.simulator.now
        members = set(overlays[0].depth_of)
        failed = {
            n
            for n in members
            if self._plan.behavior_at(n, now)
            in (Behavior.CRASH, Behavior.DROP_RELAY)
        }
        result = self.results["overlay-connectivity"]
        fractions: list[float] = []
        for overlay in overlays:
            expected = set(overlay.depth_of) - failed
            reached = overlay.reachable(failed) & expected
            fractions.append(len(reached) / len(expected) if expected else 1.0)
            if len(failed) <= self._f:
                result.checks += 1
                missing = expected - reached
                if missing:
                    result.violations.append(
                        InvariantViolation(
                            invariant="overlay-connectivity",
                            time_ms=now,
                            detail=(
                                f"overlay {overlay.overlay_id} cut off "
                                f"{len(missing)} nodes with |failed|="
                                f"{len(failed)} <= f"
                            ),
                        )
                    )
        self.reachability.append(
            {
                "time_ms": now,
                "failed": len(failed),
                "min_fraction": round(min(fractions), 6) if fractions else 1.0,
            }
        )

    def _check_liveness(self, tx_id: int) -> None:
        now = self._system.simulator.now
        delivered = set(self._system.network.stats.deliveries.get(tx_id, {}))
        eligible = self._eligible
        covered = sum(1 for n in eligible if n in delivered)
        coverage = covered / len(eligible) if eligible else 1.0
        self.liveness_coverage[tx_id] = round(coverage, 6)
        result = self.results["delivery-liveness"]
        result.checks += 1
        if coverage < self._min_coverage:
            missing = [n for n in eligible if n not in delivered]
            result.violations.append(
                InvariantViolation(
                    invariant="delivery-liveness",
                    time_ms=now,
                    detail=(
                        f"tx {tx_id} reached {coverage:.1%} of eligible nodes "
                        f"by its deadline (need {self._min_coverage:.1%}); "
                        f"missing {missing[:8]}"
                    ),
                    item=tx_id,
                )
            )

    # -- finalization ----------------------------------------------------

    def finalize(self) -> dict[str, Any]:
        """Run the terminal audit and compute the accountability verdict."""

        if self._adapter.accountable:
            self._audit_omissions()
        deviants = set(self._plan.deviant_nodes())
        accusations = [
            v for v in self._log.entries if v.kind is not ViolationKind.SEQUENCE_GAP
        ]
        gap_suspicions = [
            v for v in self._log.entries if v.kind is ViolationKind.SEQUENCE_GAP
        ]
        accused = {v.accused for v in accusations}
        false_accusations = sorted(accused - deviants)
        observed = {n for n, _, _ in self._accused} | self._expected_detections
        observed &= deviants
        missed = sorted(observed - accused)
        result = self.results["accountability"]
        if self._adapter.accountable:
            for node in false_accusations:
                result.violations.append(
                    InvariantViolation(
                        invariant="accountability",
                        time_ms=self._system.simulator.now,
                        detail=f"honest node {node} was accused",
                        node=node,
                    )
                )
            for node in missed:
                result.violations.append(
                    InvariantViolation(
                        invariant="accountability",
                        time_ms=self._system.simulator.now,
                        detail=(
                            f"deviant node {node} had an observed deviation "
                            "but no violation attributes it"
                        ),
                        node=node,
                    )
                )
        attributed = sorted(accused & deviants)
        return {
            "deviants": sorted(deviants),
            "observed_deviants": sorted(observed),
            "attributed": attributed,
            "missed": missed,
            "false_accusations": false_accusations,
            "attribution_rate": (
                round(len(attributed) / len(observed), 6) if observed else 1.0
            ),
            "auditor_accusations": len(self._accused),
            "sequence_gap_suspicions": len(gap_suspicions),
        }
