"""repro.chaos — scenario-driven fault injection with online invariant checks.

The subsystem has four layers (see ``docs/chaos.md``):

* :mod:`repro.chaos.scenario` — declarative, JSON-round-trippable
  :class:`ChaosScenario` timelines (behavior flips, partitions, latency and
  loss windows, churn bursts, forgery injections) plus bundled campaigns;
* :mod:`repro.chaos.disruption` — the :class:`LinkDisruptor` the network
  consults per transmission while a window is active;
* :mod:`repro.chaos.invariants` — the online :class:`InvariantSuite`
  (sequence uniqueness, accountability, delivery liveness, overlay
  connectivity) with per-protocol duty adapters;
* :mod:`repro.chaos.engine` — :func:`run_chaos`, compiling a scenario onto a
  live system and producing a deterministic :class:`ChaosReport`.

Campaigns run from the shell via ``python -m repro chaos`` and sweep through
the content-addressed runner as the ``chaos.run`` task.
"""

from .disruption import LinkDisruptor, LinkVerdict
from .engine import run_chaos
from .invariants import InvariantSuite, adapter_for
from .report import ChaosReport
from .scenario import (
    BehaviorFlip,
    ChaosEvent,
    ChaosScenario,
    ChaosWorkload,
    ChurnBurst,
    ForgeryInjection,
    LatencySpike,
    LossWindow,
    RegionalPartition,
    Restore,
    builtin_scenarios,
    get_scenario,
)

__all__ = [
    "BehaviorFlip",
    "ChaosEvent",
    "ChaosReport",
    "ChaosScenario",
    "ChaosWorkload",
    "ChurnBurst",
    "ForgeryInjection",
    "InvariantSuite",
    "LatencySpike",
    "LinkDisruptor",
    "LinkVerdict",
    "LossWindow",
    "RegionalPartition",
    "Restore",
    "adapter_for",
    "builtin_scenarios",
    "get_scenario",
    "run_chaos",
]
