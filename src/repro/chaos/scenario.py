"""Declarative chaos scenarios: timelines of fault events on the sim clock.

A :class:`ChaosScenario` describes *what the adversary and the environment do
and when*, independently of any protocol: behavior flips (honest nodes turning
into censors, front-runners or crashing), regional partitions that heal,
latency-spike and loss windows, churn bursts, and out-of-protocol forgery
injections.  The chaos engine (:mod:`repro.chaos.engine`) compiles a scenario
onto a concrete system's :class:`~repro.net.simulator.Simulator`, records the
resulting behavior timeline in a
:class:`~repro.net.faults.TimelineFaultPlan`, and attaches the invariant
monitors of :mod:`repro.chaos.invariants`.

Scenarios round-trip through JSON (``to_json`` / ``from_json`` / ``load``), so
campaigns can live in version-controlled files and travel through the
content-addressed sweep runner unchanged.  Node selections expressed as
fractions are resolved deterministically from the run seed at compile time —
the scenario itself stays protocol- and size-agnostic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Callable, ClassVar, Mapping

from ..errors import ConfigurationError
from ..net.faults import Behavior
from ..types import Region

__all__ = [
    "ChaosEvent",
    "BehaviorFlip",
    "Restore",
    "RegionalPartition",
    "LatencySpike",
    "LossWindow",
    "ChurnBurst",
    "CommitteePartition",
    "ForgeryInjection",
    "ChaosWorkload",
    "ChaosScenario",
    "builtin_scenarios",
    "get_scenario",
]

_EVENT_TYPES: dict[str, type["ChaosEvent"]] = {}


def _event(kind: str) -> Callable[[type], type]:
    """Register an event dataclass under its wire ``kind`` tag."""

    def decorate(cls: type) -> type:
        cls.kind = kind
        _EVENT_TYPES[kind] = cls
        return cls

    return decorate


@dataclass(frozen=True)
class ChaosEvent:
    """Base class: one scheduled fault event at ``at_ms`` on the sim clock."""

    kind: ClassVar[str] = ""

    at_ms: float

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ConfigurationError(f"event time must be >= 0, got {self.at_ms}")

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            doc[spec.name] = value
        return doc

    @staticmethod
    def from_json(doc: Mapping[str, Any]) -> "ChaosEvent":
        kind = doc.get("kind")
        cls = _EVENT_TYPES.get(str(kind))
        if cls is None:
            raise ConfigurationError(
                f"unknown chaos event kind {kind!r}; known: {sorted(_EVENT_TYPES)}"
            )
        kwargs = {}
        for spec in fields(cls):
            if spec.name in doc:
                value = doc[spec.name]
                if isinstance(value, list):
                    value = tuple(value)
                kwargs[spec.name] = value
        return cls(**kwargs)

    # -- shared validation helpers --------------------------------------

    def _check_window(self, end_ms: float) -> None:
        if end_ms <= self.at_ms:
            raise ConfigurationError(
                f"window must end after it starts ({self.at_ms} -> {end_ms})"
            )


@_event("behavior-flip")
@dataclass(frozen=True)
class BehaviorFlip(ChaosEvent):
    """Flip nodes to a Byzantine behavior at ``at_ms``.

    Either list explicit ``nodes`` or give a ``fraction`` of the network; the
    compiler resolves a fraction to ``round(fraction * n)`` nodes drawn
    (seeded) from the currently-honest, unprotected population — so a ramp of
    flips escalates cumulatively.
    """

    behavior: str = Behavior.DROP_RELAY.value
    nodes: tuple[int, ...] | None = None
    fraction: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        Behavior(self.behavior)  # raises ValueError on an unknown behavior
        if (self.nodes is None) == (self.fraction is None):
            raise ConfigurationError("give exactly one of nodes= or fraction=")
        if self.fraction is not None and not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {self.fraction}")


@_event("restore")
@dataclass(frozen=True)
class Restore(ChaosEvent):
    """Return nodes to honest behavior (``nodes=None`` restores every
    currently-deviant scripted node)."""

    nodes: tuple[int, ...] | None = None


@_event("partition")
@dataclass(frozen=True)
class RegionalPartition(ChaosEvent):
    """Cut the named regions off from the rest of the network.

    Every transmission crossing the partition boundary is dropped between
    ``at_ms`` and ``heal_ms``; traffic within each side flows normally.
    """

    heal_ms: float = 0.0
    regions: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        self._check_window(self.heal_ms)
        if not self.regions:
            raise ConfigurationError("partition needs at least one region")
        for name in self.regions:
            Region(name)  # raises ValueError on an unknown region


@_event("latency-spike")
@dataclass(frozen=True)
class LatencySpike(ChaosEvent):
    """Multiply every link latency by ``factor`` between ``at_ms``/``end_ms``."""

    end_ms: float = 0.0
    factor: float = 4.0

    def __post_init__(self) -> None:
        super().__post_init__()
        self._check_window(self.end_ms)
        if self.factor < 1.0:
            raise ConfigurationError(f"latency factor must be >= 1, got {self.factor}")


@_event("loss")
@dataclass(frozen=True)
class LossWindow(ChaosEvent):
    """Drop each transmission with ``probability`` between ``at_ms``/``end_ms``."""

    end_ms: float = 0.0
    probability: float = 0.2

    def __post_init__(self) -> None:
        super().__post_init__()
        self._check_window(self.end_ms)
        if not 0.0 < self.probability < 1.0:
            raise ConfigurationError(
                f"loss probability must be in (0, 1), got {self.probability}"
            )


@_event("churn")
@dataclass(frozen=True)
class ChurnBurst(ChaosEvent):
    """Crash a (seeded) fraction of honest nodes, recovering after ``down_ms``."""

    fraction: float = 0.1
    down_ms: float = 800.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {self.fraction}")
        if self.down_ms <= 0:
            raise ConfigurationError(f"down_ms must be positive, got {self.down_ms}")


@_event("committee-partition")
@dataclass(frozen=True)
class CommitteePartition(ChaosEvent):
    """Cut the system's TRS committee off from every non-committee node.

    Between ``at_ms`` and ``heal_ms`` no transmission crosses the committee
    boundary: fresh TRS requests go unanswered (the protocol has no request
    retry), and the committee's own traffic stays inside the island.  On
    committee-less baselines the event is recorded but not applied.  This is
    the single-system half of the sharded ``cross-shard-partition`` drill
    (:func:`repro.sharding.chaos.run_cross_shard_partition`), which isolates
    one shard's committee and checks that the *other* shards keep delivering.
    """

    heal_ms: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        self._check_window(self.heal_ms)


@_event("inject-forgery")
@dataclass(frozen=True)
class ForgeryInjection(ChaosEvent):
    """A node pushes a forged dissemination envelope to ``targets`` peers.

    HERMES-specific: the envelope carries an invalid threshold signature, so
    every receiver's §VI-C checks flag the injector (``BAD_SIGNATURE``).  On
    protocols without signed envelopes the event is recorded but not applied.
    ``node=None`` lets the compiler pick (preferring a node already flipped to
    ``front-run``); the injector is marked deviant on the fault timeline.
    """

    node: int | None = None
    targets: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.targets < 1:
            raise ConfigurationError(f"targets must be positive, got {self.targets}")


@dataclass(frozen=True)
class ChaosWorkload:
    """The honest traffic disseminated while the scenario unfolds.

    ``transactions`` submissions start at ``start_ms``, one every
    ``period_ms``, from distinct seeded origins that the compiler keeps
    honest for the whole run (so delivery-liveness is well-defined).

    When ``flash_at_ms`` is set, submissions inside the window ``[flash_at_ms,
    flash_at_ms + flash_duration_ms)`` arrive ``flash_factor`` times faster —
    the fixed-count flash-crowd shape of
    :func:`repro.load.arrival.flash_crowd_times`, still fully deterministic.
    """

    transactions: int = 6
    start_ms: float = 200.0
    period_ms: float = 500.0
    flash_at_ms: float | None = None
    flash_duration_ms: float = 1_000.0
    flash_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.transactions < 1:
            raise ConfigurationError("workload needs at least one transaction")
        if self.start_ms < 0 or self.period_ms <= 0:
            raise ConfigurationError("workload times must be positive")
        if self.flash_at_ms is not None:
            if self.flash_at_ms < 0 or self.flash_duration_ms <= 0:
                raise ConfigurationError(
                    "flash window must start >= 0 and have length > 0"
                )
            if self.flash_factor < 1.0:
                raise ConfigurationError(
                    f"flash_factor must be >= 1, got {self.flash_factor}"
                )

    def submit_times(self) -> list[float]:
        if self.flash_at_ms is None:
            return [
                self.start_ms + i * self.period_ms for i in range(self.transactions)
            ]
        from ..load.arrival import flash_crowd_times

        return flash_crowd_times(
            self.transactions,
            self.start_ms,
            self.period_ms,
            self.flash_at_ms,
            self.flash_duration_ms,
            self.flash_factor,
        )

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "transactions": self.transactions,
            "start_ms": self.start_ms,
            "period_ms": self.period_ms,
        }
        if self.flash_at_ms is not None:
            doc["flash_at_ms"] = self.flash_at_ms
            doc["flash_duration_ms"] = self.flash_duration_ms
            doc["flash_factor"] = self.flash_factor
        return doc

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "ChaosWorkload":
        flash_at = doc.get("flash_at_ms")
        return cls(
            transactions=int(doc.get("transactions", 6)),
            start_ms=float(doc.get("start_ms", 200.0)),
            period_ms=float(doc.get("period_ms", 500.0)),
            flash_at_ms=None if flash_at is None else float(flash_at),
            flash_duration_ms=float(doc.get("flash_duration_ms", 1_000.0)),
            flash_factor=float(doc.get("flash_factor", 4.0)),
        )


@dataclass(frozen=True)
class ChaosScenario:
    """A named, JSON-round-trippable fault-injection campaign."""

    name: str
    description: str = ""
    horizon_ms: float = 8_000.0
    workload: ChaosWorkload = field(default_factory=ChaosWorkload)
    events: tuple[ChaosEvent, ...] = ()
    #: Per-transaction delivery deadline for the liveness invariant, measured
    #: from submission; must resolve before the horizon.
    liveness_deadline_ms: float = 4_000.0
    #: Minimum fraction of eligible (never-deviant) nodes that must hold each
    #: transaction by its deadline.
    min_coverage: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a name")
        if self.horizon_ms <= 0:
            raise ConfigurationError("horizon must be positive")
        if not 0.0 < self.min_coverage <= 1.0:
            raise ConfigurationError(
                f"min_coverage must be in (0, 1], got {self.min_coverage}"
            )
        last_deadline = self.workload.submit_times()[-1] + self.liveness_deadline_ms
        if last_deadline > self.horizon_ms:
            raise ConfigurationError(
                f"last liveness deadline ({last_deadline}ms) exceeds the "
                f"horizon ({self.horizon_ms}ms); extend horizon_ms"
            )
        for event in self.events:
            if event.at_ms >= self.horizon_ms:
                raise ConfigurationError(
                    f"event at {event.at_ms}ms lies beyond the horizon"
                )

    # -- serialization ---------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "horizon_ms": self.horizon_ms,
            "workload": self.workload.to_json(),
            "events": [event.to_json() for event in self.events],
            "liveness_deadline_ms": self.liveness_deadline_ms,
            "min_coverage": self.min_coverage,
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "ChaosScenario":
        return cls(
            name=str(doc["name"]),
            description=str(doc.get("description", "")),
            horizon_ms=float(doc.get("horizon_ms", 8_000.0)),
            workload=ChaosWorkload.from_json(doc.get("workload", {})),
            events=tuple(ChaosEvent.from_json(e) for e in doc.get("events", ())),
            liveness_deadline_ms=float(doc.get("liveness_deadline_ms", 4_000.0)),
            min_coverage=float(doc.get("min_coverage", 1.0)),
        )

    @classmethod
    def load(cls, path: str) -> "ChaosScenario":
        """Read a scenario from a JSON file."""

        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))


# ----------------------------------------------------------------------
# Bundled scenarios
# ----------------------------------------------------------------------


def _escalation() -> ChaosScenario:
    """The acceptance scenario: ramp to ~33% censors + partition + churn."""

    return ChaosScenario(
        name="escalation",
        description=(
            "Censorship ramp to one third of the network (10% -> 20% -> 33% "
            "drop-relay), a regional partition that heals, and a churn burst."
        ),
        horizon_ms=8_000.0,
        workload=ChaosWorkload(transactions=6, start_ms=200.0, period_ms=500.0),
        events=(
            BehaviorFlip(at_ms=1_000.0, behavior="drop-relay", fraction=0.10),
            RegionalPartition(at_ms=1_500.0, heal_ms=2_500.0, regions=("frankfurt",)),
            BehaviorFlip(at_ms=2_000.0, behavior="drop-relay", fraction=0.10),
            BehaviorFlip(at_ms=3_000.0, behavior="drop-relay", fraction=0.13),
            ChurnBurst(at_ms=3_500.0, fraction=0.08, down_ms=800.0),
        ),
        liveness_deadline_ms=4_000.0,
        min_coverage=1.0,
    )


def _honest() -> ChaosScenario:
    return ChaosScenario(
        name="honest",
        description="No faults at all — the invariant suite's control run.",
        horizon_ms=6_000.0,
        workload=ChaosWorkload(transactions=4, start_ms=200.0, period_ms=400.0),
        liveness_deadline_ms=4_000.0,
    )


def _partition_heal() -> ChaosScenario:
    return ChaosScenario(
        name="partition-heal",
        description="One regional partition plus a latency spike, no Byzantine nodes.",
        horizon_ms=7_000.0,
        workload=ChaosWorkload(transactions=4, start_ms=200.0, period_ms=400.0),
        events=(
            RegionalPartition(
                at_ms=600.0, heal_ms=1_800.0, regions=("singapore", "sydney")
            ),
            LatencySpike(at_ms=1_000.0, end_ms=2_200.0, factor=3.0),
        ),
        liveness_deadline_ms=5_000.0,
    )


def _frontrun_burst() -> ChaosScenario:
    return ChaosScenario(
        name="frontrun-burst",
        description=(
            "Two nodes turn front-runner and inject forged envelopes; the "
            "protocol's signature checks must attribute every forgery."
        ),
        horizon_ms=6_000.0,
        workload=ChaosWorkload(transactions=4, start_ms=200.0, period_ms=400.0),
        events=(
            BehaviorFlip(at_ms=800.0, behavior="front-run", fraction=0.05),
            ForgeryInjection(at_ms=1_200.0, targets=3),
            ForgeryInjection(at_ms=1_800.0, targets=3),
            Restore(at_ms=2_600.0),
        ),
        liveness_deadline_ms=4_000.0,
    )


def _flash_crowd() -> ChaosScenario:
    return ChaosScenario(
        name="flash-crowd",
        description=(
            "A demand spike: submissions accelerate 4x mid-run while a lossy "
            "window stresses dissemination of the burst."
        ),
        horizon_ms=8_000.0,
        workload=ChaosWorkload(
            transactions=8,
            start_ms=200.0,
            period_ms=500.0,
            flash_at_ms=1_200.0,
            flash_duration_ms=1_200.0,
            flash_factor=4.0,
        ),
        events=(LossWindow(at_ms=1_400.0, end_ms=2_200.0, probability=0.10),),
        liveness_deadline_ms=4_000.0,
        min_coverage=1.0,
    )


def _churn_storm() -> ChaosScenario:
    return ChaosScenario(
        name="churn-storm",
        description="Two churn bursts with a lossy window in between.",
        horizon_ms=8_000.0,
        workload=ChaosWorkload(transactions=5, start_ms=200.0, period_ms=500.0),
        events=(
            ChurnBurst(at_ms=900.0, fraction=0.10, down_ms=700.0),
            LossWindow(at_ms=1_500.0, end_ms=2_400.0, probability=0.15),
            ChurnBurst(at_ms=2_800.0, fraction=0.10, down_ms=700.0),
        ),
        liveness_deadline_ms=5_000.0,
        min_coverage=1.0,
    )


def _sandwich_squeeze() -> ChaosScenario:
    """The zoo's racing coalition composed with degraded network conditions.

    A front-running coalition (the behaviour the ``sandwich`` /
    ``censor-reorder`` strategies ride on) grows to ~25% while a latency
    spike stretches every link — extraction pressure is highest exactly when
    honest dissemination is slowest, so this is the window where overlay
    robustness has to carry fairness.
    """

    return ChaosScenario(
        name="sandwich-squeeze",
        description=(
            "Front-runner coalition ramp (15% -> 25%) under a 3x latency "
            "spike: extraction pressure during degraded dissemination."
        ),
        horizon_ms=8_000.0,
        workload=ChaosWorkload(transactions=6, start_ms=200.0, period_ms=500.0),
        events=(
            BehaviorFlip(at_ms=800.0, behavior="front-run", fraction=0.15),
            LatencySpike(at_ms=1_200.0, end_ms=2_600.0, factor=3.0),
            BehaviorFlip(at_ms=2_000.0, behavior="front-run", fraction=0.10),
            Restore(at_ms=3_400.0),
        ),
        liveness_deadline_ms=4_000.0,
        min_coverage=1.0,
    )


def _censor_blackout() -> ChaosScenario:
    """The zoo's withholding coalition composed with a regional blackout.

    Drop-relay censors (the ``blackout`` strategy's behaviour) accumulate
    while one region is partitioned away — the adversary's best moment to
    suppress a transaction is while legitimate redundancy is already down a
    region.  Liveness must still hold via the surviving overlay paths.
    """

    return ChaosScenario(
        name="censor-blackout",
        description=(
            "Censor coalition ramp (15% -> 25% drop-relay) while a region "
            "is partitioned away and a lossy window stresses what remains."
        ),
        horizon_ms=8_000.0,
        workload=ChaosWorkload(transactions=6, start_ms=200.0, period_ms=500.0),
        events=(
            BehaviorFlip(at_ms=900.0, behavior="drop-relay", fraction=0.15),
            RegionalPartition(at_ms=1_200.0, heal_ms=2_400.0, regions=("tokyo",)),
            BehaviorFlip(at_ms=1_800.0, behavior="drop-relay", fraction=0.10),
            LossWindow(at_ms=2_600.0, end_ms=3_200.0, probability=0.10),
            Restore(at_ms=3_600.0),
        ),
        liveness_deadline_ms=4_500.0,
        min_coverage=1.0,
    )


def _cross_shard_partition() -> ChaosScenario:
    """One committee islanded mid-run; gossip must carry liveness until heal.

    While the committee is cut off, fresh TRS requests die (there is no
    request retry) — but every submission lands in its origin's mempool
    first, so the gossip fallback keeps spreading it among non-committee
    nodes and catches the committee up after the heal.  The sharded drill
    (:func:`repro.sharding.chaos.run_cross_shard_partition`) applies this
    scenario's event to *one* shard of a :class:`~repro.sharding.ShardedSystem`
    and additionally asserts the untouched shards never notice.
    """

    return ChaosScenario(
        name="cross-shard-partition",
        description=(
            "The TRS committee is partitioned from the rest of the network "
            "for 1.7s mid-run; delivery liveness must survive on gossip "
            "until the heal catches the committee up."
        ),
        horizon_ms=8_000.0,
        workload=ChaosWorkload(transactions=6, start_ms=200.0, period_ms=500.0),
        events=(CommitteePartition(at_ms=900.0, heal_ms=2_600.0),),
        liveness_deadline_ms=4_500.0,
        min_coverage=1.0,
    )


_BUILTINS: dict[str, Callable[[], ChaosScenario]] = {
    "censor-blackout": _censor_blackout,
    "cross-shard-partition": _cross_shard_partition,
    "sandwich-squeeze": _sandwich_squeeze,
    "escalation": _escalation,
    "honest": _honest,
    "partition-heal": _partition_heal,
    "frontrun-burst": _frontrun_burst,
    "flash-crowd": _flash_crowd,
    "churn-storm": _churn_storm,
}


def builtin_scenarios() -> dict[str, ChaosScenario]:
    """Fresh instances of every bundled scenario, keyed by name."""

    return {name: make() for name, make in sorted(_BUILTINS.items())}


def get_scenario(name_or_path: str) -> ChaosScenario:
    """Resolve a bundled scenario name or a path to a scenario JSON file."""

    maker = _BUILTINS.get(name_or_path)
    if maker is not None:
        return maker()
    if name_or_path.endswith(".json"):
        return ChaosScenario.load(name_or_path)
    raise ConfigurationError(
        f"unknown scenario {name_or_path!r}; bundled: {sorted(_BUILTINS)} "
        "(or pass a path to a *.json scenario file)"
    )
