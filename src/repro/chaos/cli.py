"""``python -m repro chaos`` — run fault-injection campaigns from the shell.

Examples::

    python -m repro chaos                          # escalation vs hermes+lzero
    python -m repro chaos --scenario frontrun-burst --protocol hermes
    python -m repro chaos --scenario my_campaign.json --json
    python -m repro chaos --list-scenarios
"""

from __future__ import annotations

import argparse
import json
import sys

from ..errors import ReproError

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description=(
            "Run a chaos scenario (timeline of crashes, censorship flips, "
            "partitions, churn) against one or more protocols while the "
            "invariant suite checks delivery, accountability and overlay "
            "connectivity online."
        ),
    )
    parser.add_argument(
        "--scenario",
        default="escalation",
        help="bundled scenario name or path to a scenario JSON file "
        "(default: escalation)",
    )
    parser.add_argument(
        "--protocol",
        action="append",
        choices=["hermes", "lzero", "narwhal", "mercury"],
        help="protocol to run (repeatable; default: hermes and lzero)",
    )
    parser.add_argument("--num-nodes", type=int, default=48)
    parser.add_argument("--f", type=int, default=1, help="per-overlay fault bound")
    parser.add_argument("--k", type=int, default=4, help="number of overlays")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        action="store_true",
        help="print one canonical-JSON report per protocol instead of text",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="attach repro.obs and summarize the fault spans after each run",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list bundled scenarios and exit",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any invariant fails (default: failed "
        "invariants are an experimental result, not a CLI error — baselines "
        "are expected to break under heavy adversaries)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    from .engine import run_chaos
    from .scenario import builtin_scenarios, get_scenario

    args = build_parser().parse_args(argv)

    if args.list_scenarios:
        for name, scenario in builtin_scenarios().items():
            print(f"{name:<16} {scenario.description}")
        return 0

    try:
        scenario = get_scenario(args.scenario)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    protocols = args.protocol or ["hermes", "lzero"]
    failures = 0
    for protocol in protocols:
        obs = None
        if args.trace:
            from ..obs import Observability

            obs = Observability.enabled()
        try:
            report = run_chaos(
                scenario,
                protocol=protocol,
                num_nodes=args.num_nodes,
                f=args.f,
                k=args.k,
                seed=args.seed,
                obs=obs,
            )
        except ReproError as exc:
            print(f"error ({protocol}): {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(report.dumps())
        else:
            print(report.format())
            print(f"  report hash: {report.content_hash()}")
        if obs is not None:
            spans = [s for s in obs.tracer.spans if s.name.startswith("chaos.")]
            events = [e for e in obs.tracer.events if e.name.startswith("chaos.")]
            print(
                f"  trace: {len(spans)} chaos fault spans, "
                f"{len(events)} chaos events "
                f"({len(obs.tracer.events)} trace events total)"
            )
        if not report.passed:
            failures += 1
        if not args.json:
            print()
    return 1 if failures and args.strict else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
