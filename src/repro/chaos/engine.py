"""The chaos engine: compile a scenario onto a live system and run it.

:func:`run_chaos` is the one entry point.  It builds (or reuses, via the
experiment-environment cache) a deployment of the requested protocol, resolves
the scenario's declarative events into concrete node sets and link windows
*at compile time* with a seeded RNG — so the full fault timeline is known, and
recorded in a :class:`~repro.net.faults.TimelineFaultPlan`, before the first
simulated millisecond — then schedules the runtime side effects (behavior
flips on live nodes, disruptor windows, forgery sends, workload submissions,
invariant audits) and runs to the horizon.

Determinism contract: transaction and message id counters are rewound at the
start of every run, all randomness derives from ``(seed, scenario, protocol)``
and the report carries only simulation-clock times — the same call twice
yields byte-identical :meth:`~repro.chaos.report.ChaosReport.dumps` output.
"""

from __future__ import annotations

from typing import Any

from ..core.accountability import ViolationLog
from ..errors import ConfigurationError
from ..mempool.transaction import Transaction, reset_tx_ids
from ..net.events import Message, reset_message_ids
from ..net.faults import Behavior, FaultPlan, TimelineFaultPlan
from ..obs import Observability
from ..utils.rng import derive_rng
from .disruption import LinkDisruptor
from .invariants import InvariantSuite, adapter_for
from .report import ChaosReport
from .scenario import (
    BehaviorFlip,
    ChaosScenario,
    ChurnBurst,
    CommitteePartition,
    ForgeryInjection,
    LatencySpike,
    LossWindow,
    RegionalPartition,
    Restore,
)

__all__ = ["run_chaos"]

#: Sequence numbers for forged envelopes, far above any real TRS assignment
#: in a chaos-sized run (receivers reject on the signature before sequence
#: auditing, so the value only needs to be collision-free).
_FORGED_SEQUENCE_BASE = 1_000_000


def run_chaos(
    scenario: ChaosScenario,
    protocol: str = "hermes",
    num_nodes: int = 48,
    f: int = 1,
    k: int = 4,
    seed: int = 0,
    obs: Observability | None = None,
) -> ChaosReport:
    """Run *scenario* against one deployment of *protocol* and report.

    The physical topology and overlay family come from the shared experiment
    environment cache keyed on ``(num_nodes, f, k)`` with a fixed build seed,
    so repeated chaos runs (sweeps, property tests) pay the overlay
    construction once; *seed* drives everything else — protocol randomness,
    fault-target selection and loss sampling.
    """

    from ..experiments.harness import build_environment, protocol_factories

    reset_tx_ids()
    reset_message_ids()

    env = build_environment(num_nodes=num_nodes, f=f, k=k, seed=0, optimize=True)
    factories = protocol_factories(env, seed=seed, obs=obs)
    if protocol not in factories:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; known: {sorted(factories)}"
        )

    # The system starts all-honest; every deviation is a recorded transition
    # on this timeline, applied to the live nodes at its scheduled instant.
    plan = TimelineFaultPlan.from_plan(FaultPlan.honest())
    system = factories[protocol](plan, None)
    violation_log = getattr(system, "violation_log", None)
    if violation_log is None:
        violation_log = ViolationLog()
    simulator = system.simulator
    network = system.network

    rng = derive_rng(seed, "chaos", scenario.name, protocol)
    node_ids = env.physical.nodes()

    # -- workload (compile time: ids must not depend on run interleaving) --
    committee = list(getattr(system, "committee", ()))
    submit_times = scenario.workload.submit_times()
    origin_pool = [n for n in node_ids if n not in committee]
    if len(origin_pool) < len(submit_times):
        raise ConfigurationError(
            f"{len(origin_pool)} candidate origins cannot host "
            f"{len(submit_times)} distinct-origin submissions"
        )
    origins = sorted(rng.sample(origin_pool, len(submit_times)))
    workload = [
        Transaction.create(origin=origin, created_at=time_ms)
        for origin, time_ms in zip(origins, submit_times)
    ]
    workload_ids = [tx.tx_id for tx in workload]

    # Origins and the TRS committee stay honest: liveness needs a live TRS
    # and an honest source for every measured transaction.
    protected = set(committee) | set(origins)

    # -- resolve events (compile time) -------------------------------------
    disruptor = LinkDisruptor(derive_rng(seed, "chaos-loss", scenario.name))
    network.disruptor = disruptor

    flips: list[tuple[float, int, Behavior]] = []
    forgeries: list[tuple[float, int, tuple[int, ...], Any]] = []
    windows: list[tuple[float, float, str, dict[str, Any]]] = []
    fault_log: list[dict[str, Any]] = []
    ever_deviant: set[int] = set()
    currently_deviant: set[int] = set()
    hermes_like = protocol == "hermes"

    def log_entry(event: Any, summary: str, **detail: Any) -> None:
        fault_log.append(
            {"at_ms": event.at_ms, "kind": event.kind, "summary": summary, **detail}
        )

    def pick_targets(count: int, pool_filter=None) -> list[int]:
        pool = [
            n
            for n in node_ids
            if n not in protected and n not in ever_deviant
        ]
        if pool_filter is not None:
            pool = [n for n in pool if pool_filter(n)]
        return sorted(rng.sample(pool, min(count, len(pool))))

    for event in sorted(scenario.events, key=lambda e: e.at_ms):
        if isinstance(event, BehaviorFlip):
            behavior = Behavior(event.behavior)
            if event.nodes is not None:
                chosen = sorted(set(event.nodes))
                unknown = [n for n in chosen if n not in node_ids]
                if unknown:
                    raise ConfigurationError(f"flip names unknown nodes {unknown}")
            else:
                chosen = pick_targets(max(1, round(event.fraction * len(node_ids))))
            for node in chosen:
                flips.append((event.at_ms, node, behavior))
                ever_deviant.add(node)
                currently_deviant.add(node)
            log_entry(
                event,
                f"{len(chosen)} nodes -> {behavior.value}",
                nodes=chosen,
                behavior=behavior.value,
            )
        elif isinstance(event, Restore):
            chosen = (
                sorted(currently_deviant)
                if event.nodes is None
                else sorted(set(event.nodes))
            )
            for node in chosen:
                flips.append((event.at_ms, node, Behavior.HONEST))
                currently_deviant.discard(node)
            log_entry(event, f"{len(chosen)} nodes restored to honest", nodes=chosen)
        elif isinstance(event, RegionalPartition):
            group = frozenset(
                n for n in node_ids if env.physical.region_of(n).value in event.regions
            )
            disruptor.add_partition(event.at_ms, event.heal_ms, group)
            windows.append(
                (
                    event.at_ms,
                    event.heal_ms,
                    "chaos.partition",
                    {"regions": list(event.regions), "nodes": len(group)},
                )
            )
            log_entry(
                event,
                f"regions {', '.join(event.regions)} ({len(group)} nodes) "
                f"partitioned until {event.heal_ms}ms",
                regions=list(event.regions),
                isolated=len(group),
                heal_ms=event.heal_ms,
            )
        elif isinstance(event, LatencySpike):
            disruptor.add_latency_spike(event.at_ms, event.end_ms, event.factor)
            windows.append(
                (
                    event.at_ms,
                    event.end_ms,
                    "chaos.latency_spike",
                    {"factor": event.factor},
                )
            )
            log_entry(
                event,
                f"latency x{event.factor} until {event.end_ms}ms",
                factor=event.factor,
                end_ms=event.end_ms,
            )
        elif isinstance(event, LossWindow):
            disruptor.add_loss_window(event.at_ms, event.end_ms, event.probability)
            windows.append(
                (
                    event.at_ms,
                    event.end_ms,
                    "chaos.loss_window",
                    {"probability": event.probability},
                )
            )
            log_entry(
                event,
                f"loss p={event.probability} until {event.end_ms}ms",
                probability=event.probability,
                end_ms=event.end_ms,
            )
        elif isinstance(event, CommitteePartition):
            if not committee:
                log_entry(
                    event,
                    f"committee partition skipped ({protocol} has no committee)",
                    applied=False,
                )
                continue
            group = frozenset(committee)
            disruptor.add_partition(event.at_ms, event.heal_ms, group)
            windows.append(
                (
                    event.at_ms,
                    event.heal_ms,
                    "chaos.committee_partition",
                    {"nodes": len(group)},
                )
            )
            log_entry(
                event,
                f"TRS committee ({len(group)} nodes) partitioned "
                f"until {event.heal_ms}ms",
                committee=sorted(group),
                heal_ms=event.heal_ms,
            )
        elif isinstance(event, ChurnBurst):
            chosen = pick_targets(max(1, round(event.fraction * len(node_ids))))
            recover_ms = event.at_ms + event.down_ms
            for node in chosen:
                flips.append((event.at_ms, node, Behavior.CRASH))
                if recover_ms < scenario.horizon_ms:
                    flips.append((recover_ms, node, Behavior.HONEST))
            windows.append(
                (
                    event.at_ms,
                    min(recover_ms, scenario.horizon_ms),
                    "chaos.churn",
                    {"nodes": len(chosen)},
                )
            )
            log_entry(
                event,
                f"{len(chosen)} nodes crash for {event.down_ms}ms",
                nodes=chosen,
                recover_ms=recover_ms,
            )
        elif isinstance(event, ForgeryInjection):
            if not hermes_like:
                log_entry(
                    event,
                    f"forgery injection skipped ({protocol} has no signed envelopes)",
                    applied=False,
                )
                continue
            injector = event.node
            if injector is None:
                front_runners = sorted(
                    n
                    for n in currently_deviant
                    if any(
                        t <= event.at_ms and b is Behavior.FRONT_RUN
                        for t, node, b in flips
                        if node == n
                    )
                )
                if front_runners:
                    injector = front_runners[0]
                else:
                    picked = pick_targets(1)
                    if not picked:
                        raise ConfigurationError("no node available as forger")
                    injector = picked[0]
            if injector not in ever_deviant:
                flips.append((event.at_ms, injector, Behavior.FRONT_RUN))
                ever_deviant.add(injector)
                currently_deviant.add(injector)
            victims = rng.sample(
                [n for n in node_ids if n != injector and n not in ever_deviant],
                min(event.targets, len(node_ids) - 1),
            )
            envelope = _forged_envelope(injector, event.at_ms, len(forgeries))
            forgeries.append((event.at_ms, injector, tuple(sorted(victims)), envelope))
            log_entry(
                event,
                f"node {injector} injects forged envelope to {len(victims)} peers",
                injector=injector,
                targets=sorted(victims),
            )
        else:  # pragma: no cover - registry and compiler must stay in sync
            raise ConfigurationError(f"unhandled event kind {event.kind!r}")

    # Record the resolved timeline.  Flips are sorted globally by time, which
    # guarantees the per-node non-decreasing order record_flip enforces even
    # when a churn recovery lands between two later scripted events.
    for time_ms, node, behavior in sorted(flips, key=lambda x: (x[0], x[1])):
        plan.record_flip(node, time_ms, behavior)

    # -- invariant suite ---------------------------------------------------
    adapter = adapter_for(protocol, system, workload_ids)
    eligible = [n for n in node_ids if n not in ever_deviant]
    suite = InvariantSuite(
        system,
        plan,
        adapter,
        violation_log,
        eligible_nodes=eligible,
        min_coverage=scenario.min_coverage,
        f=f,
    )
    suite.attach(scenario.horizon_ms)

    # -- schedule the runtime side effects ---------------------------------
    def apply_flip(node: int, behavior: Behavior) -> None:
        system.nodes[node].behavior = behavior
        if obs is not None:
            obs.event("chaos.flip", node=node, behavior=behavior.value)

    for time_ms, node, behavior in flips:
        simulator.schedule_at(
            time_ms, lambda n=node, b=behavior: apply_flip(n, b)
        )

    for time_ms, injector, victims, envelope in forgeries:
        suite.expect_detection(injector)
        simulator.schedule_at(
            time_ms,
            lambda i=injector, v=victims, e=envelope: _inject_forgery(
                system, i, v, e, obs
            ),
        )

    if obs is not None:
        for start_ms, end_ms, name, attrs in windows:
            simulator.schedule_at(
                start_ms,
                lambda n=name, a=attrs, e=end_ms: _open_window(obs, simulator, n, a, e),
            )

    for tx in workload:
        simulator.schedule_at(
            tx.created_at, lambda t=tx: system.submit(t.origin, t)
        )
        suite.schedule_liveness_check(
            tx.tx_id, tx.created_at + scenario.liveness_deadline_ms
        )

    # -- run ---------------------------------------------------------------
    system.start()
    final_time = system.run(until_ms=scenario.horizon_ms)
    accountability = suite.finalize()

    stats = network.stats
    return ChaosReport(
        scenario=scenario.name,
        protocol=protocol,
        seed=seed,
        num_nodes=num_nodes,
        f=f,
        horizon_ms=scenario.horizon_ms,
        final_time_ms=final_time,
        fault_log=fault_log,
        transactions=[
            {
                "tx_id": tx.tx_id,
                "origin": tx.origin,
                "submit_ms": tx.created_at,
                "coverage": suite.liveness_coverage.get(tx.tx_id, 0.0),
            }
            for tx in workload
        ],
        invariants={name: r.to_json() for name, r in sorted(suite.results.items())},
        accountability=accountability,
        violation_summary=violation_log.summary(),
        network={
            "messages_sent": sum(stats.messages_sent.values()),
            "messages_dropped": stats.messages_dropped,
            "total_bytes": stats.total_bytes(),
            "dropped_by_partition": disruptor.dropped_by_partition,
            "dropped_by_loss": disruptor.dropped_by_loss,
        },
        reachability=suite.reachability,
    )


def _forged_envelope(injector: int, at_ms: float, index: int):
    """A dissemination envelope whose TRS can never verify."""

    from ..core.dissemination import DisseminationEnvelope

    tx = Transaction.create(origin=injector, created_at=at_ms, tag="forged")
    return DisseminationEnvelope(
        tx=tx,
        origin=injector,
        sequence=_FORGED_SEQUENCE_BASE + index,
        signature=("forged", index),
        overlay_id=0,
    )


def _inject_forgery(system, injector: int, victims, envelope, obs) -> None:
    """Push a forged envelope straight at the victims' §VI-C checks."""

    from ..core.dissemination import DISSEMINATE_KIND

    size = envelope.wire_bytes(system.backend)
    for victim in victims:
        system.network.send(injector, victim, Message(DISSEMINATE_KIND, envelope, size))
    if obs is not None:
        obs.event(
            "chaos.forgery", injector=injector, targets=len(victims), tx=envelope.tx.tx_id
        )


def _open_window(obs, simulator, name: str, attrs: dict, end_ms: float) -> None:
    """Start a detached trace span for one fault window and end it on cue."""

    span = obs.tracer.detached_span(name, **attrs)
    # Span.event (not obs.event): detached spans never join the stack, so a
    # plain tracer event here would attach to whatever ambient span is open.
    span.event(f"{name}.open", until_ms=end_ms)
    simulator.schedule_at(end_ms, span.end)
