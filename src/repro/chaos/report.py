"""The structured, deterministic outcome of one chaos campaign.

A :class:`ChaosReport` carries everything a reader (or a sweep aggregator)
needs: the run configuration, the resolved fault log (what actually happened
to whom and when), per-transaction delivery coverage, the four invariant
outcomes, the accountability verdict and the violation-log digest.

Determinism contract: every field derives from the simulation clock and
seeded randomness — no wall-clock times, no unsorted sets.  ``dumps`` uses
sorted keys, so the same ``(scenario, protocol, seed)`` triple always
produces byte-identical JSON; ``content_hash`` is the sha256 of those bytes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ChaosReport"]


@dataclass(frozen=True, slots=True)
class ChaosReport:
    """Deterministic record of one scenario run against one protocol."""

    scenario: str
    protocol: str
    seed: int
    num_nodes: int
    f: int
    horizon_ms: float
    final_time_ms: float
    #: Resolved fault events in schedule order: what the compiler actually
    #: did (which concrete nodes flipped, which links were windowed, ...).
    fault_log: list[dict[str, Any]] = field(default_factory=list)
    #: Per-transaction record: origin, submit time, eligible-node coverage.
    transactions: list[dict[str, Any]] = field(default_factory=list)
    #: Invariant name -> {"status", "checks", "violations"}.
    invariants: dict[str, Any] = field(default_factory=dict)
    #: The accountability verdict (attribution/false-accusation accounting).
    accountability: dict[str, Any] = field(default_factory=dict)
    #: ``ViolationLog.summary()`` of the system's evidence log.
    violation_summary: dict[str, Any] = field(default_factory=dict)
    #: Network-level counters (messages, drops, disruption counts).
    network: dict[str, Any] = field(default_factory=dict)
    #: Informational reachability timeline from the connectivity probes.
    reachability: list[dict[str, Any]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every applicable invariant held."""

        return all(
            doc.get("status") in ("pass", "n/a") for doc in self.invariants.values()
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "seed": self.seed,
            "num_nodes": self.num_nodes,
            "f": self.f,
            "horizon_ms": self.horizon_ms,
            "final_time_ms": self.final_time_ms,
            "passed": self.passed,
            "fault_log": self.fault_log,
            "transactions": self.transactions,
            "invariants": self.invariants,
            "accountability": self.accountability,
            "violation_summary": self.violation_summary,
            "network": self.network,
            "reachability": self.reachability,
        }

    def dumps(self) -> str:
        """Canonical JSON: sorted keys, stable separators."""

        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        return hashlib.sha256(self.dumps().encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "ChaosReport":
        return cls(
            scenario=doc["scenario"],
            protocol=doc["protocol"],
            seed=doc["seed"],
            num_nodes=doc["num_nodes"],
            f=doc["f"],
            horizon_ms=doc["horizon_ms"],
            final_time_ms=doc["final_time_ms"],
            fault_log=list(doc.get("fault_log", ())),
            transactions=list(doc.get("transactions", ())),
            invariants=dict(doc.get("invariants", {})),
            accountability=dict(doc.get("accountability", {})),
            violation_summary=dict(doc.get("violation_summary", {})),
            network=dict(doc.get("network", {})),
            reachability=list(doc.get("reachability", ())),
        )

    # -- human rendering -------------------------------------------------

    def format(self) -> str:
        """A terminal-friendly multi-line summary."""

        lines = [
            f"chaos report: scenario={self.scenario} protocol={self.protocol} "
            f"seed={self.seed} nodes={self.num_nodes} f={self.f}",
            f"  verdict: {'PASS' if self.passed else 'FAIL'} "
            f"(final time {self.final_time_ms:.1f}ms)",
            "  invariants:",
        ]
        for name in sorted(self.invariants):
            doc = self.invariants[name]
            line = f"    {name:<22} {doc['status']:<5} ({doc['checks']} checks)"
            lines.append(line)
            for violation in doc.get("violations", ())[:4]:
                lines.append(f"      ! {violation['detail']}")
        acct = self.accountability
        if acct:
            lines.append(
                "  accountability: "
                f"{len(acct.get('attributed', ()))}/"
                f"{len(acct.get('observed_deviants', ()))} observed deviants "
                f"attributed, {len(acct.get('false_accusations', ()))} false "
                "accusations"
            )
        summary = self.violation_summary
        if summary:
            kinds = ", ".join(
                f"{kind}={count}" for kind, count in summary.get("by_kind", {}).items()
            )
            lines.append(
                f"  violations: total={summary.get('total', 0)}"
                + (f" ({kinds})" if kinds else "")
            )
        if self.fault_log:
            lines.append("  fault log:")
            for entry in self.fault_log:
                lines.append(f"    {entry['at_ms']:>8.1f}ms  {entry['summary']}")
        if self.transactions:
            covered = sum(1 for t in self.transactions if t["coverage"] >= 1.0)
            lines.append(
                f"  workload: {len(self.transactions)} txs, "
                f"{covered} reached full eligible coverage"
            )
        net = self.network
        if net:
            lines.append(
                "  network: "
                f"sent={net.get('messages_sent', 0)} "
                f"dropped={net.get('messages_dropped', 0)} "
                f"partition_drops={net.get('dropped_by_partition', 0)} "
                f"loss_drops={net.get('dropped_by_loss', 0)}"
            )
        return "\n".join(lines)
