"""Time-windowed link disruption: partitions, latency spikes, loss windows.

The :class:`LinkDisruptor` is consulted by :meth:`repro.net.node.Network.send`
once per transmission (when installed); it answers with a
:class:`LinkVerdict` — drop the message, or stretch its latency.  Windows are
registered up front by the chaos compiler, so a run's disruption schedule is
part of the deterministic record.

Randomness discipline: the disruptor owns a dedicated derived RNG that is
*only* drawn from while a loss window is active.  Scenarios without loss
windows therefore consume zero extra randomness, and every other component's
stream is untouched either way.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["LinkVerdict", "LinkDisruptor"]


@dataclass(frozen=True, slots=True)
class LinkVerdict:
    """What happens to one transmission: dropped, or delayed by a factor."""

    dropped: bool = False
    latency_factor: float = 1.0


_PASS = LinkVerdict()


class LinkDisruptor:
    """Evaluates active fault windows for each (src, dst, now) transmission."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        # (start_ms, end_ms, isolated node group): messages crossing the
        # group boundary are dropped while the window is active.
        self._partitions: list[tuple[float, float, frozenset[int]]] = []
        self._latency: list[tuple[float, float, float]] = []
        self._loss: list[tuple[float, float, float]] = []
        # Deterministic counters for the chaos report.
        self.dropped_by_partition = 0
        self.dropped_by_loss = 0

    # -- window registration (compile time) ------------------------------

    def add_partition(self, start_ms: float, end_ms: float, group: frozenset[int]) -> None:
        self._check(start_ms, end_ms)
        self._partitions.append((start_ms, end_ms, frozenset(group)))

    def add_latency_spike(self, start_ms: float, end_ms: float, factor: float) -> None:
        self._check(start_ms, end_ms)
        if factor < 1.0:
            raise ConfigurationError(f"latency factor must be >= 1, got {factor}")
        self._latency.append((start_ms, end_ms, factor))

    def add_loss_window(
        self, start_ms: float, end_ms: float, probability: float
    ) -> None:
        self._check(start_ms, end_ms)
        if not 0.0 < probability < 1.0:
            raise ConfigurationError(
                f"loss probability must be in (0, 1), got {probability}"
            )
        self._loss.append((start_ms, end_ms, probability))

    @staticmethod
    def _check(start_ms: float, end_ms: float) -> None:
        if end_ms <= start_ms:
            raise ConfigurationError(
                f"window must end after it starts ({start_ms} -> {end_ms})"
            )

    # -- evaluation (per transmission) -----------------------------------

    def apply(self, src: int, dst: int, now: float) -> LinkVerdict:
        """The fate of a message sent from *src* to *dst* at time *now*.

        Windows are half-open ``[start, end)``: a message sent at the heal
        instant already passes.
        """

        for start, end, group in self._partitions:
            if start <= now < end and (src in group) != (dst in group):
                self.dropped_by_partition += 1
                return LinkVerdict(dropped=True)
        for start, end, probability in self._loss:
            if start <= now < end and self._rng.random() < probability:
                self.dropped_by_loss += 1
                return LinkVerdict(dropped=True)
        factor = 1.0
        for start, end, spike in self._latency:
            if start <= now < end:
                factor *= spike
        if factor == 1.0:
            return _PASS
        return LinkVerdict(latency_factor=factor)
