"""A ``(t, n)`` threshold signature scheme with publicly verifiable partials.

This is the distributed-verifiable-random-function construction HERMES's TRS
needs:

* a dealer (or DKG, outside our scope) Shamir-shares a secret ``x`` among the
  ``n = 3f+1`` committee members and publishes commitments ``y_i = g^{x_i}``
  plus the group public key ``y = g^x``;
* member *i* signs message *m* by computing ``σ_i = H_G(m)^{x_i}`` together
  with a DLEQ proof binding ``σ_i`` to ``y_i``;
* any ``t = 2f+1`` verified partials combine via Lagrange interpolation in the
  exponent into ``σ = H_G(m)^x`` — a value that is *unique* for ``(m, y)``
  regardless of which subset signed, deterministic, and unpredictable without
  ``t`` shares.  HERMES reduces it mod ``k`` to pick the dissemination overlay.

The combined signature is accepted iff it interpolates consistently from
verified partials; the shipped certificate (partials + proofs) is what makes
the seed auditable by third parties, mirroring the paper's accountability goal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import InvalidSignatureError, ThresholdNotReachedError
from .dleq import DleqProof, prove_dleq, verify_dleq
from .field import lagrange_coefficients_at_zero
from .group import SchnorrGroup
from .shamir import split_secret

__all__ = [
    "PartialSignature",
    "ThresholdPublicKey",
    "ThresholdSignature",
    "ThresholdSigner",
    "combine_partials",
    "threshold_keygen",
    "verify_partial",
    "verify_threshold_signature",
]


@dataclass(frozen=True, slots=True)
class ThresholdPublicKey:
    """Public material: group key ``y = g^x`` and per-member commitments."""

    group: SchnorrGroup
    threshold: int
    public_key: int
    share_commitments: Mapping[int, int]

    def commitment_for(self, index: int) -> int:
        if index not in self.share_commitments:
            raise InvalidSignatureError(f"unknown committee member index {index}")
        return self.share_commitments[index]


@dataclass(frozen=True, slots=True)
class PartialSignature:
    """One member's contribution ``σ_i = H_G(m)^{x_i}`` with its DLEQ proof."""

    index: int
    value: int
    proof: DleqProof


@dataclass(frozen=True, slots=True)
class ThresholdSignature:
    """The combined signature ``σ = H_G(m)^x`` plus the partials that formed it."""

    value: int
    contributors: tuple[int, ...]

    def as_seed(self, modulus: int) -> int:
        """Reduce the signature to a seed in ``[0, modulus)`` (overlay index)."""

        from .hashing import hash_to_int

        if modulus <= 0:
            raise ValueError(f"modulus must be positive, got {modulus}")
        return hash_to_int("trs-seed", self.value, modulus=modulus)


class ThresholdSigner:
    """A committee member's signing state: its index and secret share."""

    def __init__(self, group: SchnorrGroup, index: int, share_value: int) -> None:
        self._group = group
        self.index = index
        self._share_value = share_value % group.q

    def sign(self, message: bytes, rng: random.Random) -> PartialSignature:
        """Produce a publicly verifiable partial signature over *message*."""

        base = self._group.hash_to_group("trs", message)
        value = self._group.exp(base, self._share_value)
        proof = prove_dleq(self._group, self._share_value, self._group.g, base, rng)
        return PartialSignature(index=self.index, value=value, proof=proof)


def threshold_keygen(
    group: SchnorrGroup, threshold: int, num_members: int, rng: random.Random
) -> tuple[ThresholdPublicKey, list[ThresholdSigner]]:
    """Trusted-dealer key generation for a ``(threshold, num_members)`` committee.

    Returns the public key object and one :class:`ThresholdSigner` per member.
    A real deployment would run a DKG; the dealer model is standard for
    protocol evaluation and does not change any message flow HERMES measures.
    """

    secret = rng.randrange(1, group.q)
    shares = split_secret(group.scalar_field, secret, threshold, num_members, rng)
    commitments = {share.index: group.exp(group.g, share.value) for share in shares}
    public = ThresholdPublicKey(
        group=group,
        threshold=threshold,
        public_key=group.exp(group.g, secret),
        share_commitments=commitments,
    )
    signers = [ThresholdSigner(group, share.index, share.value) for share in shares]
    return public, signers


def verify_partial(
    public: ThresholdPublicKey, message: bytes, partial: PartialSignature
) -> bool:
    """Check a partial against the member's registered commitment."""

    group = public.group
    try:
        commitment = public.commitment_for(partial.index)
    except InvalidSignatureError:
        return False
    base = group.hash_to_group("trs", message)
    return verify_dleq(group, group.g, commitment, base, partial.value, partial.proof)


def combine_partials(
    public: ThresholdPublicKey, message: bytes, partials: Sequence[PartialSignature]
) -> ThresholdSignature:
    """Combine >= threshold verified partials into the unique group signature.

    Invalid partials are discarded (and reported via the exception message if
    the remainder falls below the threshold) — a Byzantine member cannot block
    combination as long as ``t`` honest partials arrive.
    """

    valid = [p for p in partials if verify_partial(public, message, p)]
    seen: dict[int, PartialSignature] = {}
    for partial in valid:
        seen.setdefault(partial.index, partial)
    valid = list(seen.values())
    if len(valid) < public.threshold:
        raise ThresholdNotReachedError(
            f"need {public.threshold} valid partials, got {len(valid)} "
            f"(of {len(partials)} submitted)"
        )

    chosen = valid[: public.threshold]
    group = public.group
    coefficients = lagrange_coefficients_at_zero(
        group.scalar_field, [p.index for p in chosen]
    )
    combined = 1
    for partial in chosen:
        combined = group.mul(combined, group.exp(partial.value, coefficients[partial.index]))
    return ThresholdSignature(
        value=combined, contributors=tuple(sorted(p.index for p in chosen))
    )


def verify_threshold_signature(
    public: ThresholdPublicKey,
    message: bytes,
    signature: ThresholdSignature,
    partials: Sequence[PartialSignature] | None = None,
) -> bool:
    """Verify a combined signature.

    Without pairings the combined value ``H_G(m)^x`` cannot be checked against
    ``y = g^x`` directly, so verification recombines from the certificate of
    partials (each publicly verifiable via DLEQ).  When *partials* is ``None``
    the signature is only checked for group membership.
    """

    if not public.group.is_element(signature.value):
        return False
    if partials is None:
        return True
    try:
        recombined = combine_partials(public, message, list(partials))
    except ThresholdNotReachedError:
        return False
    return recombined.value == signature.value
