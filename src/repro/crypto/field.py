"""Arithmetic over the prime field ``Z_q``.

Shamir secret sharing, Schnorr signatures, and Lagrange interpolation all work
in the scalar field of the group's prime order ``q``.  This module wraps the
handful of modular operations they need, with input validation, so higher
layers never manipulate raw ``pow``/``%`` expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["PrimeField", "lagrange_coefficients_at_zero"]


@dataclass(frozen=True, slots=True)
class PrimeField:
    """The field of integers modulo a prime *order*."""

    order: int

    def __post_init__(self) -> None:
        if self.order < 2:
            raise ValueError(f"field order must be >= 2, got {self.order}")

    def reduce(self, value: int) -> int:
        """Map *value* into ``[0, order)``."""

        return value % self.order

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.order

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.order

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.order

    def neg(self, a: int) -> int:
        return (-a) % self.order

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ``ZeroDivisionError`` for 0."""

        a %= self.order
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse")
        return pow(a, -1, self.order)

    def eval_polynomial(self, coefficients: Sequence[int], x: int) -> int:
        """Evaluate the polynomial with *coefficients* (constant term first) at *x*."""

        result = 0
        for coefficient in reversed(coefficients):
            result = (result * x + coefficient) % self.order
        return result


def lagrange_coefficients_at_zero(field: PrimeField, xs: Iterable[int]) -> dict[int, int]:
    """Lagrange basis coefficients ``λ_i`` evaluated at ``x = 0``.

    Given distinct evaluation points *xs*, returns ``{x_i: λ_i}`` such that for
    any polynomial ``P`` of degree < len(xs), ``P(0) = Σ λ_i · P(x_i)``.  This
    is the interpolation step of both Shamir recovery and threshold-signature
    combination (where it runs in the exponent).
    """

    points = [field.reduce(x) for x in xs]
    if len(set(points)) != len(points):
        raise ValueError("evaluation points must be distinct")
    if any(x == 0 for x in points):
        raise ValueError("evaluation point 0 would leak the secret directly")

    coefficients: dict[int, int] = {}
    for i, x_i in enumerate(points):
        numerator, denominator = 1, 1
        for j, x_j in enumerate(points):
            if i == j:
                continue
            numerator = field.mul(numerator, x_j)
            denominator = field.mul(denominator, field.sub(x_j, x_i))
        coefficients[x_i] = field.mul(numerator, field.inv(denominator))
    return coefficients
