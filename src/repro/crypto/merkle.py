"""Merkle trees: compact commitments with membership proofs.

L∅-style mempool accountability benefits from committing to a transaction
*set* such that individual membership can later be proven without shipping
the whole set — exactly a Merkle root plus inclusion proofs.  Narwhal batches
likewise commit to their contents.  This module provides a standard binary
Merkle tree over SHA-256 with:

* duplicate-last-leaf padding for odd levels (Bitcoin-style);
* domain separation between leaf and interior hashes (defending against the
  classic second-preimage-by-reinterpretation attack);
* logarithmic inclusion proofs and stateless verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .hashing import hash_bytes

__all__ = ["MerkleTree", "MerkleProof", "merkle_root", "verify_inclusion"]


def _leaf_hash(payload: bytes) -> bytes:
    return hash_bytes("merkle-leaf", payload)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hash_bytes("merkle-node", left, right)


@dataclass(frozen=True, slots=True)
class MerkleProof:
    """An inclusion proof: the leaf index and the sibling path to the root."""

    leaf_index: int
    # Each step: (sibling digest, sibling_is_right).
    path: tuple[tuple[bytes, bool], ...]


class MerkleTree:
    """A binary Merkle tree over a fixed leaf sequence."""

    def __init__(self, leaves: Sequence[bytes]) -> None:
        if not leaves:
            raise ValueError("a Merkle tree needs at least one leaf")
        self._leaves = [bytes(leaf) for leaf in leaves]
        self._levels: list[list[bytes]] = [[_leaf_hash(l) for l in self._leaves]]
        while len(self._levels[-1]) > 1:
            current = self._levels[-1]
            if len(current) % 2:
                current = current + [current[-1]]
            self._levels.append(
                [
                    _node_hash(current[i], current[i + 1])
                    for i in range(0, len(current), 2)
                ]
            )

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    def __len__(self) -> int:
        return len(self._leaves)

    def proof(self, leaf_index: int) -> MerkleProof:
        """Inclusion proof for the leaf at *leaf_index*."""

        if not 0 <= leaf_index < len(self._leaves):
            raise IndexError(f"leaf index {leaf_index} out of range")
        path: list[tuple[bytes, bool]] = []
        index = leaf_index
        for level in self._levels[:-1]:
            padded = level + [level[-1]] if len(level) % 2 else level
            if index % 2 == 0:
                sibling, sibling_is_right = padded[index + 1], True
            else:
                sibling, sibling_is_right = padded[index - 1], False
            path.append((sibling, sibling_is_right))
            index //= 2
        return MerkleProof(leaf_index=leaf_index, path=tuple(path))


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Convenience: the root of the tree over *leaves*."""

    return MerkleTree(leaves).root


def verify_inclusion(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
    """Check that *leaf* is committed under *root* at the proof's position."""

    digest = _leaf_hash(leaf)
    index = proof.leaf_index
    if index < 0:
        return False
    for sibling, sibling_is_right in proof.path:
        if sibling_is_right:
            if index % 2 != 0:
                return False
            digest = _node_hash(digest, sibling)
        else:
            if index % 2 != 1:
                return False
            digest = _node_hash(sibling, digest)
        index //= 2
    return digest == root
