"""Chaum–Pedersen proofs of discrete-log equality (DLEQ).

A committee member publishing the partial signature ``σ_i = H(m)^{x_i}`` also
publishes a DLEQ proof that ``log_g(y_i) = log_{H(m)}(σ_i)`` where ``y_i`` is
its registered share commitment.  This makes partials *publicly verifiable*:
anyone can check a partial against the member's commitment without pairings,
which is exactly what HERMES needs for accountable seed generation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .group import SchnorrGroup

__all__ = ["DleqProof", "prove_dleq", "verify_dleq"]


@dataclass(frozen=True, slots=True)
class DleqProof:
    """Non-interactive proof that two group elements share one discrete log."""

    challenge: int
    response: int


def prove_dleq(
    group: SchnorrGroup,
    secret: int,
    base_a: int,
    base_b: int,
    rng: random.Random,
) -> DleqProof:
    """Prove knowledge of *secret* with ``A = base_a^secret`` and ``B = base_b^secret``.

    Standard Chaum–Pedersen, Fiat–Shamir over both bases and both images.
    """

    nonce = rng.randrange(1, group.q)
    commit_a = group.exp(base_a, nonce)
    commit_b = group.exp(base_b, nonce)
    image_a = group.exp(base_a, secret)
    image_b = group.exp(base_b, secret)
    challenge = group.hash_to_scalar(
        "dleq", base_a, base_b, image_a, image_b, commit_a, commit_b
    )
    response = group.scalar_field.add(nonce, group.scalar_field.mul(challenge, secret))
    return DleqProof(challenge=challenge, response=response)


def verify_dleq(
    group: SchnorrGroup,
    base_a: int,
    image_a: int,
    base_b: int,
    image_b: int,
    proof: DleqProof,
) -> bool:
    """Verify a :class:`DleqProof` for ``(base_a, image_a)`` and ``(base_b, image_b)``."""

    for element in (base_a, image_a, base_b, image_b):
        if not group.is_element(element):
            return False
    if not 0 < proof.challenge < group.q or not 0 <= proof.response < group.q:
        return False
    commit_a = group.mul(
        group.exp(base_a, proof.response), group.inv(group.exp(image_a, proof.challenge))
    )
    commit_b = group.mul(
        group.exp(base_b, proof.response), group.inv(group.exp(image_b, proof.challenge))
    )
    expected = group.hash_to_scalar(
        "dleq", base_a, base_b, image_a, image_b, commit_a, commit_b
    )
    return expected == proof.challenge
