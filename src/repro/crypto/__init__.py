"""Cryptographic substrate for HERMES, implemented from scratch.

The paper requires three primitives:

* ordinary signatures so nodes can authenticate messages and overlay encodings
  (we implement Schnorr signatures over a prime-order subgroup of ``Z_p^*``);
* a ``(2f+1)``-of-``(3f+1)`` threshold signature whose combined value acts as
  the *Threshold Random Seed* (we implement a discrete-log DVRF: Shamir shares
  of a secret ``x``, partial signatures ``H(m)^{x_i}`` with Chaum–Pedersen DLEQ
  proofs, combined by Lagrange interpolation in the exponent);
* collision-resistant hashing (SHA-256 from the standard library).

Two backends expose the same interface (:class:`~repro.crypto.backend.CryptoBackend`):
:class:`~repro.crypto.backend.RealCryptoBackend` runs the genuine mathematics,
while :class:`~repro.crypto.backend.FastCryptoBackend` replaces signatures with
keyed hashes so that 10,000-node simulations stay tractable.  Both produce the
*same* deterministic seed for a given message, which is the property the HERMES
protocol logic depends on.
"""

from .backend import CryptoBackend, FastCryptoBackend, RealCryptoBackend
from .dleq import DleqProof, prove_dleq, verify_dleq
from .group import SchnorrGroup, default_group, toy_group
from .hashing import hash_bytes, hash_to_int, sha256_hex
from .keys import KeyPair, KeyRegistry
from .schnorr import SchnorrSignature, schnorr_sign, schnorr_verify
from .shamir import ShamirShare, recover_secret, split_secret
from .threshold import (
    PartialSignature,
    ThresholdPublicKey,
    ThresholdSignature,
    ThresholdSigner,
    combine_partials,
    threshold_keygen,
)

__all__ = [
    "CryptoBackend",
    "DleqProof",
    "FastCryptoBackend",
    "KeyPair",
    "KeyRegistry",
    "PartialSignature",
    "RealCryptoBackend",
    "SchnorrGroup",
    "SchnorrSignature",
    "ShamirShare",
    "ThresholdPublicKey",
    "ThresholdSignature",
    "ThresholdSigner",
    "combine_partials",
    "default_group",
    "hash_bytes",
    "hash_to_int",
    "prove_dleq",
    "recover_secret",
    "schnorr_sign",
    "schnorr_verify",
    "sha256_hex",
    "split_secret",
    "threshold_keygen",
    "toy_group",
    "verify_dleq",
]
