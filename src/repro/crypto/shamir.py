"""Shamir secret sharing over the scalar field of a Schnorr group.

The TRS committee holds Shamir shares of the threshold signing key.  A
``(t, n)`` sharing lets any ``t`` members reconstruct (or, in the threshold
scheme, jointly sign) while ``t - 1`` members learn nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..errors import ShareError
from .field import PrimeField, lagrange_coefficients_at_zero

__all__ = ["ShamirShare", "split_secret", "recover_secret"]


@dataclass(frozen=True, slots=True)
class ShamirShare:
    """One share: the polynomial evaluated at ``x = index`` (index >= 1)."""

    index: int
    value: int

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ShareError(f"share index must be >= 1, got {self.index}")


def split_secret(
    field: PrimeField,
    secret: int,
    threshold: int,
    num_shares: int,
    rng: random.Random,
) -> list[ShamirShare]:
    """Split *secret* into *num_shares* shares, any *threshold* of which recover it.

    The dealer samples a degree ``threshold - 1`` polynomial with the secret as
    constant term and hands out evaluations at ``x = 1 .. num_shares``.
    """

    if threshold < 1:
        raise ShareError(f"threshold must be >= 1, got {threshold}")
    if num_shares < threshold:
        raise ShareError(
            f"cannot create {num_shares} shares with threshold {threshold}"
        )
    if num_shares >= field.order:
        raise ShareError("field too small for the requested number of shares")

    coefficients = [field.reduce(secret)]
    coefficients += [rng.randrange(field.order) for _ in range(threshold - 1)]
    return [
        ShamirShare(index=x, value=field.eval_polynomial(coefficients, x))
        for x in range(1, num_shares + 1)
    ]


def recover_secret(field: PrimeField, shares: Sequence[ShamirShare]) -> int:
    """Recover the secret from *shares* by Lagrange interpolation at 0.

    The caller is responsible for providing at least ``threshold`` shares;
    with fewer, interpolation silently yields garbage (as in any Shamir
    implementation), so protocol layers must enforce the count.
    """

    if not shares:
        raise ShareError("cannot recover a secret from zero shares")
    indexes = [share.index for share in shares]
    if len(set(indexes)) != len(indexes):
        raise ShareError("duplicate share indexes")
    coefficients = lagrange_coefficients_at_zero(field, indexes)
    secret = 0
    for share in shares:
        secret = field.add(secret, field.mul(coefficients[share.index], share.value))
    return secret
