"""Per-node key material and a registry mapping node ids to public keys.

The registry plays the role of the PKI that permissioned blockchains have by
construction: every node can look up every other node's verification key, and
the TRS committee's threshold public key is registered alongside.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import CryptoError
from .group import SchnorrGroup
from .schnorr import SchnorrSignature, schnorr_keygen, schnorr_sign, schnorr_verify

__all__ = ["KeyPair", "KeyRegistry"]


@dataclass(frozen=True, slots=True)
class KeyPair:
    """A node's Schnorr keypair."""

    node_id: int
    secret_key: int
    public_key: int


class KeyRegistry:
    """Generates and stores keypairs for a set of nodes.

    The registry hands secrets only to their owner (by convention — this is a
    simulation); verification uses only public keys.
    """

    def __init__(self, group: SchnorrGroup) -> None:
        self._group = group
        self._pairs: dict[int, KeyPair] = {}

    @property
    def group(self) -> SchnorrGroup:
        return self._group

    def generate(self, node_id: int, rng: random.Random) -> KeyPair:
        """Create (or return the existing) keypair for *node_id*."""

        if node_id in self._pairs:
            return self._pairs[node_id]
        secret, public = schnorr_keygen(self._group, rng)
        pair = KeyPair(node_id=node_id, secret_key=secret, public_key=public)
        self._pairs[node_id] = pair
        return pair

    def public_key(self, node_id: int) -> int:
        try:
            return self._pairs[node_id].public_key
        except KeyError:
            raise CryptoError(f"no key registered for node {node_id}") from None

    def keypair(self, node_id: int) -> KeyPair:
        try:
            return self._pairs[node_id]
        except KeyError:
            raise CryptoError(f"no key registered for node {node_id}") from None

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def sign(self, node_id: int, message: bytes, rng: random.Random) -> SchnorrSignature:
        """Sign *message* with *node_id*'s secret key."""

        return schnorr_sign(self._group, self.keypair(node_id).secret_key, message, rng)

    def verify(self, node_id: int, message: bytes, signature: SchnorrSignature) -> bool:
        """Verify *signature* on *message* against *node_id*'s public key."""

        if node_id not in self._pairs:
            return False
        return schnorr_verify(self._group, self.public_key(node_id), message, signature)
