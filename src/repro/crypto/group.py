"""A Schnorr group: the prime-order subgroup of ``Z_p^*`` used for all
discrete-log cryptography in this reproduction.

Two parameter sets are provided:

* :func:`default_group` — a 2048-bit MODP prime (RFC 3526 group 14) with its
  prime-order subgroup, suitable for honest benchmarking of the real crypto;
* :func:`toy_group` — a small (but genuinely prime-order) group that keeps
  property-based tests fast while exercising identical code paths.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from .field import PrimeField
from .hashing import hash_to_int

__all__ = ["SchnorrGroup", "default_group", "toy_group"]

# RFC 3526, 2048-bit MODP group: p is a safe prime, q = (p - 1) / 2 is prime.
_RFC3526_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
_RFC3526_Q = (_RFC3526_P - 1) // 2


@dataclass(frozen=True)
class SchnorrGroup:
    """A cyclic group of prime order *q*, realised inside ``Z_p^*``.

    Elements are integers in ``[1, p)`` satisfying ``e^q = 1 (mod p)``;
    exponents live in the scalar field ``Z_q``.
    """

    p: int
    q: int
    g: int

    def __post_init__(self) -> None:
        if not 1 < self.g < self.p:
            raise ValueError("generator must lie in (1, p)")
        if (self.p - 1) % self.q != 0:
            raise ValueError("q must divide p - 1")
        if pow(self.g, self.q, self.p) != 1:
            raise ValueError("generator does not have order q")

    @property
    def scalar_field(self) -> PrimeField:
        return PrimeField(self.q)

    def exp(self, base: int, exponent: int) -> int:
        """``base^exponent mod p`` with the exponent reduced mod q."""

        return pow(base, exponent % self.q, self.p)

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        return pow(a, -1, self.p)

    def is_element(self, value: int) -> bool:
        """True when *value* is in the prime-order subgroup (excluding 0)."""

        return 0 < value < self.p and pow(value, self.q, self.p) == 1

    def hash_to_group(self, *parts: bytes | str | int) -> int:
        """Hash *parts* to a subgroup element (never the identity).

        We hash to ``Z_p^*`` and square into the quadratic-residue subgroup
        (valid because both parameter sets use safe primes, where the subgroup
        of order q is exactly the quadratic residues).
        """

        counter = 0
        while True:
            raw = hash_to_int("hash-to-group", counter, *parts, modulus=self.p)
            candidate = pow(raw, (self.p - 1) // self.q, self.p)
            if candidate != 1 and self.is_element(candidate):
                return candidate
            counter += 1

    def hash_to_scalar(self, *parts: bytes | str | int) -> int:
        """Hash *parts* to a non-zero scalar in ``Z_q``."""

        counter = 0
        while True:
            value = hash_to_int("hash-to-scalar", counter, *parts, modulus=self.q)
            if value != 0:
                return value
            counter += 1


@functools.cache
def default_group() -> SchnorrGroup:
    """The 2048-bit RFC 3526 group; ``g = 4`` generates the order-q subgroup."""

    return SchnorrGroup(p=_RFC3526_P, q=_RFC3526_Q, g=4)


@functools.cache
def toy_group() -> SchnorrGroup:
    """A small safe-prime group (``p = 2q + 1``, q = 2695139) for fast tests."""

    q = 2695139
    p = 2 * q + 1
    # g = 4 is a quadratic residue, hence generates the order-q subgroup.
    return SchnorrGroup(p=p, q=q, g=4)
