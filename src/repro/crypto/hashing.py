"""Hashing helpers: canonical serialization plus SHA-256.

All protocol hashing in the reproduction funnels through these functions so
that every component agrees byte-for-byte on what ``H(m)`` means.
"""

from __future__ import annotations

import hashlib

__all__ = ["encode_piece", "encode_for_hash", "hash_bytes", "hash_to_int", "sha256_hex"]


def encode_piece(part: bytes | str | int) -> bytes:
    """The length-prefixed canonical encoding of a single part.

    ``encode_for_hash(a, b) == encode_piece(a) + encode_piece(b)`` — callers
    that maintain incremental digests (e.g. the mempool commitment) cache
    per-part pieces and concatenate them instead of re-encoding everything.
    """

    if isinstance(part, str):
        raw = part.encode("utf-8")
    elif isinstance(part, int):
        raw = part.to_bytes((max(part.bit_length(), 1) + 7) // 8, "big", signed=part < 0)
    elif isinstance(part, bytes):
        raw = part
    else:
        raise TypeError(f"cannot hash value of type {type(part).__name__}")
    return len(raw).to_bytes(4, "big") + raw


def encode_for_hash(*parts: bytes | str | int) -> bytes:
    """Serialize *parts* into an unambiguous byte string.

    Each part is length-prefixed so ``("ab", "c")`` and ``("a", "bc")`` encode
    differently — a classic source of hash-ambiguity bugs.
    """

    return b"".join([encode_piece(part) for part in parts])


def hash_bytes(*parts: bytes | str | int) -> bytes:
    """SHA-256 digest of the canonical encoding of *parts*."""

    return hashlib.sha256(encode_for_hash(*parts)).digest()


def sha256_hex(*parts: bytes | str | int) -> str:
    """Hex-encoded SHA-256 digest of *parts*."""

    return hash_bytes(*parts).hex()


def hash_to_int(*parts: bytes | str | int, modulus: int | None = None) -> int:
    """Interpret the SHA-256 digest of *parts* as a big-endian integer.

    When *modulus* is given the result is reduced into ``[0, modulus)``.
    """

    value = int.from_bytes(hash_bytes(*parts), "big")
    if modulus is not None:
        if modulus <= 0:
            raise ValueError(f"modulus must be positive, got {modulus}")
        value %= modulus
    return value
