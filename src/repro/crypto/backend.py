"""Pluggable crypto backends for the simulator.

Large-scale simulation runs (the paper uses N = 10,000 nodes) cannot afford a
2048-bit modular exponentiation per message hop, so the protocol stack talks to
crypto through this small interface:

* :class:`RealCryptoBackend` — the genuine Schnorr/threshold mathematics from
  this package, suitable for unit tests and small runs;
* :class:`FastCryptoBackend` — keyed-hash stand-ins that preserve every
  property the protocol logic observes: signatures are unforgeable *within the
  simulation* (the MAC key never leaves the backend), threshold "signatures"
  become available only once ``t`` distinct members contribute, the combined
  value is deterministic in ``(i, H(m))`` and identical across contributor
  subsets, and byte sizes mirror the real scheme so bandwidth accounting is
  unchanged.

Both backends share deterministic seeds: ``seed(sig, k)`` depends only on the
message binding, which is what makes HERMES's randomized overlay selection
verifiable and unbiasable.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ..errors import ThresholdNotReachedError
from .group import SchnorrGroup, toy_group
from .hashing import hash_bytes, hash_to_int
from .keys import KeyRegistry
from .threshold import (
    PartialSignature,
    ThresholdPublicKey,
    ThresholdSignature,
    ThresholdSigner,
    combine_partials,
    threshold_keygen,
    verify_partial,
)

__all__ = ["CryptoBackend", "RealCryptoBackend", "FastCryptoBackend", "SIGNATURE_SIZE_BYTES"]

# Approximate wire sizes (bytes) used for bandwidth accounting in both backends:
# a Schnorr signature is two 256-bit scalars; a partial is a group element plus
# a DLEQ proof; the combined threshold signature is one group element plus the
# contributor bitmap.
SIGNATURE_SIZE_BYTES = 64
PARTIAL_SIZE_BYTES = 160
THRESHOLD_SIG_SIZE_BYTES = 96


class CryptoBackend(ABC):
    """The crypto surface the protocol stack consumes."""

    signature_size: int = SIGNATURE_SIZE_BYTES
    partial_size: int = PARTIAL_SIZE_BYTES
    threshold_sig_size: int = THRESHOLD_SIG_SIZE_BYTES

    @abstractmethod
    def setup_committee(self, member_ids: Sequence[int], threshold: int) -> None:
        """Register the TRS committee and deal threshold key material."""

    @abstractmethod
    def register_node(self, node_id: int) -> None:
        """Create signing material for *node_id*."""

    @abstractmethod
    def sign(self, node_id: int, message: bytes) -> object:
        """Sign *message* as *node_id*."""

    @abstractmethod
    def verify(self, node_id: int, message: bytes, signature: object) -> bool:
        """Verify a node signature."""

    @abstractmethod
    def partial_sign(self, member_id: int, message: bytes) -> object:
        """Produce a TRS partial signature as committee member *member_id*."""

    @abstractmethod
    def verify_partial(self, message: bytes, partial: object) -> bool:
        """Publicly verify one TRS partial."""

    @abstractmethod
    def combine(self, message: bytes, partials: Sequence[object]) -> object:
        """Combine >= threshold valid partials into the unique signature."""

    @abstractmethod
    def verify_combined(self, message: bytes, signature: object) -> bool:
        """Check that *signature* is the unique valid combined signature on
        *message*."""

    @abstractmethod
    def seed_from_signature(self, signature: object, modulus: int) -> int:
        """Reduce the combined signature to a seed in ``[0, modulus)``."""

    @abstractmethod
    def hash(self, payload: bytes) -> bytes:
        """Collision-resistant hash used for ``H(m)``."""


class RealCryptoBackend(CryptoBackend):
    """Backend running the genuine discrete-log cryptography."""

    def __init__(self, group: SchnorrGroup | None = None, seed: int = 0) -> None:
        self._group = group if group is not None else toy_group()
        self._rng = random.Random(seed)
        self.registry = KeyRegistry(self._group)
        self._threshold_public: ThresholdPublicKey | None = None
        self._signers: dict[int, ThresholdSigner] = {}
        self._member_index: dict[int, int] = {}

    @property
    def threshold_public(self) -> ThresholdPublicKey:
        if self._threshold_public is None:
            raise ThresholdNotReachedError("committee has not been set up")
        return self._threshold_public

    def setup_committee(self, member_ids: Sequence[int], threshold: int) -> None:
        public, signers = threshold_keygen(
            self._group, threshold, len(member_ids), self._rng
        )
        self._threshold_public = public
        self._signers = {}
        self._member_index = {}
        for member_id, signer in zip(member_ids, signers):
            self._signers[member_id] = signer
            self._member_index[member_id] = signer.index

    def register_node(self, node_id: int) -> None:
        self.registry.generate(node_id, self._rng)

    def sign(self, node_id: int, message: bytes) -> object:
        return self.registry.sign(node_id, message, self._rng)

    def verify(self, node_id: int, message: bytes, signature: object) -> bool:
        from .schnorr import SchnorrSignature

        if not isinstance(signature, SchnorrSignature):
            return False
        return self.registry.verify(node_id, message, signature)

    def partial_sign(self, member_id: int, message: bytes) -> PartialSignature:
        if member_id not in self._signers:
            raise ThresholdNotReachedError(f"node {member_id} is not a committee member")
        return self._signers[member_id].sign(message, self._rng)

    def verify_partial(self, message: bytes, partial: object) -> bool:
        if not isinstance(partial, PartialSignature):
            return False
        return verify_partial(self.threshold_public, message, partial)

    def combine(self, message: bytes, partials: Sequence[object]) -> ThresholdSignature:
        typed = [p for p in partials if isinstance(p, PartialSignature)]
        return combine_partials(self.threshold_public, message, typed)

    def verify_combined(self, message: bytes, signature: object) -> bool:
        """Recompute the unique signature and compare.

        Without pairings the combined value cannot be publicly checked against
        ``y = g^x``; deployments ship the DLEQ-proved partials as the
        certificate.  In the simulation the backend holds all signers, so it
        can act as the verification oracle directly — equivalent to verifying
        a full partial certificate.
        """

        if not isinstance(signature, ThresholdSignature):
            return False
        if self._threshold_public is None:
            return False
        fresh = [
            signer.sign(message, self._rng)
            for signer in list(self._signers.values())[: self.threshold_public.threshold]
        ]
        try:
            expected = combine_partials(self.threshold_public, message, fresh)
        except ThresholdNotReachedError:
            return False
        return expected.value == signature.value

    def seed_from_signature(self, signature: object, modulus: int) -> int:
        if not isinstance(signature, ThresholdSignature):
            raise ThresholdNotReachedError("expected a combined threshold signature")
        return signature.as_seed(modulus)

    def hash(self, payload: bytes) -> bytes:
        return hash_bytes(payload)


@dataclass(frozen=True, slots=True)
class _FastSignature:
    """A MAC standing in for a Schnorr signature in the fast backend."""

    signer: int
    tag: bytes


@dataclass(frozen=True, slots=True)
class _FastPartial:
    """A MAC standing in for a TRS partial signature."""

    member_id: int
    tag: bytes


@dataclass(frozen=True, slots=True)
class _FastCombined:
    """The deterministic combined TRS value in the fast backend."""

    value: bytes
    contributors: tuple[int, ...]


class FastCryptoBackend(CryptoBackend):
    """Keyed-hash simulation of the crypto layer for large experiments.

    Security within the simulation rests on per-node MAC keys held privately
    by this object: protocol code can only *ask* the backend to sign as a node
    it controls, so a Byzantine node still cannot forge another node's
    signatures — the same interface contract the real backend offers.
    """

    def __init__(self, seed: int = 0) -> None:
        self._root = hash_bytes("fast-backend-root", seed)
        self._node_keys: dict[int, bytes] = {}
        self._member_keys: dict[int, bytes] = {}
        self._committee_secret: bytes | None = None
        self._threshold: int | None = None

    def setup_committee(self, member_ids: Sequence[int], threshold: int) -> None:
        if threshold < 1 or threshold > len(member_ids):
            raise ThresholdNotReachedError(
                f"invalid threshold {threshold} for committee of {len(member_ids)}"
            )
        self._committee_secret = hash_bytes(self._root, "committee-secret")
        self._threshold = threshold
        self._member_keys = {
            m: hash_bytes(self._root, "member", m) for m in member_ids
        }

    def register_node(self, node_id: int) -> None:
        self._node_keys.setdefault(node_id, hash_bytes(self._root, "node", node_id))

    def sign(self, node_id: int, message: bytes) -> _FastSignature:
        if node_id not in self._node_keys:
            self.register_node(node_id)
        tag = hash_bytes(self._node_keys[node_id], message)
        return _FastSignature(signer=node_id, tag=tag)

    def verify(self, node_id: int, message: bytes, signature: object) -> bool:
        if not isinstance(signature, _FastSignature):
            return False
        if signature.signer != node_id or node_id not in self._node_keys:
            return False
        return signature.tag == hash_bytes(self._node_keys[node_id], message)

    def partial_sign(self, member_id: int, message: bytes) -> _FastPartial:
        if member_id not in self._member_keys:
            raise ThresholdNotReachedError(f"node {member_id} is not a committee member")
        tag = hash_bytes(self._member_keys[member_id], "partial", message)
        return _FastPartial(member_id=member_id, tag=tag)

    def verify_partial(self, message: bytes, partial: object) -> bool:
        if not isinstance(partial, _FastPartial):
            return False
        key = self._member_keys.get(partial.member_id)
        if key is None:
            return False
        return partial.tag == hash_bytes(key, "partial", message)

    def combine(self, message: bytes, partials: Sequence[object]) -> _FastCombined:
        if self._committee_secret is None or self._threshold is None:
            raise ThresholdNotReachedError("committee has not been set up")
        valid_ids = sorted(
            {
                p.member_id
                for p in partials
                if isinstance(p, _FastPartial) and self.verify_partial(message, p)
            }
        )
        if len(valid_ids) < self._threshold:
            raise ThresholdNotReachedError(
                f"need {self._threshold} valid partials, got {len(valid_ids)}"
            )
        # Deterministic in the message alone — mirrors the uniqueness of the
        # real combined signature H(m)^x across contributor subsets.
        value = hash_bytes(self._committee_secret, "combined", message)
        return _FastCombined(value=value, contributors=tuple(valid_ids[: self._threshold]))

    def verify_combined(self, message: bytes, signature: object) -> bool:
        if not isinstance(signature, _FastCombined):
            return False
        if self._committee_secret is None:
            return False
        return signature.value == hash_bytes(self._committee_secret, "combined", message)

    def seed_from_signature(self, signature: object, modulus: int) -> int:
        if not isinstance(signature, _FastCombined):
            raise ThresholdNotReachedError("expected a combined threshold signature")
        return hash_to_int("trs-seed", signature.value, modulus=modulus)

    def hash(self, payload: bytes) -> bytes:
        return hash_bytes(payload)
