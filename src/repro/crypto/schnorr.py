"""Schnorr signatures (Fiat–Shamir transformed) over a Schnorr group.

Used for ordinary node authentication: message envelopes, overlay encodings
and accountability evidence are all signed with per-node Schnorr keys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import InvalidSignatureError
from .group import SchnorrGroup

__all__ = ["SchnorrSignature", "schnorr_keygen", "schnorr_sign", "schnorr_verify"]


@dataclass(frozen=True, slots=True)
class SchnorrSignature:
    """A signature ``(c, s)`` with challenge *c* and response *s* in ``Z_q``."""

    challenge: int
    response: int


def schnorr_keygen(group: SchnorrGroup, rng: random.Random) -> tuple[int, int]:
    """Return ``(secret_key, public_key)`` with ``pk = g^sk``."""

    secret = rng.randrange(1, group.q)
    return secret, group.exp(group.g, secret)


def schnorr_sign(
    group: SchnorrGroup, secret_key: int, message: bytes, rng: random.Random
) -> SchnorrSignature:
    """Sign *message*: commit ``R = g^r``, challenge ``c = H(R, pk, m)``,
    respond ``s = r + c·sk``."""

    nonce = rng.randrange(1, group.q)
    commitment = group.exp(group.g, nonce)
    public_key = group.exp(group.g, secret_key)
    challenge = group.hash_to_scalar("schnorr", commitment, public_key, message)
    response = group.scalar_field.add(nonce, group.scalar_field.mul(challenge, secret_key))
    return SchnorrSignature(challenge=challenge, response=response)


def schnorr_verify(
    group: SchnorrGroup, public_key: int, message: bytes, signature: SchnorrSignature
) -> bool:
    """Check ``H(g^s · pk^{-c}, pk, m) == c``.  Returns ``False`` on mismatch."""

    if not group.is_element(public_key):
        return False
    if not 0 < signature.challenge < group.q or not 0 <= signature.response < group.q:
        return False
    recovered = group.mul(
        group.exp(group.g, signature.response),
        group.inv(group.exp(public_key, signature.challenge)),
    )
    expected = group.hash_to_scalar("schnorr", recovered, public_key, message)
    return expected == signature.challenge


def require_valid_signature(
    group: SchnorrGroup, public_key: int, message: bytes, signature: SchnorrSignature
) -> None:
    """Raise :class:`InvalidSignatureError` unless the signature verifies."""

    if not schnorr_verify(group, public_key, message, signature):
        raise InvalidSignatureError("Schnorr signature verification failed")
