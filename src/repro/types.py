"""Shared value types used across the HERMES reproduction.

These are deliberately small, immutable building blocks: node identifiers,
geographic regions for the latency model, and a few protocol-level aliases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NewType

NodeId = NewType("NodeId", int)
OverlayId = NewType("OverlayId", int)
SeqNum = NewType("SeqNum", int)
Milliseconds = float
Bytes = int


class Region(enum.Enum):
    """The nine geographic regions used by the paper's latency model."""

    NEW_YORK = "new-york"
    SINGAPORE = "singapore"
    FRANKFURT = "frankfurt"
    SYDNEY = "sydney"
    TOKYO = "tokyo"
    IRELAND = "ireland"
    OHIO = "ohio"
    CALIFORNIA = "california"
    LONDON = "london"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


ALL_REGIONS: tuple[Region, ...] = tuple(Region)


@dataclass(frozen=True, slots=True)
class NodeDescriptor:
    """Static facts about a node: its identifier and where it lives."""

    node_id: int
    region: Region

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be non-negative, got {self.node_id}")


@dataclass(frozen=True, slots=True)
class LatencySample:
    """A single measured dissemination latency, in milliseconds."""

    node_id: int
    latency_ms: float


def validate_fault_parameters(n: int, f: int) -> None:
    """Check the classical ``n >= 3f + 1`` Byzantine fault-tolerance bound.

    Raises :class:`~repro.errors.ConfigurationError` when violated.
    """

    from .errors import ConfigurationError

    if n <= 0:
        raise ConfigurationError(f"network size must be positive, got n={n}")
    if f < 0:
        raise ConfigurationError(f"fault bound must be non-negative, got f={f}")
    if n < 3 * f + 1:
        raise ConfigurationError(
            f"n={n} cannot tolerate f={f} Byzantine nodes (requires n >= 3f+1 = {3 * f + 1})"
        )
